//! End-to-end integration: the full update → index → query pipeline
//! across simulated time, validated against the brute-force oracle.

use pdr::geometry::{Point, Rect};
use pdr::mobject::{TimeHorizon, Update};
use pdr::workload::{gaussian_clusters, NetworkConfig, RoadNetwork, TrafficSimulator};
use pdr::{
    accuracy, classify_cells, dh_optimistic, dh_pessimistic, ExactOracle, FrConfig, FrEngine,
    PaConfig, PaEngine, PdrQuery,
};

const EXTENT: f64 = 500.0;
const L: f64 = 20.0;

fn horizon() -> TimeHorizon {
    TimeHorizon::new(6, 6)
}

fn fr_engine() -> FrEngine {
    FrEngine::new(
        FrConfig {
            extent: EXTENT,
            m: 50,
            horizon: horizon(),
            buffer_pages: 64,
            threads: 1,
        },
        0,
    )
}

fn pa_engine() -> PaEngine {
    PaEngine::new(
        PaConfig {
            extent: EXTENT,
            g: 10,
            degree: 5,
            l: L,
            horizon: horizon(),
            m_d: 500,
        },
        0,
    )
}

/// Drives a road-network simulation for several ticks, applying every
/// update to both engines, and cross-checks FR against the oracle and
/// PA against FR at each step.
#[test]
fn simulated_traffic_pipeline() {
    let net = RoadNetwork::generate(
        &NetworkConfig {
            extent: EXTENT,
            nodes: 600,
            hotspots: 4,
            spread: 0.05,
            background: 0.2,
            degree: 3,
        },
        5,
    );
    let mut sim = TrafficSimulator::new(net, 3000, 17, horizon().max_update_time(), 0);
    let mut fr = fr_engine();
    let mut pa = pa_engine();
    let population = sim.population();
    fr.bulk_load(&population, 0);
    for (id, m) in &population {
        pa.apply(&Update::insert(*id, 0, *m));
    }

    let rho = 10.0 / (L * L);
    for step in 0..4u64 {
        // Advance two ticks.
        for _ in 0..2 {
            let t = sim.t_now() + 1;
            fr.advance_to(t);
            pa.advance_to(t);
            for u in sim.tick() {
                fr.apply(&u);
                pa.apply(&u);
            }
        }
        let q_t = sim.t_now() + 3; // predictive query
        let q = PdrQuery::new(rho, L, q_t);
        let fr_ans = fr.query(&q);

        // FR must be exact.
        let oracle = ExactOracle::new(Rect::new(0.0, 0.0, EXTENT, EXTENT), sim.positions_at(q_t));
        let truth = oracle.dense_regions(&q);
        let acc = accuracy(&truth, &fr_ans.regions);
        assert!(
            acc.r_fp < 1e-9 && acc.r_fn < 1e-9,
            "step {step}: FR diverged from oracle: {acc:?}"
        );

        // PA must be close (generous bound: this is an approximation).
        let pa_acc = accuracy(&truth, &pa.query(rho, q_t).regions);
        assert!(
            pa_acc.r_fn < 0.5 && (pa_acc.r_fp < 1.0 || truth.area() < 100.0),
            "step {step}: PA unreasonably far off: {pa_acc:?}"
        );
    }
}

/// The DH-only baselines keep their one-sided guarantees through a
/// full engine pipeline.
#[test]
fn dh_one_sided_guarantees_end_to_end() {
    let population = gaussian_clusters(4000, EXTENT, 4, 15.0, 0.2, 1.0, 9, 0);
    let mut fr = fr_engine();
    fr.bulk_load(&population, 0);
    for varrho in [1.0f64, 2.0, 4.0] {
        let rho = varrho * population.len() as f64 / (EXTENT * EXTENT);
        let q = PdrQuery::new(rho, L, 4);
        let truth = fr.query(&q).regions;
        let cls = classify_cells(fr.histogram().grid(), &fr.histogram().prefix_sums_at(4), &q);
        let opt = accuracy(&truth, &dh_optimistic(&cls));
        let pes = accuracy(&truth, &dh_pessimistic(&cls));
        assert!(
            opt.r_fn < 1e-9,
            "optimistic DH missed dense area at varrho={varrho}"
        );
        assert!(
            pes.r_fp < 1e-9,
            "pessimistic DH over-reported at varrho={varrho}"
        );
    }
}

/// Interval queries union snapshots for both engines.
#[test]
fn interval_queries_union_snapshots() {
    let population = gaussian_clusters(2500, EXTENT, 3, 15.0, 0.2, 1.2, 21, 0);
    let mut fr = fr_engine();
    let mut pa = pa_engine();
    fr.bulk_load(&population, 0);
    for (id, m) in &population {
        pa.apply(&Update::insert(*id, 0, *m));
    }
    let rho = 10.0 / (L * L);
    let fr_union = fr.interval_query(rho, L, 2, 5);
    let pa_union = pa.interval_query(rho, 2, 5);
    for t in 2..=5u64 {
        let snap = fr.query(&PdrQuery::new(rho, L, t)).regions;
        assert!(snap.difference_area(&fr_union) < 1e-9, "t={t}");
        let snap = pa.query(rho, t).regions;
        assert!(snap.difference_area(&pa_union) < 1e-6, "t={t}");
    }
}

/// Objects that leave and re-enter the monitored region are handled
/// consistently by the whole stack.
#[test]
fn border_crossing_objects() {
    use pdr::mobject::{MotionState, ObjectId};
    let mut fr = fr_engine();
    // 30 objects marching off the right edge, 30 standing in a cluster.
    let mut pop = Vec::new();
    for i in 0..30 {
        pop.push((
            ObjectId(i),
            MotionState::new(
                Point::new(EXTENT - 5.0, 10.0 + i as f64),
                Point::new(3.0, 0.0),
                0,
            ),
        ));
    }
    for i in 30..60 {
        pop.push((
            ObjectId(i),
            MotionState::new(Point::new(100.0, 100.0), Point::ORIGIN, 0),
        ));
    }
    fr.bulk_load(&pop, 0);
    // At t=6 the marchers are 13 miles outside; only the cluster is
    // dense.
    let q = PdrQuery::new(20.0 / (L * L), L, 6);
    let ans = fr.query(&q);
    assert!(ans.regions.contains(Point::new(100.0, 100.0)));
    assert!(!ans.regions.contains(Point::new(EXTENT - 1.0, 25.0)));
    // The histogram total reflects only in-region objects.
    assert_eq!(fr.histogram().total_at(6), 30);
}

/// The FR engine produces identical exact answers whichever refinement
/// index is plugged in (TPR-tree vs velocity-bounded grid) — the
/// paper's "adopt any linear-motion index" claim, verified end to end.
#[test]
fn fr_answers_independent_of_refinement_index() {
    use pdr::gridindex::{GridIndex, GridIndexConfig};
    let population = gaussian_clusters(3000, EXTENT, 4, 15.0, 0.2, 1.0, 33, 0);
    let cfg = FrConfig {
        extent: EXTENT,
        m: 50,
        horizon: horizon(),
        buffer_pages: 64,
        threads: 1,
    };
    let mut fr_tpr = FrEngine::new(cfg, 0);
    let grid = GridIndex::new(
        GridIndexConfig {
            extent: EXTENT,
            buckets_per_side: 25,
            buffer_pages: 64,
        },
        0,
    );
    let mut fr_grid = FrEngine::with_index(cfg, grid, 0);
    fr_tpr.bulk_load(&population, 0);
    fr_grid.bulk_load(&population, 0);
    for varrho in [1.0f64, 3.0] {
        let rho = varrho * population.len() as f64 / (EXTENT * EXTENT);
        let q = PdrQuery::new(rho, L, 5);
        let a = fr_tpr.query(&q);
        let b = fr_grid.query(&q);
        assert!(
            a.regions.symmetric_difference_area(&b.regions) < 1e-9,
            "answers differ between refinement indexes at varrho={varrho}"
        );
        assert_eq!(a.candidates, b.candidates, "filter output must match");
        // Both actually did I/O-accounted work when candidates exist.
        if a.candidates > 0 {
            assert!(a.io.logical_reads > 0 && b.io.logical_reads > 0);
        }
    }
}

/// Memory accounting matches the paper's storage formulas at engine
/// level.
#[test]
fn memory_formulas() {
    let fr = fr_engine();
    // H+1 slots x m^2 cells x 4 bytes.
    assert_eq!(
        fr.histogram().memory_bytes(),
        horizon().slot_count() * 50 * 50 * 4
    );
    let pa = pa_engine();
    // (H+1) x g^2 x (k+1)(k+2)/2 x 8 bytes.
    assert_eq!(pa.memory_bytes(), horizon().slot_count() * 100 * 21 * 8);
}
