//! The paper's headline claims, verified at engine scale:
//!
//! 1. PDR answers are complete and unique (Sections 1–3): no answer
//!    loss, no ambiguity, local density guaranteed, answers are a
//!    superset of prior-work answers.
//! 2. PA runs much faster than FR at a tolerable accuracy loss
//!    (Sections 6–7).
//! 3. FR cost scales with the dataset; PA cost does not (Figure 10(b)).
//! 4. Summary memory is independent of the dataset size (Section 7).

use pdr::geometry::{GridSpec, LSquare, Point, Rect};
use pdr::mobject::{TimeHorizon, Update};
use pdr::workload::gaussian_clusters;
use pdr::{accuracy, FrConfig, FrEngine, PaConfig, PaEngine, PdrQuery};
use std::time::Instant;

const EXTENT: f64 = 500.0;
const L: f64 = 20.0;

fn engines(n: usize, seed: u64) -> (FrEngine, PaEngine, Vec<Point>) {
    let population = gaussian_clusters(n, EXTENT, 4, 15.0, 0.2, 1.0, seed, 0);
    let horizon = TimeHorizon::new(5, 5);
    let mut fr = FrEngine::new(
        FrConfig {
            extent: EXTENT,
            m: 50,
            horizon,
            buffer_pages: (n / 400).max(8),
            threads: 1,
        },
        0,
    );
    fr.bulk_load(&population, 0);
    let mut pa = PaEngine::new(
        PaConfig {
            extent: EXTENT,
            g: 10,
            degree: 5,
            l: L,
            horizon,
            m_d: 500,
        },
        0,
    );
    for (id, m) in &population {
        pa.apply(&Update::insert(*id, 0, *m));
    }
    let positions = population.iter().map(|(_, m)| m.position_at(3)).collect();
    (fr, pa, positions)
}

/// Claim 1a: every prior-work answer is inside the PDR answer
/// (generality, Section 3.1), at full engine scale.
#[test]
fn pdr_answer_generalizes_prior_work() {
    let (fr, _, positions) = engines(5000, 3);
    let rho = 12.0 / (L * L);
    let q = PdrQuery::new(rho, L, 3);
    let pdr_regions = fr.query(&q).regions;

    // Dense cells with cell edge = l.
    let grid = GridSpec::unit_origin(EXTENT, (EXTENT / L) as u32);
    let cells = pdr::baselines::dense_cell_query(&positions, grid, rho);
    for r in cells.rects() {
        assert!(
            pdr_regions.contains(r.center()),
            "dense-cell center {:?} missing from PDR",
            r.center()
        );
    }

    // EDQ squares.
    let squares = pdr::baselines::effective_density_query(&positions, &grid.bounds(), &q);
    assert!(!squares.is_empty(), "scene should contain dense squares");
    for s in &squares {
        assert!(
            pdr_regions.contains(s.center),
            "EDQ center {:?} (count {}) missing from PDR",
            s.center,
            s.count
        );
    }
}

/// Claim 1b: every point of the answer really is locally dense, and no
/// sampled dense point is missing (completeness + local density).
#[test]
fn answers_are_complete_and_locally_dense() {
    let (fr, _, positions) = engines(4000, 7);
    let rho = 10.0 / (L * L);
    let q = PdrQuery::new(rho, L, 3);
    let regions = fr.query(&q).regions;
    let mut seed = 1234u64;
    let mut rng = move || {
        seed = seed
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (seed >> 33) as f64 / (1u64 << 31) as f64
    };
    let threshold = q.count_threshold();
    for _ in 0..3000 {
        let p = Point::new(rng() * EXTENT, rng() * EXTENT);
        let sq = LSquare::new(p, L);
        let count = positions.iter().filter(|&&o| sq.contains(o)).count();
        let dense = count as f64 + 1e-9 >= threshold;
        assert_eq!(
            regions.contains(p),
            dense,
            "point {p:?} with {count} neighbors misclassified"
        );
    }
}

/// Claim 2: PA is much faster than FR under the paper's cost model,
/// and stays within a tolerable error.
#[test]
fn pa_is_fast_and_tolerably_accurate() {
    let (fr, pa, _) = engines(8000, 11);
    let rho = 12.0 / (L * L);
    let q = PdrQuery::new(rho, L, 3);
    let truth = fr.query(&q);
    let model = pdr::storage::CostModel::PAPER_DEFAULT;
    let fr_total_ms = truth.total_ms(&model);

    let t0 = Instant::now();
    let pa_ans = pa.query(rho, 3);
    let pa_ms = t0.elapsed().as_secs_f64() * 1e3;

    let acc = accuracy(&truth.regions, &pa_ans.regions);
    assert!(
        acc.r_fp < 0.6 && acc.r_fn < 0.6,
        "PA error too high: {acc:?}"
    );
    // Under the cost model (10 ms per I/O) FR pays for its range
    // queries; PA pays none. Demand a clear win, not a precise ratio.
    assert!(
        pa_ms < fr_total_ms,
        "PA ({pa_ms} ms) should beat FR ({fr_total_ms} ms) under the cost model"
    );
}

/// Claim 3: FR's I/O grows with the dataset; PA's query cost does not
/// depend on it (only on the polynomial count).
#[test]
fn scaling_with_dataset_size() {
    let (fr_small, pa_small, _) = engines(2000, 13);
    let (fr_big, pa_big, _) = engines(16000, 13);
    let q_small = PdrQuery::new(2.0 * 2000.0 / (EXTENT * EXTENT), L, 3);
    let q_big = PdrQuery::new(2.0 * 16000.0 / (EXTENT * EXTENT), L, 3);

    let io_small = {
        let a = fr_small.query(&q_small);
        a.io.logical_reads
    };
    let io_big = {
        let a = fr_big.query(&q_big);
        a.io.logical_reads
    };
    assert!(
        io_big > io_small,
        "FR work should grow with the dataset ({io_small} vs {io_big} reads)"
    );

    // PA work is bound by polynomial evaluations, not objects.
    let e_small = pa_small.query(q_small.rho, 3).bound_evals;
    let e_big = pa_big.query(q_big.rho, 3).bound_evals;
    assert!(
        (e_big as f64) < 4.0 * e_small as f64,
        "PA bound evaluations should not scale with objects ({e_small} vs {e_big})"
    );
}

/// Claim 4: summary memory depends on configuration, not on data.
#[test]
fn memory_independent_of_dataset() {
    let (fr_small, pa_small, _) = engines(1000, 17);
    let (fr_big, pa_big, _) = engines(10000, 17);
    assert_eq!(
        fr_small.histogram().memory_bytes(),
        fr_big.histogram().memory_bytes()
    );
    assert_eq!(pa_small.memory_bytes(), pa_big.memory_bytes());
}

/// The three defect scenes of Figure 1, replayed through the full FR
/// engine rather than the static oracle.
#[test]
fn figure1_scenes_through_the_engine() {
    use pdr::mobject::{MotionState, ObjectId};
    // Scene (a): answer loss — 4 objects hugging a histogram cell
    // corner. Cell edge is EXTENT/50 = 10; corner at (100, 100).
    let mut fr = FrEngine::new(
        FrConfig {
            extent: EXTENT,
            m: 50,
            horizon: TimeHorizon::new(2, 2),
            buffer_pages: 16,
            threads: 1,
        },
        0,
    );
    let pop: Vec<(ObjectId, MotionState)> =
        [(99.0, 99.0), (101.0, 99.0), (99.0, 101.0), (101.0, 101.0)]
            .iter()
            .enumerate()
            .map(|(i, &(x, y))| {
                (
                    ObjectId(i as u64),
                    MotionState::stationary(Point::new(x, y), 0),
                )
            })
            .collect();
    fr.bulk_load(&pop, 0);
    let q = PdrQuery::new(4.0 / (L * L), L, 1);
    let ans = fr.query(&q);
    assert!(
        ans.regions.contains(Point::new(100.0, 100.0)),
        "answer loss: corner cluster missed by the engine"
    );
    // Local density: a point 30 miles away must not be reported.
    assert!(!ans.regions.contains(Point::new(130.0, 130.0)));
    // The answer is wholly inside the plane.
    let bounds = Rect::new(0.0, 0.0, EXTENT, EXTENT);
    for r in ans.regions.rects() {
        assert!(bounds.contains_rect(r));
    }
}
