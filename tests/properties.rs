//! Randomized property tests on the core data structures and the
//! paper's invariants. Inputs are drawn from the in-repo deterministic
//! PRNG (`pdr::workload::StdRng`) so the suite needs no network-fetched
//! test frameworks and every failure reproduces from the fixed seeds.

use pdr::chebyshev::{delta_coefficients, ChebyshevApprox, CoeffTriangle};
use pdr::geometry::{Interval, IntervalSet, LSquare, Point, Rect, RegionSet};
use pdr::mobject::{MotionState, ObjectId, Timestamp};
use pdr::tprtree::{TprConfig, TprTree};
use pdr::workload::StdRng;
use pdr::{refine_region_set, DenseThreshold};

// ---------------------------------------------------------------------
// Deterministic generators (mirroring the old proptest strategies)
// ---------------------------------------------------------------------

fn rand_interval(rng: &mut StdRng) -> Interval {
    let lo = rng.random_range(-100.0..100.0);
    let len = rng.random_range(0.0..50.0);
    Interval::new(lo, lo + len)
}

fn rand_interval_set(rng: &mut StdRng) -> IntervalSet {
    let n = rng.random_range(0..12usize);
    IntervalSet::from_intervals((0..n).map(|_| rand_interval(rng)))
}

fn rand_rect(rng: &mut StdRng) -> Rect {
    let x = rng.random_range(0.0..90.0);
    let y = rng.random_range(0.0..90.0);
    let w = rng.random_range(0.1..40.0);
    let h = rng.random_range(0.1..40.0);
    Rect::new(x, y, x + w, y + h)
}

fn rand_region(rng: &mut StdRng) -> RegionSet {
    let n = rng.random_range(0..10usize);
    RegionSet::from_rects((0..n).map(|_| rand_rect(rng)))
}

fn rand_motion(rng: &mut StdRng) -> MotionState {
    MotionState::new(
        Point::new(rng.random_range(0.0..1000.0), rng.random_range(0.0..1000.0)),
        Point::new(rng.random_range(-2.0..2.0), rng.random_range(-2.0..2.0)),
        0,
    )
}

// ---------------------------------------------------------------------
// Geometry: interval sets
// ---------------------------------------------------------------------

/// Normalization invariants: sorted, disjoint, non-empty items.
#[test]
fn interval_sets_are_normalized() {
    let mut rng = StdRng::seed_from_u64(0x1A01);
    for _ in 0..256 {
        let s = rand_interval_set(&mut rng);
        let items = s.intervals();
        for w in items.windows(2) {
            assert!(w[0].hi < w[1].lo, "not disjoint/sorted: {items:?}");
        }
        for iv in items {
            assert!(iv.lo < iv.hi);
        }
    }
}

/// measure(A ∪ B) = measure(A) + measure(B) − measure(A ∩ B).
#[test]
fn interval_inclusion_exclusion() {
    let mut rng = StdRng::seed_from_u64(0x1A02);
    for _ in 0..256 {
        let a = rand_interval_set(&mut rng);
        let b = rand_interval_set(&mut rng);
        let lhs = a.union(&b).measure();
        let rhs = a.measure() + b.measure() - a.intersection(&b).measure();
        assert!((lhs - rhs).abs() < 1e-6, "{lhs} vs {rhs}");
    }
}

/// Difference measure is consistent with membership sampling.
#[test]
fn interval_difference_vs_membership() {
    let mut rng = StdRng::seed_from_u64(0x1A03);
    for _ in 0..256 {
        let a = rand_interval_set(&mut rng);
        let b = rand_interval_set(&mut rng);
        for _ in 0..20 {
            let x = rng.random_range(-110.0..110.0);
            if a.contains(x) && !b.contains(x) {
                // x sits in A\B, so the difference is a legal set with
                // non-negative measure.
                assert!(a.difference_measure(&b) >= 0.0);
            }
        }
        assert!(a.difference_measure(&b) <= a.measure() + 1e-9);
    }
}

// ---------------------------------------------------------------------
// Geometry: region sets
// ---------------------------------------------------------------------

/// area(A ∪ B) = area(A) + area(B) − area(A ∩ B).
#[test]
fn region_inclusion_exclusion() {
    let mut rng = StdRng::seed_from_u64(0x2B01);
    for _ in 0..256 {
        let a = rand_region(&mut rng);
        let b = rand_region(&mut rng);
        let lhs = a.union_area(&b);
        let rhs = a.area() + b.area() - a.intersection_area(&b);
        assert!((lhs - rhs).abs() < 1e-6, "{lhs} vs {rhs}");
    }
}

/// Differences are complementary: area(A) = area(A∩B) + area(A\B).
#[test]
fn region_difference_partition() {
    let mut rng = StdRng::seed_from_u64(0x2B02);
    for _ in 0..256 {
        let a = rand_region(&mut rng);
        let b = rand_region(&mut rng);
        let total = a.intersection_area(&b) + a.difference_area(&b);
        assert!((total - a.area()).abs() < 1e-6);
    }
}

/// Coalescing never changes the point set (checked by area of the
/// symmetric difference with the original).
#[test]
fn coalesce_preserves_point_set() {
    let mut rng = StdRng::seed_from_u64(0x2B03);
    for _ in 0..256 {
        let a = rand_region(&mut rng);
        let mut c = a.clone();
        c.coalesce();
        assert!(a.symmetric_difference_area(&c) < 1e-6);
    }
}

/// Membership is monotone under union: points inside a region stay
/// inside the union with anything.
#[test]
fn region_membership_monotone() {
    let mut rng = StdRng::seed_from_u64(0x2B04);
    for _ in 0..256 {
        let a = rand_region(&mut rng);
        let b = rand_region(&mut rng);
        let p = Point::new(rng.random_range(0.0..130.0), rng.random_range(0.0..130.0));
        if a.contains(p) {
            let mut u = a.clone();
            u.extend_from(&b);
            assert!(u.contains(p));
        }
    }
}

// ---------------------------------------------------------------------
// The plane-sweep refinement vs brute force
// ---------------------------------------------------------------------

/// On random scenes, the sweep's answer agrees pointwise with the
/// brute-force density definition.
#[test]
fn sweep_matches_brute_force() {
    let mut rng = StdRng::seed_from_u64(0x3C01);
    for _ in 0..64 {
        let l = 5.0;
        let target = Rect::new(0.0, 0.0, 30.0, 30.0);
        let n = rng.random_range(0..60usize);
        let objects: Vec<Point> = (0..n)
            .map(|_| Point::new(rng.random_range(0.0..30.0), rng.random_range(0.0..30.0)))
            .collect();
        let threshold = rng.random_range(1..6usize);
        let region = refine_region_set(
            &target,
            &objects,
            DenseThreshold::from_count(threshold as f64),
            l,
        );
        for _ in 0..30 {
            let p = Point::new(rng.random_range(0.0..30.0), rng.random_range(0.0..30.0));
            let sq = LSquare::new(p, l);
            let count = objects.iter().filter(|&&o| sq.contains(o)).count();
            assert_eq!(
                region.contains(p),
                count >= threshold,
                "point {p:?} with {count} neighbors, threshold {threshold}"
            );
        }
    }
}

// ---------------------------------------------------------------------
// TPR-tree vs brute force
// ---------------------------------------------------------------------

/// Range queries after inserts and deletes match linear scan.
#[test]
fn tprtree_matches_linear_scan() {
    let mut rng = StdRng::seed_from_u64(0x4D01);
    for _ in 0..24 {
        let n = rng.random_range(1..250usize);
        let motions: Vec<MotionState> = (0..n).map(|_| rand_motion(&mut rng)).collect();
        let remove_mod = rng.random_range(2..5usize);
        let qt = rng.random_range(0..20u64);
        let qx = rng.random_range(0.0..900.0);
        let qy = rng.random_range(0.0..900.0);
        let qw = rng.random_range(10.0..300.0);
        let qh = rng.random_range(10.0..300.0);

        let mut tree = TprTree::new(
            TprConfig {
                buffer_pages: 16,
                min_fill_ratio: 0.4,
                horizon: 20.0,
                integral_metrics: true,
            },
            0,
        );
        for (i, m) in motions.iter().enumerate() {
            tree.insert(ObjectId(i as u64), m, 0);
        }
        let mut live: Vec<(ObjectId, MotionState)> = Vec::new();
        for (i, m) in motions.iter().enumerate() {
            if i % remove_mod == 0 {
                assert!(tree.remove(ObjectId(i as u64)));
            } else {
                live.push((ObjectId(i as u64), *m));
            }
        }
        let rect = Rect::new(qx, qy, qx + qw, qy + qh);
        let mut got: Vec<u64> = tree
            .range_at(&rect, qt as Timestamp)
            .into_iter()
            .map(|(id, _)| id.0)
            .collect();
        got.sort_unstable();
        let mut expect: Vec<u64> = live
            .iter()
            .filter(|(_, m)| rect.contains(m.position_at(qt as Timestamp)))
            .map(|(id, _)| id.0)
            .collect();
        expect.sort_unstable();
        assert_eq!(got, expect);
        tree.validate();
    }
}

// ---------------------------------------------------------------------
// Chebyshev machinery
// ---------------------------------------------------------------------

/// Interval bounds are sound for random indicator-sum surfaces.
#[test]
fn chebyshev_bounds_sound() {
    let mut rng = StdRng::seed_from_u64(0x5E01);
    for _ in 0..48 {
        let domain = Rect::new(0.0, 0.0, 100.0, 100.0);
        let mut f = ChebyshevApprox::zero(domain, 5);
        let boxes = rng.random_range(1..6usize);
        for _ in 0..boxes {
            let x = rng.random_range(0.0..80.0);
            let y = rng.random_range(0.0..80.0);
            let w = rng.random_range(1.0..20.0);
            let h = rng.random_range(1.0..20.0);
            let weight = rng.random_range(-2.0..2.0);
            f.add_box(&Rect::new(x, y, x + w, y + h), weight);
        }
        let rx = rng.random_range(0.0..80.0);
        let ry = rng.random_range(0.0..80.0);
        let rw = rng.random_range(1.0..20.0);
        let rh = rng.random_range(1.0..20.0);
        let r = Rect::new(rx, ry, rx + rw, ry + rh);
        let (lo, hi) = f.bounds(&r);
        for _ in 0..20 {
            let fx = rng.random_range(0.0..1.0);
            let fy = rng.random_range(0.0..1.0);
            let p = Point::new(r.x_lo + fx * r.width(), r.y_lo + fy * r.height());
            let v = f.eval(p);
            assert!(
                v >= lo - 1e-9 && v <= hi + 1e-9,
                "value {v} outside [{lo}, {hi}] at {p:?}"
            );
        }
    }
}

/// Coefficient linearity: delta(A) + delta(B) applied in either order
/// gives the same surface.
#[test]
fn chebyshev_update_order_independent() {
    let mut rng = StdRng::seed_from_u64(0x5E02);
    for _ in 0..256 {
        let x1 = rng.random_range(0.0..0.5);
        let y1 = rng.random_range(0.0..0.5);
        let x2 = rng.random_range(-0.5..0.0);
        let y2 = rng.random_range(-0.5..0.0);
        let w1 = rng.random_range(0.1..3.0);
        let w2 = rng.random_range(0.1..3.0);
        let a = delta_coefficients(4, x1 - 0.2, x1 + 0.2, y1 - 0.2, y1 + 0.2, w1);
        let b = delta_coefficients(4, x2 - 0.2, x2 + 0.2, y2 - 0.2, y2 + 0.2, w2);
        let mut ab = CoeffTriangle::zero(4);
        ab.add_assign(&a);
        ab.add_assign(&b);
        let mut ba = CoeffTriangle::zero(4);
        ba.add_assign(&b);
        ba.add_assign(&a);
        for (i, j, v) in ab.iter() {
            assert!((v - ba.get(i, j)).abs() < 1e-12);
        }
    }
}

// ---------------------------------------------------------------------
// Motion model
// ---------------------------------------------------------------------

/// Rebasing a motion never changes its trajectory.
#[test]
fn rebase_preserves_trajectory() {
    let mut rng = StdRng::seed_from_u64(0x6F01);
    for _ in 0..256 {
        let m = rand_motion(&mut rng);
        let t1 = rng.random_range(0..100u64);
        let probe = rng.random_range(0..200u64);
        let r = m.rebased_to(t1);
        let a = m.position_at(probe);
        let b = r.position_at(probe);
        assert!((a.x - b.x).abs() < 1e-6 && (a.y - b.y).abs() < 1e-6);
    }
}
