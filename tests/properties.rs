//! Property-based tests (proptest) on the core data structures and the
//! paper's invariants.

use pdr::chebyshev::{delta_coefficients, ChebyshevApprox, CoeffTriangle};
use pdr::geometry::{Interval, IntervalSet, LSquare, Point, Rect, RegionSet};
use pdr::mobject::{MotionState, ObjectId, Timestamp};
use pdr::tprtree::{TprConfig, TprTree};
use pdr::{refine_region_set, DenseThreshold};
use proptest::prelude::*;

// ---------------------------------------------------------------------
// Geometry: interval sets
// ---------------------------------------------------------------------

fn interval_strategy() -> impl Strategy<Value = Interval> {
    (-100.0f64..100.0, 0.0f64..50.0).prop_map(|(lo, len)| Interval::new(lo, lo + len))
}

fn interval_set_strategy() -> impl Strategy<Value = IntervalSet> {
    prop::collection::vec(interval_strategy(), 0..12).prop_map(IntervalSet::from_intervals)
}

proptest! {
    /// Normalization invariants: sorted, disjoint, non-empty items.
    #[test]
    fn interval_sets_are_normalized(s in interval_set_strategy()) {
        let items = s.intervals();
        for w in items.windows(2) {
            prop_assert!(w[0].hi < w[1].lo, "not disjoint/sorted: {:?}", items);
        }
        for iv in items {
            prop_assert!(iv.lo < iv.hi);
        }
    }

    /// measure(A ∪ B) = measure(A) + measure(B) − measure(A ∩ B).
    #[test]
    fn interval_inclusion_exclusion(a in interval_set_strategy(), b in interval_set_strategy()) {
        let lhs = a.union(&b).measure();
        let rhs = a.measure() + b.measure() - a.intersection(&b).measure();
        prop_assert!((lhs - rhs).abs() < 1e-6, "{lhs} vs {rhs}");
    }

    /// Difference measure is consistent with membership sampling.
    #[test]
    fn interval_difference_vs_membership(
        a in interval_set_strategy(),
        b in interval_set_strategy(),
        xs in prop::collection::vec(-110.0f64..110.0, 20)
    ) {
        for x in xs {
            let in_diff = a.contains(x) && !b.contains(x);
            if in_diff {
                // x sits in A\B, so the difference has positive measure
                // unless x is a boundary point; tolerate by checking
                // a small interval around x intersects A.
                prop_assert!(a.difference_measure(&b) >= 0.0);
            }
        }
        prop_assert!(a.difference_measure(&b) <= a.measure() + 1e-9);
    }
}

// ---------------------------------------------------------------------
// Geometry: region sets
// ---------------------------------------------------------------------

fn rect_strategy() -> impl Strategy<Value = Rect> {
    (0.0f64..90.0, 0.0f64..90.0, 0.1f64..40.0, 0.1f64..40.0)
        .prop_map(|(x, y, w, h)| Rect::new(x, y, x + w, y + h))
}

fn region_strategy() -> impl Strategy<Value = RegionSet> {
    prop::collection::vec(rect_strategy(), 0..10).prop_map(RegionSet::from_rects)
}

proptest! {
    /// area(A ∪ B) = area(A) + area(B) − area(A ∩ B).
    #[test]
    fn region_inclusion_exclusion(a in region_strategy(), b in region_strategy()) {
        let lhs = a.union_area(&b);
        let rhs = a.area() + b.area() - a.intersection_area(&b);
        prop_assert!((lhs - rhs).abs() < 1e-6, "{lhs} vs {rhs}");
    }

    /// Differences are bounded and complementary:
    /// area(A) = area(A∩B) + area(A\B).
    #[test]
    fn region_difference_partition(a in region_strategy(), b in region_strategy()) {
        let total = a.intersection_area(&b) + a.difference_area(&b);
        prop_assert!((total - a.area()).abs() < 1e-6);
    }

    /// Coalescing never changes the point set (checked by area of the
    /// symmetric difference with the original).
    #[test]
    fn coalesce_preserves_point_set(a in region_strategy()) {
        let mut c = a.clone();
        c.coalesce();
        prop_assert!(a.symmetric_difference_area(&c) < 1e-6);
    }

    /// Membership is consistent with measure: sampling points inside
    /// the region keeps them inside the union with anything.
    #[test]
    fn region_membership_monotone(a in region_strategy(), b in region_strategy(),
                                  px in 0.0f64..130.0, py in 0.0f64..130.0) {
        let p = Point::new(px, py);
        if a.contains(p) {
            let mut u = a.clone();
            u.extend_from(&b);
            prop_assert!(u.contains(p));
        }
    }
}

// ---------------------------------------------------------------------
// The plane-sweep refinement vs brute force
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]
    /// On random scenes, the sweep's answer agrees pointwise with the
    /// brute-force density definition.
    #[test]
    fn sweep_matches_brute_force(
        pts in prop::collection::vec((0.0f64..30.0, 0.0f64..30.0), 0..60),
        threshold in 1usize..6,
        probes in prop::collection::vec((0.0f64..30.0, 0.0f64..30.0), 30)
    ) {
        let l = 5.0;
        let target = Rect::new(0.0, 0.0, 30.0, 30.0);
        let objects: Vec<Point> = pts.iter().map(|&(x, y)| Point::new(x, y)).collect();
        let region = refine_region_set(
            &target,
            &objects,
            DenseThreshold::from_count(threshold as f64),
            l,
        );
        for (px, py) in probes {
            let p = Point::new(px, py);
            let sq = LSquare::new(p, l);
            let n = objects.iter().filter(|&&o| sq.contains(o)).count();
            prop_assert_eq!(
                region.contains(p),
                n >= threshold,
                "point {:?} with {} neighbors, threshold {}",
                p, n, threshold
            );
        }
    }
}

// ---------------------------------------------------------------------
// TPR-tree vs brute force
// ---------------------------------------------------------------------

fn motion_strategy() -> impl Strategy<Value = MotionState> {
    (0.0f64..1000.0, 0.0f64..1000.0, -2.0f64..2.0, -2.0f64..2.0)
        .prop_map(|(x, y, vx, vy)| MotionState::new(Point::new(x, y), Point::new(vx, vy), 0))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]
    /// Range queries after inserts and deletes match linear scan.
    #[test]
    fn tprtree_matches_linear_scan(
        motions in prop::collection::vec(motion_strategy(), 1..250),
        remove_mod in 2usize..5,
        qt in 0u64..20,
        (qx, qy, qw, qh) in (0.0f64..900.0, 0.0f64..900.0, 10.0f64..300.0, 10.0f64..300.0)
    ) {
        let mut tree = TprTree::new(
            TprConfig {
                buffer_pages: 16,
                min_fill_ratio: 0.4,
                horizon: 20.0,
                integral_metrics: true,
            },
            0,
        );
        for (i, m) in motions.iter().enumerate() {
            tree.insert(ObjectId(i as u64), m, 0);
        }
        let mut live: Vec<(ObjectId, MotionState)> = Vec::new();
        for (i, m) in motions.iter().enumerate() {
            if i % remove_mod == 0 {
                prop_assert!(tree.remove(ObjectId(i as u64)));
            } else {
                live.push((ObjectId(i as u64), *m));
            }
        }
        let rect = Rect::new(qx, qy, qx + qw, qy + qh);
        let mut got: Vec<u64> = tree
            .range_at(&rect, qt as Timestamp)
            .into_iter()
            .map(|(id, _)| id.0)
            .collect();
        got.sort_unstable();
        let mut expect: Vec<u64> = live
            .iter()
            .filter(|(_, m)| rect.contains(m.position_at(qt as Timestamp)))
            .map(|(id, _)| id.0)
            .collect();
        expect.sort_unstable();
        prop_assert_eq!(got, expect);
        tree.validate();
    }
}

// ---------------------------------------------------------------------
// Chebyshev machinery
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]
    /// Interval bounds are sound for random indicator-sum surfaces.
    #[test]
    fn chebyshev_bounds_sound(
        boxes in prop::collection::vec(
            (0.0f64..80.0, 0.0f64..80.0, 1.0f64..20.0, 1.0f64..20.0, -2.0f64..2.0), 1..6),
        (rx, ry, rw, rh) in (0.0f64..80.0, 0.0f64..80.0, 1.0f64..20.0, 1.0f64..20.0),
        samples in prop::collection::vec((0.0f64..1.0, 0.0f64..1.0), 20)
    ) {
        let domain = Rect::new(0.0, 0.0, 100.0, 100.0);
        let mut f = ChebyshevApprox::zero(domain, 5);
        for (x, y, w, h, weight) in boxes {
            f.add_box(&Rect::new(x, y, x + w, y + h), weight);
        }
        let r = Rect::new(rx, ry, rx + rw, ry + rh);
        let (lo, hi) = f.bounds(&r);
        for (fx, fy) in samples {
            let p = Point::new(r.x_lo + fx * r.width(), r.y_lo + fy * r.height());
            let v = f.eval(p);
            prop_assert!(v >= lo - 1e-9 && v <= hi + 1e-9,
                "value {} outside [{}, {}] at {:?}", v, lo, hi, p);
        }
    }

    /// Coefficient linearity: delta(A) + delta(B) applied in either
    /// order gives the same surface.
    #[test]
    fn chebyshev_update_order_independent(
        (x1, y1) in (0.0f64..0.5, 0.0f64..0.5),
        (x2, y2) in (-0.5f64..0.0, -0.5f64..0.0),
        w1 in 0.1f64..3.0,
        w2 in 0.1f64..3.0
    ) {
        let a = delta_coefficients(4, x1 - 0.2, x1 + 0.2, y1 - 0.2, y1 + 0.2, w1);
        let b = delta_coefficients(4, x2 - 0.2, x2 + 0.2, y2 - 0.2, y2 + 0.2, w2);
        let mut ab = CoeffTriangle::zero(4);
        ab.add_assign(&a);
        ab.add_assign(&b);
        let mut ba = CoeffTriangle::zero(4);
        ba.add_assign(&b);
        ba.add_assign(&a);
        for (i, j, v) in ab.iter() {
            prop_assert!((v - ba.get(i, j)).abs() < 1e-12);
        }
    }
}

// ---------------------------------------------------------------------
// Motion model
// ---------------------------------------------------------------------

proptest! {
    /// Rebasing a motion never changes its trajectory.
    #[test]
    fn rebase_preserves_trajectory(
        m in motion_strategy(),
        t1 in 0u64..100,
        probe in 0u64..200
    ) {
        let r = m.rebased_to(t1);
        let a = m.position_at(probe);
        let b = r.position_at(probe);
        prop_assert!((a.x - b.x).abs() < 1e-6 && (a.y - b.y).abs() < 1e-6);
    }
}
