//! Property-based tests on the substrate crates: the buffer pool is
//! checked against a shadow model, node pages round-trip, and the
//! density histogram stays consistent with the object table under
//! arbitrary update streams.

use pdr::geometry::Point;
use pdr::histogram::DensityHistogram;
use pdr::mobject::{MotionState, ObjectId, ObjectTable, TimeHorizon};
use pdr::storage::{BufferPool, Disk, PAGE_SIZE};
use pdr::tprtree::{ChildEntry, LeafEntry, Node, Tpbr, INTERNAL_CAPACITY, LEAF_CAPACITY};
use proptest::prelude::*;
use std::collections::HashMap;

// ---------------------------------------------------------------------
// Buffer pool vs shadow model
// ---------------------------------------------------------------------

#[derive(Clone, Debug)]
enum PoolOp {
    /// Write `byte` at offset 0 of page `idx % live_pages`.
    Write { idx: usize, byte: u8 },
    /// Read page `idx % live_pages` and check its first byte.
    Read { idx: usize },
    /// Allocate a fresh page.
    Alloc,
    /// Flush everything to disk.
    Flush,
}

fn pool_op_strategy() -> impl Strategy<Value = PoolOp> {
    prop_oneof![
        (any::<usize>(), any::<u8>()).prop_map(|(idx, byte)| PoolOp::Write { idx, byte }),
        any::<usize>().prop_map(|idx| PoolOp::Read { idx }),
        Just(PoolOp::Alloc),
        Just(PoolOp::Flush),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]
    /// Whatever the access pattern and however small the pool, data
    /// read back always matches a trivial shadow model.
    #[test]
    fn buffer_pool_matches_shadow(
        capacity in 1usize..6,
        ops in prop::collection::vec(pool_op_strategy(), 1..120)
    ) {
        let mut pool = BufferPool::new(Disk::new(), capacity);
        let mut pages = vec![pool.allocate_page()];
        let mut shadow: HashMap<u32, u8> = HashMap::new();
        shadow.insert(pages[0].0, 0);
        for op in ops {
            match op {
                PoolOp::Write { idx, byte } => {
                    let page = pages[idx % pages.len()];
                    pool.write_page(page, |bytes| bytes[0] = byte);
                    shadow.insert(page.0, byte);
                }
                PoolOp::Read { idx } => {
                    let page = pages[idx % pages.len()];
                    let got = pool.read_page(page, |bytes| bytes[0]);
                    prop_assert_eq!(got, shadow[&page.0], "page {:?}", page);
                }
                PoolOp::Alloc => {
                    let page = pool.allocate_page();
                    shadow.insert(page.0, 0);
                    pages.push(page);
                }
                PoolOp::Flush => pool.flush_all(),
            }
        }
        // After a final flush, the raw disk agrees everywhere.
        pool.flush_all();
        for (&page, &byte) in &shadow {
            prop_assert_eq!(pool.disk().read(pdr::storage::PageId(page))[0], byte);
        }
        // Sanity of the counters.
        let s = pool.stats();
        prop_assert!(s.misses <= s.logical_reads);
        prop_assert!(s.writebacks <= s.evictions);
    }
}

// ---------------------------------------------------------------------
// Node page serialization
// ---------------------------------------------------------------------

fn leaf_entry_strategy() -> impl Strategy<Value = LeafEntry> {
    (any::<u64>(), -1e6f64..1e6, -1e6f64..1e6, -1e3f64..1e3, -1e3f64..1e3).prop_map(
        |(id, x, y, vx, vy)| LeafEntry {
            id: ObjectId(id),
            x,
            y,
            vx,
            vy,
        },
    )
}

fn child_entry_strategy() -> impl Strategy<Value = ChildEntry> {
    (
        any::<u32>(),
        -1e6f64..1e6,
        -1e6f64..1e6,
        0.0f64..1e3,
        0.0f64..1e3,
        -1e2f64..0.0,
        -1e2f64..0.0,
        0.0f64..1e2,
        0.0f64..1e2,
    )
        .prop_map(|(page, x, y, w, h, vxl, vyl, vxh, vyh)| ChildEntry {
            page: pdr::storage::PageId(page),
            tpbr: Tpbr {
                x_lo: x,
                y_lo: y,
                x_hi: x + w,
                y_hi: y + h,
                vx_lo: vxl,
                vy_lo: vyl,
                vx_hi: vxh,
                vy_hi: vyh,
            },
        })
}

proptest! {
    /// Any leaf within capacity round-trips bit-exactly through a page.
    #[test]
    fn leaf_page_round_trip(entries in prop::collection::vec(leaf_entry_strategy(), 0..=LEAF_CAPACITY)) {
        let node = Node::Leaf(entries);
        let mut page = [0u8; PAGE_SIZE];
        node.encode(&mut page);
        prop_assert_eq!(Node::decode(&page), node);
    }

    /// Any internal node within capacity round-trips bit-exactly.
    #[test]
    fn internal_page_round_trip(entries in prop::collection::vec(child_entry_strategy(), 0..=INTERNAL_CAPACITY)) {
        let node = Node::Internal(entries);
        let mut page = [0u8; PAGE_SIZE];
        node.encode(&mut page);
        prop_assert_eq!(Node::decode(&page), node);
    }
}

// ---------------------------------------------------------------------
// Density histogram under arbitrary update streams
// ---------------------------------------------------------------------

#[derive(Clone, Debug)]
enum StreamOp {
    Report { obj: u8, x: f64, y: f64, vx: f64, vy: f64 },
    Retire { obj: u8 },
    Advance { by: u8 },
}

fn stream_op_strategy() -> impl Strategy<Value = StreamOp> {
    prop_oneof![
        4 => (any::<u8>(), 0.0f64..100.0, 0.0f64..100.0, -2.0f64..2.0, -2.0f64..2.0)
            .prop_map(|(obj, x, y, vx, vy)| StreamOp::Report { obj: obj % 16, x, y, vx, vy }),
        1 => any::<u8>().prop_map(|obj| StreamOp::Retire { obj: obj % 16 }),
        1 => (1u8..3).prop_map(|by| StreamOp::Advance { by }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]
    /// After any legal mix of reports, retirements and time advances:
    /// counters stay non-negative, and the per-timestamp totals match
    /// the live object table (objects inside the region).
    #[test]
    fn histogram_consistent_with_table(ops in prop::collection::vec(stream_op_strategy(), 1..60)) {
        let horizon = TimeHorizon::new(3, 3);
        let mut h = DensityHistogram::new(100.0, 10, horizon, 0);
        let mut table = ObjectTable::new();
        let mut t_now = 0u64;
        for op in ops {
            match op {
                StreamOp::Report { obj, x, y, vx, vy } => {
                    let motion = MotionState::new(Point::new(x, y), Point::new(vx, vy), t_now);
                    for u in table.report(ObjectId(obj as u64), t_now, motion) {
                        h.apply(&u);
                    }
                }
                StreamOp::Retire { obj } => {
                    if let Some(u) = table.retire(ObjectId(obj as u64), t_now) {
                        h.apply(&u);
                    }
                }
                StreamOp::Advance { by } => {
                    t_now += by as u64;
                    h.advance_to(t_now);
                }
            }
        }
        h.validate_non_negative();
        // Check totals for every timestamp still in the window; only
        // motions reported within U of t are guaranteed correct, which
        // in this stream is all of them because ObjectTable holds the
        // current motion for each object.
        let bounds = h.grid().bounds();
        for t in t_now..=t_now + horizon.h() {
            let expected = table
                .objects()
                .filter(|o| {
                    // Only motions whose horizon still covers t
                    // contribute counters there.
                    t <= o.motion.t_ref + horizon.h() && bounds.contains(o.position_at(t))
                })
                .count() as i64;
            prop_assert_eq!(h.total_at(t), expected, "t = {}", t);
        }
    }
}
