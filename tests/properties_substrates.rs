//! Randomized tests on the substrate crates: the buffer pool is checked
//! against a shadow model, node pages round-trip, and the density
//! histogram stays consistent with the object table under arbitrary
//! update streams. Inputs come from the in-repo deterministic PRNG so
//! the suite builds offline and failures reproduce from fixed seeds.

use pdr::geometry::Point;
use pdr::histogram::DensityHistogram;
use pdr::mobject::{MotionState, ObjectId, ObjectTable, TimeHorizon};
use pdr::storage::{BufferPool, Disk, PageId, PAGE_SIZE};
use pdr::tprtree::{ChildEntry, LeafEntry, Node, Tpbr, INTERNAL_CAPACITY, LEAF_CAPACITY};
use pdr::workload::StdRng;
use std::collections::HashMap;

// ---------------------------------------------------------------------
// Buffer pool vs shadow model
// ---------------------------------------------------------------------

/// Whatever the access pattern and however small the pool, data read
/// back always matches a trivial shadow model.
#[test]
fn buffer_pool_matches_shadow() {
    let mut rng = StdRng::seed_from_u64(0xB001);
    for _ in 0..64 {
        let capacity = rng.random_range(1..6usize);
        let ops = rng.random_range(1..120usize);
        let pool = BufferPool::new(Disk::new(), capacity);
        let mut pages = vec![pool.allocate_page()];
        let mut shadow: HashMap<u32, u8> = HashMap::new();
        shadow.insert(pages[0].0, 0);
        for _ in 0..ops {
            match rng.random_range(0..4usize) {
                0 => {
                    let page = pages[rng.random_range(0..pages.len())];
                    let byte = rng.random_range(0..256u32) as u8;
                    pool.write_page(page, |bytes| bytes[0] = byte);
                    shadow.insert(page.0, byte);
                }
                1 => {
                    let page = pages[rng.random_range(0..pages.len())];
                    let got = pool.read_page(page, |bytes| bytes[0]);
                    assert_eq!(got, shadow[&page.0], "page {page:?}");
                }
                2 => {
                    let page = pool.allocate_page();
                    shadow.insert(page.0, 0);
                    pages.push(page);
                }
                _ => pool.flush_all(),
            }
        }
        // After a final flush, the raw disk agrees everywhere.
        pool.flush_all();
        for (&page, &byte) in &shadow {
            assert_eq!(pool.with_disk(|d| d.read(PageId(page))[0]), byte);
        }
        // Sanity of the counters.
        let s = pool.stats();
        assert!(s.misses <= s.logical_reads);
        assert!(s.writebacks <= s.evictions);
    }
}

// ---------------------------------------------------------------------
// Node page serialization
// ---------------------------------------------------------------------

fn rand_leaf_entry(rng: &mut StdRng) -> LeafEntry {
    LeafEntry {
        id: ObjectId(rng.random_range(0..u64::MAX)),
        x: rng.random_range(-1e6..1e6),
        y: rng.random_range(-1e6..1e6),
        vx: rng.random_range(-1e3..1e3),
        vy: rng.random_range(-1e3..1e3),
    }
}

fn rand_child_entry(rng: &mut StdRng) -> ChildEntry {
    let x = rng.random_range(-1e6..1e6);
    let y = rng.random_range(-1e6..1e6);
    let w = rng.random_range(0.0..1e3);
    let h = rng.random_range(0.0..1e3);
    ChildEntry {
        page: PageId(rng.random_range(0..u32::MAX)),
        tpbr: Tpbr {
            x_lo: x,
            y_lo: y,
            x_hi: x + w,
            y_hi: y + h,
            vx_lo: rng.random_range(-1e2..0.0),
            vy_lo: rng.random_range(-1e2..0.0),
            vx_hi: rng.random_range(0.0..1e2),
            vy_hi: rng.random_range(0.0..1e2),
        },
    }
}

/// Any leaf within capacity round-trips bit-exactly through a page.
#[test]
fn leaf_page_round_trip() {
    let mut rng = StdRng::seed_from_u64(0xB002);
    for _ in 0..256 {
        let n = rng.random_range(0..=LEAF_CAPACITY as u64) as usize;
        let entries: Vec<LeafEntry> = (0..n).map(|_| rand_leaf_entry(&mut rng)).collect();
        let node = Node::Leaf(entries);
        let mut page = [0u8; PAGE_SIZE];
        node.encode(&mut page);
        assert_eq!(Node::decode(&page), node);
    }
}

/// Any internal node within capacity round-trips bit-exactly.
#[test]
fn internal_page_round_trip() {
    let mut rng = StdRng::seed_from_u64(0xB003);
    for _ in 0..256 {
        let n = rng.random_range(0..=INTERNAL_CAPACITY as u64) as usize;
        let entries: Vec<ChildEntry> = (0..n).map(|_| rand_child_entry(&mut rng)).collect();
        let node = Node::Internal(entries);
        let mut page = [0u8; PAGE_SIZE];
        node.encode(&mut page);
        assert_eq!(Node::decode(&page), node);
    }
}

// ---------------------------------------------------------------------
// Density histogram under arbitrary update streams
// ---------------------------------------------------------------------

/// After any legal mix of reports, retirements and time advances:
/// counters stay non-negative, and the per-timestamp totals match the
/// live object table (objects inside the region).
#[test]
fn histogram_consistent_with_table() {
    let mut rng = StdRng::seed_from_u64(0xB004);
    for _ in 0..48 {
        let horizon = TimeHorizon::new(3, 3);
        let mut h = DensityHistogram::new(100.0, 10, horizon, 0);
        let mut table = ObjectTable::new();
        let mut t_now = 0u64;
        let ops = rng.random_range(1..60usize);
        for _ in 0..ops {
            // Reports dominate 4:1:1, mirroring the old weighted mix.
            match rng.random_range(0..6usize) {
                0..=3 => {
                    let obj = rng.random_range(0..16u64);
                    let motion = MotionState::new(
                        Point::new(rng.random_range(0.0..100.0), rng.random_range(0.0..100.0)),
                        Point::new(rng.random_range(-2.0..2.0), rng.random_range(-2.0..2.0)),
                        t_now,
                    );
                    for u in table.report(ObjectId(obj), t_now, motion) {
                        h.apply(&u);
                    }
                }
                4 => {
                    let obj = rng.random_range(0..16u64);
                    if let Some(u) = table.retire(ObjectId(obj), t_now) {
                        h.apply(&u);
                    }
                }
                _ => {
                    t_now += rng.random_range(1..3u64);
                    h.advance_to(t_now);
                }
            }
        }
        h.validate_non_negative();
        // Check totals for every timestamp still in the window; only
        // motions reported within U of t are guaranteed correct, which
        // in this stream is all of them because ObjectTable holds the
        // current motion for each object.
        let bounds = h.grid().bounds();
        for t in t_now..=t_now + horizon.h() {
            let expected = table
                .objects()
                .filter(|o| {
                    // Only motions whose horizon still covers t
                    // contribute counters there.
                    t <= o.motion.t_ref + horizon.h() && bounds.contains(o.position_at(t))
                })
                .count() as i64;
            assert_eq!(h.total_at(t), expected, "t = {t}");
        }
    }
}
