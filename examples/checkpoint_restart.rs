//! Server restart without losing the horizon: checkpoint and restore.
//!
//! A dense-region monitoring server keeps per-timestamp summaries for
//! the whole horizon `H = U + W`. If it crashes and restarts cold, it
//! cannot answer predictive queries correctly until every object has
//! re-reported — up to `U` timestamps of blindness. Checkpointing the
//! summaries (histogram counters, Chebyshev coefficients) removes that
//! gap: the index rebuilds from the motion table in one bulk load, the
//! summaries come back byte-for-byte.
//!
//! ```text
//! cargo run --release --example checkpoint_restart
//! ```

use pdr::histogram::DensityHistogram;
use pdr::mobject::{TimeHorizon, Update};
use pdr::tprtree::{TprConfig, TprTree};
use pdr::workload::{NetworkConfig, RoadNetwork, TrafficSimulator};
use pdr::{FrConfig, FrEngine, PaConfig, PaEngine, PdrQuery};

fn main() {
    let extent = 500.0;
    let horizon = TimeHorizon::new(10, 10);
    let network = RoadNetwork::generate(&NetworkConfig::metro(extent), 11);
    let mut sim = TrafficSimulator::new(network, 5000, 3, horizon.max_update_time(), 0);

    // --- The server runs for a while -------------------------------
    let cfg = FrConfig {
        extent,
        m: 50,
        horizon,
        buffer_pages: 128,
        threads: 1,
    };
    let mut fr = FrEngine::new(cfg, 0);
    let mut pa = PaEngine::new(
        PaConfig {
            extent,
            g: 10,
            degree: 5,
            l: 20.0,
            horizon,
            m_d: 512,
        },
        0,
    );
    let population = sim.population();
    fr.bulk_load(&population, 0);
    for (id, m) in &population {
        pa.apply(&Update::insert(*id, 0, *m));
    }
    for _ in 0..5 {
        let t = sim.t_now() + 1;
        fr.advance_to(t);
        pa.advance_to(t);
        for u in sim.tick() {
            fr.apply(&u);
            pa.apply(&u);
        }
    }

    let q = PdrQuery::new(12.0 / 400.0, 20.0, sim.t_now() + 8);
    let before_fr = fr.query(&q).regions;
    let before_pa = pa.query(q.rho, q.q_t).regions;

    // --- Checkpoint ---------------------------------------------------
    let hist_bytes = fr.histogram().serialize();
    let pa_bytes = pa.serialize();
    println!(
        "checkpoint: histogram {} KiB, PA coefficients {} KiB",
        hist_bytes.len() / 1024,
        pa_bytes.len() / 1024
    );

    // --- Crash. Restart. ----------------------------------------------
    drop(fr);
    drop(pa);

    let restored_hist = DensityHistogram::deserialize(&hist_bytes).expect("histogram checkpoint");
    let fresh_tree = TprTree::new(
        TprConfig {
            buffer_pages: cfg.buffer_pages,
            min_fill_ratio: 0.4,
            horizon: horizon.h() as f64,
            integral_metrics: true,
        },
        0,
    );
    // The motion table survives in the upstream system of record; the
    // index rebuilds from it in one bulk load.
    let current_motions = sim.population();
    let fr2 = FrEngine::restore(cfg, restored_hist, fresh_tree, &current_motions);
    let pa2 = PaEngine::deserialize(&pa_bytes).expect("PA checkpoint");

    let after_fr = fr2.query(&q).regions;
    let after_pa = pa2.query(q.rho, q.q_t).regions;

    println!(
        "FR answer after restart: {} rectangles, symmetric difference {:.3e}",
        after_fr.len(),
        before_fr.symmetric_difference_area(&after_fr)
    );
    println!(
        "PA answer after restart: {} rectangles, symmetric difference {:.3e}",
        after_pa.len(),
        before_pa.symmetric_difference_area(&after_pa)
    );
    assert!(before_fr.symmetric_difference_area(&after_fr) < 1e-9);
    assert!(before_pa.symmetric_difference_area(&after_pa) < 1e-9);
    println!("restart preserved both engines' answers exactly");
}
