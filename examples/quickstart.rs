//! Quickstart: load moving objects, ask for pointwise-dense regions.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use pdr::mobject::TimeHorizon;
use pdr::workload::gaussian_clusters;
use pdr::{FrConfig, FrEngine, PdrQuery};

fn main() {
    // 10 000 objects on a 1000 x 1000-mile plane, drawn from five
    // Gaussian clusters over a uniform background, with velocities up
    // to 1.5 miles per timestamp.
    let population = gaussian_clusters(10_000, 1000.0, 5, 25.0, 0.25, 1.5, 7, 0);

    // The exact filtering-refinement engine: a 100 x 100 density
    // histogram for filtering, a TPR-tree for refinement.
    let mut engine = FrEngine::new(
        FrConfig {
            extent: 1000.0,
            m: 100,
            horizon: TimeHorizon::new(20, 20),
            buffer_pages: 256,
            threads: 1,
        },
        0,
    );
    engine.bulk_load(&population, 0);

    // "Where will at least 15 objects share a 30 x 30-mile
    // neighborhood, 10 timestamps from now?"
    let l = 30.0;
    let rho = 15.0 / (l * l);
    let query = PdrQuery::new(rho, l, 10);
    let answer = engine.query(&query);

    println!(
        "filter: {} accepted, {} rejected, {} candidate cells",
        answer.accepts, answer.rejects, answer.candidates
    );
    println!(
        "refinement: {} objects retrieved, {} buffer misses",
        answer.objects_retrieved, answer.io.misses
    );
    println!(
        "answer: {} rectangles covering {:.0} square miles",
        answer.regions.len(),
        answer.regions.area()
    );
    for (i, r) in answer.regions.rects().iter().take(10).enumerate() {
        println!(
            "  region {i}: [{:.1}, {:.1}] x [{:.1}, {:.1}]",
            r.x_lo, r.x_hi, r.y_lo, r.y_hi
        );
    }
    if answer.regions.len() > 10 {
        println!("  ... and {} more", answer.regions.len() - 10);
    }
}
