//! Traffic hot-spot monitoring — the paper's motivating application.
//!
//! A traffic authority watches a metro road network and wants to warn
//! commuters about congestion *before* it happens: every few minutes it
//! asks "which regions will be dense W minutes from now?" using the
//! fast approximate (PA) engine, falling back to the exact (FR) engine
//! for the final alert decision.
//!
//! ```text
//! cargo run --release --example traffic_hotspots
//! ```

use pdr::mobject::TimeHorizon;
use pdr::workload::{NetworkConfig, RoadNetwork, TrafficSimulator};
use pdr::{FrConfig, FrEngine, PaConfig, PaEngine, PdrQuery};

fn main() {
    let horizon = TimeHorizon::new(15, 15);
    let extent = 1000.0;
    let n = 20_000;

    // The metro network and its vehicles.
    let network = RoadNetwork::generate(&NetworkConfig::metro(extent), 2026);
    let mut sim = TrafficSimulator::new(network, n, 99, horizon.max_update_time(), 0);

    // Both engines, fed from the same update stream.
    let mut fr = FrEngine::new(
        FrConfig {
            extent,
            m: 100,
            horizon,
            buffer_pages: 256,
            threads: 1,
        },
        0,
    );
    let l = 30.0;
    let mut pa = PaEngine::new(
        PaConfig {
            extent,
            g: 20,
            degree: 5,
            l,
            horizon,
            m_d: 512,
        },
        0,
    );
    let population = sim.population();
    fr.bulk_load(&population, 0);
    for (id, m) in &population {
        pa.apply(&pdr::mobject::Update::insert(*id, 0, *m));
    }

    // Congestion = 18+ vehicles in a 30x30-mile neighborhood.
    let rho = 18.0 / (l * l);

    println!("tick | screened(PA)        | confirmed(FR)       | PA err vs FR");
    for round in 0..5u64 {
        // Let traffic flow for 3 minutes.
        for _ in 0..3 {
            let t = sim.t_now() + 1;
            fr.advance_to(t);
            pa.advance_to(t);
            for u in sim.tick() {
                fr.apply(&u);
                pa.apply(&u);
            }
        }
        let t_now = sim.t_now();
        let q_t = t_now + horizon.prediction_window(); // look W ahead

        // Cheap screening pass with PA.
        let screened = pa.query(rho, q_t);
        // Exact confirmation with FR.
        let confirmed = fr.query(&PdrQuery::new(rho, l, q_t));
        let acc = pdr::accuracy(&confirmed.regions, &screened.regions);

        println!(
            "{:4} | {:3} regions {:7.0} mi2 | {:3} regions {:7.0} mi2 | fp {:.2} fn {:.2}",
            round,
            screened.regions.len(),
            screened.regions.area(),
            confirmed.regions.len(),
            confirmed.regions.area(),
            acc.r_fp,
            acc.r_fn,
        );
        for r in confirmed.regions.rects().iter().take(3) {
            println!(
                "       alert: congestion predicted at t={} in [{:.0}, {:.0}] x [{:.0}, {:.0}]",
                q_t, r.x_lo, r.x_hi, r.y_lo, r.y_hi
            );
        }
    }
}
