//! Density contour maps from the approximate engine.
//!
//! Beyond the binary dense/sparse PDR answer, the Chebyshev surface
//! gives a full density field; Section 6 of the paper points out that
//! contour lines of this field "provide a clear overview of the
//! distribution of moving objects". This example renders a coarse
//! ASCII contour map of a clustered population and prints the
//! extracted iso-lines.
//!
//! ```text
//! cargo run --release --example density_contours
//! ```

use pdr::geometry::Point;
use pdr::mobject::{TimeHorizon, Update};
use pdr::workload::gaussian_clusters;
use pdr::{PaConfig, PaEngine};

fn main() {
    let extent = 400.0;
    let n = 12_000;
    let population = gaussian_clusters(n, extent, 3, 20.0, 0.15, 1.0, 77, 0);

    let mut pa = PaEngine::new(
        PaConfig {
            extent,
            g: 8,
            degree: 6,
            l: 20.0,
            horizon: TimeHorizon::new(5, 5),
            m_d: 512,
        },
        0,
    );
    for (id, m) in &population {
        pa.apply(&Update::insert(*id, 0, *m));
    }

    let q_t = 3;
    // Average density over the plane; contour at multiples of it.
    let avg = n as f64 / (extent * extent);
    let levels = [2.0 * avg, 6.0 * avg, 12.0 * avg];

    // ASCII heat map: one character per 8x8-mile cell.
    println!("density map at t={q_t} (space < 2x avg, . < 6x, o < 12x, # above):");
    let cells = 50usize;
    let step = extent / cells as f64;
    for row in (0..cells).rev() {
        let mut line = String::with_capacity(cells);
        for col in 0..cells {
            let p = Point::new((col as f64 + 0.5) * step, (row as f64 + 0.5) * step);
            let d = pa.density_at(p, q_t);
            line.push(match d {
                d if d >= levels[2] => '#',
                d if d >= levels[1] => 'o',
                d if d >= levels[0] => '.',
                _ => ' ',
            });
        }
        println!("  |{line}|");
    }

    for (i, &level) in levels.iter().enumerate() {
        let contours = pa.contours(level, q_t, 160);
        let closed = contours.iter().filter(|c| c.closed).count();
        let total_len: f64 = contours.iter().map(|c| c.length()).sum();
        println!(
            "level {} ({:.1}x avg): {} contour lines ({} closed), total length {:.0} miles",
            i + 1,
            level / avg,
            contours.len(),
            closed,
            total_len
        );
    }
}
