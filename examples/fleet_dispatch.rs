//! Resource scheduling from dense regions — the paper's second
//! motivating application.
//!
//! A ride-hailing dispatcher stages idle drivers where demand will
//! concentrate. Demand is a cloud of moving customers; the dispatcher
//! runs a predictive PDR query, ranks the resulting dense regions by
//! expected demand mass (area × threshold is a lower bound), and
//! assigns one staging point per region, preferring large regions.
//!
//! ```text
//! cargo run --release --example fleet_dispatch
//! ```

use pdr::geometry::{Point, Rect};
use pdr::mobject::TimeHorizon;
use pdr::workload::gaussian_clusters;
use pdr::{FrConfig, FrEngine, PdrQuery};

fn main() {
    let extent = 500.0;
    // 8 000 customers concentrated around a few venues.
    let customers = gaussian_clusters(8_000, extent, 4, 18.0, 0.2, 1.0, 31, 0);

    let mut engine = FrEngine::new(
        FrConfig {
            extent,
            m: 50, // 10-mile cells
            horizon: TimeHorizon::new(10, 10),
            buffer_pages: 256,
            threads: 1,
        },
        0,
    );
    engine.bulk_load(&customers, 0);

    // Surge = 12+ customers in a 20 x 20-mile neighborhood, forecast 8
    // timestamps out.
    let l = 20.0;
    let query = PdrQuery::new(12.0 / (l * l), l, 8);
    let answer = engine.query(&query);

    // Group answer rectangles into connected staging zones: two
    // rectangles belong together when they touch.
    let zones = connected_zones(answer.regions.rects());
    let mut ranked: Vec<(f64, Point)> = zones
        .iter()
        .map(|zone| {
            let area: f64 = zone.iter().map(Rect::area).sum();
            let cx = zone.iter().map(|r| r.center().x * r.area()).sum::<f64>() / area;
            let cy = zone.iter().map(|r| r.center().y * r.area()).sum::<f64>() / area;
            (area, Point::new(cx, cy))
        })
        .collect();
    ranked.sort_by(|a, b| b.0.total_cmp(&a.0));

    println!(
        "{} dense rectangles form {} surge zones (total {:.0} mi2)",
        answer.regions.len(),
        zones.len(),
        answer.regions.area()
    );
    let fleet = 8.min(ranked.len());
    println!("dispatching {fleet} drivers to the largest zones:");
    for (i, (area, staging)) in ranked.iter().take(fleet).enumerate() {
        let min_customers = (query.rho * area).ceil();
        println!(
            "  driver {:2} -> stage at ({:6.1}, {:6.1})  zone {:7.0} mi2, >= {:4} customers",
            i + 1,
            staging.x,
            staging.y,
            area,
            min_customers
        );
    }
}

/// Unions touching rectangles into connected groups (simple union-find
/// over the answer set — answer sets are small after coalescing).
#[allow(clippy::needless_range_loop)] // pairwise union-find over indices
fn connected_zones(rects: &[Rect]) -> Vec<Vec<Rect>> {
    let n = rects.len();
    let mut parent: Vec<usize> = (0..n).collect();
    fn find(parent: &mut Vec<usize>, i: usize) -> usize {
        if parent[i] != i {
            let root = find(parent, parent[i]);
            parent[i] = root;
        }
        parent[i]
    }
    for i in 0..n {
        for j in (i + 1)..n {
            if rects[i].intersects(&rects[j]) {
                let (a, b) = (find(&mut parent, i), find(&mut parent, j));
                if a != b {
                    parent[a] = b;
                }
            }
        }
    }
    let mut zones: std::collections::HashMap<usize, Vec<Rect>> = std::collections::HashMap::new();
    for i in 0..n {
        let root = find(&mut parent, i);
        zones.entry(root).or_default().push(rects[i]);
    }
    zones.into_values().collect()
}
