//! Side-by-side comparison of every dense-region method in the paper
//! on one snapshot: exact FR, approximate PA, optimistic/pessimistic
//! DH, and the two prior-work baselines (dense-cell and EDQ).
//!
//! ```text
//! cargo run --release --example method_comparison
//! ```

use pdr::baselines::{dense_cell_query, edq_region, effective_density_query};
use pdr::geometry::GridSpec;
use pdr::mobject::{TimeHorizon, Update};
use pdr::workload::gaussian_clusters;
use pdr::{
    accuracy, classify_cells, dh_optimistic, dh_pessimistic, FrConfig, FrEngine, PaConfig,
    PaEngine, PdrQuery,
};
use std::time::Instant;

fn main() {
    let extent = 500.0;
    let n = 15_000;
    let population = gaussian_clusters(n, extent, 5, 15.0, 0.2, 1.0, 4, 0);
    let horizon = TimeHorizon::new(10, 10);

    let mut fr = FrEngine::new(
        FrConfig {
            extent,
            m: 50,
            horizon,
            buffer_pages: 128,
            threads: 1,
        },
        0,
    );
    fr.bulk_load(&population, 0);

    let l = 20.0;
    let mut pa = PaEngine::new(
        PaConfig {
            extent,
            g: 10,
            degree: 5,
            l,
            horizon,
            m_d: 512,
        },
        0,
    );
    for (id, m) in &population {
        pa.apply(&Update::insert(*id, 0, *m));
    }

    let q_t = 5;
    let rho = 15.0 / (l * l);
    let q = PdrQuery::new(rho, l, q_t);
    let positions: Vec<_> = population.iter().map(|(_, m)| m.position_at(q_t)).collect();

    // Ground truth from the exact engine.
    let t0 = Instant::now();
    let truth = fr.query(&q);
    let fr_time = t0.elapsed();

    let t0 = Instant::now();
    let pa_ans = pa.query(rho, q_t);
    let pa_time = t0.elapsed();

    let cls = classify_cells(
        fr.histogram().grid(),
        &fr.histogram().prefix_sums_at(q_t),
        &q,
    );
    let opt = dh_optimistic(&cls);
    let pes = dh_pessimistic(&cls);

    // Prior work: dense cells (cell edge = l) and EDQ squares.
    let cell_grid = GridSpec::unit_origin(extent, (extent / l) as u32);
    let cells = dense_cell_query(&positions, cell_grid, rho);
    let bounds = cell_grid.bounds();
    let edq = edq_region(&effective_density_query(&positions, &bounds, &q), l);

    println!(
        "snapshot: {n} objects, l = {l}, threshold = {} objects per neighborhood, q_t = {q_t}",
        q.count_threshold()
    );
    println!(
        "\n{:<16} {:>8} {:>12} {:>8} {:>8}  note",
        "method", "regions", "area(mi2)", "r_fp", "r_fn"
    );
    let row = |name: &str, rs: &pdr::geometry::RegionSet, note: &str| {
        let a = accuracy(&truth.regions, rs);
        println!(
            "{:<16} {:>8} {:>12.0} {:>8.3} {:>8.3}  {note}",
            name,
            rs.len(),
            rs.area(),
            a.r_fp,
            a.r_fn
        );
    };
    row(
        "FR (exact)",
        &truth.regions,
        &format!(
            "{:.1} ms + {} I/Os",
            fr_time.as_secs_f64() * 1e3,
            truth.io.misses
        ),
    );
    row(
        "PA",
        &pa_ans.regions,
        &format!("{:.1} ms, no I/O", pa_time.as_secs_f64() * 1e3),
    );
    row("optimistic DH", &opt, "never misses dense area");
    row("pessimistic DH", &pes, "never over-reports");
    row("dense cells", &cells, "answer loss at cell borders");
    row("EDQ squares", &edq, "fixed-shape, non-overlapping");
}
