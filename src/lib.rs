//! # pdr — Pointwise-Dense Region Queries in Spatio-temporal Databases
//!
//! A Rust reproduction of Ni & Ravishankar, *"Pointwise-Dense Region
//! Queries in Spatio-temporal Databases"* (ICDE 2007).
//!
//! A point is **ρ-dense** at time `t` if its `l`-square neighborhood
//! contains at least `ρ·l²` moving objects; a PDR query returns *all*
//! ρ-dense points as a union of rectangles — complete, unambiguous,
//! arbitrary in shape and size, with a per-point local-density
//! guarantee. Two engines answer it:
//!
//! * [`FrEngine`] — exact: density-histogram filtering plus TPR-tree
//!   range queries and plane-sweep refinement;
//! * [`PaEngine`] — approximate: per-timestamp Chebyshev polynomial
//!   density surfaces queried by branch-and-bound; orders of magnitude
//!   faster at a tolerable accuracy loss.
//!
//! ## Quickstart
//!
//! ```
//! use pdr::{FrConfig, FrEngine, PdrQuery};
//! use pdr::workload::uniform_population;
//! use pdr::mobject::TimeHorizon;
//!
//! // 2 000 objects on a 1000-mile plane.
//! let pop = uniform_population(2000, 1000.0, 1.0, 42, 0);
//! let mut fr = FrEngine::new(
//!     FrConfig {
//!         extent: 1000.0,
//!         m: 100,
//!         horizon: TimeHorizon::new(10, 10),
//!         buffer_pages: 256,
//!         threads: 0, // refinement workers: one per core
//!     },
//!     0,
//! );
//! fr.bulk_load(&pop, 0);
//!
//! // All regions with >= 5 objects per 30x30-mile neighborhood, 5
//! // timestamps from now.
//! let q = PdrQuery::new(5.0 / (30.0 * 30.0), 30.0, 5);
//! let answer = fr.query(&q);
//! println!("{} dense rectangles", answer.regions.len());
//! ```
//!
//! The full per-crate documentation lives in the re-exported modules
//! below; DESIGN.md maps every subsystem and every figure of the paper
//! to the code that reproduces it.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use pdr_core::{
    accuracy, classify_cells, dh_optimistic, dh_pessimistic, exact_dense_regions, point_density,
    refine_region, refine_region_set, Accuracy, CellClass, Classification, DenseThreshold,
    ExactOracle, FrAnswer, FrCacheCounters, FrConfig, FrEngine, PaAnswer, PaConfig, PaEngine,
    PdrQuery, RangeIndex, INTERVAL_COALESCE_EVERY,
};

/// Prior-work baselines (dense-cell and effective-density queries).
pub mod baselines {
    pub use pdr_core::baselines::*;
}

/// Planar geometry kernel: rectangles, `l`-squares, region measure.
pub mod geometry {
    pub use pdr_geometry::*;
}

/// Moving-object model, update protocol, time horizon.
pub mod mobject {
    pub use pdr_mobject::*;
}

/// Simulated disk pages, LRU buffer pool, I/O cost model.
pub mod storage {
    pub use pdr_storage::*;
}

/// Chebyshev polynomial machinery behind the approximate method.
pub mod chebyshev {
    pub use pdr_chebyshev::*;
}

/// Per-timestamp density histograms and prefix sums.
pub mod histogram {
    pub use pdr_histogram::*;
}

/// The TPR-tree index over moving objects.
pub mod tprtree {
    pub use pdr_tprtree::*;
}

/// The velocity-bounded grid index — the alternative refinement index.
pub mod gridindex {
    pub use pdr_gridindex::*;
}

/// Workload generation: synthetic road networks, traffic simulation,
/// experiment configuration.
pub mod workload {
    pub use pdr_workload::*;
}
