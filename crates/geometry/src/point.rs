//! Points in the XY-plane.

use std::fmt;
use std::ops::{Add, Mul, Sub};

/// A location (or velocity vector) in the XY-plane.
///
/// The same type doubles as a 2-D vector: the moving-object model stores
/// velocities as `Point`s and advances positions with `p + v * dt`.
#[derive(Clone, Copy, PartialEq, Default)]
pub struct Point {
    /// X coordinate (miles in the paper's setup).
    pub x: f64,
    /// Y coordinate (miles in the paper's setup).
    pub y: f64,
}

impl Point {
    /// Creates a point from its coordinates.
    #[inline]
    pub const fn new(x: f64, y: f64) -> Self {
        Point { x, y }
    }

    /// The origin `(0, 0)`.
    pub const ORIGIN: Point = Point { x: 0.0, y: 0.0 };

    /// Euclidean distance to `other`.
    #[inline]
    pub fn distance(self, other: Point) -> f64 {
        self.distance_sq(other).sqrt()
    }

    /// Squared Euclidean distance to `other` (cheaper than [`distance`]
    /// when only comparisons are needed).
    ///
    /// [`distance`]: Point::distance
    #[inline]
    pub fn distance_sq(self, other: Point) -> f64 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        dx * dx + dy * dy
    }

    /// Chebyshev (L∞) distance to `other`; the natural metric for square
    /// neighborhoods.
    #[inline]
    pub fn linf_distance(self, other: Point) -> f64 {
        (self.x - other.x).abs().max((self.y - other.y).abs())
    }

    /// Euclidean norm when the point is interpreted as a vector.
    #[inline]
    pub fn norm(self) -> f64 {
        (self.x * self.x + self.y * self.y).sqrt()
    }

    /// Returns the vector scaled to unit length, or `None` for the zero
    /// vector.
    pub fn normalized(self) -> Option<Point> {
        let n = self.norm();
        if n == 0.0 {
            None
        } else {
            Some(Point::new(self.x / n, self.y / n))
        }
    }

    /// Componentwise finiteness check; useful for validating external
    /// updates before they enter an index.
    #[inline]
    pub fn is_finite(self) -> bool {
        self.x.is_finite() && self.y.is_finite()
    }
}

impl Add for Point {
    type Output = Point;
    #[inline]
    fn add(self, rhs: Point) -> Point {
        Point::new(self.x + rhs.x, self.y + rhs.y)
    }
}

impl Sub for Point {
    type Output = Point;
    #[inline]
    fn sub(self, rhs: Point) -> Point {
        Point::new(self.x - rhs.x, self.y - rhs.y)
    }
}

impl Mul<f64> for Point {
    type Output = Point;
    #[inline]
    fn mul(self, rhs: f64) -> Point {
        Point::new(self.x * rhs, self.y * rhs)
    }
}

impl fmt::Debug for Point {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {})", self.x, self.y)
    }
}

impl From<(f64, f64)> for Point {
    #[inline]
    fn from((x, y): (f64, f64)) -> Self {
        Point::new(x, y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vector_arithmetic() {
        let p = Point::new(1.0, 2.0);
        let v = Point::new(0.5, -1.0);
        assert_eq!(p + v * 2.0, Point::new(2.0, 0.0));
        assert_eq!(p - v, Point::new(0.5, 3.0));
    }

    #[test]
    fn distances() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(3.0, 4.0);
        assert_eq!(a.distance(b), 5.0);
        assert_eq!(a.distance_sq(b), 25.0);
        assert_eq!(a.linf_distance(b), 4.0);
    }

    #[test]
    fn normalization() {
        let v = Point::new(3.0, 4.0);
        let u = v.normalized().unwrap();
        assert!((u.norm() - 1.0).abs() < 1e-12);
        assert!(Point::ORIGIN.normalized().is_none());
    }

    #[test]
    fn finiteness() {
        assert!(Point::new(1.0, 2.0).is_finite());
        assert!(!Point::new(f64::NAN, 0.0).is_finite());
        assert!(!Point::new(0.0, f64::INFINITY).is_finite());
    }
}
