//! Measurable unions of rectangles.
//!
//! PDR query answers are unions of axis-aligned rectangles, and the
//! paper's accuracy metrics are ratios of areas of such unions and their
//! set differences:
//!
//! ```text
//! r_fp = area(D' \ D) / area(D)      (may exceed 1)
//! r_fn = area(D \ D') / area(D)      (never exceeds 1)
//! ```
//!
//! where `D` is the true dense region and `D'` the region a method
//! reports. [`RegionSet`] supports exactly these measures via a vertical
//! slab sweep: the union of distinct X coordinates of both operand sets
//! cuts the plane into slabs inside which membership along Y is constant,
//! so each slab reduces to 1-D [`IntervalSet`] arithmetic.

use crate::{Interval, IntervalSet, Point, Rect, EPS};
use std::fmt;

/// A union of axis-aligned rectangles, treated as a point set with
/// half-open `[lo, hi)` semantics (so abutting rectangles do not overlap).
///
/// The representation is a plain list of rectangles — possibly
/// overlapping, possibly abutting. All measure operations are computed on
/// the *union*, so duplicates and overlaps are harmless for correctness;
/// [`coalesce`](RegionSet::coalesce) can be used to compact long strips
/// produced by the plane-sweep refinement.
#[derive(Clone, Default, PartialEq)]
pub struct RegionSet {
    rects: Vec<Rect>,
}

impl RegionSet {
    /// The empty region.
    pub fn new() -> Self {
        RegionSet { rects: Vec::new() }
    }

    /// Builds a region from rectangles, dropping degenerate ones.
    pub fn from_rects<I: IntoIterator<Item = Rect>>(iter: I) -> Self {
        RegionSet {
            rects: iter.into_iter().filter(|r| !r.is_degenerate()).collect(),
        }
    }

    /// Adds one rectangle (ignored when degenerate).
    pub fn push(&mut self, r: Rect) {
        if !r.is_degenerate() {
            self.rects.push(r);
        }
    }

    /// Appends all rectangles of `other`.
    pub fn extend_from(&mut self, other: &RegionSet) {
        self.rects.extend_from_slice(&other.rects);
    }

    /// The underlying rectangles (overlaps permitted).
    pub fn rects(&self) -> &[Rect] {
        &self.rects
    }

    /// Number of stored rectangles (not a measure of the union).
    pub fn len(&self) -> usize {
        self.rects.len()
    }

    /// `true` when no rectangles are stored.
    pub fn is_empty(&self) -> bool {
        self.rects.is_empty()
    }

    /// Membership test (half-open `[lo, hi)` on each rectangle).
    pub fn contains(&self, p: Point) -> bool {
        self.rects.iter().any(|r| r.contains_half_open(p))
    }

    /// Bounding rectangle of the whole region, or `None` when empty.
    pub fn bounding_rect(&self) -> Option<Rect> {
        let mut it = self.rects.iter();
        let first = *it.next()?;
        Some(it.fold(first, |acc, r| acc.union(r)))
    }

    /// Area of the union of all stored rectangles.
    pub fn area(&self) -> f64 {
        slab_sweep(self, None, Mode::SelfArea)
    }

    /// Area of `self ∩ other` (as point sets).
    pub fn intersection_area(&self, other: &RegionSet) -> f64 {
        slab_sweep(self, Some(other), Mode::Intersection)
    }

    /// Area of `self \ other` (as point sets).
    pub fn difference_area(&self, other: &RegionSet) -> f64 {
        slab_sweep(self, Some(other), Mode::Difference)
    }

    /// Area of `self ∪ other`.
    pub fn union_area(&self, other: &RegionSet) -> f64 {
        self.area() + other.difference_area(self)
    }

    /// Symmetric-difference area, a convenient scalar distance between two
    /// reported answer regions.
    pub fn symmetric_difference_area(&self, other: &RegionSet) -> f64 {
        self.difference_area(other) + other.difference_area(self)
    }

    /// Merges vertically-abutting rectangles that share the same X extent,
    /// then horizontally-abutting ones sharing the same Y extent. The
    /// plane-sweep refinement emits one rectangle per (x-strip, y-segment)
    /// pair; coalescing typically shrinks its output by an order of
    /// magnitude without changing the point set.
    pub fn coalesce(&mut self) {
        merge_axis(&mut self.rects, /*vertical=*/ true);
        merge_axis(&mut self.rects, /*vertical=*/ false);
    }
}

impl fmt::Debug for RegionSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_list().entries(self.rects.iter()).finish()
    }
}

impl FromIterator<Rect> for RegionSet {
    fn from_iter<T: IntoIterator<Item = Rect>>(iter: T) -> Self {
        RegionSet::from_rects(iter)
    }
}

enum Mode {
    SelfArea,
    Intersection,
    Difference,
}

/// Vertical slab sweep over the union of X-event coordinates of both
/// operands. Within a slab, each operand's footprint along Y is a fixed
/// union of intervals, so the slab's contribution is
/// `slab_width × measure(interval-set expression)`.
fn slab_sweep(a: &RegionSet, b: Option<&RegionSet>, mode: Mode) -> f64 {
    let mut xs: Vec<f64> = Vec::with_capacity(2 * (a.len() + b.map_or(0, RegionSet::len)));
    for r in &a.rects {
        xs.push(r.x_lo);
        xs.push(r.x_hi);
    }
    if let Some(b) = b {
        for r in &b.rects {
            xs.push(r.x_lo);
            xs.push(r.x_hi);
        }
    }
    if xs.is_empty() {
        return 0.0;
    }
    xs.sort_by(f64::total_cmp);
    xs.dedup_by(|x, y| (*x - *y).abs() <= EPS);

    let mut total = 0.0;
    for w in xs.windows(2) {
        let (x0, x1) = (w[0], w[1]);
        let width = x1 - x0;
        if width <= 0.0 {
            continue;
        }
        let mid = 0.5 * (x0 + x1);
        let ya = slab_intervals(a, mid);
        let contribution = match mode {
            Mode::SelfArea => ya.measure(),
            Mode::Intersection => {
                let yb = slab_intervals(b.expect("binary mode needs rhs"), mid);
                ya.intersection(&yb).measure()
            }
            Mode::Difference => {
                let yb = slab_intervals(b.expect("binary mode needs rhs"), mid);
                ya.difference_measure(&yb)
            }
        };
        total += width * contribution;
    }
    total
}

/// Y-intervals of all rectangles of `set` whose X-extent covers `x`.
fn slab_intervals(set: &RegionSet, x: f64) -> IntervalSet {
    IntervalSet::from_intervals(
        set.rects
            .iter()
            .filter(|r| r.x_lo <= x && x < r.x_hi)
            .map(|r| Interval::new(r.y_lo, r.y_hi)),
    )
}

/// One pass of rectangle merging. With `vertical = true`, merges pairs
/// that share identical `[x_lo, x_hi]` and abut along Y; otherwise the
/// transposed condition.
fn merge_axis(rects: &mut Vec<Rect>, vertical: bool) {
    if rects.len() < 2 {
        return;
    }
    if vertical {
        rects.sort_by(|a, b| {
            a.x_lo
                .total_cmp(&b.x_lo)
                .then(a.x_hi.total_cmp(&b.x_hi))
                .then(a.y_lo.total_cmp(&b.y_lo))
        });
    } else {
        rects.sort_by(|a, b| {
            a.y_lo
                .total_cmp(&b.y_lo)
                .then(a.y_hi.total_cmp(&b.y_hi))
                .then(a.x_lo.total_cmp(&b.x_lo))
        });
    }
    let mut out: Vec<Rect> = Vec::with_capacity(rects.len());
    for &r in rects.iter() {
        match out.last_mut() {
            Some(last)
                if vertical
                    && (last.x_lo - r.x_lo).abs() <= EPS
                    && (last.x_hi - r.x_hi).abs() <= EPS
                    && r.y_lo <= last.y_hi + EPS =>
            {
                last.y_hi = last.y_hi.max(r.y_hi);
            }
            Some(last)
                if !vertical
                    && (last.y_lo - r.y_lo).abs() <= EPS
                    && (last.y_hi - r.y_hi).abs() <= EPS
                    && r.x_lo <= last.x_hi + EPS =>
            {
                last.x_hi = last.x_hi.max(r.x_hi);
            }
            _ => out.push(r),
        }
    }
    *rects = out;
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rs(rects: &[(f64, f64, f64, f64)]) -> RegionSet {
        RegionSet::from_rects(rects.iter().map(|&(a, b, c, d)| Rect::new(a, b, c, d)))
    }

    #[test]
    fn union_area_deduplicates_overlap() {
        // Two unit squares overlapping in a 0.5 x 1 strip.
        let s = rs(&[(0.0, 0.0, 1.0, 1.0), (0.5, 0.0, 1.5, 1.0)]);
        assert!((s.area() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn union_area_of_disjoint_adds() {
        let s = rs(&[(0.0, 0.0, 1.0, 1.0), (5.0, 5.0, 7.0, 6.0)]);
        assert!((s.area() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn duplicates_do_not_double_count() {
        let s = rs(&[(0.0, 0.0, 2.0, 2.0), (0.0, 0.0, 2.0, 2.0)]);
        assert!((s.area() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn intersection_and_difference_areas() {
        let a = rs(&[(0.0, 0.0, 2.0, 2.0)]);
        let b = rs(&[(1.0, 1.0, 3.0, 3.0)]);
        assert!((a.intersection_area(&b) - 1.0).abs() < 1e-12);
        assert!((a.difference_area(&b) - 3.0).abs() < 1e-12);
        assert!((b.difference_area(&a) - 3.0).abs() < 1e-12);
        assert!((a.union_area(&b) - 7.0).abs() < 1e-12);
        assert!((a.symmetric_difference_area(&b) - 6.0).abs() < 1e-12);
    }

    #[test]
    fn difference_with_superset_is_zero() {
        let a = rs(&[(0.5, 0.5, 1.0, 1.0)]);
        let b = rs(&[(0.0, 0.0, 2.0, 2.0)]);
        assert_eq!(a.difference_area(&b), 0.0);
    }

    #[test]
    fn l_shaped_region() {
        // An L made of two rectangles sharing an edge.
        let l = rs(&[(0.0, 0.0, 3.0, 1.0), (0.0, 1.0, 1.0, 3.0)]);
        assert!((l.area() - 5.0).abs() < 1e-12);
        assert!(l.contains(Point::new(0.5, 2.5)));
        assert!(!l.contains(Point::new(2.0, 2.0)));
    }

    #[test]
    fn empty_regions() {
        let e = RegionSet::new();
        assert_eq!(e.area(), 0.0);
        let a = rs(&[(0.0, 0.0, 1.0, 1.0)]);
        assert_eq!(e.intersection_area(&a), 0.0);
        assert_eq!(e.difference_area(&a), 0.0);
        assert!((a.difference_area(&e) - 1.0).abs() < 1e-12);
        assert!(e.bounding_rect().is_none());
    }

    #[test]
    fn degenerate_rects_are_dropped() {
        let s = rs(&[(0.0, 0.0, 0.0, 5.0), (1.0, 1.0, 1.0, 1.0)]);
        assert!(s.is_empty());
    }

    #[test]
    fn coalesce_preserves_point_set() {
        // A 3x3 block of unit cells, stored cell by cell.
        let mut cells = RegionSet::new();
        for i in 0..3 {
            for j in 0..3 {
                cells.push(Rect::new(
                    i as f64,
                    j as f64,
                    i as f64 + 1.0,
                    j as f64 + 1.0,
                ));
            }
        }
        let before_area = cells.area();
        let block = rs(&[(0.0, 0.0, 3.0, 3.0)]);
        cells.coalesce();
        assert!(
            cells.len() < 9,
            "coalesce should merge cells, got {}",
            cells.len()
        );
        assert!((cells.area() - before_area).abs() < 1e-12);
        assert!(cells.symmetric_difference_area(&block) < 1e-9);
    }

    #[test]
    fn bounding_rect_covers_all() {
        let s = rs(&[(0.0, 0.0, 1.0, 1.0), (4.0, -2.0, 5.0, 0.0)]);
        assert_eq!(s.bounding_rect().unwrap(), Rect::new(0.0, -2.0, 5.0, 1.0));
    }
}
