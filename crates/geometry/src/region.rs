//! Measurable unions of rectangles.
//!
//! PDR query answers are unions of axis-aligned rectangles, and the
//! paper's accuracy metrics are ratios of areas of such unions and their
//! set differences:
//!
//! ```text
//! r_fp = area(D' \ D) / area(D)      (may exceed 1)
//! r_fn = area(D \ D') / area(D)      (never exceeds 1)
//! ```
//!
//! where `D` is the true dense region and `D'` the region a method
//! reports. [`RegionSet`] supports exactly these measures via a vertical
//! slab sweep: the union of distinct X coordinates of both operand sets
//! cuts the plane into slabs inside which membership along Y is constant,
//! so each slab reduces to 1-D [`IntervalSet`] arithmetic.

use crate::{Interval, IntervalSet, Point, Rect, EPS};
use std::fmt;

/// A union of axis-aligned rectangles, treated as a point set with
/// half-open `[lo, hi)` semantics (so abutting rectangles do not overlap).
///
/// The representation is a plain list of rectangles — possibly
/// overlapping, possibly abutting. All measure operations are computed on
/// the *union*, so duplicates and overlaps are harmless for correctness;
/// [`coalesce`](RegionSet::coalesce) can be used to compact long strips
/// produced by the plane-sweep refinement.
#[derive(Clone, Default, PartialEq)]
pub struct RegionSet {
    rects: Vec<Rect>,
}

impl RegionSet {
    /// The empty region.
    pub fn new() -> Self {
        RegionSet { rects: Vec::new() }
    }

    /// Builds a region from rectangles, dropping degenerate ones.
    pub fn from_rects<I: IntoIterator<Item = Rect>>(iter: I) -> Self {
        RegionSet {
            rects: iter.into_iter().filter(|r| !r.is_degenerate()).collect(),
        }
    }

    /// Adds one rectangle (ignored when degenerate).
    pub fn push(&mut self, r: Rect) {
        if !r.is_degenerate() {
            self.rects.push(r);
        }
    }

    /// Appends all rectangles of `other`.
    pub fn extend_from(&mut self, other: &RegionSet) {
        self.rects.extend_from_slice(&other.rects);
    }

    /// The underlying rectangles (overlaps permitted).
    pub fn rects(&self) -> &[Rect] {
        &self.rects
    }

    /// Number of stored rectangles (not a measure of the union).
    pub fn len(&self) -> usize {
        self.rects.len()
    }

    /// `true` when no rectangles are stored.
    pub fn is_empty(&self) -> bool {
        self.rects.is_empty()
    }

    /// Membership test (half-open `[lo, hi)` on each rectangle).
    pub fn contains(&self, p: Point) -> bool {
        self.rects.iter().any(|r| r.contains_half_open(p))
    }

    /// Bounding rectangle of the whole region, or `None` when empty.
    pub fn bounding_rect(&self) -> Option<Rect> {
        let mut it = self.rects.iter();
        let first = *it.next()?;
        Some(it.fold(first, |acc, r| acc.union(r)))
    }

    /// Area of the union of all stored rectangles.
    pub fn area(&self) -> f64 {
        slab_sweep(self, None, Mode::SelfArea)
    }

    /// Area of `self ∩ other` (as point sets).
    pub fn intersection_area(&self, other: &RegionSet) -> f64 {
        slab_sweep(self, Some(other), Mode::Intersection)
    }

    /// Area of `self \ other` (as point sets).
    pub fn difference_area(&self, other: &RegionSet) -> f64 {
        slab_sweep(self, Some(other), Mode::Difference)
    }

    /// Area of `self ∪ other`.
    pub fn union_area(&self, other: &RegionSet) -> f64 {
        self.area() + other.difference_area(self)
    }

    /// Symmetric-difference area, a convenient scalar distance between two
    /// reported answer regions.
    pub fn symmetric_difference_area(&self, other: &RegionSet) -> f64 {
        self.difference_area(other) + other.difference_area(self)
    }

    /// Merges vertically-abutting rectangles that share the same X extent,
    /// then horizontally-abutting ones sharing the same Y extent. The
    /// plane-sweep refinement emits one rectangle per (x-strip, y-segment)
    /// pair; coalescing typically shrinks its output by an order of
    /// magnitude without changing the point set.
    pub fn coalesce(&mut self) {
        merge_axis(&mut self.rects, /*vertical=*/ true);
        merge_axis(&mut self.rects, /*vertical=*/ false);
    }

    /// Rewrites the set into its *canonical maximal-slab decomposition*:
    /// disjoint rectangles, each spanning a maximal X-run over which the
    /// union's Y-cross-section is one fixed maximal interval, sorted by
    /// `(x_lo, y_lo)`.
    ///
    /// The result depends only on the union **as a point set** — not on
    /// how it was cut into rectangles. This is the property the sharded
    /// engine plane relies on: [`coalesce`](RegionSet::coalesce) is *not*
    /// confluent under re-cutting (merging cells `[0,1]×[0,1]`,
    /// `[1,2]×[0,1]`, `[1,2]×[1,2]` vertically-first joins a different
    /// pair depending on which shard cut separated them), whereas two
    /// canonicalized sets covering the same points are bit-identical
    /// rectangle lists. All comparisons are exact (`f64::total_cmp`), no
    /// epsilon: shards hand back coordinates copied from the same
    /// arithmetic the unsharded engine performs.
    pub fn canonicalize(&mut self) {
        self.rects.retain(|r| !r.is_degenerate());
        if self.rects.len() < 2 {
            self.rects
                .sort_by(|a, b| a.x_lo.total_cmp(&b.x_lo).then(a.y_lo.total_cmp(&b.y_lo)));
            return;
        }
        let mut xs: Vec<f64> = Vec::with_capacity(2 * self.rects.len());
        for r in &self.rects {
            xs.push(r.x_lo);
            xs.push(r.x_hi);
        }
        xs.sort_by(f64::total_cmp);
        xs.dedup_by(|a, b| a.total_cmp(b).is_eq());

        let mut out: Vec<Rect> = Vec::new();
        // Rectangles still extendable rightward (their y-run persisted
        // through the previous slab).
        let mut open: Vec<Rect> = Vec::new();
        let mut spans: Vec<(f64, f64)> = Vec::new();
        for w in xs.windows(2) {
            let (x0, x1) = (w[0], w[1]);
            if x0 >= x1 {
                continue; // e.g. the zero-width -0.0 / +0.0 slab
            }
            // Maximal disjoint Y-runs of the union inside this slab.
            spans.clear();
            spans.extend(
                self.rects
                    .iter()
                    .filter(|r| r.x_lo <= x0 && x0 < r.x_hi)
                    .map(|r| (r.y_lo, r.y_hi)),
            );
            spans.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.total_cmp(&b.1)));
            let mut runs: Vec<(f64, f64)> = Vec::with_capacity(spans.len());
            for &(lo, hi) in &spans {
                match runs.last_mut() {
                    // Half-open semantics: overlapping *or* abutting runs merge.
                    Some(last) if lo <= last.1 => last.1 = last.1.max(hi),
                    _ => runs.push((lo, hi)),
                }
            }
            // Extend a surviving identical run across the slab boundary,
            // otherwise open a fresh rectangle; unmatched leftovers close.
            let mut next_open: Vec<Rect> = Vec::with_capacity(runs.len());
            for &(lo, hi) in &runs {
                let carried = open
                    .iter()
                    .position(|r| r.x_hi == x0 && r.y_lo == lo && r.y_hi == hi);
                match carried {
                    Some(i) => {
                        let mut r = open.swap_remove(i);
                        r.x_hi = x1;
                        next_open.push(r);
                    }
                    None => next_open.push(Rect::new(x0, lo, x1, hi)),
                }
            }
            out.append(&mut open);
            open = next_open;
        }
        out.append(&mut open);
        out.sort_by(|a, b| a.x_lo.total_cmp(&b.x_lo).then(a.y_lo.total_cmp(&b.y_lo)));
        self.rects = out;
    }

    /// Boundary-aware merge of per-shard answers: clips each partial
    /// answer to the rectangle its shard *owns* (shards also see halo
    /// objects, so their raw answers overhang their cut lines), unions
    /// the disjoint clipped pieces, and canonicalizes.
    ///
    /// Because [`canonicalize`](RegionSet::canonicalize) depends only on
    /// the point set, the merged answer is a bit-identical rectangle list
    /// to `canonicalize(unsharded answer)` whenever every shard computed
    /// the exact dense region over its owned sub-rectangle — at *any*
    /// shard count, including 1.
    pub fn union_disjoint_clipped<'a, I>(parts: I) -> RegionSet
    where
        I: IntoIterator<Item = (&'a RegionSet, Rect)>,
    {
        let mut merged = RegionSet::new();
        for (set, owned) in parts {
            for r in &set.rects {
                if let Some(clipped) = r.intersection(&owned) {
                    merged.push(clipped); // push drops degenerate slivers
                }
            }
        }
        merged.canonicalize();
        merged
    }
}

impl fmt::Debug for RegionSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_list().entries(self.rects.iter()).finish()
    }
}

impl FromIterator<Rect> for RegionSet {
    fn from_iter<T: IntoIterator<Item = Rect>>(iter: T) -> Self {
        RegionSet::from_rects(iter)
    }
}

enum Mode {
    SelfArea,
    Intersection,
    Difference,
}

/// Vertical slab sweep over the union of X-event coordinates of both
/// operands. Within a slab, each operand's footprint along Y is a fixed
/// union of intervals, so the slab's contribution is
/// `slab_width × measure(interval-set expression)`.
fn slab_sweep(a: &RegionSet, b: Option<&RegionSet>, mode: Mode) -> f64 {
    let mut xs: Vec<f64> = Vec::with_capacity(2 * (a.len() + b.map_or(0, RegionSet::len)));
    for r in &a.rects {
        xs.push(r.x_lo);
        xs.push(r.x_hi);
    }
    if let Some(b) = b {
        for r in &b.rects {
            xs.push(r.x_lo);
            xs.push(r.x_hi);
        }
    }
    if xs.is_empty() {
        return 0.0;
    }
    xs.sort_by(f64::total_cmp);
    xs.dedup_by(|x, y| (*x - *y).abs() <= EPS);

    let mut total = 0.0;
    for w in xs.windows(2) {
        let (x0, x1) = (w[0], w[1]);
        let width = x1 - x0;
        if width <= 0.0 {
            continue;
        }
        let mid = 0.5 * (x0 + x1);
        let ya = slab_intervals(a, mid);
        let contribution = match mode {
            Mode::SelfArea => ya.measure(),
            Mode::Intersection => {
                let yb = slab_intervals(b.expect("binary mode needs rhs"), mid);
                ya.intersection(&yb).measure()
            }
            Mode::Difference => {
                let yb = slab_intervals(b.expect("binary mode needs rhs"), mid);
                ya.difference_measure(&yb)
            }
        };
        total += width * contribution;
    }
    total
}

/// Y-intervals of all rectangles of `set` whose X-extent covers `x`.
fn slab_intervals(set: &RegionSet, x: f64) -> IntervalSet {
    IntervalSet::from_intervals(
        set.rects
            .iter()
            .filter(|r| r.x_lo <= x && x < r.x_hi)
            .map(|r| Interval::new(r.y_lo, r.y_hi)),
    )
}

/// One pass of rectangle merging. With `vertical = true`, merges pairs
/// that share identical `[x_lo, x_hi]` and abut along Y; otherwise the
/// transposed condition.
fn merge_axis(rects: &mut Vec<Rect>, vertical: bool) {
    if rects.len() < 2 {
        return;
    }
    if vertical {
        rects.sort_by(|a, b| {
            a.x_lo
                .total_cmp(&b.x_lo)
                .then(a.x_hi.total_cmp(&b.x_hi))
                .then(a.y_lo.total_cmp(&b.y_lo))
        });
    } else {
        rects.sort_by(|a, b| {
            a.y_lo
                .total_cmp(&b.y_lo)
                .then(a.y_hi.total_cmp(&b.y_hi))
                .then(a.x_lo.total_cmp(&b.x_lo))
        });
    }
    let mut out: Vec<Rect> = Vec::with_capacity(rects.len());
    for &r in rects.iter() {
        match out.last_mut() {
            Some(last)
                if vertical
                    && (last.x_lo - r.x_lo).abs() <= EPS
                    && (last.x_hi - r.x_hi).abs() <= EPS
                    && r.y_lo <= last.y_hi + EPS =>
            {
                last.y_hi = last.y_hi.max(r.y_hi);
            }
            Some(last)
                if !vertical
                    && (last.y_lo - r.y_lo).abs() <= EPS
                    && (last.y_hi - r.y_hi).abs() <= EPS
                    && r.x_lo <= last.x_hi + EPS =>
            {
                last.x_hi = last.x_hi.max(r.x_hi);
            }
            _ => out.push(r),
        }
    }
    *rects = out;
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rs(rects: &[(f64, f64, f64, f64)]) -> RegionSet {
        RegionSet::from_rects(rects.iter().map(|&(a, b, c, d)| Rect::new(a, b, c, d)))
    }

    #[test]
    fn union_area_deduplicates_overlap() {
        // Two unit squares overlapping in a 0.5 x 1 strip.
        let s = rs(&[(0.0, 0.0, 1.0, 1.0), (0.5, 0.0, 1.5, 1.0)]);
        assert!((s.area() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn union_area_of_disjoint_adds() {
        let s = rs(&[(0.0, 0.0, 1.0, 1.0), (5.0, 5.0, 7.0, 6.0)]);
        assert!((s.area() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn duplicates_do_not_double_count() {
        let s = rs(&[(0.0, 0.0, 2.0, 2.0), (0.0, 0.0, 2.0, 2.0)]);
        assert!((s.area() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn intersection_and_difference_areas() {
        let a = rs(&[(0.0, 0.0, 2.0, 2.0)]);
        let b = rs(&[(1.0, 1.0, 3.0, 3.0)]);
        assert!((a.intersection_area(&b) - 1.0).abs() < 1e-12);
        assert!((a.difference_area(&b) - 3.0).abs() < 1e-12);
        assert!((b.difference_area(&a) - 3.0).abs() < 1e-12);
        assert!((a.union_area(&b) - 7.0).abs() < 1e-12);
        assert!((a.symmetric_difference_area(&b) - 6.0).abs() < 1e-12);
    }

    #[test]
    fn difference_with_superset_is_zero() {
        let a = rs(&[(0.5, 0.5, 1.0, 1.0)]);
        let b = rs(&[(0.0, 0.0, 2.0, 2.0)]);
        assert_eq!(a.difference_area(&b), 0.0);
    }

    #[test]
    fn l_shaped_region() {
        // An L made of two rectangles sharing an edge.
        let l = rs(&[(0.0, 0.0, 3.0, 1.0), (0.0, 1.0, 1.0, 3.0)]);
        assert!((l.area() - 5.0).abs() < 1e-12);
        assert!(l.contains(Point::new(0.5, 2.5)));
        assert!(!l.contains(Point::new(2.0, 2.0)));
    }

    #[test]
    fn empty_regions() {
        let e = RegionSet::new();
        assert_eq!(e.area(), 0.0);
        let a = rs(&[(0.0, 0.0, 1.0, 1.0)]);
        assert_eq!(e.intersection_area(&a), 0.0);
        assert_eq!(e.difference_area(&a), 0.0);
        assert!((a.difference_area(&e) - 1.0).abs() < 1e-12);
        assert!(e.bounding_rect().is_none());
    }

    #[test]
    fn degenerate_rects_are_dropped() {
        let s = rs(&[(0.0, 0.0, 0.0, 5.0), (1.0, 1.0, 1.0, 1.0)]);
        assert!(s.is_empty());
    }

    #[test]
    fn coalesce_preserves_point_set() {
        // A 3x3 block of unit cells, stored cell by cell.
        let mut cells = RegionSet::new();
        for i in 0..3 {
            for j in 0..3 {
                cells.push(Rect::new(
                    i as f64,
                    j as f64,
                    i as f64 + 1.0,
                    j as f64 + 1.0,
                ));
            }
        }
        let before_area = cells.area();
        let block = rs(&[(0.0, 0.0, 3.0, 3.0)]);
        cells.coalesce();
        assert!(
            cells.len() < 9,
            "coalesce should merge cells, got {}",
            cells.len()
        );
        assert!((cells.area() - before_area).abs() < 1e-12);
        assert!(cells.symmetric_difference_area(&block) < 1e-9);
    }

    #[test]
    fn canonicalize_is_cut_invariant_where_coalesce_is_not() {
        // The non-confluence counterexample: an L of three unit cells.
        // Global coalesce (vertical first) joins B+C; a shard cut at
        // y = 1 keeps C alone and joins A+B horizontally instead. Same
        // point set, different lists.
        let a = (0.0, 0.0, 1.0, 1.0);
        let b = (1.0, 0.0, 2.0, 1.0);
        let c = (1.0, 1.0, 2.0, 2.0);
        let mut global = rs(&[a, b, c]);
        global.coalesce();
        let mut bottom = rs(&[a, b]);
        bottom.coalesce();
        let mut top = rs(&[c]);
        top.coalesce();
        let mut recombined = bottom.clone();
        recombined.extend_from(&top);
        assert_ne!(global.rects(), recombined.rects(), "premise of the test");

        let mut g = global.clone();
        g.canonicalize();
        let mut r = recombined.clone();
        r.canonicalize();
        assert_eq!(g.rects(), r.rects());
        assert!((g.area() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn canonicalize_preserves_point_set_and_sorts() {
        let mut s = rs(&[
            (0.0, 0.0, 2.0, 2.0),
            (1.0, 1.0, 3.0, 3.0), // overlaps the first
            (2.0, 0.0, 3.0, 1.0),
            (5.0, 5.0, 6.0, 6.0),
        ]);
        let before = s.clone();
        s.canonicalize();
        assert!(s.symmetric_difference_area(&before) < 1e-12);
        // Disjoint output, sorted by (x_lo, y_lo).
        for (i, a) in s.rects().iter().enumerate() {
            for b in &s.rects()[i + 1..] {
                assert!(!a.overlaps_interior(b), "{a:?} overlaps {b:?}");
            }
        }
        let mut sorted = s.rects().to_vec();
        sorted.sort_by(|a, b| a.x_lo.total_cmp(&b.x_lo).then(a.y_lo.total_cmp(&b.y_lo)));
        assert_eq!(s.rects(), sorted.as_slice());
        // Idempotent.
        let mut again = s.clone();
        again.canonicalize();
        assert_eq!(again.rects(), s.rects());
    }

    #[test]
    fn canonicalize_rejoins_spurious_cuts() {
        // One 3x1 bar chopped into three pieces at arbitrary places,
        // plus a decoy above that introduces extra x-events.
        let mut s = rs(&[
            (0.0, 0.0, 1.25, 1.0),
            (1.25, 0.0, 2.5, 1.0),
            (2.5, 0.0, 3.0, 1.0),
            (0.5, 4.0, 2.75, 5.0),
        ]);
        s.canonicalize();
        assert_eq!(
            s.rects(),
            &[
                Rect::new(0.0, 0.0, 3.0, 1.0),
                Rect::new(0.5, 4.0, 2.75, 5.0)
            ]
        );
    }

    #[test]
    fn union_disjoint_clipped_matches_canonical_whole() {
        // A blobby answer; shard it with a 2x2 cut at (1.1, 0.7) where
        // each "shard answer" is the whole thing (halo overhang) clipped
        // coarsely, and check the merge equals the canonical whole.
        let whole = rs(&[
            (0.0, 0.0, 2.0, 1.0),
            (0.5, 1.0, 1.5, 2.0),
            (1.4, 0.2, 2.4, 1.4),
        ]);
        let cuts = [
            Rect::new(f64::NEG_INFINITY, f64::NEG_INFINITY, 1.1, 0.7),
            Rect::new(1.1, f64::NEG_INFINITY, f64::INFINITY, 0.7),
            Rect::new(f64::NEG_INFINITY, 0.7, 1.1, f64::INFINITY),
            Rect::new(1.1, 0.7, f64::INFINITY, f64::INFINITY),
        ];
        let merged = RegionSet::union_disjoint_clipped(cuts.iter().map(|&owned| (&whole, owned)));
        let mut canonical = whole.clone();
        canonical.canonicalize();
        assert_eq!(merged.rects(), canonical.rects());
    }

    #[test]
    fn bounding_rect_covers_all() {
        let s = rs(&[(0.0, 0.0, 1.0, 1.0), (4.0, -2.0, 5.0, 0.0)]);
        assert_eq!(s.bounding_rect().unwrap(), Rect::new(0.0, -2.0, 5.0, 1.0));
    }
}
