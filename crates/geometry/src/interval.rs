//! Measurable unions of 1-D intervals.
//!
//! These are the slab-local workhorse of the 2-D region measure in
//! [`crate::RegionSet`]: a vertical slab of the plane reduces each
//! rectangle set to a union of Y-intervals, and the area bookkeeping
//! becomes 1-D measure, intersection and difference.

use std::fmt;

/// A closed 1-D interval `[lo, hi]` with `lo <= hi`.
///
/// Boundary semantics are irrelevant for measure (single points have
/// measure zero), so one representation serves both the half-open answer
/// rectangles and the closed query rectangles.
#[derive(Clone, Copy, PartialEq)]
pub struct Interval {
    /// Lower endpoint.
    pub lo: f64,
    /// Upper endpoint.
    pub hi: f64,
}

impl Interval {
    /// Creates an interval.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi` or either endpoint is NaN.
    #[inline]
    pub fn new(lo: f64, hi: f64) -> Self {
        assert!(lo <= hi, "malformed interval [{lo}, {hi}]");
        Interval { lo, hi }
    }

    /// Length of the interval.
    #[inline]
    pub fn len(&self) -> f64 {
        self.hi - self.lo
    }

    /// `true` when the interval is a single point.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.lo == self.hi
    }

    /// Intersection with `other`, or `None` when disjoint (touching
    /// endpoints yield a zero-length interval).
    pub fn intersection(&self, other: &Interval) -> Option<Interval> {
        let lo = self.lo.max(other.lo);
        let hi = self.hi.min(other.hi);
        if lo <= hi {
            Some(Interval::new(lo, hi))
        } else {
            None
        }
    }
}

impl fmt::Debug for Interval {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}, {}]", self.lo, self.hi)
    }
}

/// A union of 1-D intervals kept in *normalized* form: sorted by lower
/// endpoint, pairwise disjoint, with touching intervals merged and empty
/// ones dropped.
#[derive(Clone, Default, PartialEq)]
pub struct IntervalSet {
    items: Vec<Interval>,
}

impl IntervalSet {
    /// The empty set.
    pub fn new() -> Self {
        IntervalSet { items: Vec::new() }
    }

    /// Builds a normalized set from arbitrary (possibly overlapping,
    /// unsorted, empty) intervals.
    pub fn from_intervals<I: IntoIterator<Item = Interval>>(iter: I) -> Self {
        let mut items: Vec<Interval> = iter.into_iter().filter(|iv| !iv.is_empty()).collect();
        items.sort_by(|a, b| a.lo.total_cmp(&b.lo));
        let mut merged: Vec<Interval> = Vec::with_capacity(items.len());
        for iv in items {
            match merged.last_mut() {
                Some(last) if iv.lo <= last.hi => {
                    if iv.hi > last.hi {
                        last.hi = iv.hi;
                    }
                }
                _ => merged.push(iv),
            }
        }
        IntervalSet { items: merged }
    }

    /// The normalized intervals, sorted and disjoint.
    pub fn intervals(&self) -> &[Interval] {
        &self.items
    }

    /// `true` when the set has measure zero.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Total length (Lebesgue measure) of the set.
    pub fn measure(&self) -> f64 {
        self.items.iter().map(Interval::len).sum()
    }

    /// `true` when `x` lies in the set (closed semantics).
    pub fn contains(&self, x: f64) -> bool {
        // Binary search over the sorted, disjoint representation.
        let idx = self.items.partition_point(|iv| iv.hi < x);
        self.items
            .get(idx)
            .is_some_and(|iv| iv.lo <= x && x <= iv.hi)
    }

    /// Intersection with another normalized set, by linear merge.
    pub fn intersection(&self, other: &IntervalSet) -> IntervalSet {
        let (mut i, mut j) = (0, 0);
        let mut out = Vec::new();
        while i < self.items.len() && j < other.items.len() {
            let a = self.items[i];
            let b = other.items[j];
            if let Some(iv) = a.intersection(&b) {
                if !iv.is_empty() {
                    out.push(iv);
                }
            }
            if a.hi <= b.hi {
                i += 1;
            } else {
                j += 1;
            }
        }
        IntervalSet { items: out }
    }

    /// Union with another normalized set.
    pub fn union(&self, other: &IntervalSet) -> IntervalSet {
        IntervalSet::from_intervals(self.items.iter().chain(other.items.iter()).copied())
    }

    /// Measure of `self \ other` — computed as
    /// `measure(self) − measure(self ∩ other)`; valid because both sets
    /// are finite unions of intervals.
    pub fn difference_measure(&self, other: &IntervalSet) -> f64 {
        (self.measure() - self.intersection(other).measure()).max(0.0)
    }
}

impl fmt::Debug for IntervalSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_list().entries(self.items.iter()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set(ivs: &[(f64, f64)]) -> IntervalSet {
        IntervalSet::from_intervals(ivs.iter().map(|&(a, b)| Interval::new(a, b)))
    }

    #[test]
    fn normalization_merges_and_sorts() {
        let s = set(&[(3.0, 4.0), (0.0, 1.0), (0.5, 2.0), (2.0, 2.5), (5.0, 5.0)]);
        assert_eq!(s.intervals().len(), 2);
        assert_eq!(s.intervals()[0], Interval::new(0.0, 2.5));
        assert_eq!(s.intervals()[1], Interval::new(3.0, 4.0));
        assert!((s.measure() - 3.5).abs() < 1e-12);
    }

    #[test]
    fn empty_set() {
        let s = set(&[]);
        assert!(s.is_empty());
        assert_eq!(s.measure(), 0.0);
        assert!(!s.contains(0.0));
    }

    #[test]
    fn contains_uses_closed_semantics() {
        let s = set(&[(0.0, 1.0), (2.0, 3.0)]);
        assert!(s.contains(0.0));
        assert!(s.contains(1.0));
        assert!(!s.contains(1.5));
        assert!(s.contains(2.0));
        assert!(!s.contains(3.1));
    }

    #[test]
    fn intersection_and_union() {
        let a = set(&[(0.0, 2.0), (4.0, 6.0)]);
        let b = set(&[(1.0, 5.0)]);
        let i = a.intersection(&b);
        assert_eq!(i.intervals(), set(&[(1.0, 2.0), (4.0, 5.0)]).intervals());
        let u = a.union(&b);
        assert_eq!(u.intervals(), set(&[(0.0, 6.0)]).intervals());
    }

    #[test]
    fn difference_measure() {
        let a = set(&[(0.0, 4.0)]);
        let b = set(&[(1.0, 2.0), (3.0, 10.0)]);
        assert!((a.difference_measure(&b) - 2.0).abs() < 1e-12);
        assert!((b.difference_measure(&a) - 6.0).abs() < 1e-12);
        // Difference with self is empty.
        assert_eq!(a.difference_measure(&a), 0.0);
    }

    #[test]
    fn intersection_of_disjoint_is_empty() {
        let a = set(&[(0.0, 1.0)]);
        let b = set(&[(2.0, 3.0)]);
        assert!(a.intersection(&b).is_empty());
    }
}
