//! Axis-aligned rectangles.

use crate::Point;
use std::fmt;

/// An axis-aligned rectangle `[x_lo, x_hi] × [y_lo, y_hi]`.
///
/// Two containment flavors are exposed because the paper mixes them:
///
/// * [`contains`](Rect::contains) — closed on all edges, used for spatial
///   range queries over the TPR-tree (an object sitting exactly on the
///   query boundary must be retrieved so the refinement step can decide
///   its half-open membership itself);
/// * [`contains_half_open`](Rect::contains_half_open) — `[lo, hi)`
///   semantics, used for answer rectangles so that abutting rectangles
///   tile the plane without overlap.
///
/// Degenerate rectangles (zero width or height) are permitted; they have
/// zero area and participate in sweeps harmlessly.
#[derive(Clone, Copy, PartialEq)]
pub struct Rect {
    /// Smallest X coordinate.
    pub x_lo: f64,
    /// Smallest Y coordinate.
    pub y_lo: f64,
    /// Largest X coordinate.
    pub x_hi: f64,
    /// Largest Y coordinate.
    pub y_hi: f64,
}

impl Rect {
    /// Creates a rectangle from its lower-left and upper-right corners.
    ///
    /// # Panics
    ///
    /// Panics if `x_lo > x_hi` or `y_lo > y_hi`, or if any bound is NaN.
    #[inline]
    pub fn new(x_lo: f64, y_lo: f64, x_hi: f64, y_hi: f64) -> Self {
        assert!(
            x_lo <= x_hi && y_lo <= y_hi,
            "malformed rect: [{x_lo}, {x_hi}] x [{y_lo}, {y_hi}]"
        );
        Rect {
            x_lo,
            y_lo,
            x_hi,
            y_hi,
        }
    }

    /// Creates a rectangle from two corner points (in either order).
    pub fn from_corners(a: Point, b: Point) -> Self {
        Rect::new(a.x.min(b.x), a.y.min(b.y), a.x.max(b.x), a.y.max(b.y))
    }

    /// The square of edge length `edge` centered at `center`.
    pub fn centered_square(center: Point, edge: f64) -> Self {
        let h = edge / 2.0;
        Rect::new(center.x - h, center.y - h, center.x + h, center.y + h)
    }

    /// Lower-left corner.
    #[inline]
    pub fn lo(&self) -> Point {
        Point::new(self.x_lo, self.y_lo)
    }

    /// Upper-right corner.
    #[inline]
    pub fn hi(&self) -> Point {
        Point::new(self.x_hi, self.y_hi)
    }

    /// Center point.
    #[inline]
    pub fn center(&self) -> Point {
        Point::new((self.x_lo + self.x_hi) / 2.0, (self.y_lo + self.y_hi) / 2.0)
    }

    /// Width along X.
    #[inline]
    pub fn width(&self) -> f64 {
        self.x_hi - self.x_lo
    }

    /// Height along Y.
    #[inline]
    pub fn height(&self) -> f64 {
        self.y_hi - self.y_lo
    }

    /// Area of the rectangle.
    #[inline]
    pub fn area(&self) -> f64 {
        self.width() * self.height()
    }

    /// Half the perimeter (the R*-tree "margin" metric).
    #[inline]
    pub fn margin(&self) -> f64 {
        self.width() + self.height()
    }

    /// `true` when the rectangle has zero area.
    #[inline]
    pub fn is_degenerate(&self) -> bool {
        self.width() == 0.0 || self.height() == 0.0
    }

    /// Closed containment: all four edges belong to the rectangle.
    #[inline]
    pub fn contains(&self, p: Point) -> bool {
        self.x_lo <= p.x && p.x <= self.x_hi && self.y_lo <= p.y && p.y <= self.y_hi
    }

    /// Half-open containment `[lo, hi)`: lower edges in, upper edges out.
    #[inline]
    pub fn contains_half_open(&self, p: Point) -> bool {
        self.x_lo <= p.x && p.x < self.x_hi && self.y_lo <= p.y && p.y < self.y_hi
    }

    /// `true` when `other` lies entirely inside `self` (closed semantics).
    #[inline]
    pub fn contains_rect(&self, other: &Rect) -> bool {
        self.x_lo <= other.x_lo
            && other.x_hi <= self.x_hi
            && self.y_lo <= other.y_lo
            && other.y_hi <= self.y_hi
    }

    /// Closed intersection test (touching edges count as intersecting).
    #[inline]
    pub fn intersects(&self, other: &Rect) -> bool {
        self.x_lo <= other.x_hi
            && other.x_lo <= self.x_hi
            && self.y_lo <= other.y_hi
            && other.y_lo <= self.y_hi
    }

    /// Open intersection test: `true` only when the interiors overlap, i.e.
    /// the common region has positive area.
    #[inline]
    pub fn overlaps_interior(&self, other: &Rect) -> bool {
        self.x_lo < other.x_hi
            && other.x_lo < self.x_hi
            && self.y_lo < other.y_hi
            && other.y_lo < self.y_hi
    }

    /// Intersection rectangle, or `None` when the rectangles are disjoint
    /// (closed semantics: a shared edge yields a degenerate rectangle).
    pub fn intersection(&self, other: &Rect) -> Option<Rect> {
        if !self.intersects(other) {
            return None;
        }
        Some(Rect::new(
            self.x_lo.max(other.x_lo),
            self.y_lo.max(other.y_lo),
            self.x_hi.min(other.x_hi),
            self.y_hi.min(other.y_hi),
        ))
    }

    /// Smallest rectangle enclosing both `self` and `other`.
    pub fn union(&self, other: &Rect) -> Rect {
        Rect {
            x_lo: self.x_lo.min(other.x_lo),
            y_lo: self.y_lo.min(other.y_lo),
            x_hi: self.x_hi.max(other.x_hi),
            y_hi: self.y_hi.max(other.y_hi),
        }
    }

    /// Area of the intersection (0 when disjoint).
    pub fn intersection_area(&self, other: &Rect) -> f64 {
        let w = (self.x_hi.min(other.x_hi) - self.x_lo.max(other.x_lo)).max(0.0);
        let h = (self.y_hi.min(other.y_hi) - self.y_lo.max(other.y_lo)).max(0.0);
        w * h
    }

    /// Grows the rectangle by `delta` on every side.
    ///
    /// # Panics
    ///
    /// Panics if a negative `delta` would invert the rectangle.
    pub fn inflate(&self, delta: f64) -> Rect {
        Rect::new(
            self.x_lo - delta,
            self.y_lo - delta,
            self.x_hi + delta,
            self.y_hi + delta,
        )
    }

    /// Clamps the rectangle into `bounds`, returning `None` when they do
    /// not intersect.
    pub fn clipped_to(&self, bounds: &Rect) -> Option<Rect> {
        self.intersection(bounds)
    }
}

impl fmt::Debug for Rect {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{}, {}]x[{}, {}]",
            self.x_lo, self.x_hi, self.y_lo, self.y_hi
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(a: f64, b: f64, c: f64, d: f64) -> Rect {
        Rect::new(a, b, c, d)
    }

    #[test]
    fn area_and_margin() {
        let q = r(1.0, 2.0, 4.0, 6.0);
        assert_eq!(q.area(), 12.0);
        assert_eq!(q.margin(), 7.0);
        assert_eq!(q.center(), Point::new(2.5, 4.0));
    }

    #[test]
    #[should_panic(expected = "malformed rect")]
    fn rejects_inverted() {
        let _ = r(1.0, 0.0, 0.0, 1.0);
    }

    #[test]
    fn containment_semantics() {
        let q = r(0.0, 0.0, 1.0, 1.0);
        // Closed: all edges in.
        assert!(q.contains(Point::new(1.0, 1.0)));
        assert!(q.contains(Point::new(0.0, 0.0)));
        // Half-open: upper edges out.
        assert!(q.contains_half_open(Point::new(0.0, 0.0)));
        assert!(!q.contains_half_open(Point::new(1.0, 0.5)));
        assert!(!q.contains_half_open(Point::new(0.5, 1.0)));
    }

    #[test]
    fn intersection_flavors() {
        let a = r(0.0, 0.0, 2.0, 2.0);
        let b = r(2.0, 0.0, 4.0, 2.0); // shares an edge with a
        assert!(a.intersects(&b));
        assert!(!a.overlaps_interior(&b));
        let i = a.intersection(&b).unwrap();
        assert!(i.is_degenerate());
        assert_eq!(a.intersection_area(&b), 0.0);

        let c = r(1.0, 1.0, 3.0, 3.0);
        assert!(a.overlaps_interior(&c));
        assert_eq!(a.intersection_area(&c), 1.0);
        assert_eq!(a.intersection(&c).unwrap(), r(1.0, 1.0, 2.0, 2.0));
    }

    #[test]
    fn union_encloses_both() {
        let a = r(0.0, 0.0, 1.0, 1.0);
        let b = r(5.0, -1.0, 6.0, 0.5);
        let u = a.union(&b);
        assert!(u.contains_rect(&a));
        assert!(u.contains_rect(&b));
        assert_eq!(u, r(0.0, -1.0, 6.0, 1.0));
    }

    #[test]
    fn centered_square_and_inflate() {
        let s = Rect::centered_square(Point::new(5.0, 5.0), 4.0);
        assert_eq!(s, r(3.0, 3.0, 7.0, 7.0));
        assert_eq!(s.inflate(1.0), r(2.0, 2.0, 8.0, 8.0));
    }

    #[test]
    fn clipping() {
        let a = r(0.0, 0.0, 10.0, 10.0);
        let b = r(8.0, 8.0, 12.0, 12.0);
        assert_eq!(b.clipped_to(&a).unwrap(), r(8.0, 8.0, 10.0, 10.0));
        let far = r(20.0, 20.0, 21.0, 21.0);
        assert!(far.clipped_to(&a).is_none());
    }
}
