//! Uniform grid addressing over a square region.
//!
//! The paper divides the `L × L` plane into an `m × m` grid for the
//! density histogram (Section 5), and into a `g × g` grid of local
//! Chebyshev polynomials (Section 6.4). [`GridSpec`] centralizes the
//! cell ↔ coordinate mapping so both agree on boundary handling.

use crate::{Point, Rect};

/// Identifier of a grid cell: `(col, row)` with `col` indexing X and
/// `row` indexing Y, both zero-based from the lower-left corner.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CellId {
    /// Column (X) index in `0..m`.
    pub col: u32,
    /// Row (Y) index in `0..m`.
    pub row: u32,
}

impl CellId {
    /// Creates a cell id.
    #[inline]
    pub const fn new(col: u32, row: u32) -> Self {
        CellId { col, row }
    }
}

/// A uniform `m × m` grid over the square `[origin, origin + extent]²`.
///
/// Points are mapped to cells with half-open `[lo, hi)` cell semantics
/// except that the global top/right boundary is folded into the last
/// cell, so every point of the closed region belongs to exactly one cell.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct GridSpec {
    origin: Point,
    extent: f64,
    m: u32,
}

impl GridSpec {
    /// Creates a grid of `m × m` cells over `[origin, origin + extent]²`.
    ///
    /// # Panics
    ///
    /// Panics when `m == 0` or `extent <= 0`.
    pub fn new(origin: Point, extent: f64, m: u32) -> Self {
        assert!(m > 0, "grid must have at least one cell per side");
        assert!(
            extent > 0.0 && extent.is_finite(),
            "grid extent must be positive and finite, got {extent}"
        );
        GridSpec { origin, extent, m }
    }

    /// Grid over `[0, extent]²`, the paper's setup (`L = 1000` miles).
    pub fn unit_origin(extent: f64, m: u32) -> Self {
        GridSpec::new(Point::ORIGIN, extent, m)
    }

    /// Number of cells per side, `m`.
    #[inline]
    pub fn cells_per_side(&self) -> u32 {
        self.m
    }

    /// Total number of cells, `m²`.
    #[inline]
    pub fn cell_count(&self) -> usize {
        (self.m as usize) * (self.m as usize)
    }

    /// Edge length of one cell, `l_c = L / m`.
    #[inline]
    pub fn cell_edge(&self) -> f64 {
        self.extent / self.m as f64
    }

    /// The covered region `[origin, origin + extent]²`.
    pub fn bounds(&self) -> Rect {
        Rect::new(
            self.origin.x,
            self.origin.y,
            self.origin.x + self.extent,
            self.origin.y + self.extent,
        )
    }

    /// Maps a point to its cell, or `None` when outside the grid. The
    /// top/right boundary belongs to the last row/column.
    pub fn locate(&self, p: Point) -> Option<CellId> {
        let fx = (p.x - self.origin.x) / self.cell_edge();
        let fy = (p.y - self.origin.y) / self.cell_edge();
        if fx < 0.0 || fy < 0.0 || fx > self.m as f64 || fy > self.m as f64 {
            return None;
        }
        let col = (fx as u32).min(self.m - 1);
        let row = (fy as u32).min(self.m - 1);
        Some(CellId::new(col, row))
    }

    /// Like [`locate`](GridSpec::locate) but clamps outside points to the
    /// nearest boundary cell. Useful when motion extrapolation drifts
    /// slightly past the region boundary.
    pub fn locate_clamped(&self, p: Point) -> CellId {
        let fx = (p.x - self.origin.x) / self.cell_edge();
        let fy = (p.y - self.origin.y) / self.cell_edge();
        let col = (fx.max(0.0) as u32).min(self.m - 1);
        let row = (fy.max(0.0) as u32).min(self.m - 1);
        CellId::new(col, row)
    }

    /// The rectangle covered by `cell`.
    ///
    /// # Panics
    ///
    /// Panics when the cell is out of range.
    pub fn cell_rect(&self, cell: CellId) -> Rect {
        assert!(
            cell.col < self.m && cell.row < self.m,
            "cell out of range: {cell:?}"
        );
        let e = self.cell_edge();
        let x = self.origin.x + cell.col as f64 * e;
        let y = self.origin.y + cell.row as f64 * e;
        Rect::new(x, y, x + e, y + e)
    }

    /// Row-major linear index of `cell` (row * m + col).
    #[inline]
    pub fn linear_index(&self, cell: CellId) -> usize {
        debug_assert!(cell.col < self.m && cell.row < self.m);
        cell.row as usize * self.m as usize + cell.col as usize
    }

    /// Inverse of [`linear_index`](GridSpec::linear_index).
    #[inline]
    pub fn cell_of_index(&self, idx: usize) -> CellId {
        debug_assert!(idx < self.cell_count());
        CellId::new(
            (idx % self.m as usize) as u32,
            (idx / self.m as usize) as u32,
        )
    }

    /// All cells whose rectangles intersect `r` (closed semantics),
    /// clamped to the grid. Returns an iterator over `CellId`s in
    /// row-major order.
    pub fn cells_intersecting(&self, r: &Rect) -> impl Iterator<Item = CellId> + '_ {
        let e = self.cell_edge();
        // Candidate ranges are widened by one cell on each side so that
        // rectangles sitting exactly on a cell border also see the cell
        // they merely touch (closed semantics); the intersects filter
        // below keeps the result exact.
        let lo_col =
            ((((r.x_lo - self.origin.x) / e).floor() - 1.0).max(0.0) as u32).min(self.m - 1);
        let hi_col = ((((r.x_hi - self.origin.x) / e).ceil() + 1.0).max(0.0) as u32).min(self.m);
        let lo_row =
            ((((r.y_lo - self.origin.y) / e).floor() - 1.0).max(0.0) as u32).min(self.m - 1);
        let hi_row = ((((r.y_hi - self.origin.y) / e).ceil() + 1.0).max(0.0) as u32).min(self.m);
        let (lo_col, hi_col, lo_row, hi_row, grid) = (lo_col, hi_col, lo_row, hi_row, *self);
        let r = *r;
        (lo_row..hi_row.max(lo_row + 1).min(grid.m))
            .flat_map(move |row| {
                (lo_col..hi_col.max(lo_col + 1).min(grid.m)).map(move |col| CellId::new(col, row))
            })
            .filter(move |&c| grid.cell_rect(c).intersects(&r))
    }

    /// Iterates over all cells in row-major order.
    pub fn all_cells(&self) -> impl Iterator<Item = CellId> + '_ {
        let m = self.m;
        (0..m).flat_map(move |row| (0..m).map(move |col| CellId::new(col, row)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid() -> GridSpec {
        GridSpec::unit_origin(100.0, 10)
    }

    #[test]
    fn basic_properties() {
        let g = grid();
        assert_eq!(g.cells_per_side(), 10);
        assert_eq!(g.cell_count(), 100);
        assert_eq!(g.cell_edge(), 10.0);
        assert_eq!(g.bounds(), Rect::new(0.0, 0.0, 100.0, 100.0));
    }

    #[test]
    fn locate_interior_and_boundary() {
        let g = grid();
        assert_eq!(g.locate(Point::new(0.0, 0.0)), Some(CellId::new(0, 0)));
        assert_eq!(g.locate(Point::new(15.0, 25.0)), Some(CellId::new(1, 2)));
        // Interior cell boundary belongs to the upper cell (half-open).
        assert_eq!(g.locate(Point::new(10.0, 0.0)), Some(CellId::new(1, 0)));
        // Global top/right boundary folds into the last cell.
        assert_eq!(g.locate(Point::new(100.0, 100.0)), Some(CellId::new(9, 9)));
        // Outside.
        assert_eq!(g.locate(Point::new(-0.1, 5.0)), None);
        assert_eq!(g.locate(Point::new(5.0, 100.1)), None);
    }

    #[test]
    fn locate_clamped_snaps_to_border() {
        let g = grid();
        assert_eq!(g.locate_clamped(Point::new(-5.0, 50.0)), CellId::new(0, 5));
        assert_eq!(
            g.locate_clamped(Point::new(150.0, 150.0)),
            CellId::new(9, 9)
        );
    }

    #[test]
    fn cell_rect_round_trip() {
        let g = grid();
        for cell in g.all_cells() {
            let r = g.cell_rect(cell);
            assert_eq!(g.locate(r.center()), Some(cell));
            assert_eq!(g.cell_of_index(g.linear_index(cell)), cell);
        }
    }

    #[test]
    fn cells_intersecting_rect() {
        let g = grid();
        let hits: Vec<CellId> = g
            .cells_intersecting(&Rect::new(5.0, 5.0, 25.0, 15.0))
            .collect();
        // Spans columns 0..=2 and rows 0..=1 (closed intersection).
        assert!(hits.contains(&CellId::new(0, 0)));
        assert!(hits.contains(&CellId::new(2, 1)));
        assert_eq!(hits.len(), 6);
    }

    #[test]
    fn cells_intersecting_clamps_to_grid() {
        let g = grid();
        let hits: Vec<CellId> = g
            .cells_intersecting(&Rect::new(-50.0, -50.0, 5.0, 5.0))
            .collect();
        assert_eq!(hits, vec![CellId::new(0, 0)]);
    }

    #[test]
    #[should_panic(expected = "cell out of range")]
    fn cell_rect_rejects_out_of_range() {
        let _ = grid().cell_rect(CellId::new(10, 0));
    }
}
