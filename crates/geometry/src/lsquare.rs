//! The paper's `l`-square neighborhood (Definition 1).

use crate::{Point, Rect};

/// The `l`-square neighborhood `S_p^l` of a point `p`: the square of edge
/// length `l` centered at `p` that **includes its right and top edges and
/// excludes its left and bottom edges** (Definition 1 of the paper).
///
/// The half-open convention matters: it makes every object in the plane
/// belong to exactly one square of any regular tiling, which is what lets
/// the plane-sweep refinement treat enter/leave events consistently — an
/// object at `x_o` is inside the band of center `x_c` exactly when
/// `x_c ∈ [x_o − l/2, x_o + l/2)`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LSquare {
    /// Center point `p`.
    pub center: Point,
    /// Edge length `l` (> 0).
    pub edge: f64,
}

impl LSquare {
    /// Creates the `l`-square neighborhood of `center`.
    ///
    /// # Panics
    ///
    /// Panics if `edge` is not strictly positive and finite.
    pub fn new(center: Point, edge: f64) -> Self {
        assert!(
            edge > 0.0 && edge.is_finite(),
            "l-square edge must be positive and finite, got {edge}"
        );
        LSquare { center, edge }
    }

    /// Half the edge length, `l/2`.
    #[inline]
    pub fn half(&self) -> f64 {
        self.edge / 2.0
    }

    /// Membership with the paper's half-open semantics: `q` is inside iff
    /// `center.x − l/2 < q.x ≤ center.x + l/2` and likewise in Y.
    #[inline]
    pub fn contains(&self, q: Point) -> bool {
        let h = self.half();
        self.center.x - h < q.x
            && q.x <= self.center.x + h
            && self.center.y - h < q.y
            && q.y <= self.center.y + h
    }

    /// The closed bounding rectangle of the square. Useful for issuing
    /// range queries; the half-open membership must then be re-checked on
    /// the results.
    #[inline]
    pub fn bounding_rect(&self) -> Rect {
        Rect::centered_square(self.center, self.edge)
    }

    /// Area `l²`, the denominator of the paper's point density
    /// `d_t(p) = n_t(S_p^l) / l²`.
    #[inline]
    pub fn area(&self) -> f64 {
        self.edge * self.edge
    }

    /// Counts how many of `points` fall inside the square and divides by
    /// `l²` — the *point density* of Definition 2, computed by brute
    /// force. This is the reference implementation every indexed method is
    /// tested against.
    pub fn density_of(&self, points: &[Point]) -> f64 {
        let n = points.iter().filter(|&&q| self.contains(q)).count();
        n as f64 / self.area()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn half_open_edges() {
        let s = LSquare::new(Point::new(0.0, 0.0), 2.0);
        // Right and top edges included.
        assert!(s.contains(Point::new(1.0, 0.0)));
        assert!(s.contains(Point::new(0.0, 1.0)));
        assert!(s.contains(Point::new(1.0, 1.0)));
        // Left and bottom edges excluded.
        assert!(!s.contains(Point::new(-1.0, 0.0)));
        assert!(!s.contains(Point::new(0.0, -1.0)));
        assert!(!s.contains(Point::new(-1.0, -1.0)));
        // Interior.
        assert!(s.contains(Point::ORIGIN));
    }

    #[test]
    fn tiling_is_a_partition() {
        // With edge 1 and centers on the integer lattice, every point
        // belongs to exactly one square.
        let centers: Vec<Point> = (-2..3)
            .flat_map(|i| (-2..3).map(move |j| Point::new(i as f64, j as f64)))
            .collect();
        let probes = [
            Point::new(0.5, 0.5),
            Point::new(0.0, 0.0),
            Point::new(-0.5, 1.0),
            Point::new(1.5, -1.5),
        ];
        for q in probes {
            let owners = centers
                .iter()
                .filter(|c| LSquare::new(**c, 1.0).contains(q))
                .count();
            assert_eq!(owners, 1, "point {q:?} owned by {owners} squares");
        }
    }

    #[test]
    fn density_matches_definition() {
        let s = LSquare::new(Point::new(0.0, 0.0), 2.0);
        let pts = vec![
            Point::new(0.0, 0.0),  // in
            Point::new(0.9, 0.9),  // in
            Point::new(-1.0, 0.0), // out (left edge)
            Point::new(1.0, 1.0),  // in (top-right corner)
            Point::new(3.0, 3.0),  // out
        ];
        assert_eq!(s.density_of(&pts), 3.0 / 4.0);
    }

    #[test]
    #[should_panic(expected = "edge must be positive")]
    fn rejects_nonpositive_edge() {
        let _ = LSquare::new(Point::ORIGIN, 0.0);
    }
}
