//! Planar geometry kernel for pointwise-dense region (PDR) queries.
//!
//! This crate provides the geometric vocabulary shared by every other crate
//! in the workspace:
//!
//! * [`Point`] — a location in the XY-plane (miles in the paper's setup).
//! * [`Rect`] — an axis-aligned rectangle. Query answers are unions of
//!   rectangles with *half-open* `[lo, hi)` semantics so that abutting
//!   answer rectangles tile the plane without double counting.
//! * [`LSquare`] — the paper's `l`-square neighborhood of a point: the
//!   square of edge length `l` centered at the point that **includes its
//!   right and top edges but excludes its left and bottom edges**
//!   (Definition 1 of the paper).
//! * [`IntervalSet`] — measurable unions of 1-D intervals, the workhorse
//!   behind 2-D region measure.
//! * [`RegionSet`] — a measurable union of rectangles supporting the area
//!   of unions, intersections and differences via a slab sweep. The
//!   accuracy metrics of the paper (`r_fp`, `r_fn`) are ratios of such
//!   areas.
//! * [`GridSpec`] — addressing for the uniform `m × m` grids used by the
//!   density histogram, the filter step, and the dense-cell baseline.
//!
//! All coordinates are `f64`. The kernel is deliberately free of any
//! indexing or motion concerns; those live in `pdr-mobject`,
//! `pdr-histogram` and `pdr-tprtree`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod grid;
mod interval;
mod lsquare;
mod point;
mod rect;
mod region;

pub use grid::{CellId, GridSpec};
pub use interval::{Interval, IntervalSet};
pub use lsquare::LSquare;
pub use point::Point;
pub use rect::Rect;
pub use region::RegionSet;

/// Comparison tolerance used when deduplicating sweep-event coordinates.
///
/// Coordinates in the paper's setup are miles within a 1000-mile plane, so
/// 1e-9 is far below any physically meaningful distance while staying well
/// above `f64` rounding noise for the arithmetic we perform.
pub const EPS: f64 = 1e-9;

/// Returns `true` when two coordinates are equal within [`EPS`].
#[inline]
pub fn approx_eq(a: f64, b: f64) -> bool {
    (a - b).abs() <= EPS
}
