//! Edge-case tests for the geometry kernel's public API.

use pdr_geometry::{
    approx_eq, CellId, GridSpec, Interval, IntervalSet, LSquare, Point, Rect, RegionSet, EPS,
};

#[test]
fn approx_eq_uses_eps() {
    assert!(approx_eq(1.0, 1.0 + EPS / 2.0));
    assert!(!approx_eq(1.0, 1.0 + 10.0 * EPS));
    assert!(approx_eq(0.0, -EPS / 2.0));
}

#[test]
fn rect_from_corners_any_order() {
    let a = Point::new(3.0, 1.0);
    let b = Point::new(1.0, 4.0);
    assert_eq!(Rect::from_corners(a, b), Rect::from_corners(b, a));
    assert_eq!(Rect::from_corners(a, b), Rect::new(1.0, 1.0, 3.0, 4.0));
    // Coincident corners make a degenerate point-rect.
    assert!(Rect::from_corners(a, a).is_degenerate());
}

#[test]
fn lsquare_bounding_rect_is_closed_cover() {
    let s = LSquare::new(Point::new(5.0, 5.0), 4.0);
    let bb = s.bounding_rect();
    assert_eq!(bb, Rect::new(3.0, 3.0, 7.0, 7.0));
    // Everything the half-open square contains is inside the closed box.
    for p in [
        Point::new(7.0, 7.0),
        Point::new(3.1, 3.1),
        Point::new(5.0, 5.0),
    ] {
        if s.contains(p) {
            assert!(bb.contains(p));
        }
    }
    // The closed box additionally contains the excluded edges.
    assert!(bb.contains(Point::new(3.0, 5.0)));
    assert!(!s.contains(Point::new(3.0, 5.0)));
}

#[test]
fn grid_cells_intersecting_degenerate_rect() {
    let g = GridSpec::unit_origin(100.0, 10);
    // A zero-area rect on a cell border still intersects the touching
    // cells (closed semantics).
    let hits: Vec<CellId> = g
        .cells_intersecting(&Rect::new(10.0, 5.0, 10.0, 5.0))
        .collect();
    assert!(hits.contains(&CellId::new(0, 0)));
    assert!(hits.contains(&CellId::new(1, 0)));
}

#[test]
fn grid_cells_intersecting_whole_plane() {
    let g = GridSpec::unit_origin(100.0, 4);
    let hits: Vec<CellId> = g
        .cells_intersecting(&Rect::new(-10.0, -10.0, 110.0, 110.0))
        .collect();
    assert_eq!(hits.len(), 16);
}

#[test]
fn interval_set_contains_at_merge_seams() {
    let s = IntervalSet::from_intervals([
        Interval::new(0.0, 1.0),
        Interval::new(1.0, 2.0), // merges with the first
        Interval::new(3.0, 4.0),
    ]);
    assert_eq!(s.intervals().len(), 2);
    assert!(s.contains(1.0), "seam point belongs to the merged interval");
    assert!(!s.contains(2.5));
    assert!(s.contains(3.0) && s.contains(4.0));
}

#[test]
fn interval_intersection_at_touching_endpoints_is_empty_measure() {
    let a = IntervalSet::from_intervals([Interval::new(0.0, 1.0)]);
    let b = IntervalSet::from_intervals([Interval::new(1.0, 2.0)]);
    assert_eq!(a.intersection(&b).measure(), 0.0);
}

#[test]
fn region_contains_respects_half_open_edges() {
    let r = RegionSet::from_rects([Rect::new(0.0, 0.0, 1.0, 1.0)]);
    assert!(r.contains(Point::new(0.0, 0.0)));
    assert!(!r.contains(Point::new(1.0, 0.0)));
    assert!(!r.contains(Point::new(0.0, 1.0)));
    // Two abutting rects: the shared edge belongs to exactly the right
    // one, so the union contains it once.
    let r2 = RegionSet::from_rects([Rect::new(0.0, 0.0, 1.0, 1.0), Rect::new(1.0, 0.0, 2.0, 1.0)]);
    assert!(r2.contains(Point::new(1.0, 0.5)));
}

#[test]
fn region_extend_accumulates() {
    let mut a = RegionSet::from_rects([Rect::new(0.0, 0.0, 1.0, 1.0)]);
    let b = RegionSet::from_rects([Rect::new(2.0, 0.0, 3.0, 1.0)]);
    a.extend_from(&b);
    assert_eq!(a.len(), 2);
    assert!((a.area() - 2.0).abs() < 1e-12);
}

#[test]
fn coalesce_is_idempotent() {
    let mut r = RegionSet::from_rects([
        Rect::new(0.0, 0.0, 1.0, 1.0),
        Rect::new(0.0, 1.0, 1.0, 2.0),
        Rect::new(1.0, 0.0, 2.0, 1.0),
        Rect::new(1.0, 1.0, 2.0, 2.0),
    ]);
    r.coalesce();
    let once = r.clone();
    r.coalesce();
    assert_eq!(once.rects(), r.rects(), "coalesce must be idempotent");
    assert!((r.area() - 4.0).abs() < 1e-12);
}

#[test]
fn grid_linear_index_is_row_major_bijection() {
    let g = GridSpec::unit_origin(10.0, 3);
    let mut seen = [false; 9];
    for cell in g.all_cells() {
        let idx = g.linear_index(cell);
        assert!(!seen[idx], "duplicate linear index {idx}");
        seen[idx] = true;
    }
    assert!(seen.iter().all(|&s| s));
}
