//! Bucket page layout.
//!
//! A bucket is a singly linked chain of pages. Each page stores:
//!
//! ```text
//! offset 0   u32  next page id (u32::MAX = end of chain)
//! offset 4   u16  record count
//! offset 6   u16  reserved
//! offset 8   records...
//! ```
//!
//! A record is 40 bytes — object id plus position at the index
//! reference time plus velocity — giving ⌊4088 / 40⌋ = 102 records per
//! page, the same density as a TPR-tree leaf.

use pdr_mobject::ObjectId;
use pdr_storage::{PageId, PAGE_SIZE};

const HEADER: usize = 8;
const RECORD: usize = 40;

/// Records stored per bucket page.
pub const RECORDS_PER_PAGE: usize = (PAGE_SIZE - HEADER) / RECORD;

/// Sentinel for "no next page".
const NIL_PAGE: u32 = u32::MAX;

/// One stored motion, anchored at the index reference time.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct MotionRecord {
    /// Object identity.
    pub id: ObjectId,
    /// X position at the reference time.
    pub x: f64,
    /// Y position at the reference time.
    pub y: f64,
    /// X velocity.
    pub vx: f64,
    /// Y velocity.
    pub vy: f64,
}

impl MotionRecord {
    /// Position at offset `dt` past the reference time.
    #[inline]
    pub fn position_at(&self, dt: f64) -> pdr_geometry::Point {
        pdr_geometry::Point::new(self.x + self.vx * dt, self.y + self.vy * dt)
    }
}

/// In-memory image of one bucket page.
#[derive(Clone, Debug, PartialEq)]
pub struct RecordPage {
    /// Next page in the bucket chain.
    pub next: Option<PageId>,
    /// Stored records.
    pub records: Vec<MotionRecord>,
}

impl RecordPage {
    /// An empty page with no successor.
    pub fn empty() -> Self {
        RecordPage {
            next: None,
            records: Vec::new(),
        }
    }

    /// `true` when another record fits.
    pub fn has_room(&self) -> bool {
        self.records.len() < RECORDS_PER_PAGE
    }

    /// Serializes into a page buffer.
    ///
    /// # Panics
    ///
    /// Panics when over capacity.
    pub fn encode(&self, page: &mut [u8; PAGE_SIZE]) {
        assert!(
            self.records.len() <= RECORDS_PER_PAGE,
            "bucket page overflow: {}",
            self.records.len()
        );
        page.fill(0);
        let next = self.next.map_or(NIL_PAGE, |p| p.0);
        page[0..4].copy_from_slice(&next.to_le_bytes());
        page[4..6].copy_from_slice(&(self.records.len() as u16).to_le_bytes());
        for (i, r) in self.records.iter().enumerate() {
            let o = HEADER + i * RECORD;
            page[o..o + 8].copy_from_slice(&r.id.0.to_le_bytes());
            page[o + 8..o + 16].copy_from_slice(&r.x.to_le_bytes());
            page[o + 16..o + 24].copy_from_slice(&r.y.to_le_bytes());
            page[o + 24..o + 32].copy_from_slice(&r.vx.to_le_bytes());
            page[o + 32..o + 40].copy_from_slice(&r.vy.to_le_bytes());
        }
    }

    /// Deserializes from a page buffer.
    ///
    /// # Panics
    ///
    /// Panics on an impossible record count.
    pub fn decode(page: &[u8; PAGE_SIZE]) -> RecordPage {
        let next_raw = u32::from_le_bytes(page[0..4].try_into().unwrap());
        let count = u16::from_le_bytes(page[4..6].try_into().unwrap()) as usize;
        assert!(
            count <= RECORDS_PER_PAGE,
            "corrupt bucket page count {count}"
        );
        let f64_at = |o: usize| f64::from_le_bytes(page[o..o + 8].try_into().unwrap());
        let mut records = Vec::with_capacity(count);
        for i in 0..count {
            let o = HEADER + i * RECORD;
            records.push(MotionRecord {
                id: ObjectId(u64::from_le_bytes(page[o..o + 8].try_into().unwrap())),
                x: f64_at(o + 8),
                y: f64_at(o + 16),
                vx: f64_at(o + 24),
                vy: f64_at(o + 32),
            });
        }
        RecordPage {
            next: (next_raw != NIL_PAGE).then_some(PageId(next_raw)),
            records,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(n: usize, next: Option<PageId>) -> RecordPage {
        RecordPage {
            next,
            records: (0..n)
                .map(|i| MotionRecord {
                    id: ObjectId(i as u64),
                    x: i as f64,
                    y: -(i as f64),
                    vx: 0.5,
                    vy: -0.5,
                })
                .collect(),
        }
    }

    #[test]
    fn round_trip() {
        for n in [0, 1, 50, RECORDS_PER_PAGE] {
            for next in [None, Some(PageId(7))] {
                let p = sample(n, next);
                let mut buf = [0u8; PAGE_SIZE];
                p.encode(&mut buf);
                assert_eq!(RecordPage::decode(&buf), p);
            }
        }
    }

    #[test]
    fn capacity_matches_tpr_leaf() {
        assert_eq!(RECORDS_PER_PAGE, 102);
    }

    #[test]
    #[should_panic(expected = "overflow")]
    fn encode_rejects_overflow() {
        let p = sample(RECORDS_PER_PAGE + 1, None);
        let mut buf = [0u8; PAGE_SIZE];
        p.encode(&mut buf);
    }
}
