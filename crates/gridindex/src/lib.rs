//! A velocity-bounded grid index over moving objects.
//!
//! The paper indexes motions with a TPR-tree but notes (Section 4) that
//! "several indexing methods have been proposed for linear movement,
//! which we can adopt in our framework". This crate provides the most
//! common alternative family — a **fixed spatial grid** in the spirit
//! of the B^x-tree's partition-and-expand strategy and of update-
//! friendly grid indexes:
//!
//! * the plane is cut into `G × G` buckets; an object lives in the
//!   bucket of its position at the index *reference time*;
//! * each bucket's motions sit in a chain of 4 KiB pages behind the
//!   same [`pdr_storage::BufferPool`] the TPR-tree uses, so I/O
//!   comparisons between the two indexes are apples-to-apples;
//! * each bucket tracks the velocity bounds of its residents, so a
//!   predictive range query visits only buckets whose *velocity-
//!   expanded* footprint reaches the query rectangle at the query
//!   timestamp — much tighter than expanding by a global maximum
//!   speed.
//!
//! Grid indexes trade tight clustering for O(1) updates: queries far in
//! the future scan more buckets than a TPR-tree would touch, which is
//! exactly the trade-off the `refinement_index` ablation bench
//! measures.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod index;
mod page;

pub use index::{GridIndex, GridIndexConfig};
pub use page::{MotionRecord, RecordPage, RECORDS_PER_PAGE};
