//! The grid index proper.

use crate::page::{MotionRecord, RecordPage};
use pdr_geometry::{GridSpec, Point, Rect};
use pdr_mobject::{MotionState, ObjectId, Timestamp};
use pdr_storage::{BufferPool, Disk, FaultPlan, FaultStats, IoStats, PageId, StorageError};
use std::collections::HashMap;

/// Configuration of a [`GridIndex`].
#[derive(Clone, Copy, Debug)]
pub struct GridIndexConfig {
    /// Side length of the covered square region.
    pub extent: f64,
    /// Buckets per side.
    pub buckets_per_side: u32,
    /// Buffer-pool capacity in pages.
    pub buffer_pages: usize,
}

/// Per-bucket in-memory directory entry.
#[derive(Clone, Copy, Debug)]
struct Bucket {
    /// First page of the chain, if any.
    head: Option<PageId>,
    /// Number of live records.
    count: usize,
    /// Velocity bounds of the residents (empty bucket: +inf/-inf).
    vx_lo: f64,
    vx_hi: f64,
    vy_lo: f64,
    vy_hi: f64,
}

impl Bucket {
    fn empty() -> Self {
        Bucket {
            head: None,
            count: 0,
            vx_lo: f64::INFINITY,
            vx_hi: f64::NEG_INFINITY,
            vy_lo: f64::INFINITY,
            vy_hi: f64::NEG_INFINITY,
        }
    }

    fn absorb_velocity(&mut self, vx: f64, vy: f64) {
        self.vx_lo = self.vx_lo.min(vx);
        self.vx_hi = self.vx_hi.max(vx);
        self.vy_lo = self.vy_lo.min(vy);
        self.vy_hi = self.vy_hi.max(vy);
    }

    /// The bucket's spatial footprint at `dt` past the reference time:
    /// its rectangle expanded by the residents' velocity bounds.
    fn footprint_at(&self, rect: Rect, dt: f64) -> Option<Rect> {
        if self.count == 0 {
            return None;
        }
        Some(Rect {
            x_lo: rect.x_lo + self.vx_lo.min(0.0) * dt,
            y_lo: rect.y_lo + self.vy_lo.min(0.0) * dt,
            x_hi: rect.x_hi + self.vx_hi.max(0.0) * dt,
            y_hi: rect.y_hi + self.vy_hi.max(0.0) * dt,
        })
    }
}

/// A velocity-bounded grid index storing motions in per-bucket page
/// chains behind an LRU buffer pool.
///
/// Objects are placed by their position at the index reference time
/// `t_ref` (backward extrapolation is exact for linear motion, so any
/// report can be anchored). Velocity bounds per bucket only ever grow
/// between [`rebuild_bounds`](GridIndex::rebuild_bounds) calls — the
/// classic trade-off of partition-based moving-object indexes.
pub struct GridIndex {
    pool: BufferPool,
    cfg: GridIndexConfig,
    spec: GridSpec,
    t_ref: Timestamp,
    buckets: Vec<Bucket>,
    /// Object → bucket linear index (bottom-up deletion, mirroring the
    /// TPR-tree's object→leaf map; update I/O is not charged).
    bucket_of: HashMap<ObjectId, usize>,
    len: usize,
}

impl GridIndex {
    /// Creates an empty index anchored at `t_ref`.
    pub fn new(cfg: GridIndexConfig, t_ref: Timestamp) -> Self {
        let spec = GridSpec::unit_origin(cfg.extent, cfg.buckets_per_side);
        GridIndex {
            pool: BufferPool::new(Disk::new(), cfg.buffer_pages),
            cfg,
            spec,
            t_ref,
            buckets: vec![Bucket::empty(); spec.cell_count()],
            bucket_of: HashMap::new(),
            len: 0,
        }
    }

    /// Number of indexed objects.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The reference timestamp.
    pub fn t_ref(&self) -> Timestamp {
        self.t_ref
    }

    /// Buffer-pool I/O counters.
    pub fn io_stats(&self) -> IoStats {
        self.pool.stats()
    }

    /// Zeroes the I/O counters.
    pub fn reset_io_stats(&self) {
        self.pool.reset_stats();
    }

    /// Pages currently allocated.
    pub fn page_count(&self) -> usize {
        self.pool.allocated_pages()
    }

    fn dt(&self, t: Timestamp) -> f64 {
        t as f64 - self.t_ref as f64
    }

    fn record_of(&self, id: ObjectId, m: &MotionState) -> MotionRecord {
        let p = m.position_at(self.t_ref);
        MotionRecord {
            id,
            x: p.x,
            y: p.y,
            vx: m.velocity.x,
            vy: m.velocity.y,
        }
    }

    /// Inserts a motion.
    ///
    /// # Panics
    ///
    /// Panics when the object is already indexed, or when its anchored
    /// position falls outside the grid (callers clamp or filter objects
    /// leaving the monitored region).
    pub fn insert(&mut self, id: ObjectId, motion: &MotionState) {
        assert!(
            !self.bucket_of.contains_key(&id),
            "object {id:?} already indexed; delete it first"
        );
        let rec = self.record_of(id, motion);
        let cell = self
            .spec
            .locate(Point::new(rec.x, rec.y))
            .unwrap_or_else(|| self.spec.locate_clamped(Point::new(rec.x, rec.y)));
        let idx = self.spec.linear_index(cell);
        // Find a page with room at the head of the chain, or prepend a
        // fresh one (prepending keeps inserts O(1) pages).
        let head = self.buckets[idx].head;
        let target = match head {
            Some(page) => {
                let has_room = self
                    .pool
                    .read_page(page, |bytes| RecordPage::decode(bytes).has_room());
                if has_room {
                    Some(page)
                } else {
                    None
                }
            }
            None => None,
        };
        let page = match target {
            Some(page) => page,
            None => {
                let fresh = self.pool.allocate_page();
                let node = RecordPage {
                    next: head,
                    records: Vec::new(),
                };
                self.pool.overwrite_page(fresh, |bytes| node.encode(bytes));
                self.buckets[idx].head = Some(fresh);
                fresh
            }
        };
        self.pool.write_page(page, |bytes| {
            let mut node = RecordPage::decode(bytes);
            node.records.push(rec);
            node.encode(bytes);
        });
        self.buckets[idx].count += 1;
        self.buckets[idx].absorb_velocity(rec.vx, rec.vy);
        self.bucket_of.insert(id, idx);
        self.len += 1;
    }

    /// Removes an object; returns `false` when it was not indexed.
    ///
    /// Velocity bounds are *not* shrunk on removal (they are rebuilt
    /// wholesale by [`rebuild_bounds`](GridIndex::rebuild_bounds)); the
    /// bounds stay sound, just conservative.
    pub fn remove(&mut self, id: ObjectId) -> bool {
        let Some(idx) = self.bucket_of.remove(&id) else {
            return false;
        };
        // Walk the chain; remove the record; if a page empties, unlink.
        let mut prev: Option<PageId> = None;
        let mut cur = self.buckets[idx].head;
        while let Some(page) = cur {
            let (found, next, now_empty) = self.pool.write_page(page, |bytes| {
                let mut node = RecordPage::decode(bytes);
                let pos = node.records.iter().position(|r| r.id == id);
                let found = pos.is_some();
                if let Some(pos) = pos {
                    node.records.swap_remove(pos);
                    node.encode(bytes);
                }
                (found, node.next, node.records.is_empty())
            });
            if found {
                if now_empty {
                    match prev {
                        Some(p) => self.pool.write_page(p, |bytes| {
                            let mut node = RecordPage::decode(bytes);
                            node.next = next;
                            node.encode(bytes);
                        }),
                        None => self.buckets[idx].head = next,
                    }
                    self.pool.free_page(page);
                }
                self.buckets[idx].count -= 1;
                self.len -= 1;
                return true;
            }
            prev = Some(page);
            cur = next;
        }
        panic!("bucket_of desynchronized: {id:?} missing from bucket {idx}");
    }

    /// Re-reports an object's motion (delete + insert).
    pub fn update(&mut self, id: ObjectId, motion: &MotionState) {
        let existed = self.remove(id);
        debug_assert!(existed, "update of unindexed object {id:?}");
        self.insert(id, motion);
    }

    /// Predictive range query: all objects whose extrapolated position
    /// at `t` lies in `rect` (closed semantics). Only buckets whose
    /// velocity-expanded footprint reaches `rect` are scanned.
    ///
    /// Takes `&self`: the buffer pool's interior mutex makes concurrent
    /// range queries from several threads safe on a shared index.
    pub fn range_at(&self, rect: &Rect, t: Timestamp) -> Vec<(ObjectId, Point)> {
        let mut io = IoStats::default();
        self.range_at_collect(rect, t, &mut io)
    }

    /// Like [`range_at`](GridIndex::range_at), additionally adding the
    /// I/O this query performed to `io` — the per-query/per-thread
    /// collector merged by parallel callers.
    pub fn range_at_collect(
        &self,
        rect: &Rect,
        t: Timestamp,
        io: &mut IoStats,
    ) -> Vec<(ObjectId, Point)> {
        self.try_range_at_collect(rect, t, io)
            .unwrap_or_else(|e| panic!("unhandled storage fault: {e}"))
    }

    /// Fallible [`range_at_collect`](GridIndex::range_at_collect):
    /// returns the typed [`StorageError`] when a page read fails or
    /// fails checksum verification (only possible when a [`FaultPlan`]
    /// is installed on the pool), instead of panicking.
    pub fn try_range_at_collect(
        &self,
        rect: &Rect,
        t: Timestamp,
        io: &mut IoStats,
    ) -> Result<Vec<(ObjectId, Point)>, StorageError> {
        let mut out = Vec::new();
        self.try_range_at_into(rect, t, io, &mut out)?;
        Ok(out)
    }

    /// [`try_range_at_collect`](GridIndex::try_range_at_collect) into a
    /// caller-owned buffer, replacing its contents — lets the refinement
    /// hot loop reuse one hit buffer across candidate cells instead of
    /// allocating a fresh result vector per cell.
    pub fn try_range_at_into(
        &self,
        rect: &Rect,
        t: Timestamp,
        io: &mut IoStats,
        out: &mut Vec<(ObjectId, Point)>,
    ) -> Result<(), StorageError> {
        out.clear();
        let dt = self.dt(t);
        for cell in self.spec.all_cells() {
            let idx = self.spec.linear_index(cell);
            let Some(fp) = self.buckets[idx].footprint_at(self.spec.cell_rect(cell), dt) else {
                continue;
            };
            if !fp.intersects(rect) {
                continue;
            }
            let mut cur = self.buckets[idx].head;
            while let Some(page) = cur {
                let node = self
                    .pool
                    .try_read_page_tracked(page, io, RecordPage::decode)?;
                for r in &node.records {
                    let p = r.position_at(dt);
                    if rect.contains(p) {
                        out.push((r.id, p));
                    }
                }
                cur = node.next;
            }
        }
        Ok(())
    }

    /// Discards all contents and storage, re-anchoring the empty index
    /// at `t_ref` on a fresh simulated device (recovery rebuilds it
    /// from checkpointed motions). Any installed fault plan is
    /// discarded with the device.
    pub fn reset(&mut self, t_ref: Timestamp) {
        *self = GridIndex::new(self.cfg, t_ref);
    }

    /// Installs a [`FaultPlan`] on the index's buffer pool.
    pub fn set_fault_plan(&self, plan: FaultPlan) {
        self.pool.set_fault_plan(plan);
    }

    /// Counters of injected faults / detected checksum failures on the
    /// index's storage.
    pub fn fault_stats(&self) -> FaultStats {
        self.pool.fault_stats()
    }

    /// Recomputes every bucket's velocity bounds from its residents.
    /// Periodic rebuilds keep query expansion tight after churn.
    pub fn rebuild_bounds(&mut self) {
        for idx in 0..self.buckets.len() {
            let head = self.buckets[idx].head;
            let count = self.buckets[idx].count;
            let mut fresh = Bucket::empty();
            fresh.head = head;
            fresh.count = count;
            let mut cur = head;
            while let Some(page) = cur {
                let node = self.pool.read_page(page, RecordPage::decode);
                for r in &node.records {
                    fresh.absorb_velocity(r.vx, r.vy);
                }
                cur = node.next;
            }
            self.buckets[idx] = fresh;
        }
    }

    /// Structural validation for tests: chains well-formed, counts and
    /// the object map consistent, velocity bounds sound.
    pub fn validate(&self) {
        let mut seen = 0usize;
        for idx in 0..self.buckets.len() {
            let bucket = self.buckets[idx];
            let mut chain_count = 0usize;
            let mut cur = bucket.head;
            while let Some(page) = cur {
                let node = self.pool.read_page(page, RecordPage::decode);
                assert!(
                    cur == bucket.head || !node.records.is_empty(),
                    "empty non-head page in bucket {idx}"
                );
                for r in &node.records {
                    assert_eq!(
                        self.bucket_of.get(&r.id).copied(),
                        Some(idx),
                        "bucket_of wrong for {:?}",
                        r.id
                    );
                    assert!(
                        r.vx >= bucket.vx_lo
                            && r.vx <= bucket.vx_hi
                            && r.vy >= bucket.vy_lo
                            && r.vy <= bucket.vy_hi,
                        "velocity bounds unsound in bucket {idx}"
                    );
                }
                chain_count += node.records.len();
                cur = node.next;
            }
            assert_eq!(chain_count, bucket.count, "count mismatch in bucket {idx}");
            seen += chain_count;
        }
        assert_eq!(seen, self.len, "total count mismatch");
        assert_eq!(self.bucket_of.len(), self.len, "object map size mismatch");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> GridIndexConfig {
        GridIndexConfig {
            extent: 1000.0,
            buckets_per_side: 10,
            buffer_pages: 32,
        }
    }

    fn motion(x: f64, y: f64, vx: f64, vy: f64) -> MotionState {
        MotionState::new(Point::new(x, y), Point::new(vx, vy), 0)
    }

    struct Lcg(u64);
    impl Lcg {
        fn next(&mut self) -> f64 {
            self.0 = self
                .0
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (self.0 >> 33) as f64 / (1u64 << 31) as f64
        }
    }

    fn random_motions(n: usize, seed: u64) -> Vec<(ObjectId, MotionState)> {
        let mut rng = Lcg(seed);
        (0..n)
            .map(|i| {
                (
                    ObjectId(i as u64),
                    motion(
                        rng.next() * 1000.0,
                        rng.next() * 1000.0,
                        rng.next() * 4.0 - 2.0,
                        rng.next() * 4.0 - 2.0,
                    ),
                )
            })
            .collect()
    }

    #[test]
    fn insert_query_matches_brute_force() {
        let motions = random_motions(2000, 3);
        let mut g = GridIndex::new(cfg(), 0);
        for (id, m) in &motions {
            g.insert(*id, m);
        }
        g.validate();
        for qt in [0u64, 5, 12] {
            let rect = Rect::new(200.0, 200.0, 450.0, 400.0);
            let mut got: Vec<u64> = g
                .range_at(&rect, qt)
                .into_iter()
                .map(|(id, _)| id.0)
                .collect();
            got.sort_unstable();
            let mut expect: Vec<u64> = motions
                .iter()
                .filter(|(_, m)| rect.contains(m.position_at(qt)))
                .map(|(id, _)| id.0)
                .collect();
            expect.sort_unstable();
            assert_eq!(got, expect, "t = {qt}");
        }
    }

    #[test]
    fn removals_and_updates() {
        let motions = random_motions(800, 7);
        let mut g = GridIndex::new(cfg(), 0);
        for (id, m) in &motions {
            g.insert(*id, m);
        }
        for (id, _) in motions.iter().take(300) {
            assert!(g.remove(*id));
        }
        for (id, _) in motions.iter().skip(300).take(200) {
            g.update(*id, &motion(500.0, 500.0, 0.0, 0.0));
        }
        g.validate();
        assert_eq!(g.len(), 500);
        let hits = g.range_at(&Rect::new(499.0, 499.0, 501.0, 501.0), 9);
        assert_eq!(hits.len(), 200);
        assert!(!g.remove(ObjectId(0)), "already removed");
    }

    #[test]
    fn velocity_bounds_prune_buckets() {
        // Stationary cluster far from the query: its bucket must not be
        // read even for far-future timestamps.
        let mut g = GridIndex::new(cfg(), 0);
        for i in 0..50 {
            g.insert(ObjectId(i), &motion(50.0, 50.0, 0.0, 0.0));
        }
        g.reset_io_stats();
        let _ = g.range_at(&Rect::new(900.0, 900.0, 950.0, 950.0), 1000);
        assert_eq!(
            g.io_stats().logical_reads,
            0,
            "stationary far bucket should be pruned by velocity bounds"
        );
    }

    #[test]
    fn rebuild_bounds_tightens_after_churn() {
        let mut g = GridIndex::new(cfg(), 0);
        // A fast object inflates its bucket's bounds, then leaves.
        g.insert(ObjectId(0), &motion(50.0, 50.0, 50.0, 50.0));
        g.insert(ObjectId(1), &motion(50.0, 50.0, 0.0, 0.0));
        g.remove(ObjectId(0));
        // Stale bounds force a scan for a far query...
        g.reset_io_stats();
        let _ = g.range_at(&Rect::new(800.0, 800.0, 900.0, 900.0), 20);
        let stale_reads = g.io_stats().logical_reads;
        assert!(stale_reads > 0);
        // ...until a rebuild prunes it again.
        g.rebuild_bounds();
        g.reset_io_stats();
        let _ = g.range_at(&Rect::new(800.0, 800.0, 900.0, 900.0), 20);
        assert_eq!(g.io_stats().logical_reads, 0);
        g.validate();
    }

    #[test]
    fn page_chains_grow_and_shrink() {
        let mut g = GridIndex::new(cfg(), 0);
        // 300 objects into one bucket: 3 pages.
        for i in 0..300 {
            g.insert(ObjectId(i), &motion(10.0, 10.0, 0.0, 0.0));
        }
        assert!(g.page_count() >= 3);
        for i in 0..300 {
            assert!(g.remove(ObjectId(i)));
        }
        g.validate();
        assert!(g.is_empty());
        assert_eq!(g.page_count(), 0, "all pages should be freed");
    }

    #[test]
    fn objects_outside_grid_are_clamped() {
        let mut g = GridIndex::new(cfg(), 0);
        g.insert(ObjectId(1), &motion(-50.0, 500.0, 1.0, 0.0));
        g.validate();
        // Still findable once it enters the region.
        let hits = g.range_at(&Rect::new(0.0, 450.0, 100.0, 550.0), 100);
        assert_eq!(hits.len(), 1);
    }
}
