//! Density histograms over moving objects (Section 5.1 of the paper).
//!
//! A *density histogram* (DH) maintains, for each timestamp `t` in the
//! horizon `[t_now, t_now + H]`, a counter per grid cell of the number
//! of objects located in that cell at `t`. Updates apply the paper's
//! insertion/deletion protocol: an insertion rasterizes the object's
//! predicted trajectory over the horizon, incrementing one cell per
//! timestamp; a deletion decrements the cells of the *old* trajectory.
//!
//! The histogram is the filter stage of the exact method and — used
//! alone, by accepting or rejecting candidate cells wholesale — the
//! "optimistic/pessimistic DH" baseline the paper evaluates against PA
//! in Section 7.2.
//!
//! [`PrefixSum2d`] turns one timestamp's grid into O(1) rectangle sums,
//! which the filter step uses to count conservative and expansive
//! neighborhoods for every cell in O(m²) total.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod dh;
mod prefix;

pub use dh::DensityHistogram;
pub use prefix::PrefixSum2d;
