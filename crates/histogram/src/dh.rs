//! The ring-buffered per-timestamp density histogram.

use crate::PrefixSum2d;
use pdr_geometry::{CellId, GridSpec, Point};
use pdr_mobject::{TimeHorizon, Timestamp, Update};

/// Per-timestamp object counts over an `m × m` grid, covering the
/// rolling horizon `[t_base, t_base + H]`.
///
/// Slots are ring-buffered by `t mod (H + 1)`. Advancing time recycles
/// expired slots by zeroing them, which is correct because a motion
/// reported at `t_ref` only ever contributes to timestamps
/// `≤ t_ref + H`: a slot reborn as timestamp `t_base' + H` can only
/// receive contributions from motions reported at `t_base'` or later,
/// none of which existed when the slot was zeroed.
///
/// Counters are `i32` (4 bytes), matching the paper's storage figure of
/// `H · m²` counters.
///
/// ```
/// use pdr_histogram::DensityHistogram;
/// use pdr_mobject::{MotionState, ObjectId, TimeHorizon, Update};
/// use pdr_geometry::{CellId, Point};
///
/// let mut dh = DensityHistogram::new(100.0, 10, TimeHorizon::new(3, 3), 0);
/// // An object crossing cells at 10 units per tick.
/// dh.apply(&Update::insert(
///     ObjectId(1),
///     0,
///     MotionState::new(Point::new(5.0, 5.0), Point::new(10.0, 0.0), 0),
/// ));
/// assert_eq!(dh.count_at(0, CellId::new(0, 0)), 1);
/// assert_eq!(dh.count_at(3, CellId::new(3, 0)), 1);
///
/// // O(1) neighborhood sums via prefix sums (the filter step).
/// let sums = dh.prefix_sums_at(3);
/// assert_eq!(sums.square_sum(CellId::new(3, 0), 1), 1);
/// ```
#[derive(Debug)]
pub struct DensityHistogram {
    grid: GridSpec,
    horizon: TimeHorizon,
    t_base: Timestamp,
    /// `slots × m²` counters, slot-major.
    counts: Vec<i32>,
    /// Monotone mutation counter: bumped whenever the counters can have
    /// changed ([`apply`](Self::apply), [`advance_to`](Self::advance_to)).
    /// Derived per-timestamp state (prefix sums, classifications) cached
    /// under an epoch stays valid exactly while the epoch is unchanged.
    epoch: u64,
    /// Per-cell epoch of the last [`apply`](Self::apply) whose motion
    /// touched the cell at *any* in-window timestamp (positions outside
    /// the grid are clamped to the nearest boundary cell, so boundary
    /// effects stay covered). Incremental consumers diff this against a
    /// remembered epoch via [`dirty_cells_since`](Self::dirty_cells_since)
    /// to re-derive only the cells whose neighborhood can have changed.
    /// Not serialized: like `epoch`, it identifies states within one
    /// instance's lifetime only.
    cell_epochs: Vec<u64>,
}

impl DensityHistogram {
    /// Creates an empty histogram over `[0, extent]²` with `m × m`
    /// cells, starting its horizon at `t_start`.
    pub fn new(extent: f64, m: u32, horizon: TimeHorizon, t_start: Timestamp) -> Self {
        let grid = GridSpec::unit_origin(extent, m);
        let counts = vec![0i32; horizon.slot_count() * grid.cell_count()];
        let cell_epochs = vec![0u64; grid.cell_count()];
        DensityHistogram {
            grid,
            horizon,
            t_base: t_start,
            counts,
            epoch: 0,
            cell_epochs,
        }
    }

    /// The histogram's mutation epoch. Any two calls returning the same
    /// value bracket a span in which no counter changed, so snapshots
    /// derived from the planes (prefix sums, cell classifications) can
    /// be cached keyed on `(t, epoch)`. Restored histograms restart at
    /// epoch 0 — the epoch identifies states *within* one instance's
    /// lifetime, not across checkpoints.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The grid specification (cell geometry).
    pub fn grid(&self) -> GridSpec {
        self.grid
    }

    /// The configured time horizon.
    pub fn horizon(&self) -> TimeHorizon {
        self.horizon
    }

    /// Current base timestamp `t_now`; slots cover
    /// `[t_base, t_base + H]`.
    pub fn t_base(&self) -> Timestamp {
        self.t_base
    }

    /// `true` when timestamp `t` currently has a slot.
    pub fn covers(&self, t: Timestamp) -> bool {
        self.horizon.covers(self.t_base, t)
    }

    /// Memory footprint of the counters in bytes — the quantity traded
    /// against accuracy in Figure 8(c)/(d).
    pub fn memory_bytes(&self) -> usize {
        self.counts.len() * std::mem::size_of::<i32>()
    }

    #[inline]
    fn slot_of(&self, t: Timestamp) -> usize {
        (t % self.horizon.slot_count() as u64) as usize
    }

    #[inline]
    fn idx(&self, t: Timestamp, cell: CellId) -> usize {
        self.slot_of(t) * self.grid.cell_count() + self.grid.linear_index(cell)
    }

    /// Count of objects in `cell` at timestamp `t`.
    ///
    /// # Panics
    ///
    /// Panics when `t` is outside the current horizon window.
    pub fn count_at(&self, t: Timestamp, cell: CellId) -> i64 {
        assert!(
            self.covers(t),
            "timestamp {t} outside horizon [{}, {}]",
            self.t_base,
            self.t_base + self.horizon.h()
        );
        self.counts[self.idx(t, cell)] as i64
    }

    /// The whole `m²` counter plane for timestamp `t`, row-major.
    pub fn plane_at(&self, t: Timestamp) -> &[i32] {
        assert!(self.covers(t), "timestamp {t} outside horizon");
        let cells = self.grid.cell_count();
        let start = self.slot_of(t) * cells;
        &self.counts[start..start + cells]
    }

    /// Builds the 2-D prefix sums of timestamp `t`'s plane, enabling
    /// O(1) neighborhood counts in the filter step.
    pub fn prefix_sums_at(&self, t: Timestamp) -> PrefixSum2d {
        PrefixSum2d::build(self.grid.cells_per_side(), self.plane_at(t))
    }

    /// Applies one protocol update: rasterizes the affected trajectory
    /// over the intersection of the update's affected range with the
    /// current horizon window. Positions that extrapolate outside the
    /// grid are skipped (the object has left the monitored region).
    pub fn apply(&mut self, update: &Update) {
        let Some((from, to)) = update.affected_range(self.horizon.h()) else {
            return;
        };
        let from = from.max(self.t_base);
        let to = to.min(self.t_base + self.horizon.h());
        if from > to {
            return;
        }
        let motion = update.motion();
        let sign = update.sign() as i32;
        self.epoch += 1;
        for t in from..=to {
            let pos = motion.position_at(t);
            if let Some(cell) = self.grid.locate(pos) {
                let i = self.idx(t, cell);
                self.counts[i] += sign;
            }
        }
        // Dirty-mark the whole in-window tail of the trajectory, not
        // just the counted range: a refinement index extrapolates the
        // motion past its counted contribution, so any timestamp a query
        // can still resolve to must see the touched cell as dirty.
        // Out-of-grid positions are clamped — they can still influence
        // boundary-cell refinement through the `l/2` inflation.
        let mark_to = self.t_base + self.horizon.h();
        for t in from..=mark_to {
            let cell = self.grid.locate_clamped(motion.position_at(t));
            self.cell_epochs[self.grid.linear_index(cell)] = self.epoch;
        }
    }

    /// Cells touched by any [`apply`](Self::apply) *after* the epoch
    /// `since` was observed, in row-major order. Together with
    /// [`epoch`](Self::epoch) this is the incremental-maintenance
    /// contract: derived per-cell state built at epoch `since` is still
    /// valid for every cell *not* returned here (horizon advances recycle
    /// whole timestamps, never individual cells, so they invalidate
    /// per-timestamp state but not per-cell refinement geometry).
    pub fn dirty_cells_since(&self, since: u64) -> impl Iterator<Item = CellId> + '_ {
        self.cell_epochs
            .iter()
            .enumerate()
            .filter(move |(_, &e)| e > since)
            .map(|(i, _)| self.grid.cell_of_index(i))
    }

    /// Advances the horizon base to `t_new`, recycling (zeroing) the
    /// slots of expired timestamps so they can represent
    /// `(t_old_end, t_new + H]`.
    ///
    /// # Panics
    ///
    /// Panics when time moves backwards.
    pub fn advance_to(&mut self, t_new: Timestamp) {
        assert!(t_new >= self.t_base, "time cannot move backwards");
        let slots = self.horizon.slot_count() as u64;
        let steps = t_new - self.t_base;
        if steps > 0 {
            self.epoch += 1;
        }
        if steps >= slots {
            // The entire window expired.
            self.counts.fill(0);
        } else {
            let cells = self.grid.cell_count();
            for t in self.t_base..t_new {
                let start = self.slot_of(t) * cells;
                self.counts[start..start + cells].fill(0);
            }
        }
        self.t_base = t_new;
    }

    /// Total object count recorded for timestamp `t` (diagnostics: for
    /// a closed system it must equal the number of live objects inside
    /// the region).
    pub fn total_at(&self, t: Timestamp) -> i64 {
        self.plane_at(t).iter().map(|&c| c as i64).sum()
    }

    /// Asserts that no counter is negative — a violated invariant means
    /// a deletion did not mirror its insertion. Intended for tests.
    pub fn validate_non_negative(&self) {
        for (i, &c) in self.counts.iter().enumerate() {
            assert!(c >= 0, "negative counter {c} at flat index {i}");
        }
    }

    /// Serializes the histogram into a versioned checkpoint, so a
    /// restarting server resumes with full horizon coverage instead of
    /// waiting up to `U + W` timestamps to refill its windows.
    pub fn serialize(&self) -> Vec<u8> {
        let mut w = pdr_storage::ByteWriter::with_capacity(32 + 4 * self.counts.len());
        w.put_bytes(b"PDRH");
        w.put_u16(1); // version
        w.put_f64(self.grid.bounds().width());
        w.put_u32(self.grid.cells_per_side());
        w.put_u64(self.horizon.max_update_time());
        w.put_u64(self.horizon.prediction_window());
        w.put_u64(self.t_base);
        w.put_u64(self.counts.len() as u64);
        for &c in &self.counts {
            w.put_i32(c);
        }
        w.into_bytes()
    }

    /// Restores a histogram from [`serialize`](Self::serialize) output.
    pub fn deserialize(bytes: &[u8]) -> Result<Self, pdr_storage::CodecError> {
        use pdr_storage::CodecError;
        let mut r = pdr_storage::ByteReader::new(bytes);
        r.expect_magic(b"PDRH")?;
        let version = r.get_u16()?;
        if version != 1 {
            return Err(CodecError::BadVersion(version));
        }
        let extent = r.get_f64()?;
        if !(extent.is_finite() && extent > 0.0) {
            return Err(CodecError::Corrupt("extent"));
        }
        let m = r.get_u32()?;
        if m == 0 {
            return Err(CodecError::Corrupt("grid size"));
        }
        let u = r.get_u64()?;
        let wnd = r.get_u64()?;
        if u + wnd == 0 {
            return Err(CodecError::Corrupt("horizon"));
        }
        let horizon = TimeHorizon::new(u, wnd);
        let t_base = r.get_u64()?;
        let count = r.get_u64()? as usize;
        let grid = GridSpec::unit_origin(extent, m);
        if count != horizon.slot_count() * grid.cell_count() {
            return Err(CodecError::Corrupt("counter length"));
        }
        let mut counts = Vec::with_capacity(count);
        for _ in 0..count {
            counts.push(r.get_i32()?);
        }
        let cell_epochs = vec![0u64; grid.cell_count()];
        Ok(DensityHistogram {
            grid,
            horizon,
            t_base,
            counts,
            epoch: 0,
            cell_epochs,
        })
    }

    /// Brute-force reference count for tests: how many of `points` fall
    /// in `cell`.
    pub fn reference_count(grid: &GridSpec, points: &[Point], cell: CellId) -> i64 {
        points
            .iter()
            .filter(|&&p| grid.locate(p) == Some(cell))
            .count() as i64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdr_mobject::{MotionState, ObjectId, ObjectTable};

    fn horizon() -> TimeHorizon {
        TimeHorizon::new(2, 3) // H = 5, 6 slots
    }

    fn dh() -> DensityHistogram {
        DensityHistogram::new(100.0, 10, horizon(), 0)
    }

    fn motion(x: f64, y: f64, vx: f64, vy: f64, t: Timestamp) -> MotionState {
        MotionState::new(Point::new(x, y), Point::new(vx, vy), t)
    }

    #[test]
    fn insertion_rasterizes_trajectory() {
        let mut h = dh();
        // Moves right 10 units per tick: occupies a new column each tick.
        let u = Update::insert(ObjectId(1), 0, motion(5.0, 5.0, 10.0, 0.0, 0));
        h.apply(&u);
        for t in 0..=5u64 {
            let cell = CellId::new(t as u32, 0);
            assert_eq!(h.count_at(t, cell), 1, "t={t}");
        }
        assert_eq!(h.total_at(3), 1);
    }

    #[test]
    fn deletion_cancels_insertion() {
        let mut h = dh();
        let m = motion(5.0, 5.0, 10.0, 0.0, 0);
        h.apply(&Update::insert(ObjectId(1), 0, m));
        h.apply(&Update::delete(ObjectId(1), 0, m));
        for t in 0..=5u64 {
            assert_eq!(h.total_at(t), 0, "t={t}");
        }
        h.validate_non_negative();
    }

    #[test]
    fn movement_report_updates_future_only() {
        let mut h = dh();
        let mut tab = ObjectTable::new();
        for u in tab.report(ObjectId(1), 0, motion(5.0, 5.0, 10.0, 0.0, 0)) {
            h.apply(&u);
        }
        h.advance_to(2);
        // Re-report at t=2 from a different place.
        for u in tab.report(ObjectId(1), 2, motion(95.0, 95.0, 0.0, 0.0, 2)) {
            h.apply(&u);
        }
        h.validate_non_negative();
        // At t=2..: object is at (95, 95) only.
        for t in 2..=7u64 {
            assert_eq!(h.count_at(t, CellId::new(9, 9)), 1, "t={t}");
            assert_eq!(h.total_at(t), 1, "t={t}");
        }
    }

    #[test]
    fn objects_leaving_region_are_skipped() {
        let mut h = dh();
        // Exits the 100-unit region after t=1.
        let u = Update::insert(ObjectId(1), 0, motion(95.0, 50.0, 10.0, 0.0, 0));
        h.apply(&u);
        assert_eq!(h.total_at(0), 1);
        assert_eq!(h.total_at(1), 0, "object left the region");
    }

    #[test]
    fn advance_recycles_slots_zeroed() {
        let mut h = dh();
        h.apply(&Update::insert(
            ObjectId(1),
            0,
            motion(50.0, 50.0, 0.0, 0.0, 0),
        ));
        assert_eq!(h.total_at(5), 1);
        h.advance_to(3);
        // Old slots 0..2 recycled as 6..8; they must be empty.
        for t in 6..=8u64 {
            assert_eq!(h.total_at(t), 0, "recycled slot t={t}");
        }
        // Still-live slots keep their counts.
        for t in 3..=5u64 {
            assert_eq!(h.total_at(t), 1, "live slot t={t}");
        }
    }

    #[test]
    fn advance_past_entire_window_clears_all() {
        let mut h = dh();
        h.apply(&Update::insert(
            ObjectId(1),
            0,
            motion(50.0, 50.0, 0.0, 0.0, 0),
        ));
        h.advance_to(100);
        for t in 100..=105u64 {
            assert_eq!(h.total_at(t), 0);
        }
    }

    #[test]
    #[should_panic(expected = "outside horizon")]
    fn query_outside_window_panics() {
        let h = dh();
        let _ = h.count_at(6, CellId::new(0, 0));
    }

    #[test]
    fn matches_brute_force_counts() {
        // A deterministic swarm of 50 objects with varied velocities.
        let mut h = DensityHistogram::new(1000.0, 25, TimeHorizon::new(5, 5), 0);
        let mut tab = ObjectTable::new();
        let mut seed = 7u64;
        let mut rng = move || {
            seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
            (seed >> 33) as f64 / (1u64 << 31) as f64
        };
        for i in 0..50 {
            let m = motion(
                rng() * 1000.0,
                rng() * 1000.0,
                rng() * 10.0 - 5.0,
                rng() * 10.0 - 5.0,
                0,
            );
            for u in tab.report(ObjectId(i), 0, m) {
                h.apply(&u);
            }
        }
        for t in [0u64, 4, 10] {
            let pts = tab.positions_at(t);
            let grid = h.grid();
            for cell in grid.all_cells() {
                // Brute force counts only in-region points, like apply().
                let expect: i64 = pts
                    .iter()
                    .filter(|p| grid.locate(**p) == Some(cell))
                    .count() as i64;
                assert_eq!(h.count_at(t, cell), expect, "t={t} cell={cell:?}");
            }
        }
    }

    #[test]
    fn checkpoint_round_trip() {
        let mut h = dh();
        h.apply(&Update::insert(
            ObjectId(1),
            0,
            motion(5.0, 5.0, 10.0, 0.0, 0),
        ));
        h.apply(&Update::insert(
            ObjectId(2),
            0,
            motion(55.0, 55.0, 0.0, 0.0, 0),
        ));
        h.advance_to(2);
        let bytes = h.serialize();
        let restored = DensityHistogram::deserialize(&bytes).unwrap();
        assert_eq!(restored.t_base(), 2);
        assert_eq!(restored.grid(), h.grid());
        for t in 2..=7u64 {
            assert_eq!(restored.plane_at(t), h.plane_at(t), "t={t}");
        }
    }

    #[test]
    fn checkpoint_rejects_garbage() {
        use pdr_storage::CodecError;
        assert_eq!(
            DensityHistogram::deserialize(b"nope").unwrap_err(),
            CodecError::BadMagic
        );
        let mut good = dh().serialize();
        good[4] = 99; // version byte
        assert!(matches!(
            DensityHistogram::deserialize(&good).unwrap_err(),
            CodecError::BadVersion(_)
        ));
        let good = dh().serialize();
        assert_eq!(
            DensityHistogram::deserialize(&good[..good.len() - 1]).unwrap_err(),
            CodecError::UnexpectedEof
        );
    }

    #[test]
    fn dirty_cells_track_applies_not_advances() {
        let mut h = dh();
        let e0 = h.epoch();
        assert_eq!(h.dirty_cells_since(e0).count(), 0);
        h.apply(&Update::insert(
            ObjectId(1),
            0,
            motion(5.0, 5.0, 0.0, 0.0, 0),
        ));
        let dirty: Vec<CellId> = h.dirty_cells_since(e0).collect();
        assert_eq!(dirty, vec![CellId::new(0, 0)]);
        // A horizon advance invalidates per-timestamp planes (epoch
        // moves) but dirties no cell.
        let e1 = h.epoch();
        h.advance_to(1);
        assert!(h.epoch() > e1);
        assert_eq!(h.dirty_cells_since(e1).count(), 0);
        // A trajectory that leaves the grid marks the clamped boundary
        // cell even though its counts are skipped.
        let e2 = h.epoch();
        h.apply(&Update::insert(
            ObjectId(2),
            1,
            motion(95.0, 55.0, 50.0, 0.0, 1),
        ));
        let dirty: Vec<CellId> = h.dirty_cells_since(e2).collect();
        assert_eq!(dirty, vec![CellId::new(9, 5)]);
        // The old mark is still dirty relative to the original epoch.
        assert_eq!(h.dirty_cells_since(e0).count(), 2);
    }

    #[test]
    fn memory_accounting() {
        let h = DensityHistogram::new(1000.0, 100, TimeHorizon::new(60, 60), 0);
        // 121 slots x 10000 cells x 4 bytes
        assert_eq!(h.memory_bytes(), 121 * 10_000 * 4);
    }
}
