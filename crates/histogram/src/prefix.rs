//! 2-D prefix sums over one histogram plane.

use pdr_geometry::CellId;

/// Summed-area table over an `m × m` counter plane, giving O(1) sums
/// over axis-aligned cell ranges.
///
/// The filter step needs, for every cell, the object count in its
/// conservative and expansive neighborhoods (Definitions 6–7). With
/// prefix sums the whole filter pass is O(m²) instead of
/// O(m² · η²).
pub struct PrefixSum2d {
    m: usize,
    /// `(m+1) × (m+1)` inclusive-exclusive table; entry `(r, c)` is the
    /// sum over rows `< r` and cols `< c`.
    sums: Vec<i64>,
}

impl PrefixSum2d {
    /// Builds the table from a row-major `m × m` plane.
    ///
    /// # Panics
    ///
    /// Panics when `plane.len() != m²`.
    pub fn build(m: u32, plane: &[i32]) -> Self {
        let m = m as usize;
        assert_eq!(plane.len(), m * m, "plane size mismatch");
        let w = m + 1;
        let mut sums = vec![0i64; w * w];
        for r in 0..m {
            let mut row_acc = 0i64;
            for c in 0..m {
                row_acc += plane[r * m + c] as i64;
                sums[(r + 1) * w + (c + 1)] = sums[r * w + (c + 1)] + row_acc;
            }
        }
        PrefixSum2d { m, sums }
    }

    /// Cells per side.
    pub fn m(&self) -> usize {
        self.m
    }

    /// Sum over the inclusive cell range `cols [c0, c1] × rows [r0, r1]`,
    /// clamped to the grid; an inverted (empty) range sums to zero.
    pub fn range_sum(&self, c0: i64, r0: i64, c1: i64, r1: i64) -> i64 {
        let m = self.m as i64;
        let c0 = c0.max(0);
        let r0 = r0.max(0);
        let c1 = c1.min(m - 1);
        let r1 = r1.min(m - 1);
        if c0 > c1 || r0 > r1 {
            return 0;
        }
        let w = self.m + 1;
        let (c0, r0, c1, r1) = (c0 as usize, r0 as usize, c1 as usize, r1 as usize);
        self.sums[(r1 + 1) * w + (c1 + 1)] + self.sums[r0 * w + c0]
            - self.sums[r0 * w + (c1 + 1)]
            - self.sums[(r1 + 1) * w + c0]
    }

    /// Sum over the square neighborhood of `center` spanning `± radius`
    /// cells in both axes (inclusive), clamped to the grid.
    pub fn square_sum(&self, center: CellId, radius: i64) -> i64 {
        let (c, r) = (center.col as i64, center.row as i64);
        self.range_sum(c - radius, r - radius, c + radius, r + radius)
    }

    /// Total over the whole plane.
    pub fn total(&self) -> i64 {
        let w = self.m + 1;
        self.sums[w * w - 1]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plane_4x4() -> Vec<i32> {
        // Row-major, row 0 is the bottom row of the grid convention.
        (1..=16).collect()
    }

    #[test]
    fn range_sums_match_naive() {
        let plane = plane_4x4();
        let ps = PrefixSum2d::build(4, &plane);
        for r0 in 0..4i64 {
            for r1 in r0..4 {
                for c0 in 0..4i64 {
                    for c1 in c0..4 {
                        let plane = &plane;
                        let naive: i64 = (r0..=r1)
                            .flat_map(|r| {
                                (c0..=c1).map(move |c| plane[(r * 4 + c) as usize] as i64)
                            })
                            .sum();
                        assert_eq!(ps.range_sum(c0, r0, c1, r1), naive);
                    }
                }
            }
        }
    }

    #[test]
    fn clamping_and_empty_ranges() {
        let ps = PrefixSum2d::build(4, &plane_4x4());
        assert_eq!(ps.range_sum(-5, -5, 10, 10), ps.total());
        assert_eq!(ps.range_sum(2, 2, 1, 3), 0, "inverted range is empty");
        assert_eq!(ps.range_sum(4, 0, 7, 3), 0, "fully out of grid");
    }

    #[test]
    fn square_neighborhood() {
        let ps = PrefixSum2d::build(4, &plane_4x4());
        // Center (1,1) radius 1 covers cols 0..=2, rows 0..=2.
        let expect: i64 = [1, 2, 3, 5, 6, 7, 9, 10, 11].iter().sum();
        assert_eq!(ps.square_sum(CellId::new(1, 1), 1), expect);
        // Radius 0 is the cell itself.
        assert_eq!(ps.square_sum(CellId::new(2, 3), 0), (3 * 4 + 2 + 1) as i64);
        // Corner with clamping.
        let corner: i64 = [1, 2, 5, 6].iter().sum();
        assert_eq!(ps.square_sum(CellId::new(0, 0), 1), corner);
    }

    #[test]
    fn total_matches() {
        let ps = PrefixSum2d::build(4, &plane_4x4());
        assert_eq!(ps.total(), (1..=16).sum::<i64>());
    }

    #[test]
    #[should_panic(expected = "plane size mismatch")]
    fn rejects_wrong_plane_size() {
        let _ = PrefixSum2d::build(3, &plane_4x4());
    }
}
