//! Sort-tile-recursive (STR) bulk loading.
//!
//! The experiments index hundreds of thousands of motions before the
//! measured phase begins; loading them one insert at a time is O(n log n)
//! node rewrites. STR builds a packed tree in O(n log n) comparisons and
//! O(n / fanout) page writes: sort by X at the horizon midpoint, slice
//! into √(leaves) vertical strips, sort each strip by Y, and chunk into
//! leaves; repeat one level up until a single node remains.

use crate::node::{ChildEntry, LeafEntry, Node, INTERNAL_CAPACITY, LEAF_CAPACITY};
use crate::tree::TprTree;
use pdr_mobject::{MotionState, ObjectId};

impl TprTree {
    /// Bulk loads `objects` into an **empty** tree, filling nodes to
    /// `fill_ratio` of capacity (≤ 1.0; ~0.7 leaves headroom for later
    /// updates).
    ///
    /// # Panics
    ///
    /// Panics when the tree is not empty, when `fill_ratio` is not in
    /// `(0, 1]`, or on duplicate object ids.
    pub fn bulk_load(&mut self, objects: &[(ObjectId, MotionState)], fill_ratio: f64) {
        assert!(self.is_empty(), "bulk_load requires an empty tree");
        assert!(
            fill_ratio > 0.0 && fill_ratio <= 1.0,
            "fill ratio must be in (0, 1], got {fill_ratio}"
        );
        if objects.is_empty() {
            return;
        }
        let t_ref = self.t_ref();
        let dt_mid = self.bulk_dt_mid();
        let mut entries: Vec<LeafEntry> = objects
            .iter()
            .map(|(id, m)| {
                let p = m.position_at(t_ref);
                LeafEntry {
                    id: *id,
                    x: p.x,
                    y: p.y,
                    vx: m.velocity.x,
                    vy: m.velocity.y,
                }
            })
            .collect();

        let per_leaf = ((LEAF_CAPACITY as f64 * fill_ratio) as usize).max(1);
        let leaf_chunks = str_partition(
            &mut entries,
            per_leaf,
            |e| e.x + e.vx * dt_mid,
            |e| e.y + e.vy * dt_mid,
        );

        // Write leaves and collect their parent entries.
        let old_root = self.bulk_take_root();
        let mut level: Vec<ChildEntry> = Vec::with_capacity(leaf_chunks.len());
        for chunk in leaf_chunks {
            let node = Node::Leaf(chunk);
            let page = self.bulk_alloc_page();
            for e in node_leaf_entries(&node) {
                let prev = self.bulk_set_leaf_of(e.id, page);
                assert!(
                    prev.is_none(),
                    "duplicate object id {:?} in bulk load",
                    e.id
                );
            }
            let tpbr = node.bounding_tpbr();
            self.bulk_write_node(page, &node);
            level.push(ChildEntry { page, tpbr });
        }
        self.bulk_free_page(old_root);

        // Build internal levels bottom-up.
        let per_internal = ((INTERNAL_CAPACITY as f64 * fill_ratio) as usize).max(2);
        let mut height = 1u32;
        while level.len() > 1 {
            let chunks = str_partition(
                &mut level,
                per_internal,
                |e| {
                    let r = e.tpbr.rect_at(dt_mid);
                    (r.x_lo + r.x_hi) / 2.0
                },
                |e| {
                    let r = e.tpbr.rect_at(dt_mid);
                    (r.y_lo + r.y_hi) / 2.0
                },
            );
            let mut next: Vec<ChildEntry> = Vec::with_capacity(chunks.len());
            for chunk in chunks {
                let node = Node::Internal(chunk);
                let page = self.bulk_alloc_page();
                if let Node::Internal(children) = &node {
                    for c in children {
                        self.bulk_set_parent(c.page, page);
                    }
                }
                let tpbr = node.bounding_tpbr();
                self.bulk_write_node(page, &node);
                next.push(ChildEntry { page, tpbr });
            }
            level = next;
            height += 1;
        }

        self.bulk_finish(level[0].page, height, objects.len());
    }
}

fn node_leaf_entries(node: &Node) -> &[LeafEntry] {
    match node {
        Node::Leaf(v) => v,
        Node::Internal(_) => panic!("expected leaf"),
    }
}

/// Sort-tile-recursive partition: returns chunks of at most `per_node`
/// items, tiled so chunks are spatially coherent in both axes.
fn str_partition<T: Clone>(
    items: &mut [T],
    per_node: usize,
    key_x: impl Fn(&T) -> f64,
    key_y: impl Fn(&T) -> f64,
) -> Vec<Vec<T>> {
    let n = items.len();
    let node_count = n.div_ceil(per_node);
    let slices = (node_count as f64).sqrt().ceil() as usize;
    let per_slice = n.div_ceil(slices);
    items.sort_by(|a, b| key_x(a).total_cmp(&key_x(b)));
    let mut out = Vec::with_capacity(node_count);
    for slice in items.chunks_mut(per_slice.max(1)) {
        slice.sort_by(|a, b| key_y(a).total_cmp(&key_y(b)));
        for chunk in slice.chunks(per_node) {
            out.push(chunk.to_vec());
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::TprConfig;
    use pdr_geometry::{Point, Rect};

    fn random_motions(n: usize, seed: u64) -> Vec<(ObjectId, MotionState)> {
        let mut s = seed;
        let mut rng = move || {
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (s >> 33) as f64 / (1u64 << 31) as f64
        };
        (0..n)
            .map(|i| {
                (
                    ObjectId(i as u64),
                    MotionState::new(
                        Point::new(rng() * 1000.0, rng() * 1000.0),
                        Point::new(rng() * 4.0 - 2.0, rng() * 4.0 - 2.0),
                        0,
                    ),
                )
            })
            .collect()
    }

    #[test]
    fn bulk_load_matches_brute_force() {
        let motions = random_motions(5000, 3);
        let mut t = TprTree::new(TprConfig::default_with_horizon(10.0), 0);
        t.bulk_load(&motions, 0.7);
        t.validate();
        assert_eq!(t.len(), 5000);
        let rect = Rect::new(250.0, 250.0, 400.0, 400.0);
        for qt in [0u64, 7] {
            let mut got: Vec<ObjectId> = t
                .range_at(&rect, qt)
                .into_iter()
                .map(|(id, _)| id)
                .collect();
            got.sort();
            let mut expect: Vec<ObjectId> = motions
                .iter()
                .filter(|(_, m)| rect.contains(m.position_at(qt)))
                .map(|(id, _)| *id)
                .collect();
            expect.sort();
            assert_eq!(got, expect, "t={qt}");
        }
    }

    #[test]
    fn bulk_load_then_updates() {
        let motions = random_motions(1200, 11);
        let mut t = TprTree::new(TprConfig::default_with_horizon(10.0), 0);
        t.bulk_load(&motions, 0.7);
        for (id, m) in motions.iter().take(200) {
            let moved = MotionState::new(m.position_at(3), Point::new(0.0, 0.0), 3);
            t.update(*id, &moved, 3);
        }
        for (id, _) in motions.iter().skip(200).take(100) {
            assert!(t.remove(*id));
        }
        t.validate();
        assert_eq!(t.len(), 1100);
    }

    #[test]
    fn bulk_load_packs_tightly() {
        let motions = random_motions(10_000, 17);
        let mut t = TprTree::new(TprConfig::default_with_horizon(10.0), 0);
        t.bulk_load(&motions, 0.7);
        // ~10000 / (102*0.7 = 71) = 141 leaves (+ padding chunks), plus a
        // couple of internal pages.
        assert!(
            t.page_count() < 200,
            "expected tight packing, got {} pages",
            t.page_count()
        );
    }

    #[test]
    #[should_panic(expected = "requires an empty tree")]
    fn bulk_load_on_nonempty_rejected() {
        let mut t = TprTree::new(TprConfig::default_with_horizon(10.0), 0);
        t.insert(
            ObjectId(1),
            &MotionState::new(Point::new(0.0, 0.0), Point::ORIGIN, 0),
            0,
        );
        t.bulk_load(&random_motions(10, 1), 0.7);
    }

    #[test]
    fn empty_bulk_load_is_noop() {
        let mut t = TprTree::new(TprConfig::default_with_horizon(10.0), 0);
        t.bulk_load(&[], 0.7);
        assert!(t.is_empty());
        t.validate();
    }
}
