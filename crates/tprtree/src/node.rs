//! Node layout and page serialization.
//!
//! One node occupies exactly one 4 KiB page:
//!
//! ```text
//! offset 0   u8   tag (0 = leaf, 1 = internal)
//! offset 1   u8   reserved
//! offset 2   u16  entry count (little endian)
//! offset 4   u32  reserved
//! offset 8   entries...
//! ```
//!
//! * Leaf entry, 40 bytes: object id `u64`, position at the tree's
//!   reference time (2 × `f64`), velocity (2 × `f64`).
//! * Internal entry, 72 bytes: child page `u32` + 4 reserved bytes, then
//!   the child's [`Tpbr`] (8 × `f64`).
//!
//! Capacities follow from the page size: ⌊4088 / 40⌋ = 102 motions per
//! leaf, ⌊4088 / 72⌋ = 56 children per internal node — the fan-outs the
//! paper's I/O numbers implicitly assume for a 4 KiB page.

use crate::Tpbr;
use pdr_mobject::ObjectId;
use pdr_storage::{PageId, PAGE_SIZE};

/// Bytes reserved for the node header.
const HEADER: usize = 8;
/// Serialized size of one leaf entry.
const LEAF_ENTRY: usize = 40;
/// Serialized size of one internal entry.
const INTERNAL_ENTRY: usize = 72;

/// Maximum motions per leaf page.
pub const LEAF_CAPACITY: usize = (PAGE_SIZE - HEADER) / LEAF_ENTRY;
/// Maximum children per internal page.
pub const INTERNAL_CAPACITY: usize = (PAGE_SIZE - HEADER) / INTERNAL_ENTRY;

/// One indexed motion, anchored at the tree's reference time.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LeafEntry {
    /// Object identity.
    pub id: ObjectId,
    /// X position at the tree reference time.
    pub x: f64,
    /// Y position at the tree reference time.
    pub y: f64,
    /// X velocity.
    pub vx: f64,
    /// Y velocity.
    pub vy: f64,
}

impl LeafEntry {
    /// The entry's degenerate TPBR.
    pub fn tpbr(&self) -> Tpbr {
        Tpbr {
            x_lo: self.x,
            y_lo: self.y,
            x_hi: self.x,
            y_hi: self.y,
            vx_lo: self.vx,
            vy_lo: self.vy,
            vx_hi: self.vx,
            vy_hi: self.vy,
        }
    }

    /// Position at offset `dt` past the tree reference time.
    pub fn position_at(&self, dt: f64) -> pdr_geometry::Point {
        pdr_geometry::Point::new(self.x + self.vx * dt, self.y + self.vy * dt)
    }
}

/// A child pointer with its time-parameterized bounding rectangle.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ChildEntry {
    /// Page of the child node.
    pub page: PageId,
    /// Conservative bound of the child's subtree.
    pub tpbr: Tpbr,
}

/// An in-memory node, decoded from / encoded to one page.
#[derive(Clone, Debug, PartialEq)]
pub enum Node {
    /// Bottom level: indexed motions.
    Leaf(Vec<LeafEntry>),
    /// Inner level: child pointers with TPBRs.
    Internal(Vec<ChildEntry>),
}

impl Node {
    /// Number of entries.
    pub fn len(&self) -> usize {
        match self {
            Node::Leaf(v) => v.len(),
            Node::Internal(v) => v.len(),
        }
    }

    /// `true` when the node stores no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// `true` for leaf nodes.
    pub fn is_leaf(&self) -> bool {
        matches!(self, Node::Leaf(_))
    }

    /// Capacity of this node kind.
    pub fn capacity(&self) -> usize {
        match self {
            Node::Leaf(_) => LEAF_CAPACITY,
            Node::Internal(_) => INTERNAL_CAPACITY,
        }
    }

    /// The union TPBR over all entries (what the parent should store).
    pub fn bounding_tpbr(&self) -> Tpbr {
        match self {
            Node::Leaf(v) => v.iter().fold(Tpbr::empty(), |acc, e| acc.union(&e.tpbr())),
            Node::Internal(v) => v.iter().fold(Tpbr::empty(), |acc, e| acc.union(&e.tpbr)),
        }
    }

    /// Serializes the node into a page buffer.
    ///
    /// # Panics
    ///
    /// Panics when the node exceeds its capacity — overflow must be
    /// resolved by a split before writing.
    pub fn encode(&self, page: &mut [u8; PAGE_SIZE]) {
        page.fill(0);
        match self {
            Node::Leaf(entries) => {
                assert!(
                    entries.len() <= LEAF_CAPACITY,
                    "leaf overflow: {}",
                    entries.len()
                );
                page[0] = 0;
                page[2..4].copy_from_slice(&(entries.len() as u16).to_le_bytes());
                for (i, e) in entries.iter().enumerate() {
                    let o = HEADER + i * LEAF_ENTRY;
                    page[o..o + 8].copy_from_slice(&e.id.0.to_le_bytes());
                    page[o + 8..o + 16].copy_from_slice(&e.x.to_le_bytes());
                    page[o + 16..o + 24].copy_from_slice(&e.y.to_le_bytes());
                    page[o + 24..o + 32].copy_from_slice(&e.vx.to_le_bytes());
                    page[o + 32..o + 40].copy_from_slice(&e.vy.to_le_bytes());
                }
            }
            Node::Internal(entries) => {
                assert!(
                    entries.len() <= INTERNAL_CAPACITY,
                    "internal overflow: {}",
                    entries.len()
                );
                page[0] = 1;
                page[2..4].copy_from_slice(&(entries.len() as u16).to_le_bytes());
                for (i, e) in entries.iter().enumerate() {
                    let o = HEADER + i * INTERNAL_ENTRY;
                    page[o..o + 4].copy_from_slice(&e.page.0.to_le_bytes());
                    let b = &e.tpbr;
                    for (k, v) in [
                        b.x_lo, b.y_lo, b.x_hi, b.y_hi, b.vx_lo, b.vy_lo, b.vx_hi, b.vy_hi,
                    ]
                    .iter()
                    .enumerate()
                    {
                        let s = o + 8 + k * 8;
                        page[s..s + 8].copy_from_slice(&v.to_le_bytes());
                    }
                }
            }
        }
    }

    /// Deserializes a node from a page buffer.
    ///
    /// # Panics
    ///
    /// Panics on a corrupt tag or an impossible entry count.
    pub fn decode(page: &[u8; PAGE_SIZE]) -> Node {
        let count = u16::from_le_bytes([page[2], page[3]]) as usize;
        let f64_at = |o: usize| f64::from_le_bytes(page[o..o + 8].try_into().unwrap());
        match page[0] {
            0 => {
                assert!(count <= LEAF_CAPACITY, "corrupt leaf count {count}");
                let mut entries = Vec::with_capacity(count);
                for i in 0..count {
                    let o = HEADER + i * LEAF_ENTRY;
                    entries.push(LeafEntry {
                        id: ObjectId(u64::from_le_bytes(page[o..o + 8].try_into().unwrap())),
                        x: f64_at(o + 8),
                        y: f64_at(o + 16),
                        vx: f64_at(o + 24),
                        vy: f64_at(o + 32),
                    });
                }
                Node::Leaf(entries)
            }
            1 => {
                assert!(count <= INTERNAL_CAPACITY, "corrupt internal count {count}");
                let mut entries = Vec::with_capacity(count);
                for i in 0..count {
                    let o = HEADER + i * INTERNAL_ENTRY;
                    entries.push(ChildEntry {
                        page: PageId(u32::from_le_bytes(page[o..o + 4].try_into().unwrap())),
                        tpbr: Tpbr {
                            x_lo: f64_at(o + 8),
                            y_lo: f64_at(o + 16),
                            x_hi: f64_at(o + 24),
                            y_hi: f64_at(o + 32),
                            vx_lo: f64_at(o + 40),
                            vy_lo: f64_at(o + 48),
                            vx_hi: f64_at(o + 56),
                            vy_hi: f64_at(o + 64),
                        },
                    });
                }
                Node::Internal(entries)
            }
            tag => panic!("corrupt node tag {tag}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capacities_follow_from_page_size() {
        assert_eq!(LEAF_CAPACITY, 102);
        assert_eq!(INTERNAL_CAPACITY, 56);
    }

    fn sample_leaf(n: usize) -> Node {
        Node::Leaf(
            (0..n)
                .map(|i| LeafEntry {
                    id: ObjectId(i as u64 * 7 + 1),
                    x: i as f64 * 1.5,
                    y: -(i as f64),
                    vx: 0.25 * i as f64,
                    vy: -0.5,
                })
                .collect(),
        )
    }

    fn sample_internal(n: usize) -> Node {
        Node::Internal(
            (0..n)
                .map(|i| ChildEntry {
                    page: PageId(i as u32 + 100),
                    tpbr: Tpbr {
                        x_lo: i as f64,
                        y_lo: i as f64 * 2.0,
                        x_hi: i as f64 + 1.0,
                        y_hi: i as f64 * 2.0 + 1.0,
                        vx_lo: -1.0,
                        vy_lo: -2.0,
                        vx_hi: 1.0,
                        vy_hi: 2.0,
                    },
                })
                .collect(),
        )
    }

    #[test]
    fn leaf_round_trip() {
        for n in [0, 1, 50, LEAF_CAPACITY] {
            let node = sample_leaf(n);
            let mut page = [0u8; PAGE_SIZE];
            node.encode(&mut page);
            assert_eq!(Node::decode(&page), node);
        }
    }

    #[test]
    fn internal_round_trip() {
        for n in [0, 1, 30, INTERNAL_CAPACITY] {
            let node = sample_internal(n);
            let mut page = [0u8; PAGE_SIZE];
            node.encode(&mut page);
            assert_eq!(Node::decode(&page), node);
        }
    }

    #[test]
    #[should_panic(expected = "leaf overflow")]
    fn encode_rejects_overflow() {
        let node = sample_leaf(LEAF_CAPACITY + 1);
        let mut page = [0u8; PAGE_SIZE];
        node.encode(&mut page);
    }

    #[test]
    #[should_panic(expected = "corrupt node tag")]
    fn decode_rejects_corrupt_tag() {
        let mut page = [0u8; PAGE_SIZE];
        page[0] = 9;
        let _ = Node::decode(&page);
    }

    #[test]
    fn bounding_tpbr_covers_entries() {
        let node = sample_leaf(10);
        let b = node.bounding_tpbr();
        if let Node::Leaf(entries) = &node {
            for e in entries {
                assert!(b.contains_tpbr(&e.tpbr()));
            }
        }
    }
}
