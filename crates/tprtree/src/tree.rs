//! The TPR-tree proper: insertion, deletion, predictive range queries.

use crate::node::{ChildEntry, LeafEntry, Node, INTERNAL_CAPACITY, LEAF_CAPACITY};
use crate::Tpbr;
use pdr_geometry::{Point, Rect};
use pdr_mobject::{MotionState, ObjectId, Timestamp};
use pdr_storage::{BufferPool, Disk, FaultPlan, FaultStats, IoStats, PageId, StorageError};
use std::collections::HashMap;

/// Tuning parameters of a [`TprTree`].
#[derive(Clone, Copy, Debug)]
pub struct TprConfig {
    /// Buffer-pool capacity in pages (the paper: 10 % of the dataset).
    pub buffer_pages: usize,
    /// Minimum fill ratio before a node is condensed (classic 0.4).
    pub min_fill_ratio: f64,
    /// Length of the time-integral window used by insertion and split
    /// metrics — the paper's horizon `H`.
    pub horizon: f64,
    /// When `false`, insertion/split metrics use the bounding-box area
    /// at the *current* instant only (a plain R*-tree on current
    /// positions) instead of the TPR-tree's time-integrated area. Kept
    /// as an ablation knob: it shows why integrating over the horizon
    /// matters for predictive queries.
    pub integral_metrics: bool,
}

impl TprConfig {
    /// A reasonable default: 256-page buffer, 40 % min fill, H = 120,
    /// integrated metrics on.
    pub fn default_with_horizon(horizon: f64) -> Self {
        TprConfig {
            buffer_pages: 256,
            min_fill_ratio: 0.4,
            horizon,
            integral_metrics: true,
        }
    }
}

/// A TPR-tree storing one node per 4 KiB page through an LRU buffer
/// pool, so query I/O is measured.
///
/// All TPBRs are anchored at the tree's `t_ref`; queries may target any
/// `t ≥ t_ref`. Deletion is bottom-up via an in-memory object→leaf map
/// (the paper does not charge update I/O, see crate docs).
///
/// ```
/// use pdr_tprtree::{TprConfig, TprTree};
/// use pdr_mobject::{MotionState, ObjectId};
/// use pdr_geometry::{Point, Rect};
///
/// let mut tree = TprTree::new(TprConfig::default_with_horizon(60.0), 0);
/// // An object at (100, 100) heading east at 2 per tick.
/// tree.insert(
///     ObjectId(1),
///     &MotionState::new(Point::new(100.0, 100.0), Point::new(2.0, 0.0), 0),
///     0,
/// );
///
/// // Predictive query: where will it be at t = 25? At (150, 100).
/// let hits = tree.range_at(&Rect::new(140.0, 90.0, 160.0, 110.0), 25);
/// assert_eq!(hits.len(), 1);
/// assert_eq!(hits[0].1, Point::new(150.0, 100.0));
///
/// // I/O through the buffer pool is counted.
/// assert!(tree.io_stats().logical_reads > 0);
/// ```
pub struct TprTree {
    pool: BufferPool,
    cfg: TprConfig,
    root: PageId,
    /// 1 = the root is a leaf.
    height: u32,
    t_ref: Timestamp,
    parents: HashMap<PageId, PageId>,
    leaf_of: HashMap<ObjectId, PageId>,
    len: usize,
}

impl TprTree {
    /// Creates an empty tree anchored at `t_ref`.
    pub fn new(cfg: TprConfig, t_ref: Timestamp) -> Self {
        let pool = BufferPool::new(Disk::new(), cfg.buffer_pages);
        let root = pool.allocate_page();
        pool.overwrite_page(root, |page| Node::Leaf(Vec::new()).encode(page));
        TprTree {
            pool,
            cfg,
            root,
            height: 1,
            t_ref,
            parents: HashMap::new(),
            leaf_of: HashMap::new(),
            len: 0,
        }
    }

    /// Number of indexed objects.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when no objects are indexed.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Tree height (1 = root is a leaf).
    pub fn height(&self) -> u32 {
        self.height
    }

    /// The reference timestamp all TPBRs are anchored to.
    pub fn t_ref(&self) -> Timestamp {
        self.t_ref
    }

    /// Accumulated buffer-pool I/O counters.
    pub fn io_stats(&self) -> IoStats {
        self.pool.stats()
    }

    /// Zeroes the I/O counters (call before a measured query).
    pub fn reset_io_stats(&self) {
        self.pool.reset_stats();
    }

    /// Number of pages the tree currently occupies on the simulated
    /// disk — the basis for sizing the buffer at 10 % of the data.
    pub fn page_count(&self) -> usize {
        self.pool.allocated_pages()
    }

    fn min_fill(&self, leaf: bool) -> usize {
        let cap = if leaf {
            LEAF_CAPACITY
        } else {
            INTERNAL_CAPACITY
        };
        ((cap as f64 * self.cfg.min_fill_ratio) as usize).max(if leaf { 1 } else { 2 })
    }

    fn dt(&self, t: Timestamp) -> f64 {
        t as f64 - self.t_ref as f64
    }

    fn read_node(&self, page: PageId) -> Node {
        self.pool.read_page(page, Node::decode)
    }

    fn write_node(&mut self, page: PageId, node: &Node) {
        self.pool.write_page(page, |bytes| node.encode(bytes));
    }

    fn write_fresh_node(&mut self, page: PageId, node: &Node) {
        self.pool.overwrite_page(page, |bytes| node.encode(bytes));
    }

    // ------------------------------------------------------------------
    // Insertion
    // ------------------------------------------------------------------

    /// Inserts a motion reported at `t_now`.
    ///
    /// # Panics
    ///
    /// Panics when the object is already indexed — callers must pair
    /// updates as delete + insert, mirroring the protocol.
    pub fn insert(&mut self, id: ObjectId, motion: &MotionState, t_now: Timestamp) {
        assert!(
            !self.leaf_of.contains_key(&id),
            "object {id:?} already indexed; delete it first"
        );
        let p = motion.position_at(self.t_ref);
        let entry = LeafEntry {
            id,
            x: p.x,
            y: p.y,
            vx: motion.velocity.x,
            vy: motion.velocity.y,
        };
        let dt0 = self.dt(t_now).max(0.0);
        // Instantaneous mode shrinks the integral window to a sliver:
        // integrals over [dt0, dt0 + eps] rank exactly like the area,
        // margin and overlap at dt0 itself.
        let dt1 = if self.cfg.integral_metrics {
            dt0 + self.cfg.horizon
        } else {
            dt0 + 1e-3
        };
        if let Some(sibling) = self.insert_rec(self.root, self.height, entry, dt0, dt1) {
            self.grow_root(sibling);
        }
        self.len += 1;
    }

    /// Recursive insert. `level` counts down to 1 at the leaves.
    /// Returns the entry for a new sibling when `page` split.
    fn insert_rec(
        &mut self,
        page: PageId,
        level: u32,
        entry: LeafEntry,
        dt0: f64,
        dt1: f64,
    ) -> Option<ChildEntry> {
        let mut node = self.read_node(page);
        if level == 1 {
            let Node::Leaf(ref mut entries) = node else {
                panic!("leaf level holds a non-leaf node");
            };
            entries.push(entry);
            self.leaf_of.insert(entry.id, page);
            if entries.len() <= LEAF_CAPACITY {
                self.write_node(page, &node);
                return None;
            }
            let min_fill = self.min_fill(true);
            let all = std::mem::take(entries);
            let (g1, g2) = split_by_metric(all, |e| e.tpbr(), min_fill, dt0, dt1);
            let new_page = self.pool.allocate_page();
            for e in &g2 {
                self.leaf_of.insert(e.id, new_page);
            }
            let n1 = Node::Leaf(g1);
            let n2 = Node::Leaf(g2);
            let sib = ChildEntry {
                page: new_page,
                tpbr: n2.bounding_tpbr(),
            };
            self.write_node(page, &n1);
            self.write_fresh_node(new_page, &n2);
            return Some(sib);
        }

        let Node::Internal(ref mut entries) = node else {
            panic!("internal level holds a leaf node");
        };
        let idx = choose_subtree(entries, &entry.tpbr(), dt0, dt1);
        let child_page = entries[idx].page;
        let split = self.insert_rec(child_page, level - 1, entry, dt0, dt1);
        // Re-read the child to tighten/refresh its TPBR after the
        // insert (and possible split) rewrote it.
        let child_node = self.read_node(child_page);
        // `node` may be stale if the recursion touched this page; with
        // one node per page and strictly descending recursion it cannot,
        // so updating the in-memory copy is safe.
        let Node::Internal(ref mut entries) = node else {
            unreachable!()
        };
        entries[idx].tpbr = child_node.bounding_tpbr();
        if let Some(sib) = split {
            self.parents.insert(sib.page, page);
            entries.push(sib);
            if entries.len() > INTERNAL_CAPACITY {
                let min_fill = self.min_fill(false);
                let all = std::mem::take(entries);
                let (g1, g2) = split_by_metric(all, |e| e.tpbr, min_fill, dt0, dt1);
                let new_page = self.pool.allocate_page();
                for e in &g2 {
                    self.parents.insert(e.page, new_page);
                }
                let n1 = Node::Internal(g1);
                let n2 = Node::Internal(g2);
                let sib_entry = ChildEntry {
                    page: new_page,
                    tpbr: n2.bounding_tpbr(),
                };
                self.write_node(page, &n1);
                self.write_fresh_node(new_page, &n2);
                return Some(sib_entry);
            }
        }
        self.write_node(page, &node);
        None
    }

    fn grow_root(&mut self, sibling: ChildEntry) {
        let old_root = self.root;
        let old_node = self.read_node(old_root);
        let new_root = self.pool.allocate_page();
        let root_node = Node::Internal(vec![
            ChildEntry {
                page: old_root,
                tpbr: old_node.bounding_tpbr(),
            },
            sibling,
        ]);
        self.write_fresh_node(new_root, &root_node);
        self.parents.insert(old_root, new_root);
        self.parents.insert(sibling.page, new_root);
        self.root = new_root;
        self.height += 1;
    }

    // ------------------------------------------------------------------
    // Deletion
    // ------------------------------------------------------------------

    /// Removes an object; returns `false` when it was not indexed.
    pub fn remove(&mut self, id: ObjectId) -> bool {
        let Some(leaf_page) = self.leaf_of.remove(&id) else {
            return false;
        };
        let mut node = self.read_node(leaf_page);
        let Node::Leaf(ref mut entries) = node else {
            panic!("leaf_of points to a non-leaf page");
        };
        let pos = entries
            .iter()
            .position(|e| e.id == id)
            .expect("leaf_of desynchronized: object missing from its leaf");
        entries.remove(pos);
        self.len -= 1;
        let underflow = entries.len() < self.min_fill(true) && leaf_page != self.root;
        self.write_node(leaf_page, &node);
        if underflow {
            self.condense(leaf_page);
        } else {
            self.tighten_upwards(leaf_page);
        }
        true
    }

    /// Re-reports an object's motion: delete + insert, as the protocol
    /// prescribes.
    pub fn update(&mut self, id: ObjectId, motion: &MotionState, t_now: Timestamp) {
        let existed = self.remove(id);
        debug_assert!(existed, "update of unindexed object {id:?}");
        self.insert(id, motion, t_now);
    }

    /// Recomputes bounding TPBRs from `page` up to the root.
    fn tighten_upwards(&mut self, mut page: PageId) {
        while let Some(&parent) = self.parents.get(&page) {
            let child_tpbr = self.read_node(page).bounding_tpbr();
            let mut pnode = self.read_node(parent);
            let Node::Internal(ref mut entries) = pnode else {
                panic!("parent is not internal");
            };
            let e = entries
                .iter_mut()
                .find(|e| e.page == page)
                .expect("parent map desynchronized");
            if e.tpbr == child_tpbr {
                return; // already tight; ancestors unchanged too
            }
            e.tpbr = child_tpbr;
            self.write_node(parent, &pnode);
            page = parent;
        }
    }

    /// Classic R-tree CondenseTree: the underflowed node is unlinked and
    /// its remaining motions reinserted; underflow may cascade upward.
    fn condense(&mut self, first_underflow: PageId) {
        let mut orphans: Vec<LeafEntry> = Vec::new();
        let mut page = first_underflow;
        // Walk upward until the root or a node that no longer underflows.
        while let Some(parent) = self.parents.get(&page).copied() {
            let node = self.read_node(page);
            let underflow = node.len() < self.min_fill(node.is_leaf());
            if !underflow {
                self.tighten_upwards(page);
                break;
            }
            // Unlink from parent.
            let mut pnode = self.read_node(parent);
            let Node::Internal(ref mut pentries) = pnode else {
                panic!("parent is not internal");
            };
            let pos = pentries
                .iter()
                .position(|e| e.page == page)
                .expect("parent map desynchronized");
            pentries.remove(pos);
            self.write_node(parent, &pnode);
            // Collect all descendant motions and free the subtree.
            self.collect_subtree(page, &mut orphans);
            page = parent;
        }
        self.shrink_root();
        // Reinsert orphans. Reinsertion may split and grow the tree
        // again; each orphan already carries tree-anchored coordinates.
        let dt0 = 0.0;
        let dt1 = self.cfg.horizon;
        for e in orphans {
            self.leaf_of.remove(&e.id);
            if let Some(sib) = self.insert_rec(self.root, self.height, e, dt0, dt1) {
                self.grow_root(sib);
            }
        }
        self.shrink_root();
    }

    /// Frees `page` and its whole subtree, collecting every leaf entry.
    fn collect_subtree(&mut self, page: PageId, out: &mut Vec<LeafEntry>) {
        let node = self.read_node(page);
        match node {
            Node::Leaf(entries) => {
                for e in &entries {
                    self.leaf_of.remove(&e.id);
                }
                out.extend(entries);
            }
            Node::Internal(entries) => {
                for e in entries {
                    self.collect_subtree(e.page, out);
                }
            }
        }
        self.parents.remove(&page);
        self.pool.free_page(page);
    }

    /// While the root is internal with a single child, hoist the child.
    fn shrink_root(&mut self) {
        loop {
            let node = self.read_node(self.root);
            match node {
                Node::Internal(entries) if entries.len() == 1 => {
                    let child = entries[0].page;
                    self.parents.remove(&child);
                    self.pool.free_page(self.root);
                    self.root = child;
                    self.height -= 1;
                }
                _ => break,
            }
        }
    }

    // ------------------------------------------------------------------
    // Queries
    // ------------------------------------------------------------------

    /// Predictive range query: all objects whose extrapolated position
    /// at timestamp `t` lies in `rect` (closed semantics). I/O flows
    /// through the buffer pool and is visible in
    /// [`io_stats`](TprTree::io_stats).
    ///
    /// Takes `&self`: the buffer pool's interior mutex makes concurrent
    /// range queries from several threads safe on a shared tree.
    pub fn range_at(&self, rect: &Rect, t: Timestamp) -> Vec<(ObjectId, Point)> {
        let mut io = IoStats::default();
        self.range_at_collect(rect, t, &mut io)
    }

    /// Like [`range_at`](TprTree::range_at), additionally adding the
    /// I/O this query performed to `io` — the per-query/per-thread
    /// collector merged by parallel callers. Global
    /// [`io_stats`](TprTree::io_stats) accumulate the same traffic.
    pub fn range_at_collect(
        &self,
        rect: &Rect,
        t: Timestamp,
        io: &mut IoStats,
    ) -> Vec<(ObjectId, Point)> {
        self.try_range_at_collect(rect, t, io)
            .unwrap_or_else(|e| panic!("unhandled storage fault: {e}"))
    }

    /// Fallible [`range_at_collect`](TprTree::range_at_collect):
    /// returns the typed [`StorageError`] when a node read fails or a
    /// page fails checksum verification (only possible when a
    /// [`FaultPlan`] is installed on the pool), instead of panicking.
    pub fn try_range_at_collect(
        &self,
        rect: &Rect,
        t: Timestamp,
        io: &mut IoStats,
    ) -> Result<Vec<(ObjectId, Point)>, StorageError> {
        let mut out = Vec::new();
        self.try_range_at_into(rect, t, io, &mut out)?;
        Ok(out)
    }

    /// [`try_range_at_collect`](TprTree::try_range_at_collect) into a
    /// caller-owned buffer, replacing its contents. The refinement hot
    /// loop issues one range query per candidate cell; filling a reused
    /// buffer keeps that loop free of per-cell result allocations (the
    /// buffer only reallocates when a cell yields more hits than any
    /// earlier one).
    pub fn try_range_at_into(
        &self,
        rect: &Rect,
        t: Timestamp,
        io: &mut IoStats,
        out: &mut Vec<(ObjectId, Point)>,
    ) -> Result<(), StorageError> {
        out.clear();
        let dt = self.dt(t);
        let mut stack = vec![(self.root, self.height)];
        while let Some((page, level)) = stack.pop() {
            match self.pool.try_read_page_tracked(page, io, Node::decode)? {
                Node::Leaf(entries) => {
                    debug_assert_eq!(level, 1);
                    for e in entries {
                        let p = e.position_at(dt);
                        if rect.contains(p) {
                            out.push((e.id, p));
                        }
                    }
                }
                Node::Internal(entries) => {
                    for e in entries {
                        if e.tpbr.intersects_at(dt, rect) {
                            stack.push((e.page, level - 1));
                        }
                    }
                }
            }
        }
        Ok(())
    }

    /// Discards all contents and storage, re-anchoring the empty tree
    /// at `t_ref` on a fresh simulated device (recovery rebuilds the
    /// index from checkpointed motions). Any installed fault plan is
    /// discarded with the device.
    pub fn reset(&mut self, t_ref: Timestamp) {
        *self = TprTree::new(self.cfg, t_ref);
    }

    /// Installs a [`FaultPlan`] on the tree's buffer pool.
    pub fn set_fault_plan(&self, plan: FaultPlan) {
        self.pool.set_fault_plan(plan);
    }

    /// Counters of injected faults / detected checksum failures on the
    /// tree's storage.
    pub fn fault_stats(&self) -> FaultStats {
        self.pool.fault_stats()
    }

    /// Extrapolated position of one object at `t`, if indexed.
    pub fn position_of(&self, id: ObjectId, t: Timestamp) -> Option<Point> {
        let leaf = *self.leaf_of.get(&id)?;
        let dt = self.dt(t);
        match self.read_node(leaf) {
            Node::Leaf(entries) => entries
                .iter()
                .find(|e| e.id == id)
                .map(|e| e.position_at(dt)),
            _ => panic!("leaf_of points to a non-leaf page"),
        }
    }

    // ------------------------------------------------------------------
    // Bulk-load plumbing (used by `bulk.rs`)
    // ------------------------------------------------------------------

    pub(crate) fn bulk_dt_mid(&self) -> f64 {
        self.cfg.horizon / 2.0
    }

    pub(crate) fn bulk_alloc_page(&mut self) -> PageId {
        self.pool.allocate_page()
    }

    pub(crate) fn bulk_free_page(&mut self, page: PageId) {
        self.pool.free_page(page);
    }

    pub(crate) fn bulk_write_node(&mut self, page: PageId, node: &Node) {
        self.write_fresh_node(page, node);
    }

    pub(crate) fn bulk_set_leaf_of(&mut self, id: ObjectId, page: PageId) -> Option<PageId> {
        self.leaf_of.insert(id, page)
    }

    pub(crate) fn bulk_set_parent(&mut self, child: PageId, parent: PageId) {
        self.parents.insert(child, parent);
    }

    /// Hands the pre-existing empty root page to the bulk loader so it
    /// can be recycled.
    pub(crate) fn bulk_take_root(&mut self) -> PageId {
        self.root
    }

    pub(crate) fn bulk_finish(&mut self, root: PageId, height: u32, len: usize) {
        self.root = root;
        self.height = height;
        self.len = len;
    }

    // ------------------------------------------------------------------
    // Validation (tests/diagnostics)
    // ------------------------------------------------------------------

    /// Exhaustively checks structural invariants; panics on violation.
    /// O(n) — intended for tests.
    pub fn validate(&self) {
        let root = self.root;
        let height = self.height;
        let count = self.validate_rec(root, height, None);
        assert_eq!(count, self.len, "entry count mismatch");
        assert_eq!(self.leaf_of.len(), self.len, "leaf_of size mismatch");
    }

    fn validate_rec(&self, page: PageId, level: u32, expected_parent: Option<PageId>) -> usize {
        if let Some(p) = expected_parent {
            assert_eq!(
                self.parents.get(&page).copied(),
                Some(p),
                "parent map wrong for {page:?}"
            );
        }
        match self.read_node(page) {
            Node::Leaf(entries) => {
                assert_eq!(level, 1, "leaf at wrong level");
                for e in &entries {
                    assert_eq!(
                        self.leaf_of.get(&e.id).copied(),
                        Some(page),
                        "leaf_of wrong for {:?}",
                        e.id
                    );
                }
                entries.len()
            }
            Node::Internal(entries) => {
                assert!(level > 1, "internal node at leaf level");
                assert!(!entries.is_empty(), "empty internal node");
                let mut total = 0;
                for e in entries {
                    let child = self.read_node(e.page);
                    assert!(
                        e.tpbr.contains_tpbr(&child.bounding_tpbr()),
                        "parent TPBR does not bound child {:?}",
                        e.page
                    );
                    total += self.validate_rec(e.page, level - 1, Some(page));
                }
                total
            }
        }
    }
}

/// Picks the child whose TPBR needs the least integrated-area
/// enlargement to absorb `t` (ties: smaller integrated area) — the
/// TPR-tree analogue of the R-tree ChooseSubtree.
fn choose_subtree(entries: &[ChildEntry], t: &Tpbr, dt0: f64, dt1: f64) -> usize {
    debug_assert!(!entries.is_empty());
    let mut best = 0;
    let mut best_enlarge = f64::INFINITY;
    let mut best_area = f64::INFINITY;
    for (i, e) in entries.iter().enumerate() {
        let area = e.tpbr.integral_area(dt0, dt1);
        let enlarged = e.tpbr.union(t).integral_area(dt0, dt1) - area;
        if enlarged < best_enlarge || (enlarged == best_enlarge && area < best_area) {
            best = i;
            best_enlarge = enlarged;
            best_area = area;
        }
    }
    best
}

/// R*-style topological split with time-integrated metrics: the axis
/// with the smallest total margin integral wins; within it, the
/// distribution with the smallest overlap integral (ties: smallest area
/// integral).
fn split_by_metric<T: Clone>(
    mut entries: Vec<T>,
    tpbr_of: impl Fn(&T) -> Tpbr,
    min_fill: usize,
    dt0: f64,
    dt1: f64,
) -> (Vec<T>, Vec<T>) {
    let n = entries.len();
    debug_assert!(
        n >= 2 * min_fill,
        "cannot split {n} entries with min fill {min_fill}"
    );
    let dt_mid = 0.5 * (dt0 + dt1);

    let score_axis = |sorted: &[T]| -> (f64, usize) {
        // Prefix/suffix TPBR unions.
        let mut prefix = Vec::with_capacity(n);
        let mut acc = Tpbr::empty();
        for e in sorted {
            acc = acc.union(&tpbr_of(e));
            prefix.push(acc);
        }
        let mut suffix = vec![Tpbr::empty(); n];
        let mut acc = Tpbr::empty();
        for i in (0..n).rev() {
            acc = acc.union(&tpbr_of(&sorted[i]));
            suffix[i] = acc;
        }
        let mut margin_sum = 0.0;
        let mut best_k = min_fill;
        let mut best_overlap = f64::INFINITY;
        let mut best_area = f64::INFINITY;
        for k in min_fill..=(n - min_fill) {
            let g1 = &prefix[k - 1];
            let g2 = &suffix[k];
            margin_sum += g1.integral_margin(dt0, dt1) + g2.integral_margin(dt0, dt1);
            let overlap = g1.integral_overlap(g2, dt0, dt1);
            let area = g1.integral_area(dt0, dt1) + g2.integral_area(dt0, dt1);
            if overlap < best_overlap || (overlap == best_overlap && area < best_area) {
                best_overlap = overlap;
                best_area = area;
                best_k = k;
            }
        }
        (margin_sum, best_k)
    };

    // Axis X.
    entries.sort_by(|a, b| {
        let ra = tpbr_of(a).rect_at(dt_mid);
        let rb = tpbr_of(b).rect_at(dt_mid);
        (ra.x_lo + ra.x_hi).total_cmp(&(rb.x_lo + rb.x_hi))
    });
    let (margin_x, k_x) = score_axis(&entries);
    let sorted_x = entries.clone();

    // Axis Y.
    entries.sort_by(|a, b| {
        let ra = tpbr_of(a).rect_at(dt_mid);
        let rb = tpbr_of(b).rect_at(dt_mid);
        (ra.y_lo + ra.y_hi).total_cmp(&(rb.y_lo + rb.y_hi))
    });
    let (margin_y, k_y) = score_axis(&entries);

    let (mut chosen, k) = if margin_x <= margin_y {
        (sorted_x, k_x)
    } else {
        (entries, k_y)
    };
    let g2 = chosen.split_off(k);
    (chosen, g2)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn motion(x: f64, y: f64, vx: f64, vy: f64, t: Timestamp) -> MotionState {
        MotionState::new(Point::new(x, y), Point::new(vx, vy), t)
    }

    fn tree() -> TprTree {
        TprTree::new(
            TprConfig {
                buffer_pages: 64,
                min_fill_ratio: 0.4,
                horizon: 10.0,
                integral_metrics: true,
            },
            0,
        )
    }

    /// Deterministic LCG for reproducible pseudo-random motions.
    struct Lcg(u64);
    impl Lcg {
        fn next_f64(&mut self) -> f64 {
            self.0 = self
                .0
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (self.0 >> 33) as f64 / (1u64 << 31) as f64
        }
    }

    fn random_motions(n: usize, seed: u64) -> Vec<(ObjectId, MotionState)> {
        let mut rng = Lcg(seed);
        (0..n)
            .map(|i| {
                (
                    ObjectId(i as u64),
                    motion(
                        rng.next_f64() * 1000.0,
                        rng.next_f64() * 1000.0,
                        rng.next_f64() * 4.0 - 2.0,
                        rng.next_f64() * 4.0 - 2.0,
                        0,
                    ),
                )
            })
            .collect()
    }

    fn brute_force_range(
        motions: &[(ObjectId, MotionState)],
        rect: &Rect,
        t: Timestamp,
    ) -> Vec<ObjectId> {
        let mut v: Vec<ObjectId> = motions
            .iter()
            .filter(|(_, m)| rect.contains(m.position_at(t)))
            .map(|(id, _)| *id)
            .collect();
        v.sort();
        v
    }

    #[test]
    fn empty_tree_queries_cleanly() {
        let mut t = tree();
        assert!(t.is_empty());
        assert!(t
            .range_at(&Rect::new(0.0, 0.0, 1000.0, 1000.0), 5)
            .is_empty());
        assert!(!t.remove(ObjectId(1)));
        t.validate();
    }

    #[test]
    fn single_insert_and_query() {
        let mut t = tree();
        let m = motion(10.0, 10.0, 1.0, 0.0, 0);
        t.insert(ObjectId(1), &m, 0);
        assert_eq!(t.len(), 1);
        // At t=5 the object is at (15, 10).
        let hits = t.range_at(&Rect::new(14.0, 9.0, 16.0, 11.0), 5);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].0, ObjectId(1));
        assert!((hits[0].1.x - 15.0).abs() < 1e-12);
        // A region it has left is empty.
        assert!(t.range_at(&Rect::new(9.0, 9.0, 11.0, 11.0), 5).is_empty());
        t.validate();
    }

    #[test]
    fn thousand_objects_match_brute_force() {
        let motions = random_motions(1000, 42);
        let mut t = tree();
        for (id, m) in &motions {
            t.insert(*id, m, 0);
        }
        t.validate();
        assert!(t.height() >= 2, "1000 objects should overflow one leaf");
        for (qt, rect) in [
            (0u64, Rect::new(100.0, 100.0, 300.0, 300.0)),
            (5, Rect::new(0.0, 0.0, 50.0, 1000.0)),
            (10, Rect::new(500.0, 500.0, 510.0, 510.0)),
        ] {
            let mut got: Vec<ObjectId> = t
                .range_at(&rect, qt)
                .into_iter()
                .map(|(id, _)| id)
                .collect();
            got.sort();
            assert_eq!(got, brute_force_range(&motions, &rect, qt), "t={qt}");
        }
    }

    #[test]
    fn deletions_then_queries_match_brute_force() {
        let motions = random_motions(600, 7);
        let mut t = tree();
        for (id, m) in &motions {
            t.insert(*id, m, 0);
        }
        // Remove every third object.
        let mut remaining = Vec::new();
        for (i, (id, m)) in motions.iter().enumerate() {
            if i % 3 == 0 {
                assert!(t.remove(*id));
            } else {
                remaining.push((*id, *m));
            }
        }
        t.validate();
        assert_eq!(t.len(), remaining.len());
        let rect = Rect::new(200.0, 200.0, 700.0, 700.0);
        let mut got: Vec<ObjectId> = t.range_at(&rect, 8).into_iter().map(|(id, _)| id).collect();
        got.sort();
        assert_eq!(got, brute_force_range(&remaining, &rect, 8));
    }

    #[test]
    fn updates_relocate_objects() {
        let motions = random_motions(300, 99);
        let mut t = tree();
        for (id, m) in &motions {
            t.insert(*id, m, 0);
        }
        // Everyone re-reports from a tight cluster at t=4.
        for (id, _) in &motions {
            t.update(*id, &motion(500.0, 500.0, 0.0, 0.0, 4), 4);
        }
        t.validate();
        let hits = t.range_at(&Rect::new(499.0, 499.0, 501.0, 501.0), 6);
        assert_eq!(hits.len(), 300);
    }

    #[test]
    fn drain_to_empty() {
        let motions = random_motions(400, 5);
        let mut t = tree();
        for (id, m) in &motions {
            t.insert(*id, m, 0);
        }
        for (id, _) in &motions {
            assert!(t.remove(*id));
        }
        assert!(t.is_empty());
        assert_eq!(t.height(), 1);
        t.validate();
        // Tree remains usable.
        t.insert(ObjectId(9999), &motion(1.0, 1.0, 0.0, 0.0, 10), 10);
        assert_eq!(t.len(), 1);
        t.validate();
    }

    #[test]
    fn query_io_is_counted() {
        let motions = random_motions(2000, 13);
        let mut t = TprTree::new(
            TprConfig {
                buffer_pages: 4, // tiny buffer to force misses
                min_fill_ratio: 0.4,
                horizon: 10.0,
                integral_metrics: true,
            },
            0,
        );
        for (id, m) in &motions {
            t.insert(*id, m, 0);
        }
        t.reset_io_stats();
        let _ = t.range_at(&Rect::new(0.0, 0.0, 1000.0, 1000.0), 0);
        let stats = t.io_stats();
        assert!(stats.misses > 0, "full scan through a tiny pool must miss");
        assert!(stats.logical_reads >= stats.misses);
    }

    #[test]
    fn double_insert_panics() {
        let mut t = tree();
        t.insert(ObjectId(1), &motion(0.0, 0.0, 0.0, 0.0, 0), 0);
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            t.insert(ObjectId(1), &motion(1.0, 1.0, 0.0, 0.0, 0), 0)
        }));
        assert!(r.is_err());
    }

    #[test]
    fn position_of_extrapolates() {
        let mut t = tree();
        t.insert(ObjectId(3), &motion(2.0, 2.0, 1.0, 1.0, 0), 0);
        let p = t.position_of(ObjectId(3), 4).unwrap();
        assert_eq!(p, Point::new(6.0, 6.0));
        assert!(t.position_of(ObjectId(4), 4).is_none());
    }
}
