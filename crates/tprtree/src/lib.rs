//! A TPR-tree (time-parameterized R-tree) over linearly moving objects.
//!
//! The paper's exact method executes *predictive spatio-temporal range
//! queries* during its refinement step: "retrieve all objects located
//! within S at timestamp q_t". Following the paper (Section 4), we index
//! the objects with a TPR-tree (Šaltenis et al., SIGMOD 2000):
//!
//! * every bounding rectangle is **time-parameterized** — a rectangle
//!   plus velocity bounds, anchored at the tree's reference time, that
//!   conservatively contains its subtree at any queried future time;
//! * insertion heuristics minimize the **integral** of bounding-box area
//!   over the time horizon `H`, rather than the area at a single
//!   instant, so boxes stay tight over the whole prediction window;
//! * splits follow the R*-tree topological split, again with integrated
//!   metrics.
//!
//! Nodes live one-per-4-KiB-page in a [`pdr_storage::BufferPool`], so
//! query I/O is *measured*: the refinement step's cost in Figure 10 is
//! `CPU + 10 ms × buffer misses`, exactly as in the paper. Update I/O is
//! deliberately *not* charged (the paper excludes index maintenance from
//! its cost accounting), which frees the implementation to use an
//! in-memory object→leaf map for bottom-up deletion.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bulk;
mod node;
mod tpbr;
mod tree;

pub use node::{ChildEntry, LeafEntry, Node, INTERNAL_CAPACITY, LEAF_CAPACITY};
pub use tpbr::Tpbr;
pub use tree::{TprConfig, TprTree};
