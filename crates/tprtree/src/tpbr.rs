//! Time-parameterized bounding rectangles.

use pdr_geometry::Rect;
use pdr_mobject::MotionState;

/// A time-parameterized bounding rectangle (TPBR): position bounds at
/// the tree's reference time plus velocity bounds. At offset `dt` past
/// the reference time the box is
///
/// ```text
/// [x_lo + vx_lo·dt, x_hi + vx_hi·dt] × [y_lo + vy_lo·dt, y_hi + vy_hi·dt]
/// ```
///
/// which conservatively contains every enclosed motion for all `dt ≥ 0`
/// (and exactly traces a single motion for any `dt`).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Tpbr {
    /// Lower X bound at the reference time.
    pub x_lo: f64,
    /// Lower Y bound at the reference time.
    pub y_lo: f64,
    /// Upper X bound at the reference time.
    pub x_hi: f64,
    /// Upper Y bound at the reference time.
    pub y_hi: f64,
    /// Lower bound of X velocities.
    pub vx_lo: f64,
    /// Lower bound of Y velocities.
    pub vy_lo: f64,
    /// Upper bound of X velocities.
    pub vx_hi: f64,
    /// Upper bound of Y velocities.
    pub vy_hi: f64,
}

impl Tpbr {
    /// The degenerate TPBR of a single motion, re-anchored to the
    /// tree's reference time `t_ref` (backward extrapolation is exact
    /// for a linear motion, so anchoring is always safe).
    pub fn from_motion(m: &MotionState, t_ref: pdr_mobject::Timestamp) -> Self {
        let p = m.position_at(t_ref);
        Tpbr {
            x_lo: p.x,
            y_lo: p.y,
            x_hi: p.x,
            y_hi: p.y,
            vx_lo: m.velocity.x,
            vy_lo: m.velocity.y,
            vx_hi: m.velocity.x,
            vy_hi: m.velocity.y,
        }
    }

    /// A TPBR that bounds nothing; the identity of [`union`](Tpbr::union).
    pub fn empty() -> Self {
        Tpbr {
            x_lo: f64::INFINITY,
            y_lo: f64::INFINITY,
            x_hi: f64::NEG_INFINITY,
            y_hi: f64::NEG_INFINITY,
            vx_lo: f64::INFINITY,
            vy_lo: f64::INFINITY,
            vx_hi: f64::NEG_INFINITY,
            vy_hi: f64::NEG_INFINITY,
        }
    }

    /// `true` when nothing has been unioned in yet.
    pub fn is_empty(&self) -> bool {
        self.x_lo > self.x_hi
    }

    /// Componentwise union: the smallest TPBR containing both.
    pub fn union(&self, other: &Tpbr) -> Tpbr {
        Tpbr {
            x_lo: self.x_lo.min(other.x_lo),
            y_lo: self.y_lo.min(other.y_lo),
            x_hi: self.x_hi.max(other.x_hi),
            y_hi: self.y_hi.max(other.y_hi),
            vx_lo: self.vx_lo.min(other.vx_lo),
            vy_lo: self.vy_lo.min(other.vy_lo),
            vx_hi: self.vx_hi.max(other.vx_hi),
            vy_hi: self.vy_hi.max(other.vy_hi),
        }
    }

    /// The (static) rectangle at offset `dt` past the reference time.
    pub fn rect_at(&self, dt: f64) -> Rect {
        debug_assert!(!self.is_empty(), "rect_at on empty TPBR");
        Rect {
            x_lo: self.x_lo + self.vx_lo * dt,
            y_lo: self.y_lo + self.vy_lo * dt,
            x_hi: self.x_hi + self.vx_hi * dt,
            y_hi: self.y_hi + self.vy_hi * dt,
        }
    }

    /// `true` when the box at offset `dt` intersects `r` (closed
    /// semantics, consistent with retrieving boundary objects for the
    /// refinement step to re-filter).
    pub fn intersects_at(&self, dt: f64, r: &Rect) -> bool {
        if self.is_empty() {
            return false;
        }
        self.x_lo + self.vx_lo * dt <= r.x_hi
            && r.x_lo <= self.x_hi + self.vx_hi * dt
            && self.y_lo + self.vy_lo * dt <= r.y_hi
            && r.y_lo <= self.y_hi + self.vy_hi * dt
    }

    /// Area of the box at offset `dt`.
    pub fn area_at(&self, dt: f64) -> f64 {
        let w = (self.x_hi + self.vx_hi * dt) - (self.x_lo + self.vx_lo * dt);
        let h = (self.y_hi + self.vy_hi * dt) - (self.y_lo + self.vy_lo * dt);
        w.max(0.0) * h.max(0.0)
    }

    /// Integral of the box area over `dt ∈ [dt0, dt1]` — the TPR-tree's
    /// insertion and split metric. With `w(dt) = w0 + dw·dt` and
    /// `h(dt) = h0 + dh·dt` the integrand is a quadratic with
    /// closed-form antiderivative.
    pub fn integral_area(&self, dt0: f64, dt1: f64) -> f64 {
        debug_assert!(dt0 <= dt1);
        if self.is_empty() {
            return 0.0;
        }
        let w0 = self.x_hi - self.x_lo;
        let dw = self.vx_hi - self.vx_lo;
        let h0 = self.y_hi - self.y_lo;
        let dh = self.vy_hi - self.vy_lo;
        // area(dt) = (w0 + dw·dt)(h0 + dh·dt)
        //          = w0·h0 + (w0·dh + h0·dw)·dt + dw·dh·dt²
        let a = w0 * h0;
        let b = w0 * dh + h0 * dw;
        let c = dw * dh;
        let f = |t: f64| a * t + b * t * t / 2.0 + c * t * t * t / 3.0;
        f(dt1) - f(dt0)
    }

    /// Integral of the box margin (half-perimeter) over `[dt0, dt1]`,
    /// used for split-axis selection.
    pub fn integral_margin(&self, dt0: f64, dt1: f64) -> f64 {
        if self.is_empty() {
            return 0.0;
        }
        let w0 = self.x_hi - self.x_lo;
        let dw = self.vx_hi - self.vx_lo;
        let h0 = self.y_hi - self.y_lo;
        let dh = self.vy_hi - self.vy_lo;
        let f = |t: f64| (w0 + h0) * t + (dw + dh) * t * t / 2.0;
        f(dt1) - f(dt0)
    }

    /// Integral over `[dt0, dt1]` of the overlap area with `other`,
    /// approximated by Simpson's rule on three sample instants. The
    /// exact overlap is piecewise quadratic; three samples are the
    /// standard engineering compromise for split scoring.
    pub fn integral_overlap(&self, other: &Tpbr, dt0: f64, dt1: f64) -> f64 {
        if self.is_empty() || other.is_empty() {
            return 0.0;
        }
        let mid = 0.5 * (dt0 + dt1);
        let ov = |dt: f64| self.rect_at(dt).intersection_area(&other.rect_at(dt));
        (dt1 - dt0) * (ov(dt0) + 4.0 * ov(mid) + ov(dt1)) / 6.0
    }

    /// `true` when `other` is contained in `self` for every `dt ≥ 0`
    /// (position bounds contain at `dt = 0` and velocity bounds
    /// dominate). Used by tree validation.
    pub fn contains_tpbr(&self, other: &Tpbr) -> bool {
        if other.is_empty() {
            return true;
        }
        !self.is_empty()
            && self.x_lo <= other.x_lo
            && self.y_lo <= other.y_lo
            && self.x_hi >= other.x_hi
            && self.y_hi >= other.y_hi
            && self.vx_lo <= other.vx_lo
            && self.vy_lo <= other.vy_lo
            && self.vx_hi >= other.vx_hi
            && self.vy_hi >= other.vy_hi
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdr_geometry::Point;

    fn motion(x: f64, y: f64, vx: f64, vy: f64) -> MotionState {
        MotionState::new(Point::new(x, y), Point::new(vx, vy), 10)
    }

    #[test]
    fn from_motion_traces_exactly() {
        let m = motion(5.0, 5.0, 1.0, -2.0);
        let b = Tpbr::from_motion(&m, 10);
        for dt in [0.0, 1.0, 7.5] {
            let r = b.rect_at(dt);
            let p = m.position_at(10) + m.velocity * dt;
            assert!((r.x_lo - p.x).abs() < 1e-12 && (r.x_hi - p.x).abs() < 1e-12);
            assert!((r.y_lo - p.y).abs() < 1e-12 && (r.y_hi - p.y).abs() < 1e-12);
        }
    }

    #[test]
    fn from_motion_reanchors_backwards() {
        let m = motion(5.0, 5.0, 1.0, 0.0); // reported at t=10
        let b = Tpbr::from_motion(&m, 0); // tree anchored at t=0
                                          // At dt=10 (absolute t=10) the box must sit at the report point.
        let r = b.rect_at(10.0);
        assert!((r.x_lo - 5.0).abs() < 1e-12);
    }

    #[test]
    fn union_bounds_both_forever() {
        let a = Tpbr::from_motion(&motion(0.0, 0.0, 1.0, 0.0), 10);
        let b = Tpbr::from_motion(&motion(10.0, 10.0, -1.0, 2.0), 10);
        let u = a.union(&b);
        assert!(u.contains_tpbr(&a));
        assert!(u.contains_tpbr(&b));
        for dt in [0.0, 3.0, 50.0] {
            assert!(u.rect_at(dt).contains_rect(&a.rect_at(dt)));
            assert!(u.rect_at(dt).contains_rect(&b.rect_at(dt)));
        }
    }

    #[test]
    fn empty_identity() {
        let e = Tpbr::empty();
        assert!(e.is_empty());
        let a = Tpbr::from_motion(&motion(1.0, 2.0, 0.0, 0.0), 10);
        assert_eq!(e.union(&a), a);
        assert_eq!(e.integral_area(0.0, 10.0), 0.0);
        assert!(!e.intersects_at(0.0, &Rect::new(-100.0, -100.0, 100.0, 100.0)));
    }

    #[test]
    fn intersects_at_moving_box() {
        // Box starts at [0,1]x[0,1] moving +1/tick in x.
        let mut b = Tpbr::from_motion(&motion(0.0, 0.0, 1.0, 0.0), 10);
        b = b.union(&Tpbr::from_motion(&motion(1.0, 1.0, 1.0, 0.0), 10));
        let query = Rect::new(10.0, 0.0, 11.0, 1.0);
        assert!(!b.intersects_at(0.0, &query));
        assert!(b.intersects_at(9.0, &query));
        assert!(b.intersects_at(10.0, &query));
        assert!(!b.intersects_at(12.0, &query));
    }

    #[test]
    fn integral_area_closed_form_matches_numeric() {
        let mut b = Tpbr::from_motion(&motion(0.0, 0.0, -1.0, 0.5), 10);
        b = b.union(&Tpbr::from_motion(&motion(4.0, 3.0, 2.0, 1.5), 10));
        let (dt0, dt1) = (0.0, 8.0);
        let n = 20_000;
        let mut numeric = 0.0;
        for i in 0..n {
            let t = dt0 + (dt1 - dt0) * (i as f64 + 0.5) / n as f64;
            numeric += b.area_at(t) * (dt1 - dt0) / n as f64;
        }
        let exact = b.integral_area(dt0, dt1);
        assert!(
            (exact - numeric).abs() < 1e-3 * numeric.max(1.0),
            "exact {exact} vs numeric {numeric}"
        );
    }

    #[test]
    fn integral_margin_grows_with_velocity_spread() {
        let tight = Tpbr::from_motion(&motion(0.0, 0.0, 1.0, 1.0), 10)
            .union(&Tpbr::from_motion(&motion(1.0, 1.0, 1.0, 1.0), 10));
        let spread = Tpbr::from_motion(&motion(0.0, 0.0, -1.0, -1.0), 10)
            .union(&Tpbr::from_motion(&motion(1.0, 1.0, 3.0, 3.0), 10));
        assert!(spread.integral_margin(0.0, 10.0) > tight.integral_margin(0.0, 10.0));
    }

    #[test]
    fn integral_overlap_of_disjoint_diverging_is_zero() {
        let a = Tpbr::from_motion(&motion(0.0, 0.0, -1.0, 0.0), 10);
        let b = Tpbr::from_motion(&motion(10.0, 0.0, 1.0, 0.0), 10);
        assert_eq!(a.integral_overlap(&b, 0.0, 10.0), 0.0);
    }
}
