//! Structural stress tests for the TPR-tree through its public API.

use pdr_geometry::{Point, Rect};
use pdr_mobject::{MotionState, ObjectId};
use pdr_tprtree::{Node, Tpbr, TprConfig, TprTree, LEAF_CAPACITY};

fn tree(buffer_pages: usize) -> TprTree {
    TprTree::new(
        TprConfig {
            buffer_pages,
            min_fill_ratio: 0.4,
            horizon: 20.0,
            integral_metrics: true,
        },
        0,
    )
}

fn motion(x: f64, y: f64, vx: f64, vy: f64) -> MotionState {
    MotionState::new(Point::new(x, y), Point::new(vx, vy), 0)
}

#[test]
fn split_exactly_at_capacity_boundary() {
    let mut t = tree(32);
    // Fill one leaf to capacity: height stays 1.
    for i in 0..LEAF_CAPACITY {
        t.insert(ObjectId(i as u64), &motion(i as f64, 0.0, 0.0, 0.0), 0);
    }
    assert_eq!(t.height(), 1);
    t.validate();
    // One more: split, height 2, both children within invariants.
    t.insert(ObjectId(9999), &motion(500.0, 0.0, 0.0, 0.0), 0);
    assert_eq!(t.height(), 2);
    t.validate();
    assert_eq!(t.len(), LEAF_CAPACITY + 1);
}

#[test]
fn query_disjoint_from_everything_reads_only_the_root() {
    let mut t = tree(64);
    for i in 0..500 {
        t.insert(
            ObjectId(i),
            &motion((i % 100) as f64, (i / 100) as f64, 0.0, 0.0),
            0,
        );
    }
    t.reset_io_stats();
    let hits = t.range_at(&Rect::new(5000.0, 5000.0, 6000.0, 6000.0), 0);
    assert!(hits.is_empty());
    assert_eq!(
        t.io_stats().logical_reads,
        1,
        "a fully disjoint query must prune at the root"
    );
}

#[test]
fn backward_anchored_motions_query_correctly() {
    // Motions reported later than the tree anchor (t_ref = 0): backward
    // extrapolation must keep queries exact at all timestamps >= report.
    let mut t = tree(32);
    let m = MotionState::new(Point::new(100.0, 100.0), Point::new(-1.0, 0.0), 10);
    t.insert(ObjectId(1), &m, 10);
    // At t = 15 the object is at (95, 100).
    let hits = t.range_at(&Rect::new(94.0, 99.0, 96.0, 101.0), 15);
    assert_eq!(hits.len(), 1);
    assert!((hits[0].1.x - 95.0).abs() < 1e-9);
}

#[test]
fn alternating_insert_delete_churn_keeps_invariants() {
    let mut t = tree(48);
    let mut live: Vec<ObjectId> = Vec::new();
    let mut seed = 2u64;
    let mut rng = move || {
        seed = seed
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (seed >> 33) as f64 / (1u64 << 31) as f64
    };
    for round in 0..2000u64 {
        if round % 3 == 2 && !live.is_empty() {
            // Delete a pseudo-random live object.
            let idx = (rng() * live.len() as f64) as usize % live.len();
            let victim = live.swap_remove(idx);
            assert!(t.remove(victim));
        } else {
            let id = ObjectId(round);
            t.insert(
                id,
                &motion(
                    rng() * 1000.0,
                    rng() * 1000.0,
                    rng() * 4.0 - 2.0,
                    rng() * 4.0 - 2.0,
                ),
                0,
            );
            live.push(id);
        }
        if round % 500 == 499 {
            t.validate();
        }
    }
    assert_eq!(t.len(), live.len());
    t.validate();
}

#[test]
fn tpbr_contains_is_reflexive_and_antisymmetric_enough() {
    let a = Tpbr {
        x_lo: 0.0,
        y_lo: 0.0,
        x_hi: 10.0,
        y_hi: 10.0,
        vx_lo: -1.0,
        vy_lo: -1.0,
        vx_hi: 1.0,
        vy_hi: 1.0,
    };
    assert!(a.contains_tpbr(&a));
    let tighter = Tpbr {
        x_lo: 2.0,
        y_lo: 2.0,
        x_hi: 8.0,
        y_hi: 8.0,
        vx_lo: -0.5,
        vy_lo: -0.5,
        vx_hi: 0.5,
        vy_hi: 0.5,
    };
    assert!(a.contains_tpbr(&tighter));
    assert!(!tighter.contains_tpbr(&a));
    // Everything contains the empty TPBR.
    assert!(tighter.contains_tpbr(&Tpbr::empty()));
}

#[test]
fn empty_node_has_empty_bound() {
    assert!(Node::Leaf(Vec::new()).bounding_tpbr().is_empty());
    assert!(Node::Internal(Vec::new()).bounding_tpbr().is_empty());
}

#[test]
fn bulk_load_full_fill_ratio() {
    // fill_ratio = 1.0 packs leaves completely and still queries right.
    let motions: Vec<(ObjectId, MotionState)> = (0..1000)
        .map(|i| {
            (
                ObjectId(i as u64),
                motion((i % 50) as f64 * 20.0, (i / 50) as f64 * 50.0, 0.0, 0.0),
            )
        })
        .collect();
    let mut t = tree(64);
    t.bulk_load(&motions, 1.0);
    t.validate();
    let hits = t.range_at(&Rect::new(0.0, 0.0, 1000.0, 1000.0), 0);
    assert_eq!(hits.len(), 1000);
}
