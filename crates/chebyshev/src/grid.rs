//! The `g × g` multi-polynomial grid of Section 6.4.

use crate::{BnbConfig, ChebyshevApprox};
use pdr_geometry::{CellId, GridSpec, Point, Rect, RegionSet};

/// A grid of `g × g` independent Chebyshev approximations tiling a
/// square domain (Section 6.4 of the paper).
///
/// A single global polynomial cannot track a heavily skewed density
/// surface; tiling the plane and approximating each tile independently
/// confines each polynomial to a small, smoother piece. Updates touch
/// only the tiles overlapping the object's `l`-square, and queries run
/// branch-and-bound per tile.
#[derive(Clone, Debug)]
pub struct PolyGrid {
    spec: GridSpec,
    degree: usize,
    cells: Vec<ChebyshevApprox>,
}

impl PolyGrid {
    /// Creates a zero field over `[0, extent]²` tiled into `g × g`
    /// degree-`degree` approximations.
    pub fn new(extent: f64, g: u32, degree: usize) -> Self {
        let spec = GridSpec::unit_origin(extent, g);
        let cells = spec
            .all_cells()
            .map(|c| ChebyshevApprox::zero(spec.cell_rect(c), degree))
            .collect();
        PolyGrid {
            spec,
            degree,
            cells,
        }
    }

    /// Tiles per side, `g`.
    pub fn g(&self) -> u32 {
        self.spec.cells_per_side()
    }

    /// Polynomial degree `k`.
    pub fn degree(&self) -> usize {
        self.degree
    }

    /// The covered domain.
    pub fn domain(&self) -> Rect {
        self.spec.bounds()
    }

    /// Total number of stored coefficients across all tiles — the
    /// paper's storage unit `g²(k+1)(k+2)/2` per timestamp.
    pub fn coefficient_count(&self) -> usize {
        self.cells
            .iter()
            .map(ChebyshevApprox::coefficient_count)
            .sum()
    }

    /// Adds `weight · 1_box` to the field; only tiles overlapping the
    /// box are touched. Returns the number of tiles updated (the CPU
    /// cost driver of per-update maintenance, Figure 9(b)).
    pub fn add_box(&mut self, bx: &Rect, weight: f64) -> usize {
        let mut touched = 0;
        // Collect first: cells_intersecting borrows spec immutably.
        let cells: Vec<CellId> = self.spec.cells_intersecting(bx).collect();
        for cell in cells {
            let idx = self.spec.linear_index(cell);
            let before = touched;
            if self.cells[idx].domain().intersection_area(bx) > 0.0 {
                self.cells[idx].add_box(bx, weight);
                touched = before + 1;
            }
        }
        touched
    }

    /// Field value at a domain point (0 outside the domain).
    pub fn eval(&self, p: Point) -> f64 {
        match self.spec.locate(p) {
            Some(cell) => self.cells[self.spec.linear_index(cell)].eval(p),
            None => 0.0,
        }
    }

    /// The approximation tile containing `p`, if inside the domain.
    pub fn tile_at(&self, p: Point) -> Option<&ChebyshevApprox> {
        self.spec
            .locate(p)
            .map(|c| &self.cells[self.spec.linear_index(c)])
    }

    /// Tiles whose domain intersects `r`.
    pub fn tiles_intersecting(&self, r: &Rect) -> impl Iterator<Item = &ChebyshevApprox> + '_ {
        self.spec
            .cells_intersecting(r)
            .map(move |c| &self.cells[self.spec.linear_index(c)])
    }

    /// All tiles with their cell ids, row-major.
    pub fn tiles(&self) -> impl Iterator<Item = (CellId, &ChebyshevApprox)> + '_ {
        self.spec
            .all_cells()
            .map(move |c| (c, &self.cells[self.spec.linear_index(c)]))
    }

    /// The region where the field is at least `tau`: per-tile
    /// branch-and-bound, unioned. Returns the region and the summed
    /// [`crate::BnbStats`] node accounting across every tile.
    pub fn superlevel_set(&self, tau: f64, cfg: &BnbConfig) -> (RegionSet, crate::BnbStats) {
        let mut out = RegionSet::new();
        let mut stats = crate::BnbStats::default();
        for cell in self.cells.iter() {
            let (r, s) = crate::superlevel_set(cell, tau, cfg);
            stats += s;
            out.extend_from(&r);
        }
        out.coalesce();
        (out, stats)
    }

    /// Closed-form integral of the field over `r` (clipped to the
    /// domain), summed across overlapping tiles.
    pub fn integral(&self, r: &Rect) -> f64 {
        self.spec
            .cells_intersecting(r)
            .map(|cell| self.cells[self.spec.linear_index(cell)].integral(r))
            .sum()
    }

    /// The `k` highest-density spots of the field (best-first
    /// branch-and-bound, see [`crate::top_k_peaks`]), each at least
    /// `min_separation` apart (L∞ between rectangle centers).
    pub fn top_k_peaks(
        &self,
        k: usize,
        cfg: &crate::BnbConfig,
        min_separation: f64,
    ) -> Vec<(Rect, f64)> {
        crate::top_k_peaks(self, k, cfg, min_separation)
    }

    /// Serializes the grid's coefficients into a versioned checkpoint.
    pub fn serialize(&self) -> Vec<u8> {
        let mut w = pdr_storage::ByteWriter::with_capacity(32 + 8 * self.coefficient_count());
        w.put_bytes(b"PDRG");
        w.put_u16(1);
        w.put_f64(self.spec.bounds().width());
        w.put_u32(self.g());
        w.put_u32(self.degree as u32);
        for cell in &self.cells {
            for &c in cell.coeffs().raw() {
                w.put_f64(c);
            }
        }
        w.into_bytes()
    }

    /// Restores a grid from [`serialize`](Self::serialize) output.
    pub fn deserialize(bytes: &[u8]) -> Result<Self, pdr_storage::CodecError> {
        use pdr_storage::CodecError;
        let mut r = pdr_storage::ByteReader::new(bytes);
        r.expect_magic(b"PDRG")?;
        let version = r.get_u16()?;
        if version != 1 {
            return Err(CodecError::BadVersion(version));
        }
        let extent = r.get_f64()?;
        if !(extent.is_finite() && extent > 0.0) {
            return Err(CodecError::Corrupt("extent"));
        }
        let g = r.get_u32()?;
        if g == 0 {
            return Err(CodecError::Corrupt("grid size"));
        }
        let degree = r.get_u32()? as usize;
        let mut out = PolyGrid::new(extent, g, degree);
        let per_cell = crate::CoeffTriangle::len_for(degree);
        for idx in 0..out.cells.len() {
            let mut raw = Vec::with_capacity(per_cell);
            for _ in 0..per_cell {
                raw.push(r.get_f64()?);
            }
            let domain = out.cells[idx].domain();
            out.cells[idx] =
                ChebyshevApprox::from_parts(domain, crate::CoeffTriangle::from_raw(degree, raw));
        }
        Ok(out)
    }

    /// Resets every coefficient to zero.
    pub fn clear(&mut self) {
        let spec = self.spec;
        for (i, cell) in self.cells.iter_mut().enumerate() {
            *cell = ChebyshevApprox::zero(spec.cell_rect(spec.cell_of_index(i)), self.degree);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn update_touches_only_overlapping_tiles() {
        let mut g = PolyGrid::new(100.0, 4, 4); // 25-unit tiles
        let touched = g.add_box(&Rect::new(10.0, 10.0, 20.0, 20.0), 1.0);
        assert_eq!(touched, 1);
        let touched = g.add_box(&Rect::new(20.0, 20.0, 30.0, 30.0), 1.0);
        assert_eq!(touched, 4, "box straddling a tile corner touches 4 tiles");
    }

    #[test]
    fn eval_approximates_box_mass() {
        let mut g = PolyGrid::new(100.0, 4, 8);
        let bx = Rect::new(30.0, 30.0, 45.0, 45.0);
        g.add_box(&bx, 2.0);
        // Deep inside the box the field should be near 2; far away near 0.
        assert!((g.eval(Point::new(37.5, 37.5)) - 2.0).abs() < 0.5);
        assert!(g.eval(Point::new(90.0, 90.0)).abs() < 0.2);
        assert_eq!(g.eval(Point::new(200.0, 0.0)), 0.0, "outside domain is 0");
    }

    #[test]
    fn coefficient_count_formula() {
        let g = PolyGrid::new(1000.0, 20, 5);
        assert_eq!(g.coefficient_count(), 400 * 21);
    }

    #[test]
    fn superlevel_set_finds_the_box() {
        let mut g = PolyGrid::new(100.0, 4, 8);
        let bx = Rect::new(26.0, 26.0, 49.0, 49.0); // inside tile (1,1)
        g.add_box(&bx, 1.0);
        let (region, _) = g.superlevel_set(0.5, &BnbConfig { min_edge: 0.5 });
        let truth = RegionSet::from_rects([bx]);
        // Chebyshev ringing blurs the edges; demand rough agreement.
        let err = region.symmetric_difference_area(&truth);
        assert!(
            err < 0.35 * truth.area(),
            "symmetric difference {err} vs truth area {}",
            truth.area()
        );
    }

    #[test]
    fn checkpoint_round_trip() {
        let mut g = PolyGrid::new(100.0, 4, 5);
        g.add_box(&Rect::new(20.0, 20.0, 45.0, 45.0), 1.5);
        g.add_box(&Rect::new(60.0, 10.0, 90.0, 30.0), -0.3);
        let bytes = g.serialize();
        let restored = PolyGrid::deserialize(&bytes).unwrap();
        assert_eq!(restored.g(), 4);
        assert_eq!(restored.degree(), 5);
        for ix in 0..10 {
            for iy in 0..10 {
                let p = Point::new(ix as f64 * 10.0 + 5.0, iy as f64 * 10.0 + 5.0);
                assert!((g.eval(p) - restored.eval(p)).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn checkpoint_rejects_truncation() {
        let g = PolyGrid::new(50.0, 2, 3);
        let bytes = g.serialize();
        assert!(PolyGrid::deserialize(&bytes[..bytes.len() - 4]).is_err());
        assert!(PolyGrid::deserialize(b"XXXX").is_err());
    }

    #[test]
    fn clear_zeroes_field() {
        let mut g = PolyGrid::new(100.0, 2, 3);
        g.add_box(&Rect::new(0.0, 0.0, 100.0, 100.0), 5.0);
        assert!(g.eval(Point::new(50.0, 50.0)) > 4.0);
        g.clear();
        assert_eq!(g.eval(Point::new(50.0, 50.0)), 0.0);
    }

    #[test]
    fn cross_tile_continuity_is_approximate() {
        // A box spanning two tiles: both tiles should see roughly the
        // same field value at the shared edge.
        let mut g = PolyGrid::new(100.0, 2, 8);
        g.add_box(&Rect::new(40.0, 40.0, 60.0, 60.0), 1.0);
        let left = g.eval(Point::new(49.99, 50.0));
        let right = g.eval(Point::new(50.01, 50.0));
        assert!((left - right).abs() < 0.3, "jump {left} vs {right}");
    }
}
