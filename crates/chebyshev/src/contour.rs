//! Contour lines of an approximated density surface.
//!
//! Section 6 of the paper highlights that a polynomial density
//! representation "makes it easy to compute the ρ-dense regions" and
//! that "we can also compute contour lines for the approximated
//! distribution in explicit form, which provide a clear overview of the
//! distribution of moving objects". This module provides those contour
//! lines via marching squares with linear interpolation: the field is
//! sampled on an `n × n` grid (cheap — polynomial evaluation), each
//! grid cell contributes 0–2 line segments where the iso-level crosses
//! its edges, and segments are stitched into polylines.

use pdr_geometry::{Point, Rect};

/// One contour polyline. `closed` is `true` when the line forms a loop
/// (an island of density); open lines terminate on the domain border.
#[derive(Clone, Debug, PartialEq)]
pub struct Contour {
    /// Ordered vertices of the polyline.
    pub points: Vec<Point>,
    /// Whether the polyline is a closed loop.
    pub closed: bool,
}

impl Contour {
    /// Total length of the polyline.
    pub fn length(&self) -> f64 {
        self.points
            .windows(2)
            .map(|w| w[0].distance(w[1]))
            .sum::<f64>()
            + if self.closed && self.points.len() > 1 {
                self.points[self.points.len() - 1].distance(self.points[0])
            } else {
                0.0
            }
    }
}

/// Extracts the iso-`level` contours of `field` over `domain`, sampling
/// on an `n × n` marching-squares grid.
///
/// # Panics
///
/// Panics when `n < 2` or the domain is degenerate.
pub fn contour_lines(
    field: impl Fn(f64, f64) -> f64,
    domain: Rect,
    level: f64,
    n: usize,
) -> Vec<Contour> {
    assert!(n >= 2, "need at least a 2x2 sample grid");
    assert!(!domain.is_degenerate(), "degenerate contour domain");
    let step_x = domain.width() / n as f64;
    let step_y = domain.height() / n as f64;

    // Sample the field once at every grid node, shifted by the level so
    // crossings are sign changes.
    let mut values = vec![0.0f64; (n + 1) * (n + 1)];
    for iy in 0..=n {
        for ix in 0..=n {
            let x = domain.x_lo + ix as f64 * step_x;
            let y = domain.y_lo + iy as f64 * step_y;
            values[iy * (n + 1) + ix] = field(x, y) - level;
        }
    }
    let v = |ix: usize, iy: usize| values[iy * (n + 1) + ix];

    // Linear interpolation of the zero crossing between two nodes.
    let lerp = |a: Point, fa: f64, b: Point, fb: f64| -> Point {
        let t = if (fb - fa).abs() < 1e-300 {
            0.5
        } else {
            (-fa / (fb - fa)).clamp(0.0, 1.0)
        };
        Point::new(a.x + t * (b.x - a.x), a.y + t * (b.y - a.y))
    };

    let mut segments: Vec<(Point, Point)> = Vec::new();
    for iy in 0..n {
        for ix in 0..n {
            let x0 = domain.x_lo + ix as f64 * step_x;
            let y0 = domain.y_lo + iy as f64 * step_y;
            let corners = [
                Point::new(x0, y0),                   // bottom-left
                Point::new(x0 + step_x, y0),          // bottom-right
                Point::new(x0 + step_x, y0 + step_y), // top-right
                Point::new(x0, y0 + step_y),          // top-left
            ];
            let f = [v(ix, iy), v(ix + 1, iy), v(ix + 1, iy + 1), v(ix, iy + 1)];
            // Case index: bit set when the corner is >= the level.
            let mut case = 0usize;
            for (bit, &fv) in f.iter().enumerate() {
                if fv >= 0.0 {
                    case |= 1 << bit;
                }
            }
            if case == 0 || case == 15 {
                continue;
            }
            // Edge crossing points (edge e connects corner e and e+1).
            let edge = |e: usize| {
                let a = e;
                let b = (e + 1) % 4;
                lerp(corners[a], f[a], corners[b], f[b])
            };
            // Standard marching-squares segment table; ambiguous cases
            // 5 and 10 are disambiguated by the cell-center value.
            let center = (f[0] + f[1] + f[2] + f[3]) / 4.0;
            let emit: &[(usize, usize)] = match case {
                1 => &[(3, 0)],
                2 => &[(0, 1)],
                3 => &[(3, 1)],
                4 => &[(1, 2)],
                5 => {
                    if center >= 0.0 {
                        &[(3, 2), (1, 0)]
                    } else {
                        &[(3, 0), (1, 2)]
                    }
                }
                6 => &[(0, 2)],
                7 => &[(3, 2)],
                8 => &[(2, 3)],
                9 => &[(2, 0)],
                10 => {
                    if center >= 0.0 {
                        &[(0, 1), (2, 3)]
                    } else {
                        &[(0, 3), (2, 1)]
                    }
                }
                11 => &[(2, 1)],
                12 => &[(1, 3)],
                13 => &[(1, 0)],
                14 => &[(0, 3)],
                _ => unreachable!(),
            };
            for &(ea, eb) in emit {
                segments.push((edge(ea), edge(eb)));
            }
        }
    }
    stitch(segments, step_x.min(step_y) * 1e-6)
}

/// Stitches segments into polylines by matching endpoints (quantized
/// with tolerance `tol`). Zero-length segments — produced when the
/// iso-level passes exactly through a grid node — are dropped first,
/// and consecutive duplicate vertices are removed from the output.
fn stitch(mut segments: Vec<(Point, Point)>, tol: f64) -> Vec<Contour> {
    segments.retain(|(a, b)| a.distance(*b) > tol);
    stitch_inner(segments, tol)
}

fn stitch_inner(segments: Vec<(Point, Point)>, tol: f64) -> Vec<Contour> {
    use std::collections::HashMap;
    let quant = |p: Point| -> (i64, i64) {
        (
            (p.x / tol.max(1e-12)).round() as i64,
            (p.y / tol.max(1e-12)).round() as i64,
        )
    };
    // endpoint key -> list of (segment index, which end).
    let mut ends: HashMap<(i64, i64), Vec<(usize, bool)>> = HashMap::new();
    for (i, (a, b)) in segments.iter().enumerate() {
        ends.entry(quant(*a)).or_default().push((i, false));
        ends.entry(quant(*b)).or_default().push((i, true));
    }
    let mut used = vec![false; segments.len()];
    let mut out = Vec::new();
    for start in 0..segments.len() {
        if used[start] {
            continue;
        }
        used[start] = true;
        let (a, b) = segments[start];
        let mut line = vec![a, b];
        // Extend forward from the tail, then backward from the head.
        for forward in [true, false] {
            loop {
                let tip = if forward {
                    *line.last().unwrap()
                } else {
                    line[0]
                };
                let Some(cands) = ends.get(&quant(tip)) else {
                    break;
                };
                let next = cands.iter().find(|(i, _)| !used[*i]).copied();
                let Some((i, end_is_b)) = next else {
                    break;
                };
                used[i] = true;
                let (sa, sb) = segments[i];
                let append = if end_is_b { sa } else { sb };
                if forward {
                    line.push(append);
                } else {
                    line.insert(0, append);
                }
            }
        }
        // Drop consecutive duplicates introduced by node-exact crossings.
        let mut points: Vec<Point> = Vec::with_capacity(line.len());
        for p in line {
            if points.last().is_none_or(|last| last.distance(p) > tol) {
                points.push(p);
            }
        }
        let closed = points.len() > 2 && points[0].distance(*points.last().unwrap()) <= tol * 4.0;
        if closed {
            points.pop();
        }
        if points.len() >= 2 {
            out.push(Contour { points, closed });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn circle_contour_is_closed_and_round() {
        // f(x, y) = 10 - distance from center: iso-4 is a circle of
        // radius 6 around (16, 16).
        let f = |x: f64, y: f64| 10.0 - ((x - 16.0).powi(2) + (y - 16.0).powi(2)).sqrt();
        let contours = contour_lines(f, Rect::new(0.0, 0.0, 32.0, 32.0), 4.0, 64);
        assert_eq!(contours.len(), 1, "one island expected: {contours:?}");
        let c = &contours[0];
        assert!(c.closed, "circle contour must close");
        // All vertices near radius 6.
        for p in &c.points {
            let r = ((p.x - 16.0).powi(2) + (p.y - 16.0).powi(2)).sqrt();
            assert!((r - 6.0).abs() < 0.2, "vertex radius {r}");
        }
        // Circumference ~ 2*pi*6.
        assert!((c.length() - 2.0 * std::f64::consts::PI * 6.0).abs() < 1.0);
    }

    #[test]
    fn open_contour_hits_the_border() {
        // A ramp: iso-level crosses the whole domain vertically.
        let f = |x: f64, _y: f64| x;
        let contours = contour_lines(f, Rect::new(0.0, 0.0, 10.0, 10.0), 5.0, 20);
        assert_eq!(contours.len(), 1);
        let c = &contours[0];
        assert!(!c.closed);
        for p in &c.points {
            assert!((p.x - 5.0).abs() < 1e-9);
        }
        // Spans the full height.
        let ys: Vec<f64> = c.points.iter().map(|p| p.y).collect();
        let (min, max) = ys
            .iter()
            .fold((f64::INFINITY, f64::NEG_INFINITY), |(lo, hi), &y| {
                (lo.min(y), hi.max(y))
            });
        assert!(min < 0.6 && max > 9.4, "span [{min}, {max}]");
    }

    #[test]
    fn no_contours_when_level_out_of_range() {
        let f = |_x: f64, _y: f64| 1.0;
        assert!(contour_lines(f, Rect::new(0.0, 0.0, 4.0, 4.0), 5.0, 8).is_empty());
        assert!(contour_lines(f, Rect::new(0.0, 0.0, 4.0, 4.0), -5.0, 8).is_empty());
    }

    #[test]
    fn two_islands_two_loops() {
        let f = |x: f64, y: f64| {
            let d1 = ((x - 8.0).powi(2) + (y - 8.0).powi(2)).sqrt();
            let d2 = ((x - 24.0).powi(2) + (y - 24.0).powi(2)).sqrt();
            (5.0 - d1).max(5.0 - d2)
        };
        let contours = contour_lines(f, Rect::new(0.0, 0.0, 32.0, 32.0), 2.0, 64);
        assert_eq!(contours.len(), 2);
        assert!(contours.iter().all(|c| c.closed));
    }

    #[test]
    #[should_panic(expected = "at least a 2x2")]
    fn rejects_tiny_grid() {
        let _ = contour_lines(|_, _| 0.0, Rect::new(0.0, 0.0, 1.0, 1.0), 0.0, 1);
    }
}
