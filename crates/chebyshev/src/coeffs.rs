//! Triangular 2-D Chebyshev coefficient sets and the closed-form
//! indicator-box coefficients of the paper's Lemma 4.

use crate::basis::{eval_t_all, integral_t, t_range};
use std::f64::consts::PI;

/// Coefficients `a_{i,j}` of a degree-`k` 2-D Chebyshev expansion with
/// triangular truncation `i + j ≤ k`, over the canonical `[−1, 1]²`
/// square.
///
/// Storage is a flat row-major triangle:
/// `(i, j)` with `i + j ≤ k` maps to index `i·(k+1) − i(i−1)/2 + j`.
/// A degree-`k` triangle holds `(k+1)(k+2)/2` coefficients — the
/// per-polynomial memory figure used in Section 6.4's storage analysis.
#[derive(Clone, Debug, PartialEq)]
pub struct CoeffTriangle {
    degree: usize,
    a: Vec<f64>,
}

impl CoeffTriangle {
    /// Creates an all-zero coefficient set of the given degree.
    pub fn zero(degree: usize) -> Self {
        CoeffTriangle {
            degree,
            a: vec![0.0; Self::len_for(degree)],
        }
    }

    /// Number of coefficients of a degree-`k` triangle.
    pub fn len_for(degree: usize) -> usize {
        (degree + 1) * (degree + 2) / 2
    }

    /// Polynomial degree `k`.
    #[inline]
    pub fn degree(&self) -> usize {
        self.degree
    }

    /// Number of stored coefficients.
    #[inline]
    pub fn len(&self) -> usize {
        self.a.len()
    }

    /// Always `false`: even a degree-0 triangle stores one coefficient
    /// (provided for API completeness alongside [`len`](Self::len)).
    pub fn is_empty(&self) -> bool {
        self.a.is_empty()
    }

    /// `true` when every coefficient is exactly zero.
    pub fn is_zero(&self) -> bool {
        self.a.iter().all(|&c| c == 0.0)
    }

    #[inline]
    fn index(&self, i: usize, j: usize) -> usize {
        debug_assert!(
            i + j <= self.degree,
            "({i},{j}) outside degree-{} triangle",
            self.degree
        );
        i * (self.degree + 1) - i * (i.saturating_sub(1)) / 2 + j
    }

    /// Coefficient `a_{i,j}`.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> f64 {
        self.a[self.index(i, j)]
    }

    /// Sets coefficient `a_{i,j}`.
    #[inline]
    pub fn set(&mut self, i: usize, j: usize, v: f64) {
        let idx = self.index(i, j);
        self.a[idx] = v;
    }

    /// In-place `self += other` (the paper's Lemma 3: coefficients of a
    /// sum are sums of coefficients).
    ///
    /// # Panics
    ///
    /// Panics on degree mismatch.
    pub fn add_assign(&mut self, other: &CoeffTriangle) {
        assert_eq!(self.degree, other.degree, "degree mismatch in add_assign");
        for (a, b) in self.a.iter_mut().zip(&other.a) {
            *a += b;
        }
    }

    /// In-place `self -= other` (object deletion).
    pub fn sub_assign(&mut self, other: &CoeffTriangle) {
        assert_eq!(self.degree, other.degree, "degree mismatch in sub_assign");
        for (a, b) in self.a.iter_mut().zip(&other.a) {
            *a -= b;
        }
    }

    /// Evaluates the expansion at `(x, y) ∈ [−1, 1]²`.
    #[allow(clippy::needless_range_loop)] // triangular index math, not a plain iteration
    pub fn eval(&self, x: f64, y: f64) -> f64 {
        let n = self.degree + 1;
        let mut tx = [0.0; 32];
        let mut ty = [0.0; 32];
        assert!(n <= 32, "degree too large for evaluation buffer");
        eval_t_all(x, &mut tx[..n]);
        eval_t_all(y, &mut ty[..n]);
        let mut sum = 0.0;
        for i in 0..n {
            for j in 0..(n - i) {
                sum += self.get(i, j) * tx[i] * ty[j];
            }
        }
        sum
    }

    /// Lower and upper bounds of the expansion over the sub-rectangle
    /// `[x_lo, x_hi] × [y_lo, y_hi] ⊆ [−1, 1]²` (Section 6.3).
    ///
    /// Each term `a_{i,j}·T_i(x)·T_j(y)` is bounded by interval
    /// arithmetic on the exact ranges of `T_i` and `T_j`; the bounds of
    /// the sum are the sums of the term bounds. Sound but not tight —
    /// exactly the trade-off the paper's branch-and-bound relies on.
    #[allow(clippy::needless_range_loop)] // triangular index math, not a plain iteration
    pub fn bounds_on(&self, x_lo: f64, x_hi: f64, y_lo: f64, y_hi: f64) -> (f64, f64) {
        let n = self.degree + 1;
        let mut rx = [(0.0, 0.0); 32];
        let mut ry = [(0.0, 0.0); 32];
        assert!(n <= 32, "degree too large for bounds buffer");
        for i in 0..n {
            rx[i] = t_range(i, x_lo, x_hi);
            ry[i] = t_range(i, y_lo, y_hi);
        }
        let (mut lo, mut hi) = (0.0, 0.0);
        for i in 0..n {
            for j in 0..(n - i) {
                let c = self.get(i, j);
                if c == 0.0 {
                    continue;
                }
                let (xl, xh) = rx[i];
                let (yl, yh) = ry[j];
                // Range of T_i(x)·T_j(y): extremes of endpoint products.
                let p1 = xl * yl;
                let p2 = xl * yh;
                let p3 = xh * yl;
                let p4 = xh * yh;
                let pmin = p1.min(p2).min(p3).min(p4);
                let pmax = p1.max(p2).max(p3).max(p4);
                if c > 0.0 {
                    lo += c * pmin;
                    hi += c * pmax;
                } else {
                    lo += c * pmax;
                    hi += c * pmin;
                }
            }
        }
        (lo, hi)
    }

    /// Closed-form integral of the expansion over the sub-rectangle
    /// `[x1, x2] × [y1, y2] ⊆ [−1, 1]²` (plain Lebesgue measure):
    /// each term separates into `a_{i,j} · ∫T_i dx · ∫T_j dy`.
    pub fn integral_box(&self, x1: f64, x2: f64, y1: f64, y2: f64) -> f64 {
        debug_assert!(x1 <= x2 && y1 <= y2, "malformed integration box");
        let n = self.degree + 1;
        let mut ix = [0.0; 32];
        let mut iy = [0.0; 32];
        assert!(n <= 32, "degree too large for integral buffer");
        for k in 0..n {
            ix[k] = integral_t(k, x1, x2);
            iy[k] = integral_t(k, y1, y2);
        }
        let mut sum = 0.0;
        for (i, j, a) in self.iter() {
            sum += a * ix[i] * iy[j];
        }
        sum
    }

    /// Raw flat coefficient slice (for checkpointing).
    pub fn raw(&self) -> &[f64] {
        &self.a
    }

    /// Rebuilds a triangle from its raw flat coefficients.
    ///
    /// # Panics
    ///
    /// Panics when the length does not match the degree.
    pub fn from_raw(degree: usize, a: Vec<f64>) -> Self {
        assert_eq!(
            a.len(),
            Self::len_for(degree),
            "raw coefficient length mismatch"
        );
        CoeffTriangle { degree, a }
    }

    /// Iterates `(i, j, a_{i,j})` over the triangle.
    pub fn iter(&self) -> impl Iterator<Item = (usize, usize, f64)> + '_ {
        let k = self.degree;
        (0..=k).flat_map(move |i| (0..=(k - i)).map(move |j| (i, j, self.get(i, j))))
    }
}

/// Closed-form Chebyshev coefficients (the paper's Lemma 4) of the
/// weighted indicator function
///
/// ```text
/// δ(x, y) = weight   on [x1, x2] × [y1, y2],   0 elsewhere,
/// ```
///
/// over `[−1, 1]²`. For an object insertion, `weight = 1/l²` and the box
/// is the object's `l`-square; deletion subtracts the same coefficients.
///
/// The 1-D factors come from `∫ T_i(x)/√(1−x²) dx`, which is
/// `arccos(x)` for `i = 0` and `−sin(i·arccos x)/i` for `i > 0`, giving
///
/// ```text
/// A_i = arccos(x1) − arccos(x2)                      (i = 0)
/// A_i = (sin(i·arccos x1) − sin(i·arccos x2)) / i    (i > 0)
/// ```
///
/// and `a_{i,j} = (c/π²) · weight · A_i · B_j` with `c = 4, 2, 1` as in
/// Theorem 1. Bounds are clamped into `[−1, 1]` before `arccos`.
#[allow(clippy::needless_range_loop)] // triangular index math, not a plain iteration
pub fn delta_coefficients(
    degree: usize,
    x1: f64,
    x2: f64,
    y1: f64,
    y2: f64,
    weight: f64,
) -> CoeffTriangle {
    debug_assert!(x1 <= x2 && y1 <= y2, "malformed box");
    let ax = factor_integrals(degree, x1, x2);
    let ay = factor_integrals(degree, y1, y2);
    let mut out = CoeffTriangle::zero(degree);
    let base = weight / (PI * PI);
    for i in 0..=degree {
        for j in 0..=(degree - i) {
            let c = match (i, j) {
                (0, 0) => 1.0,
                (0, _) | (_, 0) => 2.0,
                _ => 4.0,
            };
            out.set(i, j, c * base * ax[i] * ay[j]);
        }
    }
    out
}

/// The 1-D factors `A_i` of Lemma 4 for one axis.
fn factor_integrals(degree: usize, z1: f64, z2: f64) -> Vec<f64> {
    let t1 = z1.clamp(-1.0, 1.0).acos();
    let t2 = z2.clamp(-1.0, 1.0).acos();
    let mut out = Vec::with_capacity(degree + 1);
    out.push(t1 - t2); // arccos is decreasing, so this is >= 0
    for i in 1..=degree {
        let fi = i as f64;
        out.push(((fi * t1).sin() - (fi * t2).sin()) / fi);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn triangle_indexing_round_trip() {
        let mut t = CoeffTriangle::zero(5);
        assert_eq!(t.len(), 21);
        let mut v = 1.0;
        for i in 0..=5 {
            for j in 0..=(5 - i) {
                t.set(i, j, v);
                v += 1.0;
            }
        }
        let mut expect = 1.0;
        for i in 0..=5 {
            for j in 0..=(5 - i) {
                assert_eq!(t.get(i, j), expect);
                expect += 1.0;
            }
        }
        // Every flat slot was hit exactly once.
        assert!(t.iter().count() == 21);
    }

    #[test]
    fn linearity_of_add_sub() {
        let a = delta_coefficients(4, -0.5, 0.5, -0.5, 0.5, 1.0);
        let b = delta_coefficients(4, 0.0, 0.8, -0.2, 0.3, 2.0);
        let mut s = CoeffTriangle::zero(4);
        s.add_assign(&a);
        s.add_assign(&b);
        for (x, y) in [(0.1, 0.1), (-0.7, 0.4), (0.9, -0.9)] {
            let direct = a.eval(x, y) + b.eval(x, y);
            assert!((s.eval(x, y) - direct).abs() < 1e-12);
        }
        s.sub_assign(&b);
        s.sub_assign(&a);
        assert!(s.a.iter().all(|&c| c.abs() < 1e-12));
    }

    /// Numerical reference for the delta coefficients: Gauss–Chebyshev
    /// quadrature of Theorem 1 at the Chebyshev nodes.
    fn delta_coeff_quadrature(i: usize, j: usize, b: [f64; 4], w: f64) -> f64 {
        let n = 4000;
        let mut sx = 0.0;
        let mut sy = 0.0;
        for m in 0..n {
            let theta = (2.0 * m as f64 + 1.0) * PI / (2.0 * n as f64);
            let x = theta.cos();
            if x >= b[0] && x <= b[1] {
                sx += (i as f64 * theta).cos();
            }
            if x >= b[2] && x <= b[3] {
                sy += (j as f64 * theta).cos();
            }
        }
        let c = match (i, j) {
            (0, 0) => 1.0,
            (0, _) | (_, 0) => 2.0,
            _ => 4.0,
        };
        c * w * (PI / n as f64) * sx * (PI / n as f64) * sy / (PI * PI)
    }

    #[test]
    fn lemma4_matches_quadrature() {
        let b = [-0.4, 0.3, -0.1, 0.7];
        let w = 3.0;
        let t = delta_coefficients(5, b[0], b[1], b[2], b[3], w);
        for (i, j, a) in t.iter() {
            let q = delta_coeff_quadrature(i, j, b, w);
            assert!(
                (a - q).abs() < 1e-3,
                "a[{i},{j}] closed form {a} vs quadrature {q}"
            );
        }
    }

    #[test]
    fn delta_integral_mass_is_preserved() {
        // The a_{0,0} coefficient times the weight-function mass pi^2
        // recovers the integral of delta against 1/sqrt(...) weights;
        // simpler check: approximate the box indicator and verify the
        // approximation integrates (in plain Lebesgue sense, by sampling)
        // to roughly weight * box_area.
        let t = delta_coefficients(15, -0.5, 0.5, -0.5, 0.5, 1.0);
        let n = 60;
        let mut integral = 0.0;
        for ix in 0..n {
            for iy in 0..n {
                let x = -1.0 + 2.0 * (ix as f64 + 0.5) / n as f64;
                let y = -1.0 + 2.0 * (iy as f64 + 0.5) / n as f64;
                integral += t.eval(x, y) * (2.0 / n as f64) * (2.0 / n as f64);
            }
        }
        assert!(
            (integral - 1.0).abs() < 0.15,
            "box mass ~1 expected, got {integral}"
        );
    }

    #[test]
    fn bounds_are_sound_for_random_coeffs() {
        // Deterministic pseudo-random coefficients.
        let mut t = CoeffTriangle::zero(5);
        let mut seed = 0x12345678u64;
        let mut next = || {
            seed = seed
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((seed >> 33) as f64 / (1u64 << 31) as f64) - 1.0
        };
        for i in 0..=5 {
            for j in 0..=(5 - i) {
                t.set(i, j, next());
            }
        }
        for (x0, x1, y0, y1) in [
            (-1.0, 1.0, -1.0, 1.0),
            (-0.3, 0.2, 0.5, 0.9),
            (0.0, 0.1, -0.1, 0.0),
        ] {
            let (lo, hi) = t.bounds_on(x0, x1, y0, y1);
            for sx in 0..=20 {
                for sy in 0..=20 {
                    let x = x0 + (x1 - x0) * sx as f64 / 20.0;
                    let y = y0 + (y1 - y0) * sy as f64 / 20.0;
                    let v = t.eval(x, y);
                    assert!(
                        v >= lo - 1e-9 && v <= hi + 1e-9,
                        "value {v} at ({x},{y}) outside [{lo},{hi}]"
                    );
                }
            }
        }
    }

    #[test]
    fn bounds_tighten_under_subdivision() {
        let t = delta_coefficients(5, -0.2, 0.2, -0.2, 0.2, 1.0);
        let (lo_full, hi_full) = t.bounds_on(-1.0, 1.0, -1.0, 1.0);
        let (lo_sub, hi_sub) = t.bounds_on(0.6, 0.9, 0.6, 0.9);
        assert!(lo_sub >= lo_full - 1e-12);
        assert!(hi_sub <= hi_full + 1e-12);
        assert!(hi_sub - lo_sub < hi_full - lo_full);
    }

    #[test]
    fn zero_triangle_evaluates_to_zero() {
        let t = CoeffTriangle::zero(3);
        assert!(t.is_zero());
        assert_eq!(t.eval(0.3, -0.4), 0.0);
        assert_eq!(t.bounds_on(-1.0, 1.0, -1.0, 1.0), (0.0, 0.0));
    }
}
