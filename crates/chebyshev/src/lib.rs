//! 2-D Chebyshev polynomial machinery for the approximate PDR method.
//!
//! Section 6 of the paper maintains the moving-object density surface
//! `d_t(x, y)` as a truncated 2-D Chebyshev expansion
//!
//! ```text
//! f̂(x, y) = Σ_{i+j ≤ k}  a_{i,j} · T_i(x) · T_j(y),   (x, y) ∈ [−1, 1]²
//! ```
//!
//! and exploits three properties, all implemented here:
//!
//! 1. **Linearity** (the paper's Lemma 3): inserting or deleting an
//!    object shifts the density by an indicator-box function, whose
//!    Chebyshev coefficients have the closed form of Lemma 4 — see
//!    [`delta_coefficients`]. Updates are therefore coefficient
//!    additions, never refits.
//! 2. **Cheap interval bounds**: `T_i(x) = cos(i·arccos x)`, so the range
//!    of every basis term over a sub-rectangle is a cosine range — see
//!    [`t_range`] and [`CoeffTriangle::bounds_on`]. These drive the
//!    branch-and-bound evaluation of Section 6.3 ([`superlevel_set`]).
//! 3. **Near-minimax quality**: truncated Chebyshev expansions are close
//!    to the best polynomial approximation, which is why a small `k`
//!    suffices (verified by the fitting tests).
//!
//! [`ChebyshevApprox`] packages a coefficient triangle with an arbitrary
//! rectangular domain, and [`PolyGrid`] tiles the plane with `g × g`
//! independent approximations (Section 6.4) for skewed distributions.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod approx2d;
mod basis;
mod bnb;
mod coeffs;
mod contour;
mod grid;

pub use approx2d::ChebyshevApprox;
pub use basis::{cos_range, eval_t, eval_t_all, integral_t, t_range};
pub use bnb::{superlevel_set, top_k_peaks, BnbConfig, BnbStats, BoundedField};
pub use coeffs::{delta_coefficients, CoeffTriangle};
pub use contour::{contour_lines, Contour};
pub use grid::PolyGrid;
