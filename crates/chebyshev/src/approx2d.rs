//! Chebyshev approximation over an arbitrary rectangular domain.

use crate::coeffs::{delta_coefficients, CoeffTriangle};
use pdr_geometry::{Point, Rect};
use std::f64::consts::PI;

/// A degree-`k` 2-D Chebyshev approximation of a scalar field over a
/// rectangular `domain`, stored as a [`CoeffTriangle`] on the canonical
/// `[−1, 1]²` square with an affine domain mapping.
///
/// The approximation is built incrementally:
/// [`add_box`](ChebyshevApprox::add_box) deposits a weighted indicator box using
/// the closed form of Lemma 4 — this is exactly how the PA method
/// maintains the density surface under object insertions (positive
/// weight) and deletions (negative weight).
///
/// ```
/// use pdr_chebyshev::ChebyshevApprox;
/// use pdr_geometry::{Point, Rect};
///
/// // Approximate a 2-high plateau on [20,60]x[20,60] of a 100x100 domain.
/// let mut f = ChebyshevApprox::zero(Rect::new(0.0, 0.0, 100.0, 100.0), 8);
/// f.add_box(&Rect::new(20.0, 20.0, 60.0, 60.0), 2.0);
///
/// // Deep inside the box the surface is near 2, far away near 0
/// // (a degree-8 truncation rings, so tolerances are generous).
/// assert!((f.eval(Point::new(40.0, 40.0)) - 2.0).abs() < 0.8);
/// assert!(f.eval(Point::new(90.0, 90.0)).abs() < 0.4);
///
/// // Sound interval bounds drive branch-and-bound queries.
/// let (lo, hi) = f.bounds(&Rect::new(30.0, 30.0, 50.0, 50.0));
/// assert!(lo <= 2.0 && 2.0 <= hi + 0.5);
///
/// // Closed-form integral recovers the box mass.
/// let mass = f.integral(&Rect::new(0.0, 0.0, 100.0, 100.0));
/// assert!((mass - 2.0 * 1600.0).abs() < 200.0);
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct ChebyshevApprox {
    domain: Rect,
    coeffs: CoeffTriangle,
}

impl ChebyshevApprox {
    /// Creates the zero field over `domain`.
    ///
    /// # Panics
    ///
    /// Panics when the domain is degenerate.
    pub fn zero(domain: Rect, degree: usize) -> Self {
        assert!(!domain.is_degenerate(), "degenerate approximation domain");
        ChebyshevApprox {
            domain,
            coeffs: CoeffTriangle::zero(degree),
        }
    }

    /// Reassembles an approximation from a domain and raw coefficients
    /// (checkpoint restore).
    ///
    /// # Panics
    ///
    /// Panics when the domain is degenerate.
    pub fn from_parts(domain: Rect, coeffs: CoeffTriangle) -> Self {
        assert!(!domain.is_degenerate(), "degenerate approximation domain");
        ChebyshevApprox { domain, coeffs }
    }

    /// The approximation domain.
    #[inline]
    pub fn domain(&self) -> Rect {
        self.domain
    }

    /// Polynomial degree `k`.
    #[inline]
    pub fn degree(&self) -> usize {
        self.coeffs.degree()
    }

    /// Read access to the raw coefficients.
    pub fn coeffs(&self) -> &CoeffTriangle {
        &self.coeffs
    }

    /// Number of stored coefficients — the memory unit of Section 6.4's
    /// storage analysis.
    pub fn coefficient_count(&self) -> usize {
        self.coeffs.len()
    }

    /// Maps a domain X coordinate into `[−1, 1]`.
    #[inline]
    fn nx(&self, x: f64) -> f64 {
        2.0 * (x - self.domain.x_lo) / self.domain.width() - 1.0
    }

    /// Maps a domain Y coordinate into `[−1, 1]`.
    #[inline]
    fn ny(&self, y: f64) -> f64 {
        2.0 * (y - self.domain.y_lo) / self.domain.height() - 1.0
    }

    /// Maps a normalized X back into the domain.
    #[inline]
    pub fn denorm_x(&self, u: f64) -> f64 {
        self.domain.x_lo + (u + 1.0) * self.domain.width() / 2.0
    }

    /// Maps a normalized Y back into the domain.
    #[inline]
    pub fn denorm_y(&self, v: f64) -> f64 {
        self.domain.y_lo + (v + 1.0) * self.domain.height() / 2.0
    }

    /// Adds `weight · 1_box` to the approximated field. The box is
    /// clipped to the domain; a box that misses the domain entirely is a
    /// no-op. Negative weights model deletions.
    pub fn add_box(&mut self, bx: &Rect, weight: f64) {
        let Some(clipped) = bx.clipped_to(&self.domain) else {
            return;
        };
        if clipped.is_degenerate() {
            return;
        }
        let delta = delta_coefficients(
            self.degree(),
            self.nx(clipped.x_lo),
            self.nx(clipped.x_hi),
            self.ny(clipped.y_lo),
            self.ny(clipped.y_hi),
            weight,
        );
        self.coeffs.add_assign(&delta);
    }

    /// Evaluates the approximated field at a domain point.
    pub fn eval(&self, p: Point) -> f64 {
        self.coeffs.eval(self.nx(p.x), self.ny(p.y))
    }

    /// Sound lower/upper bounds of the field over a domain
    /// sub-rectangle (clipped to the domain).
    pub fn bounds(&self, r: &Rect) -> (f64, f64) {
        let c = r.clipped_to(&self.domain).unwrap_or(self.domain);
        self.coeffs.bounds_on(
            self.nx(c.x_lo).clamp(-1.0, 1.0),
            self.nx(c.x_hi).clamp(-1.0, 1.0),
            self.ny(c.y_lo).clamp(-1.0, 1.0),
            self.ny(c.y_hi).clamp(-1.0, 1.0),
        )
    }

    /// Fits an arbitrary function over the domain by Gauss–Chebyshev
    /// quadrature with `n × n` nodes (Theorem 1 discretized at the
    /// Chebyshev points). Used by tests and offline (non-incremental)
    /// model building.
    pub fn fit(domain: Rect, degree: usize, n: usize, f: impl Fn(Point) -> f64) -> Self {
        assert!(n > degree, "need more quadrature nodes than the degree");
        let mut out = ChebyshevApprox::zero(domain, degree);
        // Sample f at the Chebyshev nodes of the normalized square.
        let thetas: Vec<f64> = (0..n)
            .map(|m| (2.0 * m as f64 + 1.0) * PI / (2.0 * n as f64))
            .collect();
        let nodes: Vec<f64> = thetas.iter().map(|t| t.cos()).collect();
        let mut samples = vec![0.0; n * n];
        for (mi, &x) in nodes.iter().enumerate() {
            for (ni, &y) in nodes.iter().enumerate() {
                let p = Point::new(out.denorm_x(x), out.denorm_y(y));
                samples[mi * n + ni] = f(p);
            }
        }
        for i in 0..=degree {
            for j in 0..=(degree - i) {
                let mut s = 0.0;
                for (mi, &tx) in thetas.iter().enumerate() {
                    let ci = (i as f64 * tx).cos();
                    for (ni, &ty) in thetas.iter().enumerate() {
                        s += samples[mi * n + ni] * ci * (j as f64 * ty).cos();
                    }
                }
                let c = match (i, j) {
                    (0, 0) => 1.0,
                    (0, _) | (_, 0) => 2.0,
                    _ => 4.0,
                };
                out.coeffs.set(i, j, c * s / (n * n) as f64);
            }
        }
        out
    }

    /// Closed-form integral of the approximated field over a domain
    /// sub-rectangle (clipped to the domain). The normalized integral
    /// is scaled by the affine Jacobian `(width/2)·(height/2)`.
    pub fn integral(&self, r: &Rect) -> f64 {
        let Some(c) = r.clipped_to(&self.domain) else {
            return 0.0;
        };
        if c.is_degenerate() {
            return 0.0;
        }
        let jac = (self.domain.width() / 2.0) * (self.domain.height() / 2.0);
        self.coeffs.integral_box(
            self.nx(c.x_lo),
            self.nx(c.x_hi),
            self.ny(c.y_lo),
            self.ny(c.y_hi),
        ) * jac
    }

    /// In-place sum of two approximations over the same domain.
    ///
    /// # Panics
    ///
    /// Panics on domain or degree mismatch.
    pub fn add_assign(&mut self, other: &ChebyshevApprox) {
        assert_eq!(self.domain, other.domain, "domain mismatch");
        self.coeffs.add_assign(&other.coeffs);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn domain() -> Rect {
        Rect::new(0.0, 0.0, 100.0, 100.0)
    }

    #[test]
    fn fit_recovers_smooth_function() {
        // f(x, y) = sin(x/20) * cos(y/30) + 1 over a 100x100 domain;
        // degree 8 should approximate it to high accuracy.
        let f = |p: Point| (p.x / 20.0).sin() * (p.y / 30.0).cos() + 1.0;
        let a = ChebyshevApprox::fit(domain(), 8, 32, f);
        let mut max_err = 0.0f64;
        for ix in 0..=20 {
            for iy in 0..=20 {
                let p = Point::new(ix as f64 * 5.0, iy as f64 * 5.0);
                max_err = max_err.max((a.eval(p) - f(p)).abs());
            }
        }
        assert!(max_err < 5e-3, "max fit error {max_err}");
    }

    #[test]
    fn fit_is_exact_for_low_degree_polynomials() {
        // x*y is degree (1,1); a degree-2 triangle contains T_1(x)T_1(y).
        let f = |p: Point| 2.0 + 0.5 * p.x - 0.25 * p.y + 0.01 * p.x * p.y;
        let a = ChebyshevApprox::fit(domain(), 2, 16, f);
        for (x, y) in [(0.0, 0.0), (100.0, 100.0), (37.0, 81.0)] {
            let p = Point::new(x, y);
            assert!((a.eval(p) - f(p)).abs() < 1e-9);
        }
    }

    #[test]
    fn add_box_matches_fit_of_indicator() {
        let bx = Rect::new(20.0, 30.0, 45.0, 60.0);
        let w = 0.7;
        let mut inc = ChebyshevApprox::zero(domain(), 6);
        inc.add_box(&bx, w);
        let fitted =
            ChebyshevApprox::fit(domain(), 6, 1024, |p| if bx.contains(p) { w } else { 0.0 });
        for (i, j, a) in inc.coeffs().iter() {
            let b = fitted.coeffs().get(i, j);
            assert!(
                (a - b).abs() < 3e-2,
                "coeff ({i},{j}): closed form {a} vs quadrature {b}"
            );
        }
    }

    #[test]
    fn box_outside_domain_is_noop() {
        let mut a = ChebyshevApprox::zero(domain(), 4);
        a.add_box(&Rect::new(200.0, 200.0, 210.0, 210.0), 1.0);
        assert!(a.coeffs().is_zero());
    }

    #[test]
    fn box_is_clipped_to_domain() {
        let mut clipped = ChebyshevApprox::zero(domain(), 5);
        clipped.add_box(&Rect::new(-50.0, -50.0, 10.0, 10.0), 1.0);
        let mut direct = ChebyshevApprox::zero(domain(), 5);
        direct.add_box(&Rect::new(0.0, 0.0, 10.0, 10.0), 1.0);
        for (i, j, a) in clipped.coeffs().iter() {
            assert!((a - direct.coeffs().get(i, j)).abs() < 1e-12);
        }
    }

    #[test]
    fn insertion_then_deletion_cancels() {
        let mut a = ChebyshevApprox::zero(domain(), 5);
        let bx = Rect::new(10.0, 10.0, 40.0, 40.0);
        a.add_box(&bx, 1.0 / 900.0);
        a.add_box(&bx, -1.0 / 900.0);
        for (_, _, c) in a.coeffs().iter() {
            assert!(c.abs() < 1e-15);
        }
    }

    #[test]
    fn bounds_bracket_eval_on_domain_subrects() {
        let mut a = ChebyshevApprox::zero(domain(), 5);
        a.add_box(&Rect::new(40.0, 40.0, 60.0, 60.0), 1.0);
        a.add_box(&Rect::new(10.0, 70.0, 30.0, 90.0), 2.0);
        for r in [
            Rect::new(0.0, 0.0, 100.0, 100.0),
            Rect::new(45.0, 45.0, 55.0, 55.0),
            Rect::new(80.0, 0.0, 100.0, 20.0),
        ] {
            let (lo, hi) = a.bounds(&r);
            for sx in 0..=10 {
                for sy in 0..=10 {
                    let p = Point::new(
                        r.x_lo + r.width() * sx as f64 / 10.0,
                        r.y_lo + r.height() * sy as f64 / 10.0,
                    );
                    let v = a.eval(p);
                    assert!(v >= lo - 1e-9 && v <= hi + 1e-9);
                }
            }
        }
    }

    #[test]
    fn integral_matches_numeric_quadrature() {
        let mut a = ChebyshevApprox::zero(domain(), 6);
        a.add_box(&Rect::new(20.0, 20.0, 60.0, 50.0), 1.5);
        a.add_box(&Rect::new(40.0, 10.0, 80.0, 90.0), -0.4);
        for r in [
            Rect::new(0.0, 0.0, 100.0, 100.0),
            Rect::new(30.0, 30.0, 70.0, 40.0),
            Rect::new(90.0, 90.0, 100.0, 100.0),
        ] {
            let n = 200;
            let mut numeric = 0.0;
            for ix in 0..n {
                for iy in 0..n {
                    let p = Point::new(
                        r.x_lo + r.width() * (ix as f64 + 0.5) / n as f64,
                        r.y_lo + r.height() * (iy as f64 + 0.5) / n as f64,
                    );
                    numeric += a.eval(p) * (r.width() / n as f64) * (r.height() / n as f64);
                }
            }
            let exact = a.integral(&r);
            assert!(
                (exact - numeric).abs() < 1e-3 * numeric.abs().max(1.0),
                "rect {r:?}: exact {exact} vs numeric {numeric}"
            );
        }
    }

    #[test]
    fn integral_of_box_mass_is_preserved() {
        // The whole-domain integral of an indicator approximation is
        // close to weight * box area (Chebyshev ringing cancels out).
        let mut a = ChebyshevApprox::zero(domain(), 8);
        let bx = Rect::new(25.0, 25.0, 55.0, 65.0);
        a.add_box(&bx, 2.0);
        let mass = a.integral(&domain());
        assert!(
            (mass - 2.0 * bx.area()).abs() < 0.05 * 2.0 * bx.area(),
            "mass {mass} vs expected {}",
            2.0 * bx.area()
        );
    }

    #[test]
    fn integral_outside_domain_is_zero() {
        let mut a = ChebyshevApprox::zero(domain(), 4);
        a.add_box(&Rect::new(10.0, 10.0, 20.0, 20.0), 1.0);
        assert_eq!(a.integral(&Rect::new(200.0, 200.0, 300.0, 300.0)), 0.0);
    }

    #[test]
    fn denorm_round_trip() {
        let a = ChebyshevApprox::zero(Rect::new(-5.0, 10.0, 15.0, 20.0), 3);
        for u in [-1.0, -0.5, 0.0, 0.7, 1.0] {
            let x = a.denorm_x(u);
            assert!((a.nx(x) - u).abs() < 1e-12);
            let y = a.denorm_y(u);
            assert!((a.ny(y) - u).abs() < 1e-12);
        }
    }
}
