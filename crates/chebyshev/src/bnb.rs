//! Branch-and-bound extraction of super-level sets (Section 6.3).

use pdr_geometry::{Rect, RegionSet};

/// A scalar field over a rectangular domain that can report sound
/// lower/upper bounds on sub-rectangles. Implemented by
/// [`crate::ChebyshevApprox`]; the abstraction lets tests drive the
/// branch-and-bound with exactly-known fields.
pub trait BoundedField {
    /// The field's rectangular domain.
    fn domain(&self) -> Rect;
    /// Field value at `(x, y)`.
    fn value(&self, x: f64, y: f64) -> f64;
    /// `(lower, upper)` bounds of the field over `r` (must be sound:
    /// every value of the field on `r ∩ domain` lies within them).
    fn value_bounds(&self, r: &Rect) -> (f64, f64);
}

impl BoundedField for crate::ChebyshevApprox {
    fn domain(&self) -> Rect {
        self.domain()
    }
    fn value(&self, x: f64, y: f64) -> f64 {
        self.eval(pdr_geometry::Point::new(x, y))
    }
    fn value_bounds(&self, r: &Rect) -> (f64, f64) {
        self.bounds(r)
    }
}

impl BoundedField for crate::PolyGrid {
    fn domain(&self) -> Rect {
        crate::PolyGrid::domain(self)
    }
    fn value(&self, x: f64, y: f64) -> f64 {
        self.eval(pdr_geometry::Point::new(x, y))
    }
    fn value_bounds(&self, r: &Rect) -> (f64, f64) {
        // Sound bound over r ∩ domain: combine the bounds of every tile
        // whose domain overlaps r.
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for tile in self.tiles_intersecting(r) {
            let (tl, th) = tile.bounds(r);
            lo = lo.min(tl);
            hi = hi.max(th);
        }
        if lo > hi {
            (0.0, 0.0) // r misses the domain entirely
        } else {
            (lo, hi)
        }
    }
}

/// Configuration of the recursive subdivision.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct BnbConfig {
    /// Stop subdividing once a region's longer edge is below this; the
    /// region is then classified by its center value. This is the
    /// paper's `L/m_d` resolution: the trivial alternative evaluates an
    /// `m_d × m_d` point grid.
    pub min_edge: f64,
}

impl BnbConfig {
    /// Resolution equivalent to an `m_d × m_d` evaluation grid over a
    /// domain of the given extent.
    pub fn for_grid(extent: f64, m_d: u32) -> Self {
        assert!(m_d > 0, "evaluation grid must be positive");
        BnbConfig {
            min_edge: extent / m_d as f64,
        }
    }
}

/// Node accounting of one branch-and-bound run: where the recursion
/// spent its bound evaluations. `expanded` is the total number of nodes
/// visited (each costs one interval-bound evaluation — the quantity
/// that makes the PA query cost threshold-dependent, Figure 9(a));
/// `accepted` / `pruned` count the nodes whose interval bound decided
/// them outright, and `leaf_evals` counts the resolution-limit leaves
/// that fell back to a center-point evaluation.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct BnbStats {
    /// Nodes visited (= interval-bound evaluations performed).
    pub expanded: u64,
    /// Nodes accepted whole because their lower bound cleared `tau`.
    pub accepted: u64,
    /// Nodes pruned whole because their upper bound fell below `tau`.
    pub pruned: u64,
    /// Leaf nodes classified by their center value.
    pub leaf_evals: u64,
}

impl std::ops::AddAssign for BnbStats {
    fn add_assign(&mut self, rhs: BnbStats) {
        self.expanded += rhs.expanded;
        self.accepted += rhs.accepted;
        self.pruned += rhs.pruned;
        self.leaf_evals += rhs.leaf_evals;
    }
}

/// Returns the region where `field ≥ tau`, as a union of rectangles,
/// following the paper's recursion: if the lower bound over a region
/// clears `tau` the whole region is accepted; if the upper bound is
/// below `tau` it is pruned; otherwise the region splits in four, until
/// [`BnbConfig::min_edge`], where the center value decides.
///
/// Also returns the [`BnbStats`] node accounting; `stats.expanded` is
/// the bound-evaluation count earlier revisions returned bare.
pub fn superlevel_set<F: BoundedField>(
    field: &F,
    tau: f64,
    cfg: &BnbConfig,
) -> (RegionSet, BnbStats) {
    let mut out = RegionSet::new();
    let mut stats = BnbStats::default();
    recurse(field, tau, cfg, &field.domain(), &mut out, &mut stats);
    out.coalesce();
    (out, stats)
}

fn recurse<F: BoundedField>(
    field: &F,
    tau: f64,
    cfg: &BnbConfig,
    r: &Rect,
    out: &mut RegionSet,
    stats: &mut BnbStats,
) {
    stats.expanded += 1;
    let (lo, hi) = field.value_bounds(r);
    if lo >= tau {
        stats.accepted += 1;
        out.push(*r);
        return;
    }
    if hi < tau {
        stats.pruned += 1;
        return;
    }
    if r.width().max(r.height()) <= cfg.min_edge {
        stats.leaf_evals += 1;
        let c = r.center();
        if field.value(c.x, c.y) >= tau {
            out.push(*r);
        }
        return;
    }
    let cx = (r.x_lo + r.x_hi) / 2.0;
    let cy = (r.y_lo + r.y_hi) / 2.0;
    for quad in [
        Rect::new(r.x_lo, r.y_lo, cx, cy),
        Rect::new(cx, r.y_lo, r.x_hi, cy),
        Rect::new(r.x_lo, cy, cx, r.y_hi),
        Rect::new(cx, cy, r.x_hi, r.y_hi),
    ] {
        recurse(field, tau, cfg, &quad, out, stats);
    }
}

/// The `k` highest-valued spots of `field`: best-first branch-and-bound
/// that always expands the region with the largest upper bound, records
/// a peak whenever a leaf-sized region surfaces, and skips leaves whose
/// centers are within `min_separation` (L∞) of an already-recorded
/// peak.
///
/// Because regions are popped in decreasing upper-bound order, the
/// first recorded peak is within the bound looseness of the global
/// maximum; subsequent peaks are greedy under the separation
/// constraint. Returns up to `k` `(leaf_rect, center_value)` pairs in
/// decreasing value order.
pub fn top_k_peaks<F: BoundedField>(
    field: &F,
    k: usize,
    cfg: &BnbConfig,
    min_separation: f64,
) -> Vec<(Rect, f64)> {
    use std::cmp::Ordering;
    use std::collections::BinaryHeap;

    struct Entry {
        ub: f64,
        rect: Rect,
    }
    impl PartialEq for Entry {
        fn eq(&self, other: &Self) -> bool {
            self.ub == other.ub
        }
    }
    impl Eq for Entry {}
    impl PartialOrd for Entry {
        fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
            Some(self.cmp(other))
        }
    }
    impl Ord for Entry {
        fn cmp(&self, other: &Self) -> Ordering {
            self.ub.total_cmp(&other.ub)
        }
    }

    let mut heap = BinaryHeap::new();
    let root = field.domain();
    let (_, ub) = field.value_bounds(&root);
    heap.push(Entry { ub, rect: root });
    let mut peaks: Vec<(Rect, f64)> = Vec::with_capacity(k);

    while let Some(Entry { ub, rect }) = heap.pop() {
        if peaks.len() >= k {
            break;
        }
        // Nothing in the heap can beat the worst peak we could still
        // accept; also prune regions dominated by existing separation.
        if rect.width().max(rect.height()) <= cfg.min_edge {
            let c = rect.center();
            let separated = peaks
                .iter()
                .all(|(p, _)| p.center().linf_distance(c) >= min_separation);
            if separated {
                peaks.push((rect, field.value(c.x, c.y)));
            }
            continue;
        }
        let _ = ub;
        let cx = (rect.x_lo + rect.x_hi) / 2.0;
        let cy = (rect.y_lo + rect.y_hi) / 2.0;
        for quad in [
            Rect::new(rect.x_lo, rect.y_lo, cx, cy),
            Rect::new(cx, rect.y_lo, rect.x_hi, cy),
            Rect::new(rect.x_lo, cy, cx, rect.y_hi),
            Rect::new(cx, cy, rect.x_hi, rect.y_hi),
        ] {
            let (_, qub) = field.value_bounds(&quad);
            heap.push(Entry {
                ub: qub,
                rect: quad,
            });
        }
    }
    // Peaks were found in UB order; report in decreasing value order.
    peaks.sort_by(|a, b| b.1.total_cmp(&a.1));
    peaks
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdr_geometry::Point;

    /// A test field with exactly-known level sets: a cone peaking at
    /// `peak` with height `h` and slope 1 (L∞ cone, so level sets are
    /// squares).
    struct Cone {
        domain: Rect,
        peak: Point,
        h: f64,
    }

    impl BoundedField for Cone {
        fn domain(&self) -> Rect {
            self.domain
        }
        fn value(&self, x: f64, y: f64) -> f64 {
            self.h - self.peak.linf_distance(Point::new(x, y))
        }
        fn value_bounds(&self, r: &Rect) -> (f64, f64) {
            // L-inf distance from peak to rect: 0 if inside.
            let dx = (r.x_lo - self.peak.x).max(self.peak.x - r.x_hi).max(0.0);
            let dy = (r.y_lo - self.peak.y).max(self.peak.y - r.y_hi).max(0.0);
            let dmin = dx.max(dy);
            // Max L-inf distance: farthest corner.
            let fx = (self.peak.x - r.x_lo)
                .abs()
                .max((r.x_hi - self.peak.x).abs());
            let fy = (self.peak.y - r.y_lo)
                .abs()
                .max((r.y_hi - self.peak.y).abs());
            let dmax = fx.max(fy);
            (self.h - dmax, self.h - dmin)
        }
    }

    #[test]
    fn recovers_square_level_set() {
        let cone = Cone {
            domain: Rect::new(0.0, 0.0, 64.0, 64.0),
            peak: Point::new(32.0, 32.0),
            h: 10.0,
        };
        // {value >= 4} is the square of half-width 6 around the peak.
        let (region, _) = superlevel_set(&cone, 4.0, &BnbConfig { min_edge: 0.25 });
        let truth = RegionSet::from_rects([Rect::new(26.0, 26.0, 38.0, 38.0)]);
        let err = region.symmetric_difference_area(&truth);
        assert!(
            err < 0.05 * truth.area(),
            "level-set symmetric difference {err}"
        );
    }

    #[test]
    fn empty_when_threshold_above_peak() {
        let cone = Cone {
            domain: Rect::new(0.0, 0.0, 64.0, 64.0),
            peak: Point::new(10.0, 10.0),
            h: 5.0,
        };
        let (region, stats) = superlevel_set(&cone, 6.0, &BnbConfig { min_edge: 0.5 });
        assert!(region.is_empty());
        // Pruned at the very first bound check.
        assert_eq!(stats.expanded, 1);
        assert_eq!(stats.pruned, 1);
        assert_eq!(stats.accepted + stats.leaf_evals, 0);
    }

    #[test]
    fn whole_domain_when_threshold_below_minimum() {
        let d = Rect::new(0.0, 0.0, 32.0, 32.0);
        let cone = Cone {
            domain: d,
            peak: Point::new(16.0, 16.0),
            h: 100.0,
        };
        let (region, stats) = superlevel_set(&cone, 10.0, &BnbConfig { min_edge: 0.5 });
        assert!((region.area() - d.area()).abs() < 1e-9);
        assert_eq!(stats.expanded, 1, "entire domain accepted at the root");
        assert_eq!(stats.accepted, 1);
    }

    #[test]
    fn higher_threshold_prunes_more() {
        let cone = Cone {
            domain: Rect::new(0.0, 0.0, 64.0, 64.0),
            peak: Point::new(32.0, 32.0),
            h: 10.0,
        };
        let cfg = BnbConfig { min_edge: 0.25 };
        let (_, stats_low) = superlevel_set(&cone, 2.0, &cfg);
        let (_, stats_high) = superlevel_set(&cone, 9.0, &cfg);
        assert!(
            stats_high.expanded < stats_low.expanded,
            "expected fewer bound evaluations at higher threshold ({} vs {})",
            stats_high.expanded,
            stats_low.expanded
        );
        // Every node is decided exactly one way.
        for s in [stats_low, stats_high] {
            let children = s.expanded - 1; // all but the root are children
            assert_eq!(children % 4, 0, "quadtree children come in fours");
            assert_eq!(
                s.accepted + s.pruned + s.leaf_evals + children / 4,
                s.expanded,
                "accounting must partition the visited nodes: {s:?}"
            );
        }
    }

    /// A two-cone field with peaks of different heights: top-2 must
    /// find both, tallest first.
    struct TwoCones {
        domain: Rect,
        peaks: [(Point, f64); 2],
    }

    impl BoundedField for TwoCones {
        fn domain(&self) -> Rect {
            self.domain
        }
        fn value(&self, x: f64, y: f64) -> f64 {
            self.peaks
                .iter()
                .map(|(c, h)| h - c.linf_distance(Point::new(x, y)))
                .fold(f64::NEG_INFINITY, f64::max)
        }
        fn value_bounds(&self, r: &Rect) -> (f64, f64) {
            let per_peak = |c: &Point, h: f64| {
                let dx = (r.x_lo - c.x).max(c.x - r.x_hi).max(0.0);
                let dy = (r.y_lo - c.y).max(c.y - r.y_hi).max(0.0);
                let dmin = dx.max(dy);
                let fx = (c.x - r.x_lo).abs().max((r.x_hi - c.x).abs());
                let fy = (c.y - r.y_lo).abs().max((r.y_hi - c.y).abs());
                (h - fx.max(fy), h - dmin)
            };
            let (l1, h1) = per_peak(&self.peaks[0].0, self.peaks[0].1);
            let (l2, h2) = per_peak(&self.peaks[1].0, self.peaks[1].1);
            (l1.max(l2), h1.max(h2))
        }
    }

    #[test]
    fn top_k_finds_both_peaks_tallest_first() {
        let field = TwoCones {
            domain: Rect::new(0.0, 0.0, 64.0, 64.0),
            peaks: [
                (Point::new(16.0, 16.0), 10.0),
                (Point::new(48.0, 48.0), 7.0),
            ],
        };
        let cfg = BnbConfig { min_edge: 0.5 };
        let found = top_k_peaks(&field, 2, &cfg, 5.0);
        assert_eq!(found.len(), 2);
        assert!(found[0].1 > found[1].1, "tallest peak first");
        assert!(found[0].0.center().linf_distance(Point::new(16.0, 16.0)) < 1.0);
        assert!(found[1].0.center().linf_distance(Point::new(48.0, 48.0)) < 1.0);
        assert!((found[0].1 - 10.0).abs() < 0.5);
        assert!((found[1].1 - 7.0).abs() < 0.5);
    }

    #[test]
    fn separation_suppresses_shoulder_peaks() {
        let field = TwoCones {
            domain: Rect::new(0.0, 0.0, 64.0, 64.0),
            peaks: [
                (Point::new(30.0, 30.0), 10.0),
                (Point::new(33.0, 30.0), 9.0),
            ],
        };
        let cfg = BnbConfig { min_edge: 0.5 };
        // With separation 10, the second cone (3 away) is suppressed;
        // asking for 2 peaks yields the main one plus something far.
        let found = top_k_peaks(&field, 2, &cfg, 10.0);
        assert_eq!(found.len(), 2);
        assert!(
            found[0].0.center().linf_distance(found[1].0.center()) >= 10.0,
            "peaks too close: {found:?}"
        );
    }

    #[test]
    fn top_k_on_polygrid_surface() {
        use crate::PolyGrid;
        let mut g = PolyGrid::new(100.0, 4, 6);
        g.add_box(&Rect::new(20.0, 20.0, 30.0, 30.0), 3.0); // hot
        g.add_box(&Rect::new(70.0, 70.0, 80.0, 80.0), 1.0); // warm
        let found = g.top_k_peaks(2, &BnbConfig { min_edge: 1.0 }, 20.0);
        assert_eq!(found.len(), 2);
        assert!(
            found[0].0.center().linf_distance(Point::new(25.0, 25.0)) < 6.0,
            "hot peak misplaced: {found:?}"
        );
        assert!(found[0].1 > found[1].1);
    }

    #[test]
    fn for_grid_resolution() {
        let cfg = BnbConfig::for_grid(1000.0, 1000);
        assert_eq!(cfg.min_edge, 1.0);
    }
}
