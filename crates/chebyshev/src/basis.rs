//! The 1-D Chebyshev basis `T_k` and its interval bounds.

use std::f64::consts::PI;

/// Evaluates `T_k(x)` by the three-term recurrence
/// `T_0 = 1, T_1 = x, T_k = 2·x·T_{k−1} − T_{k−2}` (Definition 8).
///
/// The recurrence is numerically stable on `[−1, 1]` and avoids the
/// `arccos`/`cos` round trip.
pub fn eval_t(k: usize, x: f64) -> f64 {
    match k {
        0 => 1.0,
        1 => x,
        _ => {
            let (mut a, mut b) = (1.0, x); // T_0, T_1
            for _ in 2..=k {
                let c = 2.0 * x * b - a;
                a = b;
                b = c;
            }
            b
        }
    }
}

/// Fills `out[i] = T_i(x)` for `i in 0..out.len()` in one pass — the hot
/// path of polynomial evaluation (all degrees are needed at once).
pub fn eval_t_all(x: f64, out: &mut [f64]) {
    if let Some(v) = out.first_mut() {
        *v = 1.0;
    }
    if let Some(v) = out.get_mut(1) {
        *v = x;
    }
    for i in 2..out.len() {
        out[i] = 2.0 * x * out[i - 1] - out[i - 2];
    }
}

/// Plain (unweighted) integral `∫_a^b T_k(x) dx` in closed form, from
/// the antiderivatives
///
/// ```text
/// ∫T_0 = T_1,   ∫T_1 = T_2/4,
/// ∫T_k = (T_{k+1}/(k+1) − T_{k−1}/(k−1)) / 2     (k ≥ 2).
/// ```
///
/// Together with the coefficient triangle this gives closed-form
/// integrals of an approximated field over any rectangle — the basis
/// of the aggregate (count) estimator on the PA density surface.
pub fn integral_t(k: usize, a: f64, b: f64) -> f64 {
    let anti = |x: f64| -> f64 {
        match k {
            0 => eval_t(1, x),
            1 => eval_t(2, x) / 4.0,
            _ => {
                let kf = k as f64;
                (eval_t(k + 1, x) / (kf + 1.0) - eval_t(k - 1, x) / (kf - 1.0)) / 2.0
            }
        }
    };
    anti(b) - anti(a)
}

/// Range of `cos` over the angle interval `[a, b]` (radians, `a <= b`).
///
/// The maximum is `1` iff the interval contains a multiple of `2π`; the
/// minimum is `−1` iff it contains an odd multiple of `π`; otherwise the
/// extrema sit at the endpoints. Used to bound `T_i` on sub-intervals.
pub fn cos_range(a: f64, b: f64) -> (f64, f64) {
    debug_assert!(a <= b, "cos_range needs a <= b, got [{a}, {b}]");
    let (ca, cb) = (a.cos(), b.cos());
    let mut lo = ca.min(cb);
    let mut hi = ca.max(cb);
    // Is there an integer n with 2πn in [a, b]?
    if (a / (2.0 * PI)).ceil() * (2.0 * PI) <= b {
        hi = 1.0;
    }
    // Is there an odd multiple of π in [a, b]? Odd multiples are
    // (2n+1)π; equivalently an integer n with (a−π)/2π <= n <= (b−π)/2π.
    if ((a - PI) / (2.0 * PI)).ceil() * (2.0 * PI) + PI <= b {
        lo = -1.0;
    }
    (lo, hi)
}

/// Lower and upper bounds of `T_i` over `[z_lo, z_hi] ⊆ [−1, 1]`
/// (Section 6.3 of the paper).
///
/// Because `T_i(x) = cos(i·arccos x)` and `arccos` is decreasing, the
/// image of `[z_lo, z_hi]` under `i·arccos` is the angle interval
/// `[i·arccos(z_hi), i·arccos(z_lo)]`, whose cosine range is exact.
pub fn t_range(i: usize, z_lo: f64, z_hi: f64) -> (f64, f64) {
    debug_assert!(z_lo <= z_hi, "t_range needs z_lo <= z_hi");
    if i == 0 {
        return (1.0, 1.0);
    }
    let lo = z_lo.clamp(-1.0, 1.0);
    let hi = z_hi.clamp(-1.0, 1.0);
    let theta_lo = i as f64 * hi.acos();
    let theta_hi = i as f64 * lo.acos();
    cos_range(theta_lo, theta_hi)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recurrence_matches_trig_definition() {
        for k in 0..10 {
            for step in 0..=20 {
                let x = -1.0 + step as f64 * 0.1;
                let trig = (k as f64 * x.acos()).cos();
                assert!(
                    (eval_t(k, x) - trig).abs() < 1e-9,
                    "T_{k}({x}): recurrence {} vs trig {trig}",
                    eval_t(k, x)
                );
            }
        }
    }

    #[test]
    fn eval_all_matches_single() {
        let mut buf = [0.0; 8];
        eval_t_all(0.37, &mut buf);
        for (k, &v) in buf.iter().enumerate() {
            assert!((v - eval_t(k, 0.37)).abs() < 1e-12);
        }
    }

    #[test]
    fn known_values() {
        assert_eq!(eval_t(0, 0.5), 1.0);
        assert_eq!(eval_t(1, 0.5), 0.5);
        // T_2(x) = 2x² − 1
        assert!((eval_t(2, 0.5) + 0.5).abs() < 1e-12);
        // T_3(x) = 4x³ − 3x
        assert!((eval_t(3, 0.5) + 1.0).abs() < 1e-12);
        // T_k(1) = 1, T_k(−1) = (−1)^k
        for k in 0..12 {
            assert!((eval_t(k, 1.0) - 1.0).abs() < 1e-12);
            let expect = if k % 2 == 0 { 1.0 } else { -1.0 };
            assert!((eval_t(k, -1.0) - expect).abs() < 1e-12);
        }
    }

    #[test]
    fn integral_t_matches_quadrature() {
        for k in 0..10 {
            for (a, b) in [(-1.0, 1.0), (-0.3, 0.9), (0.1, 0.2), (-1.0, -0.5)] {
                let n = 10_000;
                let mut numeric = 0.0;
                for s in 0..n {
                    let x = a + (b - a) * (s as f64 + 0.5) / n as f64;
                    numeric += eval_t(k, x) * (b - a) / n as f64;
                }
                let exact = integral_t(k, a, b);
                assert!(
                    (exact - numeric).abs() < 1e-6,
                    "T_{k} on [{a}, {b}]: exact {exact} vs numeric {numeric}"
                );
            }
        }
    }

    #[test]
    fn integral_t_known_values() {
        // Over [-1, 1]: odd T_k integrate to 0, even to 2/(1 - k^2).
        assert!((integral_t(0, -1.0, 1.0) - 2.0).abs() < 1e-12);
        assert!(integral_t(1, -1.0, 1.0).abs() < 1e-12);
        assert!((integral_t(2, -1.0, 1.0) + 2.0 / 3.0).abs() < 1e-12);
        assert!(integral_t(3, -1.0, 1.0).abs() < 1e-12);
        assert!((integral_t(4, -1.0, 1.0) + 2.0 / 15.0).abs() < 1e-12);
    }

    #[test]
    fn cos_range_cases() {
        use std::f64::consts::PI;
        // Entire period: [-1, 1].
        assert_eq!(cos_range(0.0, 2.0 * PI), (-1.0, 1.0));
        // Interval inside the first quadrant: endpoints only.
        let (lo, hi) = cos_range(0.2, 0.8);
        assert!((lo - 0.8f64.cos()).abs() < 1e-12);
        assert!((hi - 0.2f64.cos()).abs() < 1e-12);
        // Contains pi but no multiple of 2pi.
        let (lo, hi) = cos_range(2.0, 4.0);
        assert_eq!(lo, -1.0);
        assert!((hi - 2.0f64.cos()).abs() < 1e-12);
        // Contains 2pi but not an odd multiple of pi.
        let (lo, hi) = cos_range(5.5, 7.0);
        assert_eq!(hi, 1.0);
        assert!((lo - 5.5f64.cos()).abs() < 1e-12);
        // Degenerate point interval.
        let (lo, hi) = cos_range(1.0, 1.0);
        assert!((lo - 1.0f64.cos()).abs() < 1e-12 && (hi - lo).abs() < 1e-12);
    }

    #[test]
    fn t_range_is_sound_and_tight() {
        // Soundness: sampled values always within bounds. Tightness:
        // bounds achieved within sampling tolerance for whole domain.
        for i in 0..8 {
            let (lo, hi) = t_range(i, -1.0, 1.0);
            if i == 0 {
                assert_eq!((lo, hi), (1.0, 1.0));
            } else {
                assert_eq!((lo, hi), (-1.0, 1.0));
            }
            for (z0, z1) in [(-0.9, -0.3), (0.1, 0.2), (-0.05, 0.6), (0.99, 1.0)] {
                let (lo, hi) = t_range(i, z0, z1);
                let mut seen_lo = f64::INFINITY;
                let mut seen_hi = f64::NEG_INFINITY;
                for s in 0..=200 {
                    let x = z0 + (z1 - z0) * s as f64 / 200.0;
                    let v = eval_t(i, x);
                    assert!(
                        v >= lo - 1e-9 && v <= hi + 1e-9,
                        "T_{i}({x}) = {v} outside [{lo}, {hi}] on [{z0}, {z1}]"
                    );
                    seen_lo = seen_lo.min(v);
                    seen_hi = seen_hi.max(v);
                }
                assert!(
                    seen_lo - lo < 0.05,
                    "lower bound too loose for T_{i} on [{z0},{z1}]"
                );
                assert!(
                    hi - seen_hi < 0.05,
                    "upper bound too loose for T_{i} on [{z0},{z1}]"
                );
            }
        }
    }
}
