//! Mathematical property tests for the Chebyshev machinery, checked
//! against first principles (orthogonality, minimax-ish behavior,
//! symmetry).

use pdr_chebyshev::{
    contour_lines, delta_coefficients, eval_t, integral_t, superlevel_set, t_range, BnbConfig,
    ChebyshevApprox, CoeffTriangle,
};
use pdr_geometry::{Point, Rect};
use std::f64::consts::PI;

/// Gauss–Chebyshev quadrature of `f` against the weight `1/√(1−x²)`.
fn gc_quad(f: impl Fn(f64) -> f64, n: usize) -> f64 {
    (0..n)
        .map(|m| {
            let theta = (2.0 * m as f64 + 1.0) * PI / (2.0 * n as f64);
            f(theta.cos())
        })
        .sum::<f64>()
        * PI
        / n as f64
}

#[test]
fn basis_orthogonality() {
    // ∫ T_i T_j w dx = 0 (i≠j), π (i=j=0), π/2 (i=j>0).
    for i in 0..6 {
        for j in 0..6 {
            let integral = gc_quad(|x| eval_t(i, x) * eval_t(j, x), 512);
            let expect = if i != j {
                0.0
            } else if i == 0 {
                PI
            } else {
                PI / 2.0
            };
            assert!(
                (integral - expect).abs() < 1e-9,
                "<T_{i}, T_{j}> = {integral}, expected {expect}"
            );
        }
    }
}

#[test]
fn t_range_degenerate_interval_is_point_value() {
    for i in 0..6 {
        for z in [-0.9, -0.3, 0.0, 0.5, 1.0] {
            let (lo, hi) = t_range(i, z, z);
            let v = eval_t(i, z);
            assert!((lo - v).abs() < 1e-9 && (hi - v).abs() < 1e-9);
        }
    }
}

#[test]
fn coefficient_triangle_sizes() {
    assert_eq!(CoeffTriangle::len_for(0), 1);
    assert_eq!(CoeffTriangle::len_for(1), 3);
    assert_eq!(CoeffTriangle::len_for(5), 21);
    assert_eq!(CoeffTriangle::len_for(8), 45);
}

#[test]
fn delta_coefficients_symmetry() {
    // A box symmetric about both axes has no odd-degree terms.
    let t = delta_coefficients(5, -0.4, 0.4, -0.7, 0.7, 1.0);
    for (i, j, a) in t.iter() {
        if i % 2 == 1 || j % 2 == 1 {
            assert!(
                a.abs() < 1e-15,
                "odd coefficient a[{i},{j}] = {a} for a symmetric box"
            );
        }
    }
}

#[test]
fn integral_t_is_linear_in_interval() {
    // Additivity: ∫_a^b + ∫_b^c = ∫_a^c for every degree.
    for k in 0..8 {
        let (a, b, c) = (-0.8, 0.1, 0.9);
        let lhs = integral_t(k, a, b) + integral_t(k, b, c);
        let rhs = integral_t(k, a, c);
        assert!((lhs - rhs).abs() < 1e-12, "T_{k} additivity");
    }
}

#[test]
fn fit_error_shrinks_with_degree() {
    // Near-minimax behavior: higher degree => smaller max error on a
    // smooth function.
    let domain = Rect::new(0.0, 0.0, 10.0, 10.0);
    let f = |p: Point| ((p.x - 5.0) / 2.0).tanh() * ((p.y - 5.0) / 3.0).cos();
    let max_err = |k: usize| {
        let a = ChebyshevApprox::fit(domain, k, 48, f);
        let mut worst = 0.0f64;
        for ix in 0..=40 {
            for iy in 0..=40 {
                let p = Point::new(ix as f64 * 0.25, iy as f64 * 0.25);
                worst = worst.max((a.eval(p) - f(p)).abs());
            }
        }
        worst
    };
    let e4 = max_err(4);
    let e8 = max_err(8);
    let e12 = max_err(12);
    assert!(e8 < e4, "degree 8 ({e8}) should beat degree 4 ({e4})");
    assert!(e12 < e8, "degree 12 ({e12}) should beat degree 8 ({e8})");
}

#[test]
fn superlevel_and_contour_agree_on_boundary() {
    // The super-level region's boundary and the contour line at the
    // same level trace the same curve: contour vertices must lie within
    // one grid step of the region boundary.
    let mut f = ChebyshevApprox::zero(Rect::new(0.0, 0.0, 64.0, 64.0), 8);
    f.add_box(&Rect::new(24.0, 24.0, 40.0, 40.0), 1.0);
    let level = 0.5;
    let (region, _) = superlevel_set(&f, level, &BnbConfig { min_edge: 0.25 });
    let contours = contour_lines(|x, y| f.eval(Point::new(x, y)), f.domain(), level, 128);
    assert!(!contours.is_empty());
    for c in &contours {
        for p in c.points.iter().step_by(4) {
            // A contour vertex sits at the level; points slightly inward
            // must be in the region, slightly outward must not be —
            // checked indirectly: the vertex is within 1.0 of the
            // region's point set boundary.
            let inside = region.contains(*p);
            let nudges = [
                Point::new(p.x + 1.0, p.y),
                Point::new(p.x - 1.0, p.y),
                Point::new(p.x, p.y + 1.0),
                Point::new(p.x, p.y - 1.0),
            ];
            let any_other_side = nudges.iter().any(|q| region.contains(*q) != inside);
            assert!(
                any_other_side,
                "contour vertex {p:?} not near region boundary"
            );
        }
    }
}

#[test]
fn add_box_weight_scales_linearly() {
    let domain = Rect::new(0.0, 0.0, 10.0, 10.0);
    let bx = Rect::new(2.0, 2.0, 6.0, 7.0);
    let mut one = ChebyshevApprox::zero(domain, 5);
    one.add_box(&bx, 1.0);
    let mut three = ChebyshevApprox::zero(domain, 5);
    three.add_box(&bx, 3.0);
    for (i, j, a) in one.coeffs().iter() {
        assert!((3.0 * a - three.coeffs().get(i, j)).abs() < 1e-12);
    }
}
