//! The simulated raw device: an array of fixed-size pages.

use std::fmt;

/// Page size in bytes (Table 1 of the paper: 4 KiB).
pub const PAGE_SIZE: usize = 4096;

/// Identifier of an allocated disk page.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PageId(pub u32);

impl fmt::Debug for PageId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "pg{}", self.0)
    }
}

/// An in-memory simulated disk: pages are allocated from a grow-only
/// arena with a free list, and read/write whole pages at a time.
///
/// The disk itself does no caching and no accounting — that is the
/// buffer pool's job — so reading straight from [`Disk`] models an
/// uncached random access.
pub struct Disk {
    pages: Vec<Box<[u8; PAGE_SIZE]>>,
    free: Vec<PageId>,
}

impl Disk {
    /// Creates an empty disk.
    pub fn new() -> Self {
        Disk {
            pages: Vec::new(),
            free: Vec::new(),
        }
    }

    /// Number of live (allocated, not freed) pages.
    pub fn allocated_pages(&self) -> usize {
        self.pages.len() - self.free.len()
    }

    /// Total bytes currently backing the disk.
    pub fn size_bytes(&self) -> usize {
        self.pages.len() * PAGE_SIZE
    }

    /// Allocates a zeroed page and returns its id. Freed pages are
    /// recycled before the arena grows.
    pub fn allocate(&mut self) -> PageId {
        if let Some(id) = self.free.pop() {
            self.pages[id.0 as usize].fill(0);
            return id;
        }
        let id =
            PageId(u32::try_from(self.pages.len()).expect("simulated disk exceeded 2^32 pages"));
        self.pages.push(Box::new([0u8; PAGE_SIZE]));
        id
    }

    /// Returns a page to the free list.
    ///
    /// # Panics
    ///
    /// Panics on double free or an out-of-range id — both are bugs in
    /// the caller that must not be masked.
    pub fn free(&mut self, id: PageId) {
        assert!(
            (id.0 as usize) < self.pages.len(),
            "free of unallocated page {id:?}"
        );
        assert!(!self.free.contains(&id), "double free of page {id:?}");
        self.free.push(id);
    }

    /// Reads a whole page.
    ///
    /// # Panics
    ///
    /// Panics on an out-of-range id.
    pub fn read(&self, id: PageId) -> &[u8; PAGE_SIZE] {
        &self.pages[id.0 as usize]
    }

    /// Overwrites a whole page.
    ///
    /// # Panics
    ///
    /// Panics on an out-of-range id.
    pub fn write(&mut self, id: PageId, data: &[u8; PAGE_SIZE]) {
        self.pages[id.0 as usize].copy_from_slice(data);
    }
}

impl Default for Disk {
    fn default() -> Self {
        Disk::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocate_read_write_round_trip() {
        let mut d = Disk::new();
        let a = d.allocate();
        let b = d.allocate();
        assert_ne!(a, b);
        let mut page = [0u8; PAGE_SIZE];
        page[0] = 0xAB;
        page[PAGE_SIZE - 1] = 0xCD;
        d.write(a, &page);
        assert_eq!(d.read(a)[0], 0xAB);
        assert_eq!(d.read(a)[PAGE_SIZE - 1], 0xCD);
        assert_eq!(d.read(b)[0], 0); // untouched page stays zeroed
    }

    #[test]
    fn free_pages_are_recycled_zeroed() {
        let mut d = Disk::new();
        let a = d.allocate();
        let mut page = [0u8; PAGE_SIZE];
        page[10] = 42;
        d.write(a, &page);
        d.free(a);
        let b = d.allocate();
        assert_eq!(a, b, "freed page should be recycled");
        assert_eq!(d.read(b)[10], 0, "recycled page must be zeroed");
        assert_eq!(d.allocated_pages(), 1);
    }

    #[test]
    #[should_panic(expected = "double free")]
    fn double_free_panics() {
        let mut d = Disk::new();
        let a = d.allocate();
        d.free(a);
        d.free(a);
    }

    #[test]
    fn accounting() {
        let mut d = Disk::new();
        let ids: Vec<PageId> = (0..5).map(|_| d.allocate()).collect();
        assert_eq!(d.allocated_pages(), 5);
        assert_eq!(d.size_bytes(), 5 * PAGE_SIZE);
        d.free(ids[2]);
        assert_eq!(d.allocated_pages(), 4);
    }
}
