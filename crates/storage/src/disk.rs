//! The simulated raw device: an array of fixed-size pages.

use crate::codec::crc32;
use crate::fault::{FaultPlan, FaultStats, StorageError, WriteVerdict, TORN_WRITE_PREFIX};
use std::fmt;
use std::sync::OnceLock;

/// CRC32 of an all-zero page (every fresh allocation).
fn zero_page_crc() -> u32 {
    static CRC: OnceLock<u32> = OnceLock::new();
    *CRC.get_or_init(|| crc32(&[0u8; PAGE_SIZE]))
}

/// Page size in bytes (Table 1 of the paper: 4 KiB).
pub const PAGE_SIZE: usize = 4096;

/// Identifier of an allocated disk page.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PageId(pub u32);

impl fmt::Debug for PageId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "pg{}", self.0)
    }
}

/// An in-memory simulated disk: pages are allocated from a grow-only
/// arena with a free list, and read/write whole pages at a time.
///
/// The disk itself does no caching and no accounting — that is the
/// buffer pool's job — so reading straight from [`Disk`] models an
/// uncached random access.
///
/// Every page carries a sidecar CRC32 checksum recorded at write time
/// (modelling a checksum embedded in the page's first sector). The
/// fallible paths — [`try_read`](Disk::try_read) /
/// [`try_write`](Disk::try_write) — verify it and consult an optional
/// [`FaultPlan`], returning a typed [`StorageError`] instead of
/// panicking or silently consuming corrupt data.
pub struct Disk {
    pages: Vec<Box<[u8; PAGE_SIZE]>>,
    /// Checksum of what each page *should* contain. A torn write
    /// records the checksum of the full intended content while only a
    /// prefix reaches the page, so the next read detects the tear.
    crcs: Vec<u32>,
    free: Vec<PageId>,
    plan: Option<FaultPlan>,
    faults: FaultStats,
}

impl Disk {
    /// Creates an empty disk.
    pub fn new() -> Self {
        Disk {
            pages: Vec::new(),
            crcs: Vec::new(),
            free: Vec::new(),
            plan: None,
            faults: FaultStats::default(),
        }
    }

    /// Installs (or replaces) the fault plan consulted by
    /// [`try_read`](Disk::try_read) / [`try_write`](Disk::try_write).
    pub fn set_fault_plan(&mut self, plan: FaultPlan) {
        self.plan = Some(plan);
    }

    /// Removes any installed fault plan.
    pub fn clear_fault_plan(&mut self) {
        self.plan = None;
    }

    /// Counters of faults injected (and checksum failures detected) so
    /// far.
    pub fn fault_stats(&self) -> FaultStats {
        self.faults
    }

    /// Number of live (allocated, not freed) pages.
    pub fn allocated_pages(&self) -> usize {
        self.pages.len() - self.free.len()
    }

    /// Total bytes currently backing the disk.
    pub fn size_bytes(&self) -> usize {
        self.pages.len() * PAGE_SIZE
    }

    /// Allocates a zeroed page and returns its id. Freed pages are
    /// recycled before the arena grows.
    pub fn allocate(&mut self) -> PageId {
        if let Some(id) = self.free.pop() {
            self.pages[id.0 as usize].fill(0);
            self.crcs[id.0 as usize] = zero_page_crc();
            return id;
        }
        let id =
            PageId(u32::try_from(self.pages.len()).expect("simulated disk exceeded 2^32 pages"));
        self.pages.push(Box::new([0u8; PAGE_SIZE]));
        self.crcs.push(zero_page_crc());
        id
    }

    /// Returns a page to the free list.
    ///
    /// # Panics
    ///
    /// Panics on double free or an out-of-range id — both are bugs in
    /// the caller that must not be masked.
    pub fn free(&mut self, id: PageId) {
        assert!(
            (id.0 as usize) < self.pages.len(),
            "free of unallocated page {id:?}"
        );
        assert!(!self.free.contains(&id), "double free of page {id:?}");
        self.free.push(id);
    }

    /// Reads a whole page.
    ///
    /// # Panics
    ///
    /// Panics on an out-of-range id.
    pub fn read(&self, id: PageId) -> &[u8; PAGE_SIZE] {
        &self.pages[id.0 as usize]
    }

    /// Overwrites a whole page.
    ///
    /// # Panics
    ///
    /// Panics on an out-of-range id.
    pub fn write(&mut self, id: PageId, data: &[u8; PAGE_SIZE]) {
        self.pages[id.0 as usize].copy_from_slice(data);
        self.crcs[id.0 as usize] = crc32(data);
    }

    /// Fallible read: consults the fault plan, then verifies the page
    /// against its recorded checksum. This is the path the buffer pool
    /// uses for every physical read.
    ///
    /// # Panics
    ///
    /// Still panics on an out-of-range id — that is a caller bug, not
    /// an injectable device fault.
    pub fn try_read(&mut self, id: PageId) -> Result<&[u8; PAGE_SIZE], StorageError> {
        assert!(
            (id.0 as usize) < self.pages.len(),
            "read of unallocated page {id:?}"
        );
        if let Some(plan) = self.plan.as_mut() {
            if let Some(transient) = plan.check_read(id) {
                self.faults.read_faults += 1;
                return Err(StorageError::ReadFailed {
                    page: id,
                    transient,
                });
            }
        }
        let data = &self.pages[id.0 as usize];
        if crc32(data.as_slice()) != self.crcs[id.0 as usize] {
            self.faults.crc_failures += 1;
            return Err(StorageError::Corrupt { page: id });
        }
        Ok(data)
    }

    /// Fallible write: consults the fault plan. A torn write silently
    /// persists only the first [`TORN_WRITE_PREFIX`] bytes while
    /// recording the checksum of the full intended content — the
    /// damage surfaces as [`StorageError::Corrupt`] on the next
    /// [`try_read`](Disk::try_read).
    ///
    /// # Panics
    ///
    /// Panics on an out-of-range id (caller bug).
    pub fn try_write(&mut self, id: PageId, data: &[u8; PAGE_SIZE]) -> Result<(), StorageError> {
        assert!(
            (id.0 as usize) < self.pages.len(),
            "write of unallocated page {id:?}"
        );
        let verdict = match self.plan.as_mut() {
            Some(plan) => plan.check_write(id),
            None => WriteVerdict::Ok,
        };
        match verdict {
            WriteVerdict::Ok => {
                self.write(id, data);
                Ok(())
            }
            WriteVerdict::Torn => {
                self.faults.torn_writes += 1;
                self.pages[id.0 as usize][..TORN_WRITE_PREFIX]
                    .copy_from_slice(&data[..TORN_WRITE_PREFIX]);
                self.crcs[id.0 as usize] = crc32(data);
                Ok(())
            }
            WriteVerdict::Fail { transient } => {
                self.faults.write_faults += 1;
                Err(StorageError::WriteFailed {
                    page: id,
                    transient,
                })
            }
        }
    }
}

impl Default for Disk {
    fn default() -> Self {
        Disk::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::{FaultPlan, FaultStats, StorageError};

    #[test]
    fn allocate_read_write_round_trip() {
        let mut d = Disk::new();
        let a = d.allocate();
        let b = d.allocate();
        assert_ne!(a, b);
        let mut page = [0u8; PAGE_SIZE];
        page[0] = 0xAB;
        page[PAGE_SIZE - 1] = 0xCD;
        d.write(a, &page);
        assert_eq!(d.read(a)[0], 0xAB);
        assert_eq!(d.read(a)[PAGE_SIZE - 1], 0xCD);
        assert_eq!(d.read(b)[0], 0); // untouched page stays zeroed
    }

    #[test]
    fn free_pages_are_recycled_zeroed() {
        let mut d = Disk::new();
        let a = d.allocate();
        let mut page = [0u8; PAGE_SIZE];
        page[10] = 42;
        d.write(a, &page);
        d.free(a);
        let b = d.allocate();
        assert_eq!(a, b, "freed page should be recycled");
        assert_eq!(d.read(b)[10], 0, "recycled page must be zeroed");
        assert_eq!(d.allocated_pages(), 1);
    }

    #[test]
    #[should_panic(expected = "double free")]
    fn double_free_panics() {
        let mut d = Disk::new();
        let a = d.allocate();
        d.free(a);
        d.free(a);
    }

    #[test]
    fn try_read_is_clean_without_a_plan() {
        let mut d = Disk::new();
        let a = d.allocate();
        let mut page = [0u8; PAGE_SIZE];
        page[3] = 9;
        d.try_write(a, &page).expect("write succeeds");
        assert_eq!(d.try_read(a).expect("read succeeds")[3], 9);
        assert_eq!(d.fault_stats(), FaultStats::default());
    }

    #[test]
    fn planned_read_fault_then_recovers() {
        let mut d = Disk::new();
        let a = d.allocate();
        d.set_fault_plan(FaultPlan::default().with_read_fault(1, 2));
        let err = d.try_read(a).unwrap_err();
        assert_eq!(
            err,
            StorageError::ReadFailed {
                page: a,
                transient: true
            }
        );
        assert!(err.is_transient());
        assert!(d.try_read(a).is_err(), "burst of two");
        assert!(d.try_read(a).is_ok(), "transient fault clears");
        assert_eq!(d.fault_stats().read_faults, 2);
    }

    #[test]
    fn torn_write_detected_by_crc_on_read() {
        let mut d = Disk::new();
        let a = d.allocate();
        d.set_fault_plan(FaultPlan::default().with_torn_write(1, None));
        let mut page = [0xAAu8; PAGE_SIZE];
        page[PAGE_SIZE - 1] = 0xBB;
        // The torn write itself reports success.
        d.try_write(a, &page).expect("torn write is silent");
        assert_eq!(d.fault_stats().torn_writes, 1);
        // The tail never reached the platter; CRC catches it.
        let err = d.try_read(a).unwrap_err();
        assert_eq!(err, StorageError::Corrupt { page: a });
        assert!(!err.is_transient());
        assert!(err.is_corruption());
        assert_eq!(d.fault_stats().crc_failures, 1);
        // Re-writing the page (e.g. recovery) repairs it.
        d.try_write(a, &page).expect("second write is clean");
        assert_eq!(d.try_read(a).expect("repaired")[PAGE_SIZE - 1], 0xBB);
    }

    #[test]
    fn write_fault_reported() {
        let mut d = Disk::new();
        let a = d.allocate();
        d.set_fault_plan(FaultPlan::default().with_write_fault(1, 1));
        let page = [1u8; PAGE_SIZE];
        let err = d.try_write(a, &page).unwrap_err();
        assert_eq!(
            err,
            StorageError::WriteFailed {
                page: a,
                transient: true
            }
        );
        // The page is untouched by the failed write.
        assert_eq!(d.try_read(a).expect("still readable")[0], 0);
        d.try_write(a, &page).expect("retry succeeds");
    }

    #[test]
    fn recycled_pages_have_a_fresh_checksum() {
        let mut d = Disk::new();
        let a = d.allocate();
        let page = [7u8; PAGE_SIZE];
        d.try_write(a, &page).expect("write");
        d.free(a);
        let b = d.allocate();
        assert_eq!(a, b);
        assert_eq!(d.try_read(b).expect("zeroed page verifies")[0], 0);
    }

    #[test]
    fn accounting() {
        let mut d = Disk::new();
        let ids: Vec<PageId> = (0..5).map(|_| d.allocate()).collect();
        assert_eq!(d.allocated_pages(), 5);
        assert_eq!(d.size_bytes(), 5 * PAGE_SIZE);
        d.free(ids[2]);
        assert_eq!(d.allocated_pages(), 4);
    }
}
