//! An intrusive doubly-linked LRU list over frame indices.

/// O(1) LRU ordering over the frame slots `0..capacity` of a buffer
/// pool. The list stores only indices; the pool owns the frames.
///
/// Operations:
/// * [`push_front`](LruList::push_front) — a slot becomes most recent;
/// * [`touch`](LruList::touch) — move an in-list slot to the front;
/// * [`pop_back`](LruList::pop_back) — evict the least recent slot;
/// * [`remove`](LruList::remove) — unlink an arbitrary slot.
///
/// Implemented with `prev`/`next` index arrays and a `NIL` sentinel, so
/// no allocation happens after construction.
pub struct LruList {
    prev: Vec<usize>,
    next: Vec<usize>,
    head: usize,
    tail: usize,
    len: usize,
    in_list: Vec<bool>,
}

const NIL: usize = usize::MAX;

impl LruList {
    /// Creates an empty list able to hold slots `0..capacity`.
    pub fn new(capacity: usize) -> Self {
        LruList {
            prev: vec![NIL; capacity],
            next: vec![NIL; capacity],
            head: NIL,
            tail: NIL,
            len: 0,
            in_list: vec![false; capacity],
        }
    }

    /// Number of slots currently linked.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when no slot is linked.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// `true` when `slot` is currently linked.
    pub fn contains(&self, slot: usize) -> bool {
        self.in_list[slot]
    }

    /// Links `slot` as most-recently-used.
    ///
    /// # Panics
    ///
    /// Panics when the slot is already linked (callers must
    /// [`touch`](LruList::touch) instead) or out of range.
    pub fn push_front(&mut self, slot: usize) {
        assert!(!self.in_list[slot], "slot {slot} already in LRU list");
        self.prev[slot] = NIL;
        self.next[slot] = self.head;
        if self.head != NIL {
            self.prev[self.head] = slot;
        } else {
            self.tail = slot;
        }
        self.head = slot;
        self.in_list[slot] = true;
        self.len += 1;
    }

    /// Moves an already-linked `slot` to the most-recent position.
    pub fn touch(&mut self, slot: usize) {
        assert!(self.in_list[slot], "touch of unlinked slot {slot}");
        if self.head == slot {
            return;
        }
        self.unlink(slot);
        self.in_list[slot] = false;
        self.len -= 1;
        self.push_front(slot);
    }

    /// Unlinks and returns the least-recently-used slot, or `None` when
    /// empty.
    pub fn pop_back(&mut self) -> Option<usize> {
        if self.tail == NIL {
            return None;
        }
        let slot = self.tail;
        self.unlink(slot);
        self.in_list[slot] = false;
        self.len -= 1;
        Some(slot)
    }

    /// Unlinks an arbitrary slot (e.g. a frame invalidated by a page
    /// free).
    pub fn remove(&mut self, slot: usize) {
        assert!(self.in_list[slot], "remove of unlinked slot {slot}");
        self.unlink(slot);
        self.in_list[slot] = false;
        self.len -= 1;
    }

    fn unlink(&mut self, slot: usize) {
        let (p, n) = (self.prev[slot], self.next[slot]);
        if p != NIL {
            self.next[p] = n;
        } else {
            self.head = n;
        }
        if n != NIL {
            self.prev[n] = p;
        } else {
            self.tail = p;
        }
        self.prev[slot] = NIL;
        self.next[slot] = NIL;
    }

    /// Slots from most to least recently used (test/debug helper).
    pub fn iter_mru(&self) -> impl Iterator<Item = usize> + '_ {
        let mut cur = self.head;
        std::iter::from_fn(move || {
            if cur == NIL {
                None
            } else {
                let s = cur;
                cur = self.next[cur];
                Some(s)
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn order_is_mru_first() {
        let mut l = LruList::new(4);
        l.push_front(0);
        l.push_front(1);
        l.push_front(2);
        assert_eq!(l.iter_mru().collect::<Vec<_>>(), vec![2, 1, 0]);
        assert_eq!(l.len(), 3);
    }

    #[test]
    fn touch_moves_to_front() {
        let mut l = LruList::new(4);
        for s in 0..4 {
            l.push_front(s);
        }
        l.touch(1);
        assert_eq!(l.iter_mru().collect::<Vec<_>>(), vec![1, 3, 2, 0]);
        // Touching the head is a no-op.
        l.touch(1);
        assert_eq!(l.iter_mru().collect::<Vec<_>>(), vec![1, 3, 2, 0]);
    }

    #[test]
    fn pop_back_evicts_lru() {
        let mut l = LruList::new(3);
        l.push_front(0);
        l.push_front(1);
        l.push_front(2);
        assert_eq!(l.pop_back(), Some(0));
        assert_eq!(l.pop_back(), Some(1));
        assert_eq!(l.pop_back(), Some(2));
        assert_eq!(l.pop_back(), None);
        assert!(l.is_empty());
    }

    #[test]
    fn remove_middle() {
        let mut l = LruList::new(3);
        l.push_front(0);
        l.push_front(1);
        l.push_front(2);
        l.remove(1);
        assert!(!l.contains(1));
        assert_eq!(l.iter_mru().collect::<Vec<_>>(), vec![2, 0]);
        // Slot can be re-inserted after removal.
        l.push_front(1);
        assert_eq!(l.iter_mru().collect::<Vec<_>>(), vec![1, 2, 0]);
    }

    #[test]
    #[should_panic(expected = "already in LRU list")]
    fn double_push_panics() {
        let mut l = LruList::new(2);
        l.push_front(0);
        l.push_front(0);
    }

    #[test]
    fn single_element_edge_cases() {
        let mut l = LruList::new(1);
        l.push_front(0);
        l.touch(0);
        assert_eq!(l.pop_back(), Some(0));
        assert!(l.pop_back().is_none());
        l.push_front(0);
        l.remove(0);
        assert!(l.is_empty());
    }
}
