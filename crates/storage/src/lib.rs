//! Simulated disk storage for the PDR reproduction.
//!
//! The paper's cost model (Table 1) fixes a 4 KiB page size, a buffer of
//! 10 % of the dataset size, and charges **10 ms per random disk
//! access**; query cost for the exact filtering-refinement method is
//! reported as `CPU + 10 ms × (number of buffer misses)`. This crate
//! reproduces that model with real moving parts rather than a stub:
//!
//! * [`Disk`] — an in-memory array of 4 KiB pages with allocate /
//!   free / read / write, standing in for the raw device;
//! * [`BufferPool`] — a fixed-capacity page cache with true O(1) LRU
//!   replacement and write-back of dirty frames;
//! * [`IoStats`] / [`CostModel`] — accounting that converts misses into
//!   the paper's milliseconds.
//!
//! The TPR-tree stores its nodes through this stack, one node per page,
//! so its query I/O is measured rather than assumed.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod buffer;
mod codec;
mod disk;
mod fault;
mod lru;

pub use buffer::{BufferPool, IoStats};
pub use codec::{crc32, unzigzag64, zigzag64, ByteReader, ByteWriter, CodecError};
pub use disk::{Disk, PageId, PAGE_SIZE};
pub use fault::{FaultPlan, FaultPlanError, FaultStats, StorageError, TORN_WRITE_PREFIX};
pub use lru::LruList;

/// Converts I/O counts into the paper's time units.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CostModel {
    /// Cost of one random disk access, in milliseconds (paper: 10 ms).
    pub random_io_ms: f64,
}

impl CostModel {
    /// The paper's cost model: 10 ms per random I/O.
    pub const PAPER_DEFAULT: CostModel = CostModel { random_io_ms: 10.0 };

    /// Milliseconds of I/O implied by `stats`: each buffer miss is one
    /// random read; each write-back of a dirty evictee is one random
    /// write.
    pub fn io_ms(&self, stats: &IoStats) -> f64 {
        stats.physical_ios() as f64 * self.random_io_ms
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cost_model_charges_misses_and_writebacks() {
        let stats = IoStats {
            logical_reads: 100,
            misses: 7,
            evictions: 5,
            writebacks: 3,
        };
        assert_eq!(CostModel::PAPER_DEFAULT.io_ms(&stats), 100.0);
    }
}
