//! Bounds-checked binary encoding helpers.
//!
//! The server-side summary structures (density histograms, Chebyshev
//! coefficient sets) support checkpoint/restore so a monitoring server
//! can restart without waiting a full horizon to refill its windows.
//! This module provides the little-endian writer/reader both codecs
//! share; formats are versioned and validated on read.

use std::fmt;

/// Errors produced while decoding a checkpoint.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// The input ended before the announced content.
    UnexpectedEof,
    /// The leading magic bytes did not match.
    BadMagic,
    /// A known magic with an unsupported version.
    BadVersion(u16),
    /// A structurally invalid field.
    Corrupt(&'static str),
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::UnexpectedEof => write!(f, "unexpected end of checkpoint data"),
            CodecError::BadMagic => write!(f, "checkpoint magic mismatch"),
            CodecError::BadVersion(v) => write!(f, "unsupported checkpoint version {v}"),
            CodecError::Corrupt(what) => write!(f, "corrupt checkpoint field: {what}"),
        }
    }
}

impl std::error::Error for CodecError {}

/// CRC-32 (IEEE 802.3, the polynomial used by zip/zlib/ethernet) over
/// `bytes`. Table-driven, one byte per step; used as the per-page disk
/// checksum and the WAL/checkpoint frame checksum so corruption is
/// detected rather than consumed.
pub fn crc32(bytes: &[u8]) -> u32 {
    const TABLE: [u32; 256] = {
        let mut table = [0u32; 256];
        let mut i = 0;
        while i < 256 {
            let mut crc = i as u32;
            let mut bit = 0;
            while bit < 8 {
                crc = if crc & 1 != 0 {
                    (crc >> 1) ^ 0xEDB8_8320
                } else {
                    crc >> 1
                };
                bit += 1;
            }
            table[i] = crc;
            i += 1;
        }
        table
    };
    let mut crc = !0u32;
    for &b in bytes {
        crc = (crc >> 8) ^ TABLE[((crc ^ b as u32) & 0xFF) as usize];
    }
    !crc
}

/// Little-endian append-only byte writer.
#[derive(Clone, Debug, Default)]
pub struct ByteWriter {
    buf: Vec<u8>,
}

impl ByteWriter {
    /// Creates an empty writer.
    pub fn new() -> Self {
        ByteWriter::default()
    }

    /// Creates a writer pre-sized for `cap` bytes.
    pub fn with_capacity(cap: usize) -> Self {
        ByteWriter {
            buf: Vec::with_capacity(cap),
        }
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// `true` when nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Borrows the bytes written so far.
    pub fn as_slice(&self) -> &[u8] {
        &self.buf
    }

    /// Current heap allocation size, for allocation accounting: a
    /// caller can compare before/after an append to count reallocation
    /// events without a global allocator hook.
    pub fn capacity(&self) -> usize {
        self.buf.capacity()
    }

    /// Overwrites four already-written bytes at `at` with a
    /// little-endian `u32` — used to patch a frame's length/checksum
    /// header after its payload was written in place.
    ///
    /// # Panics
    /// Panics if `at + 4` exceeds the written length.
    pub fn patch_u32(&mut self, at: usize, v: u32) {
        self.buf[at..at + 4].copy_from_slice(&v.to_le_bytes());
    }

    /// Appends raw bytes.
    pub fn put_bytes(&mut self, b: &[u8]) {
        self.buf.extend_from_slice(b);
    }

    /// Appends a `u8`.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a little-endian `u16`.
    pub fn put_u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u32`.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `i32`.
    pub fn put_i32(&mut self, v: i32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `f64`.
    pub fn put_f64(&mut self, v: f64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends an LEB128 unsigned varint (1 byte for values < 128,
    /// at most 10 bytes for `u64::MAX`).
    pub fn put_uvarint(&mut self, mut v: u64) {
        while v >= 0x80 {
            self.buf.push((v as u8 & 0x7F) | 0x80);
            v >>= 7;
        }
        self.buf.push(v as u8);
    }

    /// Appends a zigzag-mapped signed varint.
    pub fn put_ivarint(&mut self, v: i64) {
        self.put_uvarint(zigzag64(v));
    }

    /// Consumes the writer, returning its buffer.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }
}

/// Maps a signed value to an unsigned one with small absolute values
/// staying small: `0, -1, 1, -2, 2, …` → `0, 1, 2, 3, 4, …`.
pub fn zigzag64(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

/// Inverse of [`zigzag64`].
pub fn unzigzag64(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

/// Little-endian bounds-checked byte reader.
pub struct ByteReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    /// Wraps a byte slice.
    pub fn new(buf: &'a [u8]) -> Self {
        ByteReader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], CodecError> {
        if self.remaining() < n {
            return Err(CodecError::UnexpectedEof);
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Reads `n` raw bytes.
    pub fn get_bytes(&mut self, n: usize) -> Result<&'a [u8], CodecError> {
        self.take(n)
    }

    /// Consumes and verifies magic bytes.
    pub fn expect_magic(&mut self, magic: &[u8]) -> Result<(), CodecError> {
        let got = self.take(magic.len())?;
        if got == magic {
            Ok(())
        } else {
            Err(CodecError::BadMagic)
        }
    }

    /// Reads a `u8`.
    pub fn get_u8(&mut self) -> Result<u8, CodecError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a little-endian `u16`.
    pub fn get_u16(&mut self) -> Result<u16, CodecError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    /// Reads a little-endian `u32`.
    pub fn get_u32(&mut self) -> Result<u32, CodecError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    /// Reads a little-endian `u64`.
    pub fn get_u64(&mut self) -> Result<u64, CodecError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Reads a little-endian `i32`.
    pub fn get_i32(&mut self) -> Result<i32, CodecError> {
        Ok(i32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    /// Reads a little-endian `f64`.
    pub fn get_f64(&mut self) -> Result<f64, CodecError> {
        Ok(f64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Reads an LEB128 unsigned varint. Rejects encodings longer than
    /// 10 bytes or with set bits beyond the 64th.
    pub fn get_uvarint(&mut self) -> Result<u64, CodecError> {
        let mut v = 0u64;
        let mut shift = 0u32;
        loop {
            let b = self.get_u8()?;
            if shift == 63 && b > 1 {
                return Err(CodecError::Corrupt("varint overflows u64"));
            }
            v |= u64::from(b & 0x7F) << shift;
            if b & 0x80 == 0 {
                return Ok(v);
            }
            shift += 7;
            if shift > 63 {
                return Err(CodecError::Corrupt("varint longer than 10 bytes"));
            }
        }
    }

    /// Reads a zigzag-mapped signed varint.
    pub fn get_ivarint(&mut self) -> Result<i64, CodecError> {
        Ok(unzigzag64(self.get_uvarint()?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_all_types() {
        let mut w = ByteWriter::new();
        w.put_bytes(b"MAGC");
        w.put_u8(7);
        w.put_u16(1);
        w.put_u32(0xDEADBEEF);
        w.put_u64(u64::MAX - 1);
        w.put_i32(-42);
        w.put_f64(core::f64::consts::PI);
        let bytes = w.into_bytes();

        let mut r = ByteReader::new(&bytes);
        r.expect_magic(b"MAGC").unwrap();
        assert_eq!(r.get_u8().unwrap(), 7);
        assert_eq!(r.get_u16().unwrap(), 1);
        assert_eq!(r.get_u32().unwrap(), 0xDEADBEEF);
        assert_eq!(r.get_u64().unwrap(), u64::MAX - 1);
        assert_eq!(r.get_i32().unwrap(), -42);
        assert_eq!(r.get_f64().unwrap(), core::f64::consts::PI);
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn eof_detected() {
        let bytes = [1u8, 2, 3];
        let mut r = ByteReader::new(&bytes);
        assert_eq!(r.get_u64().unwrap_err(), CodecError::UnexpectedEof);
        // Partial reads don't consume on failure? They must not have
        // advanced past the end.
        assert_eq!(r.remaining(), 3);
    }

    #[test]
    fn bad_magic_detected() {
        let mut r = ByteReader::new(b"WRONG...");
        assert_eq!(r.expect_magic(b"RIGHT").unwrap_err(), CodecError::BadMagic);
    }

    #[test]
    fn varint_round_trip_and_bounds() {
        let samples = [
            0u64,
            1,
            127,
            128,
            16_383,
            16_384,
            u64::from(u32::MAX),
            u64::MAX - 1,
            u64::MAX,
        ];
        let mut w = ByteWriter::new();
        for &v in &samples {
            w.put_uvarint(v);
        }
        for &v in &[0i64, -1, 1, i64::MIN, i64::MAX, -123_456] {
            w.put_ivarint(v);
        }
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        for &v in &samples {
            assert_eq!(r.get_uvarint().unwrap(), v);
        }
        for &v in &[0i64, -1, 1, i64::MIN, i64::MAX, -123_456] {
            assert_eq!(r.get_ivarint().unwrap(), v);
        }
        assert_eq!(r.remaining(), 0);

        // Small values take one byte; u64::MAX takes the max ten.
        let mut w = ByteWriter::new();
        w.put_uvarint(127);
        assert_eq!(w.len(), 1);
        let mut w = ByteWriter::new();
        w.put_uvarint(u64::MAX);
        assert_eq!(w.len(), 10);

        // Overlong and overflowing encodings are rejected, not wrapped.
        let overlong = [0x80u8; 11];
        assert!(matches!(
            ByteReader::new(&overlong).get_uvarint(),
            Err(CodecError::Corrupt(_))
        ));
        let overflow = [0xFFu8, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x7F];
        assert!(matches!(
            ByteReader::new(&overflow).get_uvarint(),
            Err(CodecError::Corrupt(_))
        ));
        // Truncated varint reports EOF.
        assert_eq!(
            ByteReader::new(&[0x80u8]).get_uvarint().unwrap_err(),
            CodecError::UnexpectedEof
        );
    }

    #[test]
    fn zigzag_is_order_preserving_near_zero() {
        assert_eq!(zigzag64(0), 0);
        assert_eq!(zigzag64(-1), 1);
        assert_eq!(zigzag64(1), 2);
        assert_eq!(zigzag64(-2), 3);
        for v in [i64::MIN, i64::MAX, 0, 1, -1, 123_456_789, -987_654_321] {
            assert_eq!(unzigzag64(zigzag64(v)), v);
        }
    }

    #[test]
    fn crc32_known_vectors() {
        // The classic check value for CRC-32/IEEE.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        // Sensitive to any flipped byte.
        let mut page = vec![0u8; 4096];
        let clean = crc32(&page);
        page[1000] ^= 1;
        assert_ne!(crc32(&page), clean);
    }
}
