//! Fixed-capacity LRU buffer pool with miss accounting.

use crate::fault::{FaultPlan, FaultStats, StorageError};
use crate::lru::LruList;
use crate::{Disk, PageId, PAGE_SIZE};
use std::collections::HashMap;
use std::sync::Mutex;

/// I/O counters accumulated by a [`BufferPool`].
///
/// `misses` is the count the paper's cost model charges 10 ms each for;
/// `writebacks` counts dirty evictions (also random I/Os).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct IoStats {
    /// Page accesses served (hit or miss).
    pub logical_reads: u64,
    /// Accesses that had to read the page from disk.
    pub misses: u64,
    /// Frames evicted to make room.
    pub evictions: u64,
    /// Evictions that had to write a dirty page back first.
    pub writebacks: u64,
}

impl IoStats {
    /// Hit ratio over the recorded accesses (1.0 when no accesses).
    pub fn hit_ratio(&self) -> f64 {
        if self.logical_reads == 0 {
            1.0
        } else {
            1.0 - self.misses as f64 / self.logical_reads as f64
        }
    }

    /// Physical random I/Os implied by the counters: each miss is one
    /// random read, each write-back one random write. This is the count
    /// the paper's cost model charges per-access time for.
    pub fn physical_ios(&self) -> u64 {
        self.misses + self.writebacks
    }
}

impl std::ops::AddAssign for IoStats {
    fn add_assign(&mut self, rhs: IoStats) {
        self.logical_reads += rhs.logical_reads;
        self.misses += rhs.misses;
        self.evictions += rhs.evictions;
        self.writebacks += rhs.writebacks;
    }
}

impl std::ops::Add for IoStats {
    type Output = IoStats;

    fn add(mut self, rhs: IoStats) -> IoStats {
        self += rhs;
        self
    }
}

struct Frame {
    page: PageId,
    dirty: bool,
    data: Box<[u8; PAGE_SIZE]>,
}

/// A page cache in front of a [`Disk`], with true LRU replacement and
/// write-back semantics.
///
/// The pool owns the disk for the lifetime of the index built on top of
/// it; every page access goes through [`read_page`](BufferPool::read_page)
/// or [`write_page`](BufferPool::write_page) so misses are counted
/// faithfully. Capacity is given in pages; the paper sizes it at 10 % of
/// the dataset.
///
/// All access methods take `&self`: the pool's state lives behind an
/// internal mutex, so a shared pool can serve page reads from several
/// query threads at once (each access is serialized, but callers never
/// need `&mut`). Per-caller I/O attribution is available through
/// [`read_page_tracked`](BufferPool::read_page_tracked), which adds the
/// access's counters to a caller-supplied collector on top of the
/// global [`stats`](BufferPool::stats).
///
/// ```
/// use pdr_storage::{BufferPool, Disk};
///
/// let pool = BufferPool::new(Disk::new(), 2);
/// let a = pool.allocate_page();
/// pool.write_page(a, |bytes| bytes[0] = 42);
/// assert_eq!(pool.read_page(a, |bytes| bytes[0]), 42);
/// // The second read hits the cache: one miss total.
/// assert_eq!(pool.stats().misses, 1);
/// ```
pub struct BufferPool {
    capacity: usize,
    inner: Mutex<PoolInner>,
}

struct PoolInner {
    disk: Disk,
    capacity: usize,
    frames: Vec<Frame>,
    map: HashMap<PageId, usize>,
    lru: LruList,
    free_slots: Vec<usize>,
    stats: IoStats,
}

impl BufferPool {
    /// Wraps `disk` with a cache of `capacity` pages.
    ///
    /// # Panics
    ///
    /// Panics when `capacity == 0` — a pool that can hold nothing cannot
    /// serve `write_page` correctly.
    pub fn new(disk: Disk, capacity: usize) -> Self {
        assert!(capacity > 0, "buffer pool needs at least one frame");
        BufferPool {
            capacity,
            inner: Mutex::new(PoolInner {
                disk,
                capacity,
                frames: Vec::with_capacity(capacity),
                map: HashMap::with_capacity(capacity),
                lru: LruList::new(capacity),
                free_slots: Vec::new(),
                stats: IoStats::default(),
            }),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, PoolInner> {
        // Recover the guard on poisoning: the pool state is a plain LRU
        // cache over an in-memory disk, every mutation of which
        // (counter bumps, list relinks, whole-page copies) leaves it
        // structurally valid, so a panic in *another* thread — e.g. a
        // caller's closure panicking inside `read_page` — must not
        // wedge every subsequent query on this pool.
        self.inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Pool capacity in pages.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Accumulated I/O counters.
    pub fn stats(&self) -> IoStats {
        self.lock().stats
    }

    /// Zeroes the counters (e.g. between the build phase and a measured
    /// query).
    pub fn reset_stats(&self) {
        self.lock().stats = IoStats::default();
    }

    /// Allocates a fresh page on the underlying disk. The new page is
    /// *not* faulted in; the first access will count as a miss unless it
    /// is a `write_page` that populates it.
    pub fn allocate_page(&self) -> PageId {
        self.lock().disk.allocate()
    }

    /// Frees `page`, dropping any cached frame without write-back.
    pub fn free_page(&self, page: PageId) {
        let mut inner = self.lock();
        if let Some(slot) = inner.map.remove(&page) {
            inner.lru.remove(slot);
            inner.free_slots.push(slot);
            // Mark the frame as vacated; its data is garbage now.
            inner.frames[slot].dirty = false;
        }
        inner.disk.free(page);
    }

    /// Reads `page` through the cache and hands the bytes to `f`.
    ///
    /// # Panics
    ///
    /// Panics on a storage fault. Faults only exist when a
    /// [`FaultPlan`] is installed; fault-aware callers use
    /// [`try_read_page`](BufferPool::try_read_page).
    pub fn read_page<R>(&self, page: PageId, f: impl FnOnce(&[u8; PAGE_SIZE]) -> R) -> R {
        self.try_read_page(page, f)
            .unwrap_or_else(|e| panic!("unhandled storage fault: {e}"))
    }

    /// Fallible [`read_page`](BufferPool::read_page): returns the
    /// typed [`StorageError`] instead of panicking when the physical
    /// read fails, the page fails checksum verification, or a dirty
    /// eviction's write-back fails. On error the pool is unchanged
    /// apart from its counters (the evicted-candidate frame stays
    /// resident and dirty), so a transient fault can simply be
    /// retried.
    pub fn try_read_page<R>(
        &self,
        page: PageId,
        f: impl FnOnce(&[u8; PAGE_SIZE]) -> R,
    ) -> Result<R, StorageError> {
        let mut inner = self.lock();
        let slot = inner.fault_in(page, /*load=*/ true, None)?;
        Ok(f(&inner.frames[slot].data))
    }

    /// Like [`read_page`](BufferPool::read_page), additionally adding
    /// this access's counters (logical read, miss, any eviction and
    /// write-back it triggered) to `io`. The global
    /// [`stats`](BufferPool::stats) are updated as well, so per-query
    /// collectors and whole-pool accounting stay consistent.
    pub fn read_page_tracked<R>(
        &self,
        page: PageId,
        io: &mut IoStats,
        f: impl FnOnce(&[u8; PAGE_SIZE]) -> R,
    ) -> R {
        self.try_read_page_tracked(page, io, f)
            .unwrap_or_else(|e| panic!("unhandled storage fault: {e}"))
    }

    /// Fallible [`read_page_tracked`](BufferPool::read_page_tracked).
    /// The access's counters are attributed to `io` even when the
    /// access fails (the attempt was real I/O traffic).
    pub fn try_read_page_tracked<R>(
        &self,
        page: PageId,
        io: &mut IoStats,
        f: impl FnOnce(&[u8; PAGE_SIZE]) -> R,
    ) -> Result<R, StorageError> {
        let mut inner = self.lock();
        let slot = inner.fault_in(page, /*load=*/ true, Some(io))?;
        Ok(f(&inner.frames[slot].data))
    }

    /// Gives `f` mutable access to `page` through the cache and marks
    /// the frame dirty. The previous contents are loaded first, so
    /// read-modify-write is safe.
    ///
    /// # Panics
    ///
    /// Panics on a storage fault; see
    /// [`try_write_page`](BufferPool::try_write_page).
    pub fn write_page<R>(&self, page: PageId, f: impl FnOnce(&mut [u8; PAGE_SIZE]) -> R) -> R {
        self.try_write_page(page, f)
            .unwrap_or_else(|e| panic!("unhandled storage fault: {e}"))
    }

    /// Fallible [`write_page`](BufferPool::write_page). Note that with
    /// write-back caching the *disk* write of this page happens later
    /// (at eviction or [`try_flush_all`](BufferPool::try_flush_all));
    /// the errors surfaced here come from faulting the page in.
    pub fn try_write_page<R>(
        &self,
        page: PageId,
        f: impl FnOnce(&mut [u8; PAGE_SIZE]) -> R,
    ) -> Result<R, StorageError> {
        let mut inner = self.lock();
        let slot = inner.fault_in(page, /*load=*/ true, None)?;
        inner.frames[slot].dirty = true;
        Ok(f(&mut inner.frames[slot].data))
    }

    /// Like [`write_page`](BufferPool::write_page) but for a page whose
    /// previous contents are irrelevant (fresh allocation): the frame is
    /// zeroed instead of read, so no miss is charged.
    ///
    /// # Panics
    ///
    /// Panics on a storage fault; see
    /// [`try_overwrite_page`](BufferPool::try_overwrite_page).
    pub fn overwrite_page<R>(&self, page: PageId, f: impl FnOnce(&mut [u8; PAGE_SIZE]) -> R) -> R {
        self.try_overwrite_page(page, f)
            .unwrap_or_else(|e| panic!("unhandled storage fault: {e}"))
    }

    /// Fallible [`overwrite_page`](BufferPool::overwrite_page): the
    /// only possible error is a failed write-back while evicting a
    /// dirty victim to make room.
    pub fn try_overwrite_page<R>(
        &self,
        page: PageId,
        f: impl FnOnce(&mut [u8; PAGE_SIZE]) -> R,
    ) -> Result<R, StorageError> {
        let mut inner = self.lock();
        let slot = inner.fault_in(page, /*load=*/ false, None)?;
        inner.frames[slot].dirty = true;
        Ok(f(&mut inner.frames[slot].data))
    }

    /// Writes every dirty frame back to disk (without evicting).
    ///
    /// # Panics
    ///
    /// Panics on a storage fault; see
    /// [`try_flush_all`](BufferPool::try_flush_all).
    pub fn flush_all(&self) {
        self.try_flush_all()
            .unwrap_or_else(|e| panic!("unhandled storage fault: {e}"))
    }

    /// Fallible [`flush_all`](BufferPool::flush_all): stops at the
    /// first write failure, leaving that frame (and any not yet
    /// reached) dirty so a retry flushes exactly the remainder.
    pub fn try_flush_all(&self) -> Result<(), StorageError> {
        let inner = &mut *self.lock();
        for frame in &mut inner.frames {
            if frame.dirty {
                inner.disk.try_write(frame.page, &frame.data)?;
                frame.dirty = false;
            }
        }
        Ok(())
    }

    /// Installs a [`FaultPlan`] on the underlying disk; subsequent
    /// physical reads and writes consult it.
    pub fn set_fault_plan(&self, plan: FaultPlan) {
        self.lock().disk.set_fault_plan(plan);
    }

    /// Removes any installed fault plan (the device behaves cleanly
    /// again; counters are kept).
    pub fn clear_fault_plan(&self) {
        self.lock().disk.clear_fault_plan();
    }

    /// Counters of injected faults and detected checksum failures.
    pub fn fault_stats(&self) -> FaultStats {
        self.lock().disk.fault_stats()
    }

    /// Number of distinct pages currently resident.
    pub fn resident_pages(&self) -> usize {
        self.lock().map.len()
    }

    /// Runs `f` with read-only access to the underlying disk (tests,
    /// diagnostics). The pool lock is held for the duration of `f`.
    pub fn with_disk<R>(&self, f: impl FnOnce(&Disk) -> R) -> R {
        f(&self.lock().disk)
    }

    /// Pages currently allocated on the underlying disk.
    pub fn allocated_pages(&self) -> usize {
        self.lock().disk.allocated_pages()
    }
}

impl PoolInner {
    /// Ensures `page` is resident and returns its frame slot. `load`
    /// decides whether a miss reads from disk (normal) or zero-fills
    /// (fresh page about to be fully overwritten). When `track` is
    /// given, the counters charged for this access are also added to
    /// it.
    fn fault_in(
        &mut self,
        page: PageId,
        load: bool,
        track: Option<&mut IoStats>,
    ) -> Result<usize, StorageError> {
        let before = self.stats;
        let result = self.fault_in_untracked(page, load);
        if let Some(io) = track {
            let after = self.stats;
            io.logical_reads += after.logical_reads - before.logical_reads;
            io.misses += after.misses - before.misses;
            io.evictions += after.evictions - before.evictions;
            io.writebacks += after.writebacks - before.writebacks;
        }
        result
    }

    fn fault_in_untracked(&mut self, page: PageId, load: bool) -> Result<usize, StorageError> {
        self.stats.logical_reads += 1;
        if let Some(&slot) = self.map.get(&page) {
            self.lru.touch(slot);
            return Ok(slot);
        }
        if load {
            self.stats.misses += 1;
        }
        let slot = self.acquire_slot()?;
        if load {
            match self.disk.try_read(page) {
                Ok(data) => self.frames[slot].data.copy_from_slice(data),
                Err(e) => {
                    // Return the vacated slot so it is not leaked; the
                    // miss stays counted (the attempt hit the device).
                    self.free_slots.push(slot);
                    return Err(e);
                }
            }
        } else {
            self.frames[slot].data.fill(0);
        }
        self.frames[slot].page = page;
        self.frames[slot].dirty = false;
        self.map.insert(page, slot);
        self.lru.push_front(slot);
        Ok(slot)
    }

    /// Finds a frame slot: reuse a vacated slot, grow up to capacity, or
    /// evict the LRU frame (writing it back when dirty). When the
    /// victim's write-back fails, the victim is kept resident (re-linked
    /// most-recent, still dirty) and the error is propagated — a retry
    /// will pick a different victim or, for a transient fault, succeed.
    fn acquire_slot(&mut self) -> Result<usize, StorageError> {
        if let Some(slot) = self.free_slots.pop() {
            return Ok(slot);
        }
        if self.frames.len() < self.capacity {
            self.frames.push(Frame {
                page: PageId(u32::MAX),
                dirty: false,
                data: Box::new([0u8; PAGE_SIZE]),
            });
            return Ok(self.frames.len() - 1);
        }
        let victim = self.lru.pop_back().expect("pool full but LRU empty");
        let frame = &mut self.frames[victim];
        if frame.dirty {
            match self.disk.try_write(frame.page, &frame.data) {
                Ok(()) => {
                    self.stats.writebacks += 1;
                    frame.dirty = false;
                }
                Err(e) => {
                    self.lru.push_front(victim);
                    return Err(e);
                }
            }
        }
        self.stats.evictions += 1;
        let page = self.frames[victim].page;
        self.map.remove(&page);
        Ok(victim)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pool(capacity: usize) -> BufferPool {
        BufferPool::new(Disk::new(), capacity)
    }

    #[test]
    fn hit_after_miss() {
        let p = pool(2);
        let a = p.allocate_page();
        p.read_page(a, |_| ());
        p.read_page(a, |_| ());
        let s = p.stats();
        assert_eq!(s.logical_reads, 2);
        assert_eq!(s.misses, 1);
        assert_eq!(s.hit_ratio(), 0.5);
    }

    #[test]
    fn writes_survive_eviction() {
        let p = pool(1);
        let a = p.allocate_page();
        let b = p.allocate_page();
        p.write_page(a, |bytes| bytes[0] = 7);
        // Touching b evicts a, forcing a write-back.
        p.read_page(b, |_| ());
        assert_eq!(p.stats().writebacks, 1);
        p.read_page(a, |bytes| assert_eq!(bytes[0], 7));
    }

    #[test]
    fn overwrite_page_charges_no_read_miss() {
        let p = pool(2);
        let a = p.allocate_page();
        p.overwrite_page(a, |bytes| bytes[1] = 9);
        assert_eq!(p.stats().misses, 0);
        p.flush_all();
        assert_eq!(p.with_disk(|d| d.read(a)[1]), 9);
    }

    #[test]
    fn lru_evicts_least_recent() {
        let p = pool(2);
        let a = p.allocate_page();
        let b = p.allocate_page();
        let c = p.allocate_page();
        p.read_page(a, |_| ());
        p.read_page(b, |_| ());
        p.read_page(a, |_| ()); // a is now MRU
        p.read_page(c, |_| ()); // evicts b
        p.reset_stats();
        p.read_page(a, |_| ());
        p.read_page(c, |_| ());
        assert_eq!(p.stats().misses, 0, "a and c should still be resident");
        p.read_page(b, |_| ());
        assert_eq!(p.stats().misses, 1, "b was the LRU victim");
    }

    #[test]
    fn free_page_drops_frame_without_writeback() {
        let p = pool(2);
        let a = p.allocate_page();
        p.write_page(a, |bytes| bytes[0] = 1);
        p.free_page(a);
        assert_eq!(p.stats().writebacks, 0);
        assert_eq!(p.resident_pages(), 0);
        // The slot is reusable.
        let b = p.allocate_page();
        p.read_page(b, |_| ());
        assert_eq!(p.resident_pages(), 1);
    }

    #[test]
    fn flush_all_persists_dirty_frames() {
        let p = pool(4);
        let ids: Vec<PageId> = (0..3).map(|_| p.allocate_page()).collect();
        for (i, &id) in ids.iter().enumerate() {
            p.write_page(id, |bytes| bytes[0] = i as u8 + 1);
        }
        p.flush_all();
        for (i, &id) in ids.iter().enumerate() {
            assert_eq!(p.with_disk(|d| d.read(id)[0]), i as u8 + 1);
        }
    }

    #[test]
    fn workload_larger_than_pool_thrashes_predictably() {
        let p = pool(4);
        let ids: Vec<PageId> = (0..8).map(|_| p.allocate_page()).collect();
        // Two sequential sweeps over 8 pages with 4 frames: every access
        // misses (classic LRU sequential flooding).
        for _ in 0..2 {
            for &id in &ids {
                p.read_page(id, |_| ());
            }
        }
        assert_eq!(p.stats().misses, 16);
    }

    #[test]
    fn tracked_reads_attribute_io_to_the_collector() {
        let p = pool(1);
        let a = p.allocate_page();
        let b = p.allocate_page();
        p.write_page(a, |bytes| bytes[0] = 1);
        p.reset_stats();
        let mut io = IoStats::default();
        // Miss on b (evicting dirty a → write-back), then a hit.
        p.read_page_tracked(b, &mut io, |_| ());
        p.read_page_tracked(b, &mut io, |_| ());
        assert_eq!(io.logical_reads, 2);
        assert_eq!(io.misses, 1);
        assert_eq!(io.evictions, 1);
        assert_eq!(io.writebacks, 1);
        // The global counters saw the same traffic.
        assert_eq!(p.stats(), io);
        // Untracked traffic does not leak into the collector.
        p.read_page(a, |_| ());
        assert_eq!(io.logical_reads, 2);
    }

    #[test]
    fn stats_merge_with_add() {
        let a = IoStats {
            logical_reads: 3,
            misses: 1,
            evictions: 1,
            writebacks: 0,
        };
        let b = IoStats {
            logical_reads: 2,
            misses: 2,
            evictions: 0,
            writebacks: 1,
        };
        let sum = a + b;
        assert_eq!(sum.logical_reads, 5);
        assert_eq!(sum.misses, 3);
        assert_eq!(sum.evictions, 1);
        assert_eq!(sum.writebacks, 1);
    }

    #[test]
    fn pool_survives_a_panicking_caller_closure() {
        // Regression: a panic while holding the pool lock used to
        // poison the mutex and wedge every subsequent query.
        let p = pool(2);
        let a = p.allocate_page();
        p.write_page(a, |bytes| bytes[0] = 5);
        let result =
            std::thread::scope(|s| s.spawn(|| p.read_page(a, |_| panic!("caller bug"))).join());
        assert!(
            result.is_err(),
            "the closure's panic propagates to its thread"
        );
        // The pool still serves reads and its state is intact.
        assert_eq!(p.read_page(a, |bytes| bytes[0]), 5);
        p.flush_all();
        assert_eq!(p.with_disk(|d| d.read(a)[0]), 5);
    }

    #[test]
    fn transient_read_fault_surfaces_then_retry_succeeds() {
        use crate::FaultPlan;
        let p = pool(2);
        let a = p.allocate_page();
        p.write_page(a, |bytes| bytes[0] = 3);
        p.flush_all();
        // Drop the frame so the next read is a physical miss.
        let b = p.allocate_page();
        let c = p.allocate_page();
        p.read_page(b, |_| ());
        p.read_page(c, |_| ());
        p.set_fault_plan(FaultPlan::default().with_read_fault(1, 1));
        let mut io = IoStats::default();
        let err = p.try_read_page_tracked(a, &mut io, |_| ()).unwrap_err();
        assert!(err.is_transient());
        assert_eq!(io.misses, 1, "the failed attempt is still attributed");
        assert_eq!(
            p.try_read_page(a, |bytes| bytes[0])
                .expect("retry succeeds"),
            3
        );
        assert_eq!(p.fault_stats().read_faults, 1);
    }

    #[test]
    fn failed_eviction_writeback_keeps_the_victim_dirty() {
        use crate::FaultPlan;
        let p = pool(1);
        let a = p.allocate_page();
        let b = p.allocate_page();
        p.write_page(a, |bytes| bytes[0] = 9);
        p.set_fault_plan(FaultPlan::default().with_write_fault(1, 1));
        // Reading b must evict dirty a; the write-back fails once.
        let err = p.try_read_page(b, |_| ()).unwrap_err();
        assert!(matches!(err, StorageError::WriteFailed { .. }));
        // a is still resident and dirty — nothing was lost.
        assert_eq!(p.try_read_page(a, |bytes| bytes[0]).expect("hit"), 9);
        // The retry succeeds (transient fault consumed).
        p.try_read_page(b, |_| ()).expect("retry evicts cleanly");
        p.flush_all();
        assert_eq!(p.with_disk(|d| d.read(a)[0]), 9);
    }

    #[test]
    fn torn_writeback_is_caught_on_the_next_physical_read() {
        use crate::FaultPlan;
        let p = pool(1);
        let a = p.allocate_page();
        let b = p.allocate_page();
        p.write_page(a, |bytes| bytes[PAGE_SIZE - 1] = 0xEE);
        p.set_fault_plan(FaultPlan::default().with_torn_write(1, None));
        // Evicting a tears its write-back, silently.
        p.try_read_page(b, |_| ())
            .expect("torn write-back looks clean");
        assert_eq!(p.fault_stats().torn_writes, 1);
        // Faulting a back in detects the corruption instead of
        // consuming the half-written page.
        let err = p.try_read_page(a, |_| ()).unwrap_err();
        assert!(err.is_corruption());
        assert_eq!(p.fault_stats().crc_failures, 1);
    }

    #[test]
    fn shared_pool_serves_concurrent_readers() {
        let p = pool(8);
        let pages: Vec<PageId> = (0..8)
            .map(|i| {
                let id = p.allocate_page();
                p.write_page(id, |bytes| bytes[0] = i as u8);
                id
            })
            .collect();
        p.reset_stats();
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    let mut io = IoStats::default();
                    for (i, &id) in pages.iter().enumerate() {
                        let got = p.read_page_tracked(id, &mut io, |bytes| bytes[0]);
                        assert_eq!(got, i as u8);
                    }
                    assert_eq!(io.logical_reads, 8);
                });
            }
        });
        assert_eq!(p.stats().logical_reads, 4 * 8);
    }
}
