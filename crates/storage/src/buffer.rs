//! Fixed-capacity LRU buffer pool with miss accounting.

use crate::lru::LruList;
use crate::{Disk, PageId, PAGE_SIZE};
use std::collections::HashMap;
use std::sync::Mutex;

/// I/O counters accumulated by a [`BufferPool`].
///
/// `misses` is the count the paper's cost model charges 10 ms each for;
/// `writebacks` counts dirty evictions (also random I/Os).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct IoStats {
    /// Page accesses served (hit or miss).
    pub logical_reads: u64,
    /// Accesses that had to read the page from disk.
    pub misses: u64,
    /// Frames evicted to make room.
    pub evictions: u64,
    /// Evictions that had to write a dirty page back first.
    pub writebacks: u64,
}

impl IoStats {
    /// Hit ratio over the recorded accesses (1.0 when no accesses).
    pub fn hit_ratio(&self) -> f64 {
        if self.logical_reads == 0 {
            1.0
        } else {
            1.0 - self.misses as f64 / self.logical_reads as f64
        }
    }

    /// Physical random I/Os implied by the counters: each miss is one
    /// random read, each write-back one random write. This is the count
    /// the paper's cost model charges per-access time for.
    pub fn physical_ios(&self) -> u64 {
        self.misses + self.writebacks
    }
}

impl std::ops::AddAssign for IoStats {
    fn add_assign(&mut self, rhs: IoStats) {
        self.logical_reads += rhs.logical_reads;
        self.misses += rhs.misses;
        self.evictions += rhs.evictions;
        self.writebacks += rhs.writebacks;
    }
}

impl std::ops::Add for IoStats {
    type Output = IoStats;

    fn add(mut self, rhs: IoStats) -> IoStats {
        self += rhs;
        self
    }
}

struct Frame {
    page: PageId,
    dirty: bool,
    data: Box<[u8; PAGE_SIZE]>,
}

/// A page cache in front of a [`Disk`], with true LRU replacement and
/// write-back semantics.
///
/// The pool owns the disk for the lifetime of the index built on top of
/// it; every page access goes through [`read_page`](BufferPool::read_page)
/// or [`write_page`](BufferPool::write_page) so misses are counted
/// faithfully. Capacity is given in pages; the paper sizes it at 10 % of
/// the dataset.
///
/// All access methods take `&self`: the pool's state lives behind an
/// internal mutex, so a shared pool can serve page reads from several
/// query threads at once (each access is serialized, but callers never
/// need `&mut`). Per-caller I/O attribution is available through
/// [`read_page_tracked`](BufferPool::read_page_tracked), which adds the
/// access's counters to a caller-supplied collector on top of the
/// global [`stats`](BufferPool::stats).
///
/// ```
/// use pdr_storage::{BufferPool, Disk};
///
/// let pool = BufferPool::new(Disk::new(), 2);
/// let a = pool.allocate_page();
/// pool.write_page(a, |bytes| bytes[0] = 42);
/// assert_eq!(pool.read_page(a, |bytes| bytes[0]), 42);
/// // The second read hits the cache: one miss total.
/// assert_eq!(pool.stats().misses, 1);
/// ```
pub struct BufferPool {
    capacity: usize,
    inner: Mutex<PoolInner>,
}

struct PoolInner {
    disk: Disk,
    capacity: usize,
    frames: Vec<Frame>,
    map: HashMap<PageId, usize>,
    lru: LruList,
    free_slots: Vec<usize>,
    stats: IoStats,
}

impl BufferPool {
    /// Wraps `disk` with a cache of `capacity` pages.
    ///
    /// # Panics
    ///
    /// Panics when `capacity == 0` — a pool that can hold nothing cannot
    /// serve `write_page` correctly.
    pub fn new(disk: Disk, capacity: usize) -> Self {
        assert!(capacity > 0, "buffer pool needs at least one frame");
        BufferPool {
            capacity,
            inner: Mutex::new(PoolInner {
                disk,
                capacity,
                frames: Vec::with_capacity(capacity),
                map: HashMap::with_capacity(capacity),
                lru: LruList::new(capacity),
                free_slots: Vec::new(),
                stats: IoStats::default(),
            }),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, PoolInner> {
        self.inner.lock().expect("buffer pool poisoned")
    }

    /// Pool capacity in pages.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Accumulated I/O counters.
    pub fn stats(&self) -> IoStats {
        self.lock().stats
    }

    /// Zeroes the counters (e.g. between the build phase and a measured
    /// query).
    pub fn reset_stats(&self) {
        self.lock().stats = IoStats::default();
    }

    /// Allocates a fresh page on the underlying disk. The new page is
    /// *not* faulted in; the first access will count as a miss unless it
    /// is a `write_page` that populates it.
    pub fn allocate_page(&self) -> PageId {
        self.lock().disk.allocate()
    }

    /// Frees `page`, dropping any cached frame without write-back.
    pub fn free_page(&self, page: PageId) {
        let mut inner = self.lock();
        if let Some(slot) = inner.map.remove(&page) {
            inner.lru.remove(slot);
            inner.free_slots.push(slot);
            // Mark the frame as vacated; its data is garbage now.
            inner.frames[slot].dirty = false;
        }
        inner.disk.free(page);
    }

    /// Reads `page` through the cache and hands the bytes to `f`.
    pub fn read_page<R>(&self, page: PageId, f: impl FnOnce(&[u8; PAGE_SIZE]) -> R) -> R {
        let mut inner = self.lock();
        let slot = inner.fault_in(page, /*load=*/ true, None);
        f(&inner.frames[slot].data)
    }

    /// Like [`read_page`](BufferPool::read_page), additionally adding
    /// this access's counters (logical read, miss, any eviction and
    /// write-back it triggered) to `io`. The global
    /// [`stats`](BufferPool::stats) are updated as well, so per-query
    /// collectors and whole-pool accounting stay consistent.
    pub fn read_page_tracked<R>(
        &self,
        page: PageId,
        io: &mut IoStats,
        f: impl FnOnce(&[u8; PAGE_SIZE]) -> R,
    ) -> R {
        let mut inner = self.lock();
        let slot = inner.fault_in(page, /*load=*/ true, Some(io));
        f(&inner.frames[slot].data)
    }

    /// Gives `f` mutable access to `page` through the cache and marks
    /// the frame dirty. The previous contents are loaded first, so
    /// read-modify-write is safe.
    pub fn write_page<R>(&self, page: PageId, f: impl FnOnce(&mut [u8; PAGE_SIZE]) -> R) -> R {
        let mut inner = self.lock();
        let slot = inner.fault_in(page, /*load=*/ true, None);
        inner.frames[slot].dirty = true;
        f(&mut inner.frames[slot].data)
    }

    /// Like [`write_page`](BufferPool::write_page) but for a page whose
    /// previous contents are irrelevant (fresh allocation): the frame is
    /// zeroed instead of read, so no miss is charged.
    pub fn overwrite_page<R>(&self, page: PageId, f: impl FnOnce(&mut [u8; PAGE_SIZE]) -> R) -> R {
        let mut inner = self.lock();
        let slot = inner.fault_in(page, /*load=*/ false, None);
        inner.frames[slot].dirty = true;
        f(&mut inner.frames[slot].data)
    }

    /// Writes every dirty frame back to disk (without evicting).
    pub fn flush_all(&self) {
        let inner = &mut *self.lock();
        for frame in &mut inner.frames {
            if frame.dirty {
                inner.disk.write(frame.page, &frame.data);
                frame.dirty = false;
            }
        }
    }

    /// Number of distinct pages currently resident.
    pub fn resident_pages(&self) -> usize {
        self.lock().map.len()
    }

    /// Runs `f` with read-only access to the underlying disk (tests,
    /// diagnostics). The pool lock is held for the duration of `f`.
    pub fn with_disk<R>(&self, f: impl FnOnce(&Disk) -> R) -> R {
        f(&self.lock().disk)
    }

    /// Pages currently allocated on the underlying disk.
    pub fn allocated_pages(&self) -> usize {
        self.lock().disk.allocated_pages()
    }
}

impl PoolInner {
    /// Ensures `page` is resident and returns its frame slot. `load`
    /// decides whether a miss reads from disk (normal) or zero-fills
    /// (fresh page about to be fully overwritten). When `track` is
    /// given, the counters charged for this access are also added to
    /// it.
    fn fault_in(&mut self, page: PageId, load: bool, track: Option<&mut IoStats>) -> usize {
        let before = self.stats;
        let slot = self.fault_in_untracked(page, load);
        if let Some(io) = track {
            let after = self.stats;
            io.logical_reads += after.logical_reads - before.logical_reads;
            io.misses += after.misses - before.misses;
            io.evictions += after.evictions - before.evictions;
            io.writebacks += after.writebacks - before.writebacks;
        }
        slot
    }

    fn fault_in_untracked(&mut self, page: PageId, load: bool) -> usize {
        self.stats.logical_reads += 1;
        if let Some(&slot) = self.map.get(&page) {
            self.lru.touch(slot);
            return slot;
        }
        if load {
            self.stats.misses += 1;
        }
        let slot = self.acquire_slot();
        if load {
            self.frames[slot].data.copy_from_slice(self.disk.read(page));
        } else {
            self.frames[slot].data.fill(0);
        }
        self.frames[slot].page = page;
        self.frames[slot].dirty = false;
        self.map.insert(page, slot);
        self.lru.push_front(slot);
        slot
    }

    /// Finds a frame slot: reuse a vacated slot, grow up to capacity, or
    /// evict the LRU frame (writing it back when dirty).
    fn acquire_slot(&mut self) -> usize {
        if let Some(slot) = self.free_slots.pop() {
            return slot;
        }
        if self.frames.len() < self.capacity {
            self.frames.push(Frame {
                page: PageId(u32::MAX),
                dirty: false,
                data: Box::new([0u8; PAGE_SIZE]),
            });
            return self.frames.len() - 1;
        }
        let victim = self.lru.pop_back().expect("pool full but LRU empty");
        self.stats.evictions += 1;
        let frame = &mut self.frames[victim];
        if frame.dirty {
            self.stats.writebacks += 1;
            self.disk.write(frame.page, &frame.data);
            frame.dirty = false;
        }
        self.map.remove(&frame.page);
        victim
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pool(capacity: usize) -> BufferPool {
        BufferPool::new(Disk::new(), capacity)
    }

    #[test]
    fn hit_after_miss() {
        let p = pool(2);
        let a = p.allocate_page();
        p.read_page(a, |_| ());
        p.read_page(a, |_| ());
        let s = p.stats();
        assert_eq!(s.logical_reads, 2);
        assert_eq!(s.misses, 1);
        assert_eq!(s.hit_ratio(), 0.5);
    }

    #[test]
    fn writes_survive_eviction() {
        let p = pool(1);
        let a = p.allocate_page();
        let b = p.allocate_page();
        p.write_page(a, |bytes| bytes[0] = 7);
        // Touching b evicts a, forcing a write-back.
        p.read_page(b, |_| ());
        assert_eq!(p.stats().writebacks, 1);
        p.read_page(a, |bytes| assert_eq!(bytes[0], 7));
    }

    #[test]
    fn overwrite_page_charges_no_read_miss() {
        let p = pool(2);
        let a = p.allocate_page();
        p.overwrite_page(a, |bytes| bytes[1] = 9);
        assert_eq!(p.stats().misses, 0);
        p.flush_all();
        assert_eq!(p.with_disk(|d| d.read(a)[1]), 9);
    }

    #[test]
    fn lru_evicts_least_recent() {
        let p = pool(2);
        let a = p.allocate_page();
        let b = p.allocate_page();
        let c = p.allocate_page();
        p.read_page(a, |_| ());
        p.read_page(b, |_| ());
        p.read_page(a, |_| ()); // a is now MRU
        p.read_page(c, |_| ()); // evicts b
        p.reset_stats();
        p.read_page(a, |_| ());
        p.read_page(c, |_| ());
        assert_eq!(p.stats().misses, 0, "a and c should still be resident");
        p.read_page(b, |_| ());
        assert_eq!(p.stats().misses, 1, "b was the LRU victim");
    }

    #[test]
    fn free_page_drops_frame_without_writeback() {
        let p = pool(2);
        let a = p.allocate_page();
        p.write_page(a, |bytes| bytes[0] = 1);
        p.free_page(a);
        assert_eq!(p.stats().writebacks, 0);
        assert_eq!(p.resident_pages(), 0);
        // The slot is reusable.
        let b = p.allocate_page();
        p.read_page(b, |_| ());
        assert_eq!(p.resident_pages(), 1);
    }

    #[test]
    fn flush_all_persists_dirty_frames() {
        let p = pool(4);
        let ids: Vec<PageId> = (0..3).map(|_| p.allocate_page()).collect();
        for (i, &id) in ids.iter().enumerate() {
            p.write_page(id, |bytes| bytes[0] = i as u8 + 1);
        }
        p.flush_all();
        for (i, &id) in ids.iter().enumerate() {
            assert_eq!(p.with_disk(|d| d.read(id)[0]), i as u8 + 1);
        }
    }

    #[test]
    fn workload_larger_than_pool_thrashes_predictably() {
        let p = pool(4);
        let ids: Vec<PageId> = (0..8).map(|_| p.allocate_page()).collect();
        // Two sequential sweeps over 8 pages with 4 frames: every access
        // misses (classic LRU sequential flooding).
        for _ in 0..2 {
            for &id in &ids {
                p.read_page(id, |_| ());
            }
        }
        assert_eq!(p.stats().misses, 16);
    }

    #[test]
    fn tracked_reads_attribute_io_to_the_collector() {
        let p = pool(1);
        let a = p.allocate_page();
        let b = p.allocate_page();
        p.write_page(a, |bytes| bytes[0] = 1);
        p.reset_stats();
        let mut io = IoStats::default();
        // Miss on b (evicting dirty a → write-back), then a hit.
        p.read_page_tracked(b, &mut io, |_| ());
        p.read_page_tracked(b, &mut io, |_| ());
        assert_eq!(io.logical_reads, 2);
        assert_eq!(io.misses, 1);
        assert_eq!(io.evictions, 1);
        assert_eq!(io.writebacks, 1);
        // The global counters saw the same traffic.
        assert_eq!(p.stats(), io);
        // Untracked traffic does not leak into the collector.
        p.read_page(a, |_| ());
        assert_eq!(io.logical_reads, 2);
    }

    #[test]
    fn stats_merge_with_add() {
        let a = IoStats {
            logical_reads: 3,
            misses: 1,
            evictions: 1,
            writebacks: 0,
        };
        let b = IoStats {
            logical_reads: 2,
            misses: 2,
            evictions: 0,
            writebacks: 1,
        };
        let sum = a + b;
        assert_eq!(sum.logical_reads, 5);
        assert_eq!(sum.misses, 3);
        assert_eq!(sum.evictions, 1);
        assert_eq!(sum.writebacks, 1);
    }

    #[test]
    fn shared_pool_serves_concurrent_readers() {
        let p = pool(8);
        let pages: Vec<PageId> = (0..8)
            .map(|i| {
                let id = p.allocate_page();
                p.write_page(id, |bytes| bytes[0] = i as u8);
                id
            })
            .collect();
        p.reset_stats();
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    let mut io = IoStats::default();
                    for (i, &id) in pages.iter().enumerate() {
                        let got = p.read_page_tracked(id, &mut io, |bytes| bytes[0]);
                        assert_eq!(got, i as u8);
                    }
                    assert_eq!(io.logical_reads, 8);
                });
            }
        });
        assert_eq!(p.stats().logical_reads, 4 * 8);
    }
}
