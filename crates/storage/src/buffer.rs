//! Fixed-capacity LRU buffer pool with miss accounting.

use crate::lru::LruList;
use crate::{Disk, PageId, PAGE_SIZE};
use std::collections::HashMap;

/// I/O counters accumulated by a [`BufferPool`].
///
/// `misses` is the count the paper's cost model charges 10 ms each for;
/// `writebacks` counts dirty evictions (also random I/Os).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct IoStats {
    /// Page accesses served (hit or miss).
    pub logical_reads: u64,
    /// Accesses that had to read the page from disk.
    pub misses: u64,
    /// Frames evicted to make room.
    pub evictions: u64,
    /// Evictions that had to write a dirty page back first.
    pub writebacks: u64,
}

impl IoStats {
    /// Hit ratio over the recorded accesses (1.0 when no accesses).
    pub fn hit_ratio(&self) -> f64 {
        if self.logical_reads == 0 {
            1.0
        } else {
            1.0 - self.misses as f64 / self.logical_reads as f64
        }
    }
}

struct Frame {
    page: PageId,
    dirty: bool,
    data: Box<[u8; PAGE_SIZE]>,
}

/// A page cache in front of a [`Disk`], with true LRU replacement and
/// write-back semantics.
///
/// The pool owns the disk for the lifetime of the index built on top of
/// it; every page access goes through [`read_page`](BufferPool::read_page)
/// or [`write_page`](BufferPool::write_page) so misses are counted
/// faithfully. Capacity is given in pages; the paper sizes it at 10 % of
/// the dataset.
///
/// ```
/// use pdr_storage::{BufferPool, Disk};
///
/// let mut pool = BufferPool::new(Disk::new(), 2);
/// let a = pool.allocate_page();
/// pool.write_page(a, |bytes| bytes[0] = 42);
/// assert_eq!(pool.read_page(a, |bytes| bytes[0]), 42);
/// // The second read hits the cache: one miss total.
/// assert_eq!(pool.stats().misses, 1);
/// ```
pub struct BufferPool {
    disk: Disk,
    capacity: usize,
    frames: Vec<Frame>,
    map: HashMap<PageId, usize>,
    lru: LruList,
    free_slots: Vec<usize>,
    stats: IoStats,
}

impl BufferPool {
    /// Wraps `disk` with a cache of `capacity` pages.
    ///
    /// # Panics
    ///
    /// Panics when `capacity == 0` — a pool that can hold nothing cannot
    /// serve `write_page` correctly.
    pub fn new(disk: Disk, capacity: usize) -> Self {
        assert!(capacity > 0, "buffer pool needs at least one frame");
        BufferPool {
            disk,
            capacity,
            frames: Vec::with_capacity(capacity),
            map: HashMap::with_capacity(capacity),
            lru: LruList::new(capacity),
            free_slots: Vec::new(),
            stats: IoStats::default(),
        }
    }

    /// Pool capacity in pages.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Accumulated I/O counters.
    pub fn stats(&self) -> IoStats {
        self.stats
    }

    /// Zeroes the counters (e.g. between the build phase and a measured
    /// query).
    pub fn reset_stats(&mut self) {
        self.stats = IoStats::default();
    }

    /// Allocates a fresh page on the underlying disk. The new page is
    /// *not* faulted in; the first access will count as a miss unless it
    /// is a `write_page` that populates it.
    pub fn allocate_page(&mut self) -> PageId {
        self.disk.allocate()
    }

    /// Frees `page`, dropping any cached frame without write-back.
    pub fn free_page(&mut self, page: PageId) {
        if let Some(slot) = self.map.remove(&page) {
            self.lru.remove(slot);
            self.free_slots.push(slot);
            // Mark the frame as vacated; its data is garbage now.
            self.frames[slot].dirty = false;
        }
        self.disk.free(page);
    }

    /// Reads `page` through the cache and hands the bytes to `f`.
    pub fn read_page<R>(&mut self, page: PageId, f: impl FnOnce(&[u8; PAGE_SIZE]) -> R) -> R {
        let slot = self.fault_in(page, /*load=*/ true);
        f(&self.frames[slot].data)
    }

    /// Gives `f` mutable access to `page` through the cache and marks
    /// the frame dirty. The previous contents are loaded first, so
    /// read-modify-write is safe.
    pub fn write_page<R>(
        &mut self,
        page: PageId,
        f: impl FnOnce(&mut [u8; PAGE_SIZE]) -> R,
    ) -> R {
        let slot = self.fault_in(page, /*load=*/ true);
        self.frames[slot].dirty = true;
        f(&mut self.frames[slot].data)
    }

    /// Like [`write_page`](BufferPool::write_page) but for a page whose
    /// previous contents are irrelevant (fresh allocation): the frame is
    /// zeroed instead of read, so no miss is charged.
    pub fn overwrite_page<R>(
        &mut self,
        page: PageId,
        f: impl FnOnce(&mut [u8; PAGE_SIZE]) -> R,
    ) -> R {
        let slot = self.fault_in(page, /*load=*/ false);
        self.frames[slot].dirty = true;
        f(&mut self.frames[slot].data)
    }

    /// Writes every dirty frame back to disk (without evicting).
    pub fn flush_all(&mut self) {
        for frame in &mut self.frames {
            if frame.dirty {
                self.disk.write(frame.page, &frame.data);
                frame.dirty = false;
            }
        }
    }

    /// Number of distinct pages currently resident.
    pub fn resident_pages(&self) -> usize {
        self.map.len()
    }

    /// Read-only access to the underlying disk (tests, diagnostics).
    pub fn disk(&self) -> &Disk {
        &self.disk
    }

    /// Ensures `page` is resident and returns its frame slot. `load`
    /// decides whether a miss reads from disk (normal) or zero-fills
    /// (fresh page about to be fully overwritten).
    fn fault_in(&mut self, page: PageId, load: bool) -> usize {
        self.stats.logical_reads += 1;
        if let Some(&slot) = self.map.get(&page) {
            self.lru.touch(slot);
            return slot;
        }
        if load {
            self.stats.misses += 1;
        }
        let slot = self.acquire_slot();
        if load {
            self.frames[slot].data.copy_from_slice(self.disk.read(page));
        } else {
            self.frames[slot].data.fill(0);
        }
        self.frames[slot].page = page;
        self.frames[slot].dirty = false;
        self.map.insert(page, slot);
        self.lru.push_front(slot);
        slot
    }

    /// Finds a frame slot: reuse a vacated slot, grow up to capacity, or
    /// evict the LRU frame (writing it back when dirty).
    fn acquire_slot(&mut self) -> usize {
        if let Some(slot) = self.free_slots.pop() {
            return slot;
        }
        if self.frames.len() < self.capacity {
            self.frames.push(Frame {
                page: PageId(u32::MAX),
                dirty: false,
                data: Box::new([0u8; PAGE_SIZE]),
            });
            return self.frames.len() - 1;
        }
        let victim = self.lru.pop_back().expect("pool full but LRU empty");
        self.stats.evictions += 1;
        let frame = &mut self.frames[victim];
        if frame.dirty {
            self.stats.writebacks += 1;
            self.disk.write(frame.page, &frame.data);
            frame.dirty = false;
        }
        self.map.remove(&frame.page);
        victim
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pool(capacity: usize) -> BufferPool {
        BufferPool::new(Disk::new(), capacity)
    }

    #[test]
    fn hit_after_miss() {
        let mut p = pool(2);
        let a = p.allocate_page();
        p.read_page(a, |_| ());
        p.read_page(a, |_| ());
        let s = p.stats();
        assert_eq!(s.logical_reads, 2);
        assert_eq!(s.misses, 1);
        assert_eq!(s.hit_ratio(), 0.5);
    }

    #[test]
    fn writes_survive_eviction() {
        let mut p = pool(1);
        let a = p.allocate_page();
        let b = p.allocate_page();
        p.write_page(a, |bytes| bytes[0] = 7);
        // Touching b evicts a, forcing a write-back.
        p.read_page(b, |_| ());
        assert_eq!(p.stats().writebacks, 1);
        p.read_page(a, |bytes| assert_eq!(bytes[0], 7));
    }

    #[test]
    fn overwrite_page_charges_no_read_miss() {
        let mut p = pool(2);
        let a = p.allocate_page();
        p.overwrite_page(a, |bytes| bytes[1] = 9);
        assert_eq!(p.stats().misses, 0);
        p.flush_all();
        assert_eq!(p.disk().read(a)[1], 9);
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut p = pool(2);
        let a = p.allocate_page();
        let b = p.allocate_page();
        let c = p.allocate_page();
        p.read_page(a, |_| ());
        p.read_page(b, |_| ());
        p.read_page(a, |_| ()); // a is now MRU
        p.read_page(c, |_| ()); // evicts b
        p.reset_stats();
        p.read_page(a, |_| ());
        p.read_page(c, |_| ());
        assert_eq!(p.stats().misses, 0, "a and c should still be resident");
        p.read_page(b, |_| ());
        assert_eq!(p.stats().misses, 1, "b was the LRU victim");
    }

    #[test]
    fn free_page_drops_frame_without_writeback() {
        let mut p = pool(2);
        let a = p.allocate_page();
        p.write_page(a, |bytes| bytes[0] = 1);
        p.free_page(a);
        assert_eq!(p.stats().writebacks, 0);
        assert_eq!(p.resident_pages(), 0);
        // The slot is reusable.
        let b = p.allocate_page();
        p.read_page(b, |_| ());
        assert_eq!(p.resident_pages(), 1);
    }

    #[test]
    fn flush_all_persists_dirty_frames() {
        let mut p = pool(4);
        let ids: Vec<PageId> = (0..3).map(|_| p.allocate_page()).collect();
        for (i, &id) in ids.iter().enumerate() {
            p.write_page(id, |bytes| bytes[0] = i as u8 + 1);
        }
        p.flush_all();
        for (i, &id) in ids.iter().enumerate() {
            assert_eq!(p.disk().read(id)[0], i as u8 + 1);
        }
    }

    #[test]
    fn workload_larger_than_pool_thrashes_predictably() {
        let mut p = pool(4);
        let ids: Vec<PageId> = (0..8).map(|_| p.allocate_page()).collect();
        // Two sequential sweeps over 8 pages with 4 frames: every access
        // misses (classic LRU sequential flooding).
        for _ in 0..2 {
            for &id in &ids {
                p.read_page(id, |_| ());
            }
        }
        assert_eq!(p.stats().misses, 16);
    }
}
