//! Deterministic fault injection for the simulated storage plane.
//!
//! A [`FaultPlan`] is a declarative, seeded schedule of storage faults
//! injected beneath the [`BufferPool`](crate::BufferPool) at the
//! [`Disk`](crate::Disk) layer. Faults are *deterministic*: the same
//! plan against the same I/O sequence injects the same faults, so every
//! failure scenario in the test suite and the serve smoke is
//! reproducible. Three kinds of faults are modelled:
//!
//! * **read faults** — the device refuses to return a page
//!   ([`StorageError::ReadFailed`]), either transiently (a bounded
//!   number of times; a retry succeeds) or permanently;
//! * **write faults** — the device refuses a page write
//!   ([`StorageError::WriteFailed`]);
//! * **torn writes** — the write *appears* to succeed but only a prefix
//!   of the page reaches the platter. The damage is silent at write
//!   time and is detected on a later read by the per-page CRC32
//!   checksum as [`StorageError::Corrupt`] — corruption is detected,
//!   never consumed.
//!
//! Plans can be built programmatically ([`FaultPlan::new`] +
//! [`FaultPlan::with_rule`]) or parsed from a small text format
//! ([`FaultPlan::parse`]), one rule per line:
//!
//! ```text
//! # transient: reads 5..7 (1-based) fail, retries after that succeed
//! read nth=5 times=3
//! # permanent: every read of page 7 fails forever
//! read page=7 permanent
//! # the 2nd disk write is torn (first sector only reaches disk)
//! torn write nth=2
//! # seeded probabilistic faults: each read fails with p=0.01,
//! # at most 4 injections
//! seed 42
//! read prob=0.01 times=4
//! ```

use crate::{PageId, PAGE_SIZE};
use std::fmt;

/// Bytes of a torn write that actually reach the disk (the first
/// "sector" of the 4 KiB page). The stored checksum covers the full
/// intended page, so the next read detects the tear.
pub const TORN_WRITE_PREFIX: usize = 512;

/// Typed error for the fallible storage paths, replacing panics.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StorageError {
    /// The device failed to read `page`. `transient` faults succeed
    /// when retried; permanent ones never do.
    ReadFailed {
        /// Page whose read failed.
        page: PageId,
        /// Whether a retry can succeed.
        transient: bool,
    },
    /// The device failed to write `page`.
    WriteFailed {
        /// Page whose write failed.
        page: PageId,
        /// Whether a retry can succeed.
        transient: bool,
    },
    /// The page's content does not match its recorded CRC32 checksum
    /// (e.g. after a torn write). The damage is on the platter:
    /// retrying the read returns the same error, but restoring the
    /// data from a checkpoint can repair it.
    Corrupt {
        /// Page whose checksum verification failed.
        page: PageId,
    },
}

impl StorageError {
    /// `true` when simply retrying the same operation may succeed.
    pub fn is_transient(&self) -> bool {
        match *self {
            StorageError::ReadFailed { transient, .. } => transient,
            StorageError::WriteFailed { transient, .. } => transient,
            StorageError::Corrupt { .. } => false,
        }
    }

    /// `true` for checksum failures, which re-writing the data (e.g.
    /// restoring from a checkpoint) can repair — unlike a device that
    /// permanently refuses reads.
    pub fn is_corruption(&self) -> bool {
        matches!(self, StorageError::Corrupt { .. })
    }

    /// The page the error refers to.
    pub fn page(&self) -> PageId {
        match *self {
            StorageError::ReadFailed { page, .. }
            | StorageError::WriteFailed { page, .. }
            | StorageError::Corrupt { page } => page,
        }
    }
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            StorageError::ReadFailed { page, transient } => {
                let kind = if transient { "transient" } else { "permanent" };
                write!(f, "{kind} read failure on {page:?}")
            }
            StorageError::WriteFailed { page, transient } => {
                let kind = if transient { "transient" } else { "permanent" };
                write!(f, "{kind} write failure on {page:?}")
            }
            StorageError::Corrupt { page } => write!(f, "checksum mismatch on {page:?}"),
        }
    }
}

impl std::error::Error for StorageError {}

/// Counters for faults the plan actually injected (and checksum
/// failures the CRC layer caught), surfaced through the pool and the
/// serve metrics.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Read operations failed by the plan.
    pub read_faults: u64,
    /// Write operations failed by the plan.
    pub write_faults: u64,
    /// Writes silently torn by the plan.
    pub torn_writes: u64,
    /// Reads that failed CRC32 verification.
    pub crc_failures: u64,
}

impl FaultStats {
    /// Total faults injected by the plan (checksum failures are a
    /// *consequence* of torn writes, not an extra injection).
    pub fn injected(&self) -> u64 {
        self.read_faults + self.write_faults + self.torn_writes
    }
}

impl std::ops::AddAssign for FaultStats {
    fn add_assign(&mut self, rhs: FaultStats) {
        self.read_faults += rhs.read_faults;
        self.write_faults += rhs.write_faults;
        self.torn_writes += rhs.torn_writes;
        self.crc_failures += rhs.crc_failures;
    }
}

/// Which operation a rule applies to.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum FaultOp {
    Read,
    Write,
}

/// How often a rule keeps firing once its trigger matches.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Budget {
    /// Fires at most this many times (transient).
    Count(u64),
    /// Fires forever (permanent).
    Permanent,
}

/// One declarative fault rule. Built through [`FaultPlan`] helpers or
/// the plan-file parser.
#[derive(Clone, Debug)]
struct FaultRule {
    op: FaultOp,
    /// Restrict the rule to one page (otherwise any page matches).
    page: Option<u32>,
    /// Fire on the Nth matching operation (1-based) and, with a
    /// `Count(k)` budget, on the k-1 operations after it.
    nth: Option<u64>,
    /// Fire on every Nth matching operation.
    every: Option<u64>,
    /// Fire with this probability (seeded, deterministic).
    prob: Option<f64>,
    /// Torn write instead of an error (write rules only).
    torn: bool,
    budget: Budget,
    // --- runtime state ---
    /// Matching operations seen so far.
    seen: u64,
    /// Times this rule has fired.
    fired: u64,
}

impl FaultRule {
    /// Decides whether the rule fires for the next matching op.
    /// Advances `seen` and, when firing, `fired`.
    fn check(&mut self, page: PageId, rng: &mut u64) -> bool {
        if let Some(p) = self.page {
            if p != page.0 {
                return false;
            }
        }
        self.seen += 1;
        let armed = match self.budget {
            Budget::Count(k) => self.fired < k,
            Budget::Permanent => true,
        };
        if !armed {
            return false;
        }
        let hit = if let Some(n) = self.nth {
            // `times=k` extends the burst to ops n..n+k.
            match self.budget {
                Budget::Count(k) => self.seen >= n && self.seen < n + k,
                Budget::Permanent => self.seen >= n,
            }
        } else if let Some(e) = self.every {
            e > 0 && self.seen.is_multiple_of(e)
        } else if let Some(p) = self.prob {
            next_unit(rng) < p
        } else {
            // Bare page/op rule: every matching op.
            true
        };
        if hit {
            self.fired += 1;
        }
        hit
    }
}

/// xorshift64* step returning a uniform draw in `[0, 1)`.
fn next_unit(state: &mut u64) -> f64 {
    let mut x = *state;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    *state = x;
    (x.wrapping_mul(0x2545_F491_4F6C_DD1D) >> 11) as f64 / (1u64 << 53) as f64
}

/// A seeded, declarative schedule of storage faults. Install it on a
/// pool with [`BufferPool::set_fault_plan`](crate::BufferPool::set_fault_plan);
/// the [`Disk`](crate::Disk) consults it on every physical read and
/// write.
#[derive(Clone, Debug)]
pub struct FaultPlan {
    rules: Vec<FaultRule>,
    rng: u64,
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan::new(0x5EED_CAFE)
    }
}

impl FaultPlan {
    /// An empty plan (injects nothing) with the given probability seed.
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            rules: Vec::new(),
            // xorshift state must be non-zero.
            rng: seed | 1,
        }
    }

    /// `true` when the plan has no rules at all.
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }

    /// Number of rules in the plan.
    pub fn len(&self) -> usize {
        self.rules.len()
    }

    /// Adds a transient read fault burst: matching reads number
    /// `nth..nth+times` (1-based) fail; later reads succeed.
    pub fn with_read_fault(mut self, nth: u64, times: u64) -> Self {
        self.rules.push(FaultRule {
            op: FaultOp::Read,
            page: None,
            nth: Some(nth),
            every: None,
            prob: None,
            torn: false,
            budget: Budget::Count(times),
            seen: 0,
            fired: 0,
        });
        self
    }

    /// Adds a permanent read fault on one page: every read of `page`
    /// fails forever.
    pub fn with_permanent_page_fault(mut self, page: u32) -> Self {
        self.rules.push(FaultRule {
            op: FaultOp::Read,
            page: Some(page),
            nth: None,
            every: None,
            prob: None,
            torn: false,
            budget: Budget::Permanent,
            seen: 0,
            fired: 0,
        });
        self
    }

    /// Adds a permanent read fault on *every* page: the device refuses
    /// all physical reads from the `nth` one on.
    pub fn with_permanent_read_fault(mut self, nth: u64) -> Self {
        self.rules.push(FaultRule {
            op: FaultOp::Read,
            page: None,
            nth: Some(nth),
            every: None,
            prob: None,
            torn: false,
            budget: Budget::Permanent,
            seen: 0,
            fired: 0,
        });
        self
    }

    /// Adds a transient write fault burst analogous to
    /// [`with_read_fault`](Self::with_read_fault).
    pub fn with_write_fault(mut self, nth: u64, times: u64) -> Self {
        self.rules.push(FaultRule {
            op: FaultOp::Write,
            page: None,
            nth: Some(nth),
            every: None,
            prob: None,
            torn: false,
            budget: Budget::Count(times),
            seen: 0,
            fired: 0,
        });
        self
    }

    /// Adds a torn write: the `nth` matching write (optionally
    /// restricted to `page`) silently persists only its first
    /// [`TORN_WRITE_PREFIX`] bytes.
    pub fn with_torn_write(mut self, nth: u64, page: Option<u32>) -> Self {
        self.rules.push(FaultRule {
            op: FaultOp::Write,
            page,
            nth: Some(nth),
            every: None,
            prob: None,
            torn: true,
            budget: Budget::Count(1),
            seen: 0,
            fired: 0,
        });
        self
    }

    /// Parses the plan-file format: one rule per line, `#` comments and
    /// blank lines ignored. Grammar per line:
    ///
    /// ```text
    /// seed <u64>
    /// [torn] read|write [page=<u32>] [nth=<u64>] [every=<u64>] [prob=<f64>]
    ///        [times=<u64>] [permanent]
    /// ```
    ///
    /// `times` defaults to 1; `permanent` makes the rule fire forever;
    /// `torn` is only valid on `write` rules.
    pub fn parse(text: &str) -> Result<FaultPlan, FaultPlanError> {
        let mut plan = FaultPlan::default();
        for (idx, raw) in text.lines().enumerate() {
            let line_no = idx + 1;
            let line = raw.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            let mut words = line.split_whitespace().peekable();
            let first = words.next().expect("non-empty line has a word");
            if first == "seed" {
                let v = words.next().ok_or(FaultPlanError {
                    line: line_no,
                    what: "seed needs a value",
                })?;
                let seed: u64 = v.parse().map_err(|_| FaultPlanError {
                    line: line_no,
                    what: "bad seed value",
                })?;
                plan.rng = seed | 1;
                continue;
            }
            let (torn, op_word) = if first == "torn" {
                let op = words.next().ok_or(FaultPlanError {
                    line: line_no,
                    what: "torn needs write",
                })?;
                (true, op)
            } else {
                (false, first)
            };
            let op = match op_word {
                "read" => FaultOp::Read,
                "write" => FaultOp::Write,
                _ => {
                    return Err(FaultPlanError {
                        line: line_no,
                        what: "expected read or write",
                    })
                }
            };
            if torn && op != FaultOp::Write {
                return Err(FaultPlanError {
                    line: line_no,
                    what: "torn is write-only",
                });
            }
            let mut rule = FaultRule {
                op,
                page: None,
                nth: None,
                every: None,
                prob: None,
                torn,
                budget: Budget::Count(1),
                seen: 0,
                fired: 0,
            };
            for word in words {
                if word == "permanent" {
                    rule.budget = Budget::Permanent;
                    continue;
                }
                let (key, value) = word.split_once('=').ok_or(FaultPlanError {
                    line: line_no,
                    what: "expected key=value",
                })?;
                match key {
                    "page" => {
                        rule.page = Some(value.parse().map_err(|_| FaultPlanError {
                            line: line_no,
                            what: "bad page value",
                        })?)
                    }
                    "nth" => {
                        rule.nth = Some(value.parse().map_err(|_| FaultPlanError {
                            line: line_no,
                            what: "bad nth value",
                        })?)
                    }
                    "every" => {
                        rule.every = Some(value.parse().map_err(|_| FaultPlanError {
                            line: line_no,
                            what: "bad every value",
                        })?)
                    }
                    "prob" => {
                        let p: f64 = value.parse().map_err(|_| FaultPlanError {
                            line: line_no,
                            what: "bad prob value",
                        })?;
                        if !(0.0..=1.0).contains(&p) {
                            return Err(FaultPlanError {
                                line: line_no,
                                what: "prob outside [0, 1]",
                            });
                        }
                        rule.prob = Some(p);
                    }
                    "times" => {
                        if rule.budget == Budget::Permanent {
                            return Err(FaultPlanError {
                                line: line_no,
                                what: "times conflicts with permanent",
                            });
                        }
                        rule.budget = Budget::Count(value.parse().map_err(|_| FaultPlanError {
                            line: line_no,
                            what: "bad times value",
                        })?);
                    }
                    _ => {
                        return Err(FaultPlanError {
                            line: line_no,
                            what: "unknown key",
                        })
                    }
                }
            }
            if torn && rule.budget == Budget::Permanent {
                return Err(FaultPlanError {
                    line: line_no,
                    what: "torn cannot be permanent",
                });
            }
            plan.rules.push(rule);
        }
        Ok(plan)
    }

    /// Consults the plan for a physical read of `page`. `Some(true)`
    /// means a transient fault, `Some(false)` permanent.
    pub(crate) fn check_read(&mut self, page: PageId) -> Option<bool> {
        let mut rng = self.rng;
        let mut verdict = None;
        for rule in self.rules.iter_mut().filter(|r| r.op == FaultOp::Read) {
            if rule.check(page, &mut rng) {
                let transient = rule.budget != Budget::Permanent;
                // Permanent verdicts dominate transient ones.
                verdict = Some(verdict.unwrap_or(true) && transient);
            }
        }
        self.rng = rng;
        verdict
    }

    /// Consults the plan for a physical write of `page`. Returns what
    /// should happen to the write.
    pub(crate) fn check_write(&mut self, page: PageId) -> WriteVerdict {
        let mut rng = self.rng;
        let mut verdict = WriteVerdict::Ok;
        for rule in self.rules.iter_mut().filter(|r| r.op == FaultOp::Write) {
            if rule.check(page, &mut rng) {
                if rule.torn {
                    if verdict == WriteVerdict::Ok {
                        verdict = WriteVerdict::Torn;
                    }
                } else {
                    let transient = rule.budget != Budget::Permanent;
                    verdict = match verdict {
                        WriteVerdict::Fail { transient: t } => WriteVerdict::Fail {
                            transient: t && transient,
                        },
                        _ => WriteVerdict::Fail { transient },
                    };
                }
            }
        }
        self.rng = rng;
        verdict
    }
}

/// Outcome of consulting the plan for a write.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum WriteVerdict {
    Ok,
    Torn,
    Fail { transient: bool },
}

/// Parse error for the plan-file format.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FaultPlanError {
    /// 1-based line the error was found on.
    pub line: usize,
    /// What went wrong.
    pub what: &'static str,
}

impl fmt::Display for FaultPlanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "fault plan line {}: {}", self.line, self.what)
    }
}

impl std::error::Error for FaultPlanError {}

/// Compile-time sanity: a torn prefix must fit in a page.
const _: () = assert!(TORN_WRITE_PREFIX < PAGE_SIZE);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nth_burst_fires_exactly_times() {
        let mut plan = FaultPlan::default().with_read_fault(3, 2);
        let pg = PageId(0);
        let hits: Vec<bool> = (0..6).map(|_| plan.check_read(pg).is_some()).collect();
        assert_eq!(hits, [false, false, true, true, false, false]);
    }

    #[test]
    fn permanent_page_rule_only_hits_that_page() {
        let mut plan = FaultPlan::default().with_permanent_page_fault(7);
        assert_eq!(plan.check_read(PageId(3)), None);
        assert_eq!(plan.check_read(PageId(7)), Some(false), "permanent");
        assert_eq!(plan.check_read(PageId(7)), Some(false), "still failing");
    }

    #[test]
    fn torn_write_verdict() {
        let mut plan = FaultPlan::default().with_torn_write(2, None);
        assert_eq!(plan.check_write(PageId(0)), WriteVerdict::Ok);
        assert_eq!(plan.check_write(PageId(1)), WriteVerdict::Torn);
        assert_eq!(plan.check_write(PageId(1)), WriteVerdict::Ok, "one-shot");
    }

    #[test]
    fn parse_round_trip() {
        let text = "\
# a comment
seed 99

read nth=5 times=3   # trailing comment
read page=7 permanent
torn write nth=1
write every=4 times=2
read prob=0.5 times=1
";
        let plan = FaultPlan::parse(text).expect("plan parses");
        assert_eq!(plan.len(), 5);
    }

    #[test]
    fn parse_rejects_bad_lines() {
        assert!(FaultPlan::parse("torn read nth=1").is_err());
        assert!(FaultPlan::parse("fail nth=1").is_err());
        assert!(FaultPlan::parse("read nth=x").is_err());
        assert!(FaultPlan::parse("read prob=1.5").is_err());
        assert!(FaultPlan::parse("torn write nth=1 permanent").is_err());
        let err = FaultPlan::parse("read nth=1\nwrite bogus").unwrap_err();
        assert_eq!(err.line, 2);
    }

    #[test]
    fn empty_and_comment_only_plans_are_clean() {
        let plan = FaultPlan::parse("# nothing\n\n").expect("parses");
        assert!(plan.is_empty());
    }

    #[test]
    fn every_rule_fires_periodically() {
        let mut plan = FaultPlan::parse("write every=3 times=2").expect("parses");
        let hits: Vec<bool> = (0..9)
            .map(|_| plan.check_write(PageId(0)) != WriteVerdict::Ok)
            .collect();
        assert_eq!(
            hits,
            [false, false, true, false, false, true, false, false, false]
        );
    }

    #[test]
    fn prob_rule_is_deterministic_for_a_seed() {
        let run = |seed: u64| -> Vec<bool> {
            let mut plan =
                FaultPlan::parse(&format!("seed {seed}\nread prob=0.3 times=1000")).unwrap();
            (0..64)
                .map(|_| plan.check_read(PageId(0)).is_some())
                .collect()
        };
        assert_eq!(run(7), run(7), "same seed, same schedule");
        assert_ne!(run(7), run(8), "different seed, different schedule");
    }
}
