//! Input hardening for the update protocol.
//!
//! Reports come from the outside world — `MotionState`'s fields are
//! `pub`, so nothing structurally prevents a caller from assembling a
//! motion with NaN coordinates, duplicating an object id inside one
//! batch, or stamping an update with a timestamp the server's
//! ring-buffered summaries cannot place. Any of these would silently
//! poison the density counters. [`screen_batch`] classifies such
//! updates with a typed [`ReportError`] so engines can *count and skip*
//! them instead of debug-asserting deep inside a summary structure.

use crate::{MotionState, ObjectId, TimeHorizon, Timestamp, Update, UpdateKind};
use std::collections::HashSet;
use std::fmt;

/// Why a report (one [`Update`]) was rejected.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ReportError {
    /// A coordinate or velocity component is NaN or infinite.
    NonFinite {
        /// Object the bad report was for.
        id: ObjectId,
    },
    /// A second insertion of the same object id inside one batch
    /// (legitimate re-reports pair a deletion with the new insertion).
    DuplicateId {
        /// The duplicated id.
        id: ObjectId,
    },
    /// The update's timestamps cannot be placed inside the server's
    /// time horizon `H = U + W` around the current time.
    OutsideHorizon {
        /// Object the report was for.
        id: ObjectId,
        /// The report's reference time.
        t_ref: Timestamp,
        /// The update's arrival time.
        t_now: Timestamp,
    },
}

impl ReportError {
    /// The object the rejected report was for.
    pub fn id(&self) -> ObjectId {
        match *self {
            ReportError::NonFinite { id }
            | ReportError::DuplicateId { id }
            | ReportError::OutsideHorizon { id, .. } => id,
        }
    }
}

impl fmt::Display for ReportError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            ReportError::NonFinite { id } => write!(f, "non-finite motion in report for {id:?}"),
            ReportError::DuplicateId { id } => {
                write!(f, "duplicate insertion of {id:?} in one batch")
            }
            ReportError::OutsideHorizon { id, t_ref, t_now } => write!(
                f,
                "report for {id:?} outside the time horizon (t_ref {t_ref}, t_now {t_now})"
            ),
        }
    }
}

impl std::error::Error for ReportError {}

impl MotionState {
    /// Fallible [`new`](MotionState::new): returns
    /// [`ReportError::NonFinite`] instead of panicking, for validating
    /// externally sourced reports.
    pub fn try_new(
        id: ObjectId,
        origin: pdr_geometry::Point,
        velocity: pdr_geometry::Point,
        t_ref: Timestamp,
    ) -> Result<MotionState, ReportError> {
        if !origin.is_finite() || !velocity.is_finite() {
            return Err(ReportError::NonFinite { id });
        }
        Ok(MotionState {
            origin,
            velocity,
            t_ref,
        })
    }
}

/// Screens one update against the server's validity rules. `window`,
/// when given, is the server's current time `t_base` plus its horizon:
/// updates must arrive at `t_now ∈ [t_base, t_base + H]` and insertions
/// must carry a report no older than `H` (and not from the future).
pub fn screen_update(
    u: &Update,
    window: Option<(Timestamp, TimeHorizon)>,
) -> Result<(), ReportError> {
    let m = u.motion();
    if !m.origin.is_finite() || !m.velocity.is_finite() {
        return Err(ReportError::NonFinite { id: u.id });
    }
    let horizon_err = ReportError::OutsideHorizon {
        id: u.id,
        t_ref: m.t_ref,
        t_now: u.t_now,
    };
    if matches!(u.kind, UpdateKind::Insert { .. }) && (m.t_ref > u.t_now) {
        return Err(horizon_err);
    }
    if let Some((t_base, horizon)) = window {
        let h = horizon.h();
        if u.t_now < t_base || u.t_now - t_base > h {
            return Err(horizon_err);
        }
        if matches!(u.kind, UpdateKind::Insert { .. }) && u.t_now - m.t_ref > h {
            return Err(horizon_err);
        }
    }
    Ok(())
}

/// Screens a whole batch: per-update checks via [`screen_update`] plus
/// the cross-update rule that an object id may be *inserted* at most
/// once per batch. Returns the indices of rejected updates with their
/// errors; accepted updates are the remaining indices, in order.
pub fn screen_batch(
    updates: &[Update],
    window: Option<(Timestamp, TimeHorizon)>,
) -> Vec<(usize, ReportError)> {
    let mut rejected = Vec::new();
    let mut inserted: HashSet<ObjectId> = HashSet::new();
    for (i, u) in updates.iter().enumerate() {
        if let Err(e) = screen_update(u, window) {
            rejected.push((i, e));
            continue;
        }
        if matches!(u.kind, UpdateKind::Insert { .. }) && !inserted.insert(u.id) {
            rejected.push((i, ReportError::DuplicateId { id: u.id }));
        }
    }
    rejected
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdr_geometry::Point;

    fn motion(t_ref: Timestamp) -> MotionState {
        MotionState::new(Point::new(10.0, 10.0), Point::new(1.0, 0.0), t_ref)
    }

    #[test]
    fn clean_batch_passes() {
        let batch = vec![
            Update::delete(ObjectId(1), 5, motion(2)),
            Update::insert(ObjectId(1), 5, motion(5)),
            Update::insert(ObjectId(2), 5, motion(5)),
        ];
        let horizon = TimeHorizon::new(4, 2);
        assert!(screen_batch(&batch, Some((5, horizon))).is_empty());
    }

    #[test]
    fn non_finite_motion_rejected() {
        let mut bad = motion(5);
        bad.velocity = Point::new(f64::NAN, 0.0); // pub field bypasses the ctor assert
        let batch = vec![Update::insert(ObjectId(7), 5, bad)];
        let rejected = screen_batch(&batch, None);
        assert_eq!(
            rejected,
            vec![(0, ReportError::NonFinite { id: ObjectId(7) })]
        );
    }

    #[test]
    fn duplicate_insert_rejected_but_delete_insert_pair_allowed() {
        let batch = vec![
            Update::delete(ObjectId(3), 5, motion(2)),
            Update::insert(ObjectId(3), 5, motion(5)),
            Update::insert(ObjectId(3), 5, motion(5)),
        ];
        let rejected = screen_batch(&batch, None);
        assert_eq!(
            rejected,
            vec![(2, ReportError::DuplicateId { id: ObjectId(3) })]
        );
    }

    #[test]
    fn timestamps_outside_the_horizon_rejected() {
        let horizon = TimeHorizon::new(4, 2); // H = 6
                                              // `Update::insert` rebases to t_now, so a stale report can only
                                              // arrive through the pub fields — the bypass screening guards.
        let stale = Update {
            id: ObjectId(1),
            t_now: 10,
            kind: UpdateKind::Insert { motion: motion(2) }, // report 8 old > H
        };
        let future = Update::insert(ObjectId(2), 20, motion(20)); // arrives past t_base + H
        let late = Update::insert(ObjectId(3), 9, motion(9)); // before t_base
        let ok = Update::insert(ObjectId(4), 12, motion(11));
        let batch = vec![stale, future, late, ok];
        let rejected = screen_batch(&batch, Some((10, horizon)));
        let idxs: Vec<usize> = rejected.iter().map(|(i, _)| *i).collect();
        assert_eq!(idxs, vec![0, 1, 2]);
        assert!(rejected
            .iter()
            .all(|(_, e)| matches!(e, ReportError::OutsideHorizon { .. })));
    }

    #[test]
    fn try_new_rejects_garbage() {
        let err = MotionState::try_new(
            ObjectId(9),
            Point::new(f64::INFINITY, 0.0),
            Point::ORIGIN,
            0,
        )
        .unwrap_err();
        assert_eq!(err, ReportError::NonFinite { id: ObjectId(9) });
        assert_eq!(err.id(), ObjectId(9));
        assert!(MotionState::try_new(ObjectId(9), Point::ORIGIN, Point::ORIGIN, 0).is_ok());
    }
}
