//! Moving-object substrate for PDR queries.
//!
//! The paper (Section 4) assumes `n` objects moving linearly in an
//! `L × L` region. Each object reports `(x, y, v_x, v_y)` to a central
//! server; between reports its position is extrapolated as
//! `x_t = x + (t − t_ref)·v_x`. Objects must re-report within the
//! *maximum update time* `U`; queries may look up to the *prediction
//! window* `W` into the future, so server-side structures cover the
//! *time horizon* `H = U + W` timestamps past "now".
//!
//! This crate provides:
//! * [`Timestamp`] / [`TimeHorizon`] — discrete time and the `U/W/H` split;
//! * [`MotionState`] — a linear trajectory segment with extrapolation;
//! * [`MovingObject`] / [`ObjectId`] — identified objects;
//! * [`Update`] — the paper's insertion/deletion/movement update protocol
//!   (Section 5.1), consumed by both the density histogram and the
//!   Chebyshev density approximation;
//! * [`ObjectTable`] — the server's current-motion table, which turns a
//!   stream of movement reports into paired deletion+insertion updates.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod motion;
mod table;
mod time;
mod update;
mod validate;

pub use motion::{MotionState, MovingObject, ObjectId};
pub use table::{ObjectTable, ReportUpdates};
pub use time::{TimeHorizon, Timestamp};
pub use update::{Update, UpdateKind};
pub use validate::{screen_batch, screen_update, ReportError};
