//! The paper's location-update protocol (Section 5.1).

use crate::{MotionState, ObjectId, Timestamp};

/// What a location update does to the server's view of one object.
///
/// The paper distinguishes:
/// * an **insertion** `(t_now, x, y, v_x, v_y)` — a new motion starts at
///   `t_now`; summaries must add its trajectory over
///   `[t_now, t_now + H]`;
/// * a **deletion** `(t₁, t_now, x₁, y₁, v_x¹, v_y¹)` — a motion that was
///   reported at `t₁` is retracted at `t_now`; summaries must subtract
///   its trajectory over `[t_now, t₁ + H]` (positions extrapolated from
///   the *old* report).
///
/// A *movement report* from a live object is simply a deletion of its old
/// motion followed by an insertion of the new one; [`crate::ObjectTable`]
/// performs that pairing.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum UpdateKind {
    /// A new motion becomes current at [`Update::t_now`].
    Insert {
        /// The newly reported motion (with `t_ref == t_now`).
        motion: MotionState,
    },
    /// The motion reported earlier is retracted at [`Update::t_now`].
    Delete {
        /// The motion being retracted (with its original `t_ref = t₁`).
        old_motion: MotionState,
    },
}

/// One update applied at server time `t_now`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Update {
    /// Object the update concerns.
    pub id: ObjectId,
    /// Server time at which the update is applied.
    pub t_now: Timestamp,
    /// Insertion or deletion payload.
    pub kind: UpdateKind,
}

impl Update {
    /// Builds an insertion update; the motion is re-anchored to `t_now`
    /// so `t_ref == t_now` as the protocol requires.
    pub fn insert(id: ObjectId, t_now: Timestamp, motion: MotionState) -> Self {
        Update {
            id,
            t_now,
            kind: UpdateKind::Insert {
                motion: motion.rebased_to(t_now),
            },
        }
    }

    /// Builds a deletion update retracting `old_motion` at `t_now`.
    ///
    /// # Panics
    ///
    /// Panics when `old_motion.t_ref > t_now`: a motion cannot be
    /// retracted before it was reported.
    pub fn delete(id: ObjectId, t_now: Timestamp, old_motion: MotionState) -> Self {
        assert!(
            old_motion.t_ref <= t_now,
            "cannot retract a motion from the future (t_ref {} > t_now {})",
            old_motion.t_ref,
            t_now
        );
        Update {
            id,
            t_now,
            kind: UpdateKind::Delete { old_motion },
        }
    }

    /// The timestamp range `[from, to]` over which a per-timestamp
    /// summary structure must apply this update, given horizon `h`:
    /// insertions cover `[t_now, t_now + H]`, deletions cover
    /// `[t_now, t₁ + H]` where `t₁` is the old report time (positions
    /// beyond `t₁ + H` were never added, so nothing is subtracted there).
    ///
    /// Returns `None` for a deletion whose old report has already aged
    /// out entirely (`t₁ + H < t_now`) — a protocol violation the caller
    /// may tolerate as a no-op.
    pub fn affected_range(&self, h: u64) -> Option<(Timestamp, Timestamp)> {
        match self.kind {
            UpdateKind::Insert { .. } => Some((self.t_now, self.t_now + h)),
            UpdateKind::Delete { old_motion } => {
                let end = old_motion.t_ref + h;
                if end < self.t_now {
                    None
                } else {
                    Some((self.t_now, end))
                }
            }
        }
    }

    /// Axis-aligned bounding box of the *full* trajectory of this
    /// update's motion over horizon `h`: the positions swept over
    /// `[t_ref, t_ref + h]`. Motion is linear, so the box of the two
    /// endpoint positions covers every intermediate timestamp.
    ///
    /// This is the routing key of the sharded engine plane: an update is
    /// delivered to every shard whose ingest region (owned rectangle
    /// inflated by the halo width) intersects this box. Deliberately a
    /// *superset* of the box of [`affected_range`](Update::affected_range)
    /// for deletions — routing the retraction by the old motion's full
    /// span guarantees it reaches **exactly** the shards that received
    /// the matching insertion (same motion, same box), so no shard is
    /// left holding a stale trajectory.
    ///
    /// # Panics
    ///
    /// Panics when the motion is non-finite; screen such reports out
    /// before routing.
    pub fn routing_bbox(&self, h: u64) -> pdr_geometry::Rect {
        let m = self.motion();
        pdr_geometry::Rect::from_corners(m.position_at(m.t_ref), m.position_at(m.t_ref + h))
    }

    /// The motion whose trajectory the summary must add or subtract.
    pub fn motion(&self) -> MotionState {
        match self.kind {
            UpdateKind::Insert { motion } => motion,
            UpdateKind::Delete { old_motion } => old_motion,
        }
    }

    /// +1 for insertions, −1 for deletions — the counter delta the
    /// density histogram applies per affected timestamp.
    pub fn sign(&self) -> i64 {
        match self.kind {
            UpdateKind::Insert { .. } => 1,
            UpdateKind::Delete { .. } => -1,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdr_geometry::Point;

    fn motion(t: Timestamp) -> MotionState {
        MotionState::new(Point::new(1.0, 2.0), Point::new(0.5, 0.0), t)
    }

    #[test]
    fn insert_covers_full_horizon() {
        let u = Update::insert(ObjectId(1), 100, motion(100));
        assert_eq!(u.affected_range(120), Some((100, 220)));
        assert_eq!(u.sign(), 1);
    }

    #[test]
    fn insert_rebases_motion() {
        // A motion reported with an older t_ref is re-anchored.
        let u = Update::insert(ObjectId(1), 100, motion(90));
        let m = u.motion();
        assert_eq!(m.t_ref, 100);
        assert_eq!(m.origin, Point::new(6.0, 2.0)); // 1.0 + 0.5 * 10
    }

    #[test]
    fn delete_covers_until_old_horizon_end() {
        // Motion reported at t1 = 80, retracted at t_now = 100, H = 120:
        // affected range is [100, 200].
        let u = Update::delete(ObjectId(2), 100, motion(80));
        assert_eq!(u.affected_range(120), Some((100, 200)));
        assert_eq!(u.sign(), -1);
    }

    #[test]
    fn stale_delete_is_noop() {
        // Motion from t1 = 10 with H = 20 aged out at t = 30 < t_now.
        let u = Update::delete(ObjectId(3), 100, motion(10));
        assert_eq!(u.affected_range(20), None);
    }

    #[test]
    #[should_panic(expected = "future")]
    fn delete_from_future_rejected() {
        let _ = Update::delete(ObjectId(4), 50, motion(60));
    }

    #[test]
    fn routing_bbox_is_identical_for_insert_and_matching_delete() {
        // Insert at (1, 2) moving +0.5/tick in x over [100, 120].
        let u = Update::insert(ObjectId(1), 100, motion(100));
        let b = u.routing_bbox(20);
        assert_eq!((b.x_lo, b.x_hi), (1.0, 11.0));
        assert_eq!((b.y_lo, b.y_hi), (2.0, 2.0));

        // The retraction routes by the old motion's full span, so it
        // reaches exactly the shards the insertion reached.
        let d = Update::delete(ObjectId(1), 110, motion(100));
        assert_eq!(d.routing_bbox(20), b);
    }
}
