//! Linear motion states and identified moving objects.

use crate::Timestamp;
use pdr_geometry::Point;
use std::fmt;

/// Opaque identifier of a moving object.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ObjectId(pub u64);

impl fmt::Debug for ObjectId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "o{}", self.0)
    }
}

/// One linear trajectory segment: at reference time `t_ref` the object
/// was at `origin` moving with constant `velocity`, so its position at
/// `t >= t_ref` is `origin + velocity · (t − t_ref)` (the paper's linear
/// motion model, Section 4).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct MotionState {
    /// Reported position at `t_ref`.
    pub origin: Point,
    /// Constant velocity (distance units per timestamp).
    pub velocity: Point,
    /// Timestamp of the report.
    pub t_ref: Timestamp,
}

impl MotionState {
    /// Creates a motion state.
    ///
    /// # Panics
    ///
    /// Panics when position or velocity is non-finite; garbage motions
    /// must not reach server-side summaries, where they would silently
    /// poison counters.
    pub fn new(origin: Point, velocity: Point, t_ref: Timestamp) -> Self {
        assert!(origin.is_finite(), "non-finite origin {origin:?}");
        assert!(velocity.is_finite(), "non-finite velocity {velocity:?}");
        MotionState {
            origin,
            velocity,
            t_ref,
        }
    }

    /// A motionless object at `origin`.
    pub fn stationary(origin: Point, t_ref: Timestamp) -> Self {
        MotionState::new(origin, Point::ORIGIN, t_ref)
    }

    /// Extrapolated position at timestamp `t`.
    ///
    /// Extrapolation is defined for any `t` (also `t < t_ref`, used when
    /// a deletion must reconstruct positions from an old report), though
    /// the protocol only queries `t >= t_ref`.
    #[inline]
    pub fn position_at(&self, t: Timestamp) -> Point {
        let dt = t as f64 - self.t_ref as f64;
        self.origin + self.velocity * dt
    }

    /// Re-anchors the motion to a later reference time without changing
    /// the trajectory. Useful for normalizing reports before indexing.
    pub fn rebased_to(&self, t: Timestamp) -> MotionState {
        MotionState {
            origin: self.position_at(t),
            velocity: self.velocity,
            t_ref: t,
        }
    }

    /// Speed (velocity magnitude) per timestamp.
    #[inline]
    pub fn speed(&self) -> f64 {
        self.velocity.norm()
    }
}

/// A moving object: an identifier plus its most recent motion report.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct MovingObject {
    /// Stable identity across re-reports.
    pub id: ObjectId,
    /// Latest reported motion.
    pub motion: MotionState,
}

impl MovingObject {
    /// Creates a moving object.
    pub fn new(id: ObjectId, motion: MotionState) -> Self {
        MovingObject { id, motion }
    }

    /// Extrapolated position at timestamp `t`.
    #[inline]
    pub fn position_at(&self, t: Timestamp) -> Point {
        self.motion.position_at(t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn extrapolation() {
        let m = MotionState::new(Point::new(10.0, 20.0), Point::new(1.0, -2.0), 100);
        assert_eq!(m.position_at(100), Point::new(10.0, 20.0));
        assert_eq!(m.position_at(105), Point::new(15.0, 10.0));
        // Backward extrapolation also works.
        assert_eq!(m.position_at(99), Point::new(9.0, 22.0));
    }

    #[test]
    fn rebase_preserves_trajectory() {
        let m = MotionState::new(Point::new(0.0, 0.0), Point::new(2.0, 3.0), 10);
        let r = m.rebased_to(15);
        assert_eq!(r.t_ref, 15);
        for t in 15..25 {
            assert_eq!(m.position_at(t), r.position_at(t));
        }
    }

    #[test]
    fn stationary_never_moves() {
        let m = MotionState::stationary(Point::new(5.0, 5.0), 0);
        assert_eq!(m.position_at(1_000_000), Point::new(5.0, 5.0));
        assert_eq!(m.speed(), 0.0);
    }

    #[test]
    #[should_panic(expected = "non-finite velocity")]
    fn rejects_nan_velocity() {
        let _ = MotionState::new(Point::ORIGIN, Point::new(f64::NAN, 0.0), 0);
    }
}
