//! The server's table of current motions.

use crate::{MotionState, MovingObject, ObjectId, Timestamp, Update};
use std::collections::HashMap;

/// The server-side table mapping each live object to its current motion.
///
/// Its job is to turn client *reports* into the paper's update protocol:
/// a movement report from an object already in the table becomes a
/// deletion of the old motion followed by an insertion of the new one,
/// both stamped `t_now`. Summary structures (density histogram, Chebyshev
/// coefficients) and the TPR-tree consume the resulting [`Update`]s.
#[derive(Default)]
pub struct ObjectTable {
    motions: HashMap<ObjectId, MotionState>,
}

impl ObjectTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        ObjectTable::default()
    }

    /// Creates a table pre-sized for `n` objects.
    pub fn with_capacity(n: usize) -> Self {
        ObjectTable {
            motions: HashMap::with_capacity(n),
        }
    }

    /// Number of live objects.
    pub fn len(&self) -> usize {
        self.motions.len()
    }

    /// `true` when no objects are live.
    pub fn is_empty(&self) -> bool {
        self.motions.is_empty()
    }

    /// Current motion of `id`, if live.
    pub fn motion_of(&self, id: ObjectId) -> Option<MotionState> {
        self.motions.get(&id).copied()
    }

    /// Applies a report: the object (re-)declares `motion` at `t_now`.
    ///
    /// Returns the protocol updates in application order — `[delete?,
    /// insert]` — that downstream structures must apply.
    pub fn report(&mut self, id: ObjectId, t_now: Timestamp, motion: MotionState) -> Vec<Update> {
        let mut out = Vec::with_capacity(2);
        if let Some(old) = self.motions.get(&id).copied() {
            out.push(Update::delete(id, t_now, old));
        }
        let ins = Update::insert(id, t_now, motion);
        self.motions.insert(id, ins.motion());
        out.push(ins);
        out
    }

    /// Removes an object entirely (it left the system). Returns the
    /// deletion update, or `None` when the object was unknown.
    pub fn retire(&mut self, id: ObjectId, t_now: Timestamp) -> Option<Update> {
        let old = self.motions.remove(&id)?;
        Some(Update::delete(id, t_now, old))
    }

    /// Snapshot of all live objects (order unspecified).
    pub fn objects(&self) -> impl Iterator<Item = MovingObject> + '_ {
        self.motions
            .iter()
            .map(|(&id, &motion)| MovingObject::new(id, motion))
    }

    /// Brute-force positions of all live objects at `t` — the ground
    /// truth the indexed methods are validated against in tests.
    pub fn positions_at(&self, t: Timestamp) -> Vec<pdr_geometry::Point> {
        self.motions.values().map(|m| m.position_at(t)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::UpdateKind;
    use pdr_geometry::Point;

    fn motion(x: f64, t: Timestamp) -> MotionState {
        MotionState::new(Point::new(x, 0.0), Point::new(1.0, 0.0), t)
    }

    #[test]
    fn first_report_is_plain_insert() {
        let mut tab = ObjectTable::new();
        let ups = tab.report(ObjectId(1), 10, motion(0.0, 10));
        assert_eq!(ups.len(), 1);
        assert!(matches!(ups[0].kind, UpdateKind::Insert { .. }));
        assert_eq!(tab.len(), 1);
    }

    #[test]
    fn movement_report_pairs_delete_and_insert() {
        let mut tab = ObjectTable::new();
        tab.report(ObjectId(1), 10, motion(0.0, 10));
        let ups = tab.report(ObjectId(1), 20, motion(50.0, 20));
        assert_eq!(ups.len(), 2);
        match (&ups[0].kind, &ups[1].kind) {
            (UpdateKind::Delete { old_motion }, UpdateKind::Insert { motion: new }) => {
                assert_eq!(old_motion.t_ref, 10);
                assert_eq!(new.t_ref, 20);
                assert_eq!(new.origin, Point::new(50.0, 0.0));
            }
            other => panic!("unexpected update pair {other:?}"),
        }
        assert_eq!(tab.len(), 1);
    }

    #[test]
    fn retire_removes_and_emits_delete() {
        let mut tab = ObjectTable::new();
        tab.report(ObjectId(7), 5, motion(1.0, 5));
        let del = tab.retire(ObjectId(7), 9).unwrap();
        assert!(matches!(del.kind, UpdateKind::Delete { .. }));
        assert!(tab.is_empty());
        assert!(tab.retire(ObjectId(7), 10).is_none());
    }

    #[test]
    fn positions_extrapolate() {
        let mut tab = ObjectTable::new();
        tab.report(ObjectId(1), 0, motion(0.0, 0));
        let pos = tab.positions_at(5);
        assert_eq!(pos, vec![Point::new(5.0, 0.0)]);
    }
}
