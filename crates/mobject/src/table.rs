//! The server's table of current motions.

use crate::{MotionState, MovingObject, ObjectId, Timestamp, Update, UpdateKind};
use std::collections::HashMap;

/// The protocol updates produced by one report — at most a deletion of
/// the old motion followed by the insertion of the new one.
///
/// A report can never produce more than two updates, so this is a
/// fixed-size inline buffer rather than a heap `Vec`: the update path
/// runs once per vehicle per tick and must not allocate. It derefs to
/// `&[Update]` and iterates by value, so existing `Vec`-shaped callers
/// (`for u in table.report(..)`, `updates.extend(table.report(..))`,
/// `ups[0]`, `ups.len()`) keep working unchanged.
#[derive(Clone, Copy, Debug)]
pub struct ReportUpdates {
    items: [Update; 2],
    len: u8,
}

impl ReportUpdates {
    /// A plain insertion (first report of an object).
    fn insert_only(insert: Update) -> Self {
        ReportUpdates {
            items: [insert, insert],
            len: 1,
        }
    }

    /// A movement report: delete of the old motion, then the insert.
    fn delete_insert(delete: Update, insert: Update) -> Self {
        ReportUpdates {
            items: [delete, insert],
            len: 2,
        }
    }

    /// The updates in application order.
    pub fn as_slice(&self) -> &[Update] {
        &self.items[..self.len as usize]
    }
}

impl std::ops::Deref for ReportUpdates {
    type Target = [Update];

    fn deref(&self) -> &[Update] {
        self.as_slice()
    }
}

impl IntoIterator for ReportUpdates {
    type Item = Update;
    type IntoIter = std::iter::Take<std::array::IntoIter<Update, 2>>;

    fn into_iter(self) -> Self::IntoIter {
        self.items.into_iter().take(self.len as usize)
    }
}

impl<'a> IntoIterator for &'a ReportUpdates {
    type Item = &'a Update;
    type IntoIter = std::slice::Iter<'a, Update>;

    fn into_iter(self) -> Self::IntoIter {
        self.as_slice().iter()
    }
}

/// The server-side table mapping each live object to its current motion.
///
/// Its job is to turn client *reports* into the paper's update protocol:
/// a movement report from an object already in the table becomes a
/// deletion of the old motion followed by an insertion of the new one,
/// both stamped `t_now`. Summary structures (density histogram, Chebyshev
/// coefficients) and the TPR-tree consume the resulting [`Update`]s.
#[derive(Default)]
pub struct ObjectTable {
    motions: HashMap<ObjectId, MotionState>,
}

impl ObjectTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        ObjectTable::default()
    }

    /// Creates a table pre-sized for `n` objects.
    pub fn with_capacity(n: usize) -> Self {
        ObjectTable {
            motions: HashMap::with_capacity(n),
        }
    }

    /// Number of live objects.
    pub fn len(&self) -> usize {
        self.motions.len()
    }

    /// `true` when no objects are live.
    pub fn is_empty(&self) -> bool {
        self.motions.is_empty()
    }

    /// Current motion of `id`, if live.
    pub fn motion_of(&self, id: ObjectId) -> Option<MotionState> {
        self.motions.get(&id).copied()
    }

    /// Applies a report: the object (re-)declares `motion` at `t_now`.
    ///
    /// Returns the protocol updates in application order — `[delete?,
    /// insert]` — that downstream structures must apply, as an inline
    /// [`ReportUpdates`] pair (no allocation).
    pub fn report(&mut self, id: ObjectId, t_now: Timestamp, motion: MotionState) -> ReportUpdates {
        let old = self.motions.get(&id).copied();
        let ins = Update::insert(id, t_now, motion);
        self.motions.insert(id, ins.motion());
        match old {
            Some(old) => ReportUpdates::delete_insert(Update::delete(id, t_now, old), ins),
            None => ReportUpdates::insert_only(ins),
        }
    }

    /// Applies one protocol update to the table itself — the mirror of
    /// [`report`](Self::report) for consumers that *receive* an update
    /// stream instead of producing one (the exact oracle and baseline
    /// engines replay the served stream through a table of their own).
    /// Returns `false` for a deletion of an unknown object.
    pub fn apply(&mut self, update: &Update) -> bool {
        match update.kind {
            UpdateKind::Insert { motion } => {
                self.motions.insert(update.id, motion);
                true
            }
            UpdateKind::Delete { .. } => self.motions.remove(&update.id).is_some(),
        }
    }

    /// Removes an object entirely (it left the system). Returns the
    /// deletion update, or `None` when the object was unknown.
    pub fn retire(&mut self, id: ObjectId, t_now: Timestamp) -> Option<Update> {
        let old = self.motions.remove(&id)?;
        Some(Update::delete(id, t_now, old))
    }

    /// Snapshot of all live objects (order unspecified).
    pub fn objects(&self) -> impl Iterator<Item = MovingObject> + '_ {
        self.motions
            .iter()
            .map(|(&id, &motion)| MovingObject::new(id, motion))
    }

    /// Brute-force positions of all live objects at `t` — the ground
    /// truth the indexed methods are validated against in tests.
    pub fn positions_at(&self, t: Timestamp) -> Vec<pdr_geometry::Point> {
        self.motions.values().map(|m| m.position_at(t)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::UpdateKind;
    use pdr_geometry::Point;

    fn motion(x: f64, t: Timestamp) -> MotionState {
        MotionState::new(Point::new(x, 0.0), Point::new(1.0, 0.0), t)
    }

    #[test]
    fn first_report_is_plain_insert() {
        let mut tab = ObjectTable::new();
        let ups = tab.report(ObjectId(1), 10, motion(0.0, 10));
        assert_eq!(ups.len(), 1);
        assert!(matches!(ups[0].kind, UpdateKind::Insert { .. }));
        assert_eq!(tab.len(), 1);
    }

    #[test]
    fn movement_report_pairs_delete_and_insert() {
        let mut tab = ObjectTable::new();
        tab.report(ObjectId(1), 10, motion(0.0, 10));
        let ups = tab.report(ObjectId(1), 20, motion(50.0, 20));
        assert_eq!(ups.len(), 2);
        match (&ups[0].kind, &ups[1].kind) {
            (UpdateKind::Delete { old_motion }, UpdateKind::Insert { motion: new }) => {
                assert_eq!(old_motion.t_ref, 10);
                assert_eq!(new.t_ref, 20);
                assert_eq!(new.origin, Point::new(50.0, 0.0));
            }
            other => panic!("unexpected update pair {other:?}"),
        }
        assert_eq!(tab.len(), 1);
    }

    #[test]
    fn retire_removes_and_emits_delete() {
        let mut tab = ObjectTable::new();
        tab.report(ObjectId(7), 5, motion(1.0, 5));
        let del = tab.retire(ObjectId(7), 9).unwrap();
        assert!(matches!(del.kind, UpdateKind::Delete { .. }));
        assert!(tab.is_empty());
        assert!(tab.retire(ObjectId(7), 10).is_none());
    }

    #[test]
    fn report_updates_iterate_and_slice_in_order() {
        let mut tab = ObjectTable::new();
        tab.report(ObjectId(1), 0, motion(0.0, 0));
        let ups = tab.report(ObjectId(1), 5, motion(9.0, 5));
        // Deref/slice view and by-value iteration agree, in protocol order.
        assert_eq!(ups.as_slice().len(), 2);
        let collected: Vec<Update> = ups.into_iter().collect();
        assert_eq!(collected.as_slice(), ups.as_slice());
        assert!(matches!(ups[0].kind, UpdateKind::Delete { .. }));
        assert!(matches!(ups[1].kind, UpdateKind::Insert { .. }));
        let mut extended: Vec<Update> = Vec::new();
        extended.extend(ups);
        assert_eq!(extended.len(), 2);
    }

    #[test]
    fn apply_replays_a_report_stream() {
        let mut producer = ObjectTable::new();
        let mut mirror = ObjectTable::new();
        for u in producer.report(ObjectId(1), 0, motion(0.0, 0)) {
            assert!(mirror.apply(&u));
        }
        for u in producer.report(ObjectId(1), 4, motion(8.0, 4)) {
            assert!(mirror.apply(&u));
        }
        assert_eq!(mirror.len(), 1);
        assert_eq!(
            mirror.motion_of(ObjectId(1)),
            producer.motion_of(ObjectId(1))
        );
        // Deleting an unknown object is a tolerated no-op.
        assert!(!mirror.apply(&Update::delete(ObjectId(9), 5, motion(0.0, 5))));
    }

    #[test]
    fn positions_extrapolate() {
        let mut tab = ObjectTable::new();
        tab.report(ObjectId(1), 0, motion(0.0, 0));
        let pos = tab.positions_at(5);
        assert_eq!(pos, vec![Point::new(5.0, 0.0)]);
    }
}
