//! Discrete time and the `U / W / H` horizon split.

/// A discrete timestamp. The paper's experiments use unit-length
/// timestamps; queries and histogram slots are aligned to this grid.
pub type Timestamp = u64;

/// The time-horizon parameters of the paper (Section 4):
///
/// * `U` — *maximum update time*: every object re-reports its motion
///   within `U` timestamps;
/// * `W` — *prediction window*: a PDR query targets a timestamp at most
///   `W` into the future;
/// * `H = U + W` — *time horizon*: the farthest future timestamp any
///   server-side summary must cover, because a motion reported now can
///   stay un-refreshed for `U` steps and still be queried `W` ahead.
///
/// Per-timestamp structures (density histograms, Chebyshev coefficient
/// sets) therefore keep `H + 1` slots, for `t ∈ [t_now, t_now + H]`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TimeHorizon {
    max_update_time: u64,
    prediction_window: u64,
}

impl TimeHorizon {
    /// The paper's default setup: `U = 60`, `W = 60`, `H = 120`
    /// (mirroring the effective-density-query experiments of Jensen et
    /// al. that the paper says it follows).
    pub const PAPER_DEFAULT: TimeHorizon = TimeHorizon {
        max_update_time: 60,
        prediction_window: 60,
    };

    /// Creates a horizon from `U` and `W`.
    ///
    /// # Panics
    ///
    /// Panics when both are zero (the horizon would cover no time).
    pub fn new(max_update_time: u64, prediction_window: u64) -> Self {
        assert!(
            max_update_time + prediction_window > 0,
            "time horizon must cover at least one timestamp"
        );
        TimeHorizon {
            max_update_time,
            prediction_window,
        }
    }

    /// Maximum update time `U`.
    #[inline]
    pub fn max_update_time(&self) -> u64 {
        self.max_update_time
    }

    /// Prediction window `W`.
    #[inline]
    pub fn prediction_window(&self) -> u64 {
        self.prediction_window
    }

    /// Horizon length `H = U + W`.
    #[inline]
    pub fn h(&self) -> u64 {
        self.max_update_time + self.prediction_window
    }

    /// Number of per-timestamp slots a summary structure needs:
    /// `H + 1`, covering `t_now ..= t_now + H`.
    #[inline]
    pub fn slot_count(&self) -> usize {
        self.h() as usize + 1
    }

    /// `true` when a query at `q_t`, issued at `t_now`, falls inside the
    /// horizon (`t_now <= q_t <= t_now + H`).
    #[inline]
    pub fn covers(&self, t_now: Timestamp, q_t: Timestamp) -> bool {
        q_t >= t_now && q_t - t_now <= self.h()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default() {
        let h = TimeHorizon::PAPER_DEFAULT;
        assert_eq!(h.max_update_time(), 60);
        assert_eq!(h.prediction_window(), 60);
        assert_eq!(h.h(), 120);
        assert_eq!(h.slot_count(), 121);
    }

    #[test]
    fn coverage() {
        let h = TimeHorizon::new(2, 3);
        assert_eq!(h.h(), 5);
        assert!(h.covers(10, 10));
        assert!(h.covers(10, 15));
        assert!(!h.covers(10, 16));
        assert!(!h.covers(10, 9));
    }

    #[test]
    #[should_panic(expected = "at least one timestamp")]
    fn rejects_zero_horizon() {
        let _ = TimeHorizon::new(0, 0);
    }
}
