//! End-to-end tests of the `pdrcli` binary.

use std::process::Command;

fn pdrcli() -> Command {
    Command::new(env!("CARGO_BIN_EXE_pdrcli"))
}

fn tmp_path(name: &str) -> std::path::PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("pdrcli-test-{}-{name}", std::process::id()));
    p
}

#[test]
fn generate_query_hotspots_round_trip() {
    let data = tmp_path("objs.csv");
    let out = pdrcli()
        .args([
            "generate",
            "--objects",
            "2000",
            "--extent",
            "400",
            "--seed",
            "5",
            "--out",
            data.to_str().unwrap(),
        ])
        .output()
        .expect("run generate");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    // The CSV parses back: header + 2000 rows of 5 fields.
    let text = std::fs::read_to_string(&data).unwrap();
    assert!(text.starts_with("id,x,y,vx,vy\n"));
    assert_eq!(text.lines().count(), 2001);

    // FR query produces a CSV of rectangles.
    let out = pdrcli()
        .args([
            "query",
            "--data",
            data.to_str().unwrap(),
            "--extent",
            "400",
            "--l",
            "20",
            "--count",
            "10",
            "--at",
            "5",
        ])
        .output()
        .expect("run query");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("x_lo,y_lo,x_hi,y_hi"));
    let rects = stdout.lines().filter(|l| !l.starts_with('#')).count();
    assert!(rects > 1, "expected some dense rectangles:\n{stdout}");

    // PA agrees on the rough amount of dense area.
    let out_pa = pdrcli()
        .args([
            "query",
            "--data",
            data.to_str().unwrap(),
            "--extent",
            "400",
            "--l",
            "20",
            "--count",
            "10",
            "--at",
            "5",
            "--method",
            "pa",
        ])
        .output()
        .expect("run pa query");
    assert!(out_pa.status.success());

    // Hotspots lists k ranked peaks.
    let out = pdrcli()
        .args([
            "hotspots",
            "--data",
            data.to_str().unwrap(),
            "--extent",
            "400",
            "--l",
            "20",
            "--at",
            "5",
            "--top",
            "3",
        ])
        .output()
        .expect("run hotspots");
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("rank,x,y,density"));
    assert!(stdout.lines().any(|l| l.starts_with("1,")));

    let _ = std::fs::remove_file(&data);
}

#[test]
fn serve_metrics_dumps_observability_json() {
    let metrics = tmp_path("metrics.json");
    let out = pdrcli()
        .args([
            "serve",
            "--objects",
            "800",
            "--extent",
            "400",
            "--ticks",
            "6",
            "--l",
            "20",
            "--count",
            "8",
            "--seed",
            "11",
            "--metrics",
            metrics.to_str().unwrap(),
        ])
        .output()
        .expect("run serve");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("engine,queries"), "CSV header missing");

    let json = std::fs::read_to_string(&metrics).expect("metrics file written");
    // Required schema keys: driver tick timings, per-engine latency
    // quantiles, FR stage timings, PA branch-and-bound counters, and
    // the unbounded-r_fp accuracy counter.
    for key in [
        "\"ticks\":6",
        "\"tick_ingest_us\":",
        "\"tick_query_us\":",
        "\"engines\":[",
        "\"latency_us\":",
        "\"p50_us\":",
        "\"p99_us\":",
        "\"unbounded_r_fp\":",
        "\"stages\":",
        "\"classify\":",
        "\"sweep\":",
        "\"bnb_expanded\":",
        "\"queries_served\":",
        "\"physical_ios\":",
    ] {
        assert!(json.contains(key), "metrics JSON lacks {key}:\n{json}");
    }
    // Valid JSON tokens only: non-finite floats must be null.
    assert!(!json.contains("inf") && !json.contains("NaN"), "{json}");
    let _ = std::fs::remove_file(&metrics);
}

#[test]
fn helpful_errors() {
    // Missing subcommand.
    let out = pdrcli().output().unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("usage"));

    // Unknown flag.
    let out = pdrcli().args(["query", "--bogus", "1"]).output().unwrap();
    assert!(!out.status.success());

    // Missing data file.
    let out = pdrcli()
        .args([
            "query",
            "--data",
            "/nonexistent/x.csv",
            "--l",
            "10",
            "--count",
            "5",
            "--at",
            "0",
        ])
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("error"));
}

#[test]
fn rejects_malformed_csv() {
    let data = tmp_path("bad.csv");
    std::fs::write(&data, "id,x,y,vx,vy\n1,2,3\n").unwrap();
    let out = pdrcli()
        .args([
            "query",
            "--data",
            data.to_str().unwrap(),
            "--l",
            "10",
            "--count",
            "5",
            "--at",
            "0",
        ])
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("expected 5 fields"));
    let _ = std::fs::remove_file(&data);
}
