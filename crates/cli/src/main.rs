//! `pdrcli` — command-line front end for pointwise-dense region queries.
//!
//! ```text
//! pdrcli generate --objects 10000 --extent 1000 --seed 7 --out objects.csv
//! pdrcli query    --data objects.csv --extent 1000 --l 30 --count 15 --at 10 [--method fr|pa] [--threads N]
//! pdrcli serve    --objects 5000 --extent 1000 --ticks 20 --l 30 --count 15 [--seed S] [--metrics FILE] [--fault-plan FILE] [--buffer-pages N]
//! pdrcli hotspots --data objects.csv --extent 1000 --l 30 --at 10 --top 5
//! ```
//!
//! Datasets are CSV with header `id,x,y,vx,vy` (positions at t = 0).
//! `query` prints the dense rectangles; `serve` runs simulated traffic
//! through every engine behind the shared [`ServeDriver`] and reports
//! per-engine load; `hotspots` prints the top-k density peaks from the
//! approximate engine.
//!
//! `serve --fault-plan FILE` installs a deterministic fault-injection
//! schedule beneath the FR engine's storage plane (see
//! [`FaultPlan::parse`] for the grammar) and turns on write-ahead
//! journaling so detected corruption and ingest crashes recover from
//! the latest checkpoint. Pair it with `--buffer-pages` small enough
//! that the index actually pages — a pool that fits the working set
//! never performs the physical I/O faults are injected into.
//!
//! All engines are constructed through [`EngineSpec`] and queried
//! through the [`DensityEngine`] trait — the CLI never touches
//! concrete engine wiring.

use pdr_core::{
    AnswerDelta, EngineSpec, FrConfig, PaConfig, PaEngine, PdrQuery, SubId, SubscriptionTable,
};
use pdr_geometry::{Point, Rect, RegionSet};
use pdr_mobject::{MotionState, ObjectId, TimeHorizon, Timestamp, Update};
use pdr_storage::{CostModel, FaultPlan};
use pdr_workload::{
    gaussian_clusters, net::Json, FaultPolicy, NetClient, NetFaultInjector, NetFaultPlan,
    NetServer, NetServerConfig, NetworkConfig, QueryMix, QuerySpec, RoadNetwork, ServeDriver,
    TrafficSimulator,
};
use std::io::Write;
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Duration;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else {
        return usage("missing subcommand");
    };
    let opts = match Options::parse(&args[1..]) {
        Ok(o) => o,
        Err(e) => return usage(&e),
    };
    let result = match cmd.as_str() {
        "generate" => cmd_generate(&opts),
        "query" => cmd_query(&opts),
        "serve" => cmd_serve(&opts),
        "client" => cmd_client(&opts),
        "hotspots" => cmd_hotspots(&opts),
        other => return usage(&format!("unknown subcommand {other}")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn usage(msg: &str) -> ExitCode {
    eprintln!("error: {msg}");
    eprintln!(
        "usage:\n  pdrcli generate --objects N [--extent L] [--clusters K] [--seed S] --out FILE\n  \
         pdrcli query --data FILE --l EDGE --count MIN_OBJECTS --at T [--extent L] [--method fr|pa] [--threads N]\n  \
         pdrcli serve --objects N --ticks T --l EDGE --count MIN_OBJECTS [--extent L] [--seed S] [--threads N] [--clients N] [--subs N] [--metrics FILE] [--fault-plan FILE] [--buffer-pages N] [--journal TICKS] [--shards SxS] [--adaptive] [--split-threshold N] [--merge-threshold N]\n  \
         pdrcli serve --listen ADDR [--port-file FILE] [--capacity N] [--deadline-ms N] [--net-fault-plan FILE] [--objects N ...]\n  \
         pdrcli serve --listen ADDR --replica-of PRIMARY_ADDR --shards SxS [--objects N ...]\n  \
         pdrcli client --connect ADDR [--ticks T] [--queries M] [--subs N] [--replica REPLICA_ADDR] [--failover ADDR,...] [--keep-open] [--rebalance] [--net-fault-plan FILE] [--l EDGE] [--count MIN_OBJECTS]\n  \
         pdrcli hotspots --data FILE --l EDGE --at T [--extent L] [--top K]"
    );
    ExitCode::from(2)
}

/// Flat `--key value` option bag; all keys optional, validated per
/// subcommand.
struct Options {
    objects: usize,
    extent: f64,
    clusters: usize,
    seed: u64,
    out: Option<String>,
    data: Option<String>,
    l: f64,
    count: f64,
    at: Timestamp,
    method: String,
    top: usize,
    threads: usize,
    ticks: u64,
    metrics: Option<String>,
    fault_plan: Option<String>,
    buffer_pages: usize,
    journal: u64,
    /// Shard grid `(sx, sy)` for `serve`; `None` = unsharded engines.
    shards: Option<(u32, u32)>,
    /// `serve`: expose the driver over TCP instead of the local loop.
    listen: Option<String>,
    /// `serve --listen`: write the bound address here once listening.
    port_file: Option<String>,
    /// `serve --listen`: admission capacity (queries in flight).
    capacity: usize,
    /// `serve` (local loop): concurrent clients per tick.
    clients: usize,
    /// `serve --listen`: run as a log-shipping read replica of this
    /// primary front-end instead of simulating traffic locally.
    replica_of: Option<String>,
    /// `client`: server address to connect to.
    connect: Option<String>,
    /// `client`: replica front-end to sync and cross-check against
    /// `--connect` after every tick (bit-identical answers).
    replica: Option<String>,
    /// `client`: checked queries per tick.
    queries: usize,
    /// `serve --listen`: per-query deadline override in ms (0 = none).
    deadline_ms: Option<u64>,
    /// Standing subscriptions: `client` registers this many over the
    /// wire and replays their delta streams; local `serve` carries them
    /// in the driver's subscription mix.
    subs: usize,
    /// `serve --listen` / `client`: seeded network fault plan injected
    /// beneath the framing layer (see `NetFaultPlan::parse`).
    net_fault_plan: Option<String>,
    /// `client`: comma-separated fallback addresses walked (and
    /// promoted) when the `--connect` target dies mid-run.
    failover: Vec<String>,
    /// `client`: leave the servers running on exit (no `shutdown` op) —
    /// a later client picks up where this one stopped.
    keep_open: bool,
    /// `serve`: let the shard plane split hot leaves and merge cold
    /// sibling groups on its own (requires `--shards`).
    adaptive: bool,
    /// `serve --adaptive`: owned-object count above which a leaf splits.
    split_threshold: u64,
    /// `serve --adaptive`: combined owned count below which a sibling
    /// group merges back into its parent.
    merge_threshold: u64,
    /// `client`: force one `rebalance` split after the first tick and
    /// one merge before the last, checking answers stay exact across
    /// both cutovers.
    rebalance: bool,
}

impl Options {
    fn parse(args: &[String]) -> Result<Options, String> {
        let mut o = Options {
            objects: 10_000,
            extent: 1000.0,
            clusters: 5,
            seed: 7,
            out: None,
            data: None,
            l: 30.0,
            count: 10.0,
            at: 0,
            method: "fr".into(),
            top: 5,
            threads: 0, // refinement workers: 0 = one per core
            ticks: 20,
            metrics: None,
            fault_plan: None,
            buffer_pages: 512,
            journal: 5, // checkpoint cadence in ticks; 0 = no journal
            shards: None,
            listen: None,
            port_file: None,
            capacity: 32,
            clients: 1,
            replica_of: None,
            connect: None,
            replica: None,
            queries: 4,
            deadline_ms: None,
            subs: 0,
            net_fault_plan: None,
            failover: Vec::new(),
            keep_open: false,
            adaptive: false,
            split_threshold: pdr_core::SplitPolicy::default().split_threshold,
            merge_threshold: pdr_core::SplitPolicy::default().merge_threshold,
            rebalance: false,
        };
        let mut i = 0;
        while i < args.len() {
            let key = &args[i];
            // Valueless flags first — everything else is `--key value`.
            if key == "--keep-open" {
                o.keep_open = true;
                i += 1;
                continue;
            }
            if key == "--adaptive" {
                o.adaptive = true;
                i += 1;
                continue;
            }
            if key == "--rebalance" {
                o.rebalance = true;
                i += 1;
                continue;
            }
            let value = args
                .get(i + 1)
                .ok_or_else(|| format!("{key} needs a value"))?;
            let bad = |k: &str| format!("bad value for {k}: {value}");
            match key.as_str() {
                "--objects" => o.objects = value.parse().map_err(|_| bad(key))?,
                "--extent" => o.extent = value.parse().map_err(|_| bad(key))?,
                "--clusters" => o.clusters = value.parse().map_err(|_| bad(key))?,
                "--seed" => o.seed = value.parse().map_err(|_| bad(key))?,
                "--out" => o.out = Some(value.clone()),
                "--data" => o.data = Some(value.clone()),
                "--l" => o.l = value.parse().map_err(|_| bad(key))?,
                "--count" => o.count = value.parse().map_err(|_| bad(key))?,
                "--at" => o.at = value.parse().map_err(|_| bad(key))?,
                "--method" => o.method = value.clone(),
                "--top" => o.top = value.parse().map_err(|_| bad(key))?,
                "--threads" => o.threads = value.parse().map_err(|_| bad(key))?,
                "--ticks" => o.ticks = value.parse().map_err(|_| bad(key))?,
                "--metrics" => o.metrics = Some(value.clone()),
                "--fault-plan" => o.fault_plan = Some(value.clone()),
                "--buffer-pages" => o.buffer_pages = value.parse().map_err(|_| bad(key))?,
                "--journal" => o.journal = value.parse().map_err(|_| bad(key))?,
                "--listen" => o.listen = Some(value.clone()),
                "--port-file" => o.port_file = Some(value.clone()),
                "--capacity" => o.capacity = value.parse().map_err(|_| bad(key))?,
                "--clients" => {
                    o.clients = value.parse().map_err(|_| bad(key))?;
                    if o.clients == 0 {
                        return Err(bad(key));
                    }
                }
                "--replica-of" => o.replica_of = Some(value.clone()),
                "--connect" => o.connect = Some(value.clone()),
                "--replica" => o.replica = Some(value.clone()),
                "--net-fault-plan" => o.net_fault_plan = Some(value.clone()),
                "--failover" => {
                    o.failover = value
                        .split(',')
                        .map(str::trim)
                        .filter(|s| !s.is_empty())
                        .map(String::from)
                        .collect();
                    if o.failover.is_empty() {
                        return Err(bad(key));
                    }
                }
                "--queries" => o.queries = value.parse().map_err(|_| bad(key))?,
                "--deadline-ms" => o.deadline_ms = Some(value.parse().map_err(|_| bad(key))?),
                "--subs" => o.subs = value.parse().map_err(|_| bad(key))?,
                "--split-threshold" => o.split_threshold = value.parse().map_err(|_| bad(key))?,
                "--merge-threshold" => o.merge_threshold = value.parse().map_err(|_| bad(key))?,
                "--shards" => {
                    let (sx, sy) = value.split_once(['x', 'X']).ok_or_else(|| bad(key))?;
                    let sx: u32 = sx.parse().map_err(|_| bad(key))?;
                    let sy: u32 = sy.parse().map_err(|_| bad(key))?;
                    if sx == 0 || sy == 0 {
                        return Err(bad(key));
                    }
                    o.shards = Some((sx, sy));
                }
                other => return Err(format!("unknown flag {other}")),
            }
            i += 2;
        }
        Ok(o)
    }
}

fn cmd_generate(o: &Options) -> Result<(), String> {
    let out = o.out.as_ref().ok_or("generate requires --out")?;
    let pop = gaussian_clusters(
        o.objects,
        o.extent,
        o.clusters.max(1),
        o.extent * 0.04,
        0.2,
        1.5,
        o.seed,
        0,
    );
    let mut csv = String::from("id,x,y,vx,vy\n");
    for (id, m) in &pop {
        csv.push_str(&format!(
            "{},{},{},{},{}\n",
            id.0, m.origin.x, m.origin.y, m.velocity.x, m.velocity.y
        ));
    }
    std::fs::write(out, csv).map_err(|e| format!("writing {out}: {e}"))?;
    println!("wrote {} objects to {out}", pop.len());
    Ok(())
}

fn load_data(o: &Options) -> Result<Vec<(ObjectId, MotionState)>, String> {
    let path = o.data.as_ref().ok_or("this command requires --data")?;
    let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    let mut out = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        if lineno == 0 && line.starts_with("id,") {
            continue; // header
        }
        if line.trim().is_empty() {
            continue;
        }
        let fields: Vec<&str> = line.split(',').collect();
        if fields.len() != 5 {
            return Err(format!("{path}:{}: expected 5 fields", lineno + 1));
        }
        let parse = |s: &str| -> Result<f64, String> {
            s.trim()
                .parse()
                .map_err(|_| format!("{path}:{}: bad number {s}", lineno + 1))
        };
        let id: u64 = fields[0]
            .trim()
            .parse()
            .map_err(|_| format!("{path}:{}: bad id {}", lineno + 1, fields[0]))?;
        out.push((
            ObjectId(id),
            MotionState::new(
                Point::new(parse(fields[1])?, parse(fields[2])?),
                Point::new(parse(fields[3])?, parse(fields[4])?),
                0,
            ),
        ));
    }
    if out.is_empty() {
        return Err(format!("{path}: no objects"));
    }
    Ok(out)
}

fn horizon_for(at: Timestamp) -> TimeHorizon {
    // Cover the requested timestamp with a symmetric window.
    let half = at.max(10);
    TimeHorizon::new(half, half)
}

/// Resolves a method name to a declarative engine spec; every engine
/// the CLI runs is built from one of these.
fn engine_spec(method: &str, o: &Options, horizon: TimeHorizon) -> Result<EngineSpec, String> {
    match method {
        "fr" => {
            let m = ((2.0 * o.extent / o.l).ceil() as u32).clamp(10, 400);
            Ok(EngineSpec::Fr(FrConfig {
                extent: o.extent,
                m,
                horizon,
                buffer_pages: o.buffer_pages,
                threads: o.threads,
            }))
        }
        "pa" => Ok(EngineSpec::Pa(PaConfig {
            extent: o.extent,
            g: 20,
            degree: 5,
            l: o.l,
            horizon,
            m_d: 512,
        })),
        other => Err(format!("unknown method {other} (fr|pa)")),
    }
}

fn cmd_query(o: &Options) -> Result<(), String> {
    let pop = load_data(o)?;
    let q = PdrQuery::new(o.count / (o.l * o.l), o.l, o.at);
    println!(
        "# {} objects, l = {}, threshold = {} objects per neighborhood, t = {}",
        pop.len(),
        o.l,
        o.count,
        o.at
    );
    let mut engine = engine_spec(&o.method, o, horizon_for(o.at))?.build(0);
    engine.bulk_load(&pop, 0);
    let ans = engine.query(&q);
    let stats = engine.stats();
    println!(
        "# {}: exact = {}, {} buffer misses, {} bytes resident",
        engine.name(),
        ans.exact,
        ans.io.misses,
        stats.memory_bytes
    );
    // Wall-clock goes to stderr: stdout must stay byte-identical
    // across runs and thread counts.
    eprintln!("# cpu = {:.2} ms", ans.cpu.as_secs_f64() * 1e3);
    let regions = ans.regions;
    let mut out = std::io::BufWriter::new(std::io::stdout().lock());
    let write = (|| -> std::io::Result<()> {
        writeln!(
            out,
            "# {} rectangles, total area {:.1}",
            regions.len(),
            regions.area()
        )?;
        writeln!(out, "x_lo,y_lo,x_hi,y_hi")?;
        for r in regions.rects() {
            writeln!(out, "{},{},{},{}", r.x_lo, r.y_lo, r.x_hi, r.y_hi)?;
        }
        out.flush()
    })();
    tolerate_broken_pipe(write)
}

fn cmd_serve(o: &Options) -> Result<(), String> {
    if o.replica_of.is_some() {
        return cmd_serve_replica(o);
    }
    if o.ticks == 0 {
        return Err("serve requires --ticks >= 1".into());
    }
    let network = RoadNetwork::generate(&NetworkConfig::metro(o.extent), o.seed);
    let horizon = TimeHorizon::new(10, 10);
    let sim = TrafficSimulator::new(
        network,
        o.objects,
        o.seed ^ 0x5eed,
        horizon.max_update_time(),
        0,
    );
    let rho = o.count / (o.l * o.l);

    // Both engines, built declaratively, served by the one driver.
    // `--shards SxS` wraps each spec in the shared-nothing shard router
    // (`EngineSpec::Sharded`): same answers rect-for-rect, per-shard
    // storage/WAL, and a per-shard block in the metrics JSON.
    let spec_for = |method: &str| -> Result<EngineSpec, String> {
        let inner = engine_spec(method, o, horizon)?;
        Ok(match o.shards {
            Some((sx, sy)) => EngineSpec::Sharded {
                adaptive: o.adaptive.then(|| pdr_core::SplitPolicy {
                    split_threshold: o.split_threshold,
                    merge_threshold: o.merge_threshold,
                    ..Default::default()
                }),
                inner: Box::new(inner),
                sx,
                sy,
                l_max: o.l,
            },
            None => inner,
        })
    };
    let mut driver = ServeDriver::new(sim, CostModel::PAPER_DEFAULT)
        .with_engine("fr", spec_for("fr")?.build(0))
        .with_engine("pa", spec_for("pa")?.build(0));
    driver.bootstrap();
    if let Some((sx, sy)) = o.shards {
        if o.adaptive {
            eprintln!(
                "# engines sharded {sx}x{sy} adaptive (split>{} merge<{})",
                o.split_threshold, o.merge_threshold
            );
        } else {
            eprintln!("# engines sharded {sx}x{sy} (halo l/2, per-shard WAL segments)");
        }
    }

    if let Some(path) = &o.fault_plan {
        let text =
            std::fs::read_to_string(path).map_err(|e| format!("reading fault plan {path}: {e}"))?;
        let plan = FaultPlan::parse(&text).map_err(|e| format!("{path}: {e}"))?;
        // Journal first: the checkpoint + WAL make detected corruption
        // and ingest crashes recoverable once faults start firing.
        // `--journal 0` turns recovery off, so persistent faults take
        // the engine offline-degraded instead.
        if o.journal > 0 {
            driver.enable_journal(o.journal);
        }
        driver.install_fault_plan("fr", plan);
        eprintln!("# fault plan {path} installed beneath the fr storage plane");
    }

    if let Some(addr) = &o.listen {
        return serve_tcp(o, driver, addr);
    }

    // Query mix: now / mid-window / full prediction window ahead.
    // Offsets stay within W: a report may be up to U old, so its
    // horizon coverage only guarantees [now, now + W].
    let w = horizon.prediction_window();
    let specs: Vec<QuerySpec> = [0, w / 2, w]
        .into_iter()
        .map(|dt| QuerySpec {
            rho,
            varrho: 0.0,
            l: o.l,
            q_t: dt,
        })
        .collect();
    let mut mix = QueryMix::new(specs, 0, 2)
        .with_accuracy()
        .with_clients(o.clients);
    if o.subs > 0 {
        // Standing queries ride the incremental maintenance path;
        // `verify` cross-checks every maintained answer against a
        // from-scratch query each tick (exact rect equality).
        mix = mix.with_subscriptions(o.subs, 5, true);
        eprintln!(
            "# {} standing subscriptions per engine (churn every 5 ticks)",
            o.subs
        );
    }
    if o.clients > 1 {
        eprintln!("# {} concurrent clients per tick", o.clients);
    }
    let report = driver.run(o.ticks, &mix);

    println!(
        "# served {} ticks, {} objects, {} protocol updates, {} queries per engine",
        report.ticks,
        o.objects,
        report.updates,
        report.engines.first().map_or(0, |e| e.score.queries)
    );
    println!("engine,queries,mean_total_ms,ingest_ms,io_misses,r_fp,r_fn,updates,missed_deletes,memory_bytes");
    for e in &report.engines {
        println!(
            "{},{},{:.3},{:.3},{},{:.4},{:.4},{},{},{}",
            e.label,
            e.score.queries,
            e.mean_total_ms(),
            e.ingest_ms,
            e.score.io.misses,
            e.mean_r_fp(),
            e.mean_r_fn(),
            e.stats.updates_applied,
            e.stats.missed_deletes,
            e.stats.memory_bytes
        );
    }
    if o.subs > 0 {
        println!("engine,subs,sub_deltas,sub_checks,sub_divergence");
        for e in &report.engines {
            println!(
                "{},{},{},{},{}",
                e.label, e.subs, e.sub_deltas, e.sub_checks, e.sub_divergence
            );
        }
        if report.engines.iter().any(|e| e.sub_divergence > 0) {
            return Err("subscription maintenance diverged from from-scratch queries".into());
        }
    }
    if o.fault_plan.is_some() {
        println!("engine,faults_injected,crc_failures,retries,recoveries,degraded_queries,failed_queries,deadline_misses");
        for e in &report.engines {
            println!(
                "{},{},{},{},{},{},{},{}",
                e.label,
                e.faults.injected(),
                e.faults.crc_failures,
                e.retries,
                e.recoveries,
                e.degraded_queries,
                e.failed_queries,
                e.deadline_misses
            );
        }
    }
    if let Some(path) = &o.metrics {
        std::fs::write(path, report.to_json())
            .map_err(|e| format!("writing metrics to {path}: {e}"))?;
        eprintln!("# metrics written to {path}");
    }
    Ok(())
}

/// `serve --listen ADDR --replica-of PRIMARY`: builds a log-shipping
/// read replica of the primary front-end's `fr` engine, bootstraps it
/// over the wire (`ship_log` with empty offsets cuts a sealed
/// checkpoint + segment tails), and serves query/subscribe traffic
/// read-only. Clients refresh the replica with the `sync` op; `tick`
/// is refused. The grid must match the primary's (`--shards SxS` plus
/// the same engine geometry flags).
fn cmd_serve_replica(o: &Options) -> Result<(), String> {
    let primary = o.replica_of.clone().expect("checked by cmd_serve");
    let addr = o
        .listen
        .as_ref()
        .ok_or("serve --replica-of requires --listen")?;
    let Some((sx, sy)) = o.shards else {
        return Err(
            "serve --replica-of requires --shards SxS (replicas ship per-shard logs)".into(),
        );
    };
    let horizon = TimeHorizon::new(10, 10);
    let spec = EngineSpec::Sharded {
        adaptive: None,
        inner: Box::new(engine_spec("fr", o, horizon)?),
        sx,
        sy,
        l_max: o.l,
    };
    let engine = spec.try_build_replica(0).map_err(|e| e.to_string())?;

    // The simulator is inert here — a replica front-end refuses `tick`
    // and resolves query times against its applied clock — but the
    // driver still owns one for the shared metrics surface.
    let network = RoadNetwork::generate(&NetworkConfig::metro(o.extent), o.seed);
    let sim = TrafficSimulator::new(
        network,
        o.objects,
        o.seed ^ 0x5eed,
        horizon.max_update_time(),
        0,
    );
    let mut driver = ServeDriver::new(sim, CostModel::PAPER_DEFAULT).with_engine("fr", engine);

    // Initial bootstrap straight from the primary, before serving:
    // empty offsets force a checkpoint-carrying shipment. The fetch
    // retries with jittered backoff; a primary that stays unreachable
    // is *not* fatal — the replica serves empty until a `sync` op
    // succeeds, which re-bootstraps it once the primary returns.
    let policy = FaultPolicy::default();
    let mut rng = policy.seed | 1;
    let mut last_err = String::new();
    let mut bootstrapped = false;
    for attempt in 1..=policy.max_attempts {
        let fetched = NetClient::connect(&primary)
            .map_err(|e| format!("connecting to primary {primary}: {e}"))
            .and_then(|mut c| pdr_workload::net::fetch_shipment(&mut c, Some("fr"), 0, &[], 0));
        match fetched {
            Ok(ship) => {
                let report = driver
                    .engine_mut("fr")
                    .and_then(|e| e.as_replica_mut())
                    .ok_or("replica engine lost its ingest surface")?
                    .ingest(&ship)
                    .map_err(|e| format!("ingesting bootstrap shipment: {e}"))?;
                eprintln!(
                    "# bootstrapped from {primary}: {} records, {} updates, lag {}",
                    report.records, report.updates, report.lag
                );
                bootstrapped = true;
                break;
            }
            Err(e) => {
                last_err = e;
                if attempt < policy.max_attempts {
                    client_backoff(&mut rng, attempt);
                }
            }
        }
    }
    if !bootstrapped {
        eprintln!(
            "# bootstrap deferred ({last_err}); serving empty until a sync reaches {primary}"
        );
    }
    serve_tcp(o, driver, addr)
}

/// Parses a [`NetFaultPlan`] file into a ready injector.
fn load_net_fault_plan(path: &str) -> Result<NetFaultInjector, String> {
    let text =
        std::fs::read_to_string(path).map_err(|e| format!("reading net fault plan {path}: {e}"))?;
    let plan = NetFaultPlan::parse(&text).map_err(|e| format!("{path}: {e}"))?;
    Ok(NetFaultInjector::new(plan))
}

/// Seeded jittered exponential backoff for client-side reconnects
/// (2 ms base doubling to a 200 ms cap, ±50% jitter).
fn client_backoff(rng: &mut u64, attempt: u32) {
    let delay = 2_000u64.saturating_mul(1 << attempt.min(8)).min(200_000);
    *rng ^= *rng << 13;
    *rng ^= *rng >> 7;
    *rng ^= *rng << 17;
    let jitter = rng.wrapping_mul(0x2545_F491_4F6C_DD1D) % (delay / 2 + 1);
    std::thread::sleep(Duration::from_micros(delay / 2 + jitter));
}

/// `serve --listen`: hands the bootstrapped driver to the TCP
/// front-end and blocks until a protocol `shutdown` op. The bound
/// address goes to stdout (and `--port-file` when given) so scripts
/// binding port 0 can find the server; the final line is the server's
/// drain summary (`served`, `rejected_admissions`, `leaked_workers`).
///
/// There is no signal handler (that would need a dependency or
/// `unsafe`): SIGTERM simply kills the process, while scripted clean
/// shutdown goes through the protocol op.
fn serve_tcp(o: &Options, driver: ServeDriver, addr: &str) -> Result<(), String> {
    let faults = match &o.net_fault_plan {
        Some(path) => Some(Arc::new(load_net_fault_plan(path)?)),
        None => None,
    };
    if faults.is_some() {
        eprintln!(
            "# network fault plan {} installed beneath the framing layer",
            o.net_fault_plan.as_deref().unwrap_or("")
        );
    }
    let cfg = NetServerConfig {
        capacity: o.capacity,
        shutdown_pool: true,
        replica_of: o.replica_of.clone(),
        faults,
        ..NetServerConfig::default()
    };
    let mut policy = FaultPolicy::default();
    if let Some(ms) = o.deadline_ms {
        policy.deadline = (ms > 0).then(|| std::time::Duration::from_millis(ms));
    }
    let server =
        NetServer::bind(addr, driver, policy, cfg).map_err(|e| format!("binding {addr}: {e}"))?;
    let bound = server
        .local_addr()
        .map_err(|e| format!("reading bound address: {e}"))?;
    println!("# listening on {bound} (capacity {})", o.capacity);
    std::io::stdout().flush().ok();
    if let Some(path) = &o.port_file {
        std::fs::write(path, bound.to_string())
            .map_err(|e| format!("writing port file {path}: {e}"))?;
    }
    let summary = server.serve();
    println!("{summary}");
    Ok(())
}

/// A reconnecting client: wraps [`NetClient`] with bounded seeded
/// reconnect/backoff, a failover target list walked on connection
/// loss (the new target is promoted to writable primary), and
/// request-`id` matching so duplicated or stale response frames are
/// discarded instead of corrupting the request/response pairing.
struct ResilientClient {
    /// `--connect` first, then the `--failover` list in order.
    targets: Vec<String>,
    /// Index of the currently connected target.
    current: usize,
    conn: Option<NetClient>,
    connected_once: bool,
    next_id: u64,
    reconnects: u64,
    failovers: u64,
    /// Same-connection re-sends after a presumed-dropped frame.
    retries: u64,
    rng: u64,
    faults: Option<Arc<NetFaultInjector>>,
}

/// Reconnect rounds (each walks every target) before giving up.
const RECONNECT_ROUNDS: u32 = 8;

/// Bounded per-request read patience. A response not seen within this
/// window is presumed dropped (a lossy network may eat either the
/// request or the response frame) and the request is re-sent on the
/// same connection — the `id` echo makes a duplicated server response
/// harmless, it is simply discarded by the match loop.
const READ_RETRY: Duration = Duration::from_millis(1500);

/// Same-connection re-sends per request before the connection is torn
/// down and rebuilt through the reconnect/failover path.
const READ_RETRIES_PER_CONN: u32 = 4;

/// Reads response frames until one echoes the wanted `id`; other
/// frames (duplicates injected below the framing layer, stale answers
/// from before a reconnect) are discarded.
fn recv_matching(c: &mut NetClient, want: u64) -> std::io::Result<String> {
    loop {
        let frame = c.recv_raw()?;
        if let Ok(v) = Json::parse(&frame) {
            if v.get("id").and_then(Json::as_u64) == Some(want) {
                return Ok(frame);
            }
        }
    }
}

impl ResilientClient {
    fn connect(
        targets: Vec<String>,
        seed: u64,
        faults: Option<Arc<NetFaultInjector>>,
    ) -> Result<ResilientClient, String> {
        let mut c = ResilientClient {
            targets,
            current: 0,
            conn: None,
            connected_once: false,
            next_id: 0,
            reconnects: 0,
            failovers: 0,
            retries: 0,
            rng: seed | 1,
            faults,
        };
        c.ensure_connected()?;
        Ok(c)
    }

    /// The address of the currently (or last) connected target.
    fn target(&self) -> &str {
        &self.targets[self.current]
    }

    /// (Re)establishes a connection, walking the target list from the
    /// current position. Failing over to a *different* target promotes
    /// it — the old primary is presumed dead, so the survivor must
    /// accept writes. All-targets-down backs off and retries, bounded
    /// by [`RECONNECT_ROUNDS`].
    fn ensure_connected(&mut self) -> Result<(), String> {
        if self.conn.is_some() {
            return Ok(());
        }
        let mut last = String::from("no reachable target");
        for round in 0..RECONNECT_ROUNDS {
            for k in 0..self.targets.len() {
                let idx = (self.current + k) % self.targets.len();
                let mut conn = match NetClient::connect(&self.targets[idx]) {
                    Ok(c) => c,
                    Err(e) => {
                        last = format!("connecting {}: {e}", self.targets[idx]);
                        continue;
                    }
                };
                let _ = conn.set_io_timeouts(Some(READ_RETRY), Some(Duration::from_secs(20)));
                if let Some(f) = &self.faults {
                    conn = conn.with_faults(f.clone());
                }
                // Failing over = landing anywhere but the current
                // target, or landing past the designated primary
                // (index 0) on the very first connect — the primary
                // may already be dead when the client starts.
                let failing_over = if self.connected_once {
                    idx != self.current
                } else {
                    idx != 0
                };
                if self.connected_once {
                    self.reconnects += 1;
                }
                if failing_over {
                    // Promote before reporting the connection usable:
                    // a failover target that cannot take writes is a
                    // dead target.
                    self.next_id += 1;
                    let id = self.next_id;
                    let body = format!("{{\"op\":\"promote\",\"id\":{id}}}");
                    let resp = conn.send(&body).and_then(|()| recv_matching(&mut conn, id));
                    match resp.map(|f| Json::parse(&f)) {
                        Ok(Ok(v)) if v.get("ok").and_then(Json::as_bool) == Some(true) => {
                            eprintln!(
                                "# failed over to {} (promoted, repl_epoch {})",
                                self.targets[idx],
                                v.get("repl_epoch")
                                    .and_then(Json::as_u64)
                                    .unwrap_or_default()
                            );
                        }
                        other => {
                            last = format!("promoting {}: {other:?}", self.targets[idx]);
                            continue;
                        }
                    }
                    self.failovers += 1;
                }
                self.current = idx;
                self.conn = Some(conn);
                self.connected_once = true;
                return Ok(());
            }
            client_backoff(&mut self.rng, round + 1);
        }
        Err(format!(
            "all targets unreachable after {RECONNECT_ROUNDS} rounds: {last}"
        ))
    }

    /// Sends one request (tagged with a fresh `id`) and returns the raw
    /// matching response frame, reconnecting (and failing over) on
    /// connection errors.
    fn request_raw(&mut self, body: &str) -> Result<String, String> {
        debug_assert!(body.ends_with('}'));
        self.next_id += 1;
        let id = self.next_id;
        let tagged = format!("{},\"id\":{}}}", &body[..body.len() - 1], id);
        let mut attempt = 0u32;
        let mut resends = 0u32;
        loop {
            self.ensure_connected()?;
            let conn = self.conn.as_mut().expect("ensure_connected");
            match conn.send(&tagged).and_then(|()| recv_matching(conn, id)) {
                Ok(frame) => return Ok(frame),
                Err(e)
                    if matches!(
                        e.kind(),
                        std::io::ErrorKind::TimedOut | std::io::ErrorKind::WouldBlock
                    ) && resends < READ_RETRIES_PER_CONN =>
                {
                    // Presumed frame drop: the connection is healthy,
                    // only this exchange went missing. Re-send in
                    // place, bounded; the id match discards any late
                    // or duplicated response from an earlier send.
                    resends += 1;
                    self.retries += 1;
                }
                Err(e) => {
                    self.conn = None;
                    resends = 0;
                    attempt += 1;
                    if attempt >= RECONNECT_ROUNDS {
                        return Err(format!("request failed after {attempt} attempts: {e}"));
                    }
                    client_backoff(&mut self.rng, attempt);
                }
            }
        }
    }

    /// [`request_raw`](ResilientClient::request_raw), parsed.
    fn request(&mut self, body: &str) -> Result<Json, String> {
        let frame = self.request_raw(body)?;
        Json::parse(&frame).map_err(|e| format!("bad response frame: {e}"))
    }
}

/// One wire subscription the client replays: parameters plus the
/// mirror rebuilt purely from polled deltas.
struct WireSub {
    id: u64,
    rho: f64,
    q_t: u64,
    region: Rect,
    mirror: Vec<Rect>,
}

/// Parses a `[[x_lo,y_lo,x_hi,y_hi],...]` JSON rect list.
fn parse_rects(v: &Json) -> Result<Vec<Rect>, String> {
    let Json::Arr(items) = v else {
        return Err(format!("expected a rect array, got {v:?}"));
    };
    items
        .iter()
        .map(|r| {
            let Json::Arr(c) = r else {
                return Err(format!("expected a rect, got {r:?}"));
            };
            let c: Vec<f64> = c.iter().filter_map(Json::as_f64).collect();
            if c.len() != 4 {
                return Err("rect needs four coordinates".into());
            }
            Ok(Rect::new(c[0], c[1], c[2], c[3]))
        })
        .collect()
}

/// Drains `poll_deltas` into the mirrors. Errors on a lost buffer or a
/// degraded patch — the smoke flow has no faults, so either means the
/// exactness claim can no longer be checked.
fn poll_and_replay(c: &mut ResilientClient, subs: &mut [WireSub]) -> Result<usize, String> {
    let r = c
        .request("{\"op\":\"poll_deltas\"}")
        .map_err(|e| format!("poll_deltas: {e}"))?;
    if r.get("ok").and_then(Json::as_bool) != Some(true) {
        return Err(format!("poll_deltas failed: {r:?}"));
    }
    if r.get("lost").and_then(Json::as_bool) == Some(true) {
        return Err("delta buffer overflowed; resubscribe required".into());
    }
    let Some(Json::Arr(entries)) = r.get("deltas") else {
        return Err(format!("poll_deltas: bad deltas field: {r:?}"));
    };
    for entry in entries {
        let d = entry
            .get("delta")
            .ok_or_else(|| format!("delta entry without body: {entry:?}"))?;
        if d.get("degraded").and_then(Json::as_bool) == Some(true) {
            return Err("subscription degraded mid-stream; resubscribe required".into());
        }
        let id = d
            .get("sub")
            .and_then(Json::as_u64)
            .ok_or("delta without sub id")?;
        let patch = AnswerDelta {
            id: SubId(id),
            now: 0,
            q_t: 0,
            added: parse_rects(d.get("added").ok_or("delta without added")?)?,
            removed: parse_rects(d.get("removed").ok_or("delta without removed")?)?,
            degraded: false,
            resync: d.get("resync").is_some(),
        };
        if let Some(s) = subs.iter_mut().find(|s| s.id == id) {
            patch.apply_to(&mut s.mirror);
        }
    }
    Ok(entries.len())
}

/// Checks every replayed mirror against a from-scratch `query` (full
/// rect list over the wire) clipped to the subscribed region — exact
/// bit-for-bit rect equality. Returns the number of diverged subs.
fn check_wire_subs(c: &mut ResilientClient, o: &Options, subs: &[WireSub]) -> Result<u64, String> {
    let mut diverged = 0u64;
    for s in subs {
        let body = format!(
            "{{\"op\":\"query\",\"rho\":{},\"l\":{},\"q_t\":{},\"rects\":true}}",
            s.rho, o.l, s.q_t
        );
        let r = c.request(&body).map_err(|e| format!("query: {e}"))?;
        if r.get("ok").and_then(Json::as_bool) != Some(true) {
            return Err(format!("verification query failed: {r:?}"));
        }
        let rects = parse_rects(r.get("rects").ok_or("query without rects")?)?;
        let reference = SubscriptionTable::clip(&RegionSet::from_rects(rects), s.region);
        if reference.rects() != s.mirror.as_slice() {
            diverged += 1;
        }
    }
    Ok(diverged)
}

/// Refreshes a replica front-end (`sync` pulls the primary's WAL delta
/// over the wire) and cross-checks `query` answers between primary and
/// replica at caught-up offsets: the resolved timestamp and the full
/// rect list must be **bit-identical**. Returns comparisons made.
fn sync_and_compare(
    p: &mut ResilientClient,
    r: &mut NetClient,
    rho: f64,
    l: f64,
) -> Result<u64, String> {
    let resp = r
        .request("{\"op\":\"sync\"}")
        .map_err(|e| format!("sync: {e}"))?;
    if resp.get("ok").and_then(Json::as_bool) != Some(true) {
        return Err(format!("replica sync failed: {resp:?}"));
    }
    let mut compared = 0u64;
    for q_t in [0u64, 5, 10] {
        let body =
            format!("{{\"op\":\"query\",\"rho\":{rho},\"l\":{l},\"q_t\":{q_t},\"rects\":true}}");
        let a = p
            .request(&body)
            .map_err(|e| format!("primary query: {e}"))?;
        let b = r
            .request(&body)
            .map_err(|e| format!("replica query: {e}"))?;
        for resp in [&a, &b] {
            if resp.get("ok").and_then(Json::as_bool) != Some(true) {
                return Err(format!("comparison query failed: {resp:?}"));
            }
        }
        if a.get("t") != b.get("t") {
            return Err(format!(
                "replica clock diverged at q_t {q_t}: primary {:?}, replica {:?}",
                a.get("t"),
                b.get("t")
            ));
        }
        if a.get("rects") != b.get("rects") {
            return Err(format!("replica answer diverged from primary at q_t {q_t}"));
        }
        compared += 1;
    }
    Ok(compared)
}

/// `client --connect`: drives a serving front-end through `--ticks`
/// rounds of tick + `--queries` checked queries, asserting every
/// answer is exact against the server-side ground truth. With
/// `--subs N` it also registers N standing subscriptions, replays
/// their delta streams after every tick, and asserts the replayed
/// answers match from-scratch queries bit-for-bit. Finally prints the
/// server metrics and requests a clean shutdown.
fn cmd_client(o: &Options) -> Result<(), String> {
    let addr = o.connect.as_ref().ok_or("client requires --connect")?;
    if !o.failover.is_empty() && o.subs > 0 {
        return Err("--failover does not compose with --subs (a promoted \
                    target has no subscription state to replay)"
            .into());
    }
    let faults = match &o.net_fault_plan {
        Some(path) => Some(Arc::new(load_net_fault_plan(path)?)),
        None => None,
    };
    let mut targets = vec![addr.clone()];
    targets.extend(o.failover.iter().cloned());
    let mut c = ResilientClient::connect(targets, o.seed, faults)?;
    let rho = o.count / (o.l * o.l);
    let ok = |r: &Json| r.get("ok").and_then(Json::as_bool) == Some(true);

    // `--replica ADDR`: a second connection to a log-shipping replica
    // front-end; after every tick the client drives its `sync` op and
    // cross-checks answers against the primary bit-for-bit.
    let mut rc = match &o.replica {
        Some(r) => {
            Some(NetClient::connect(r).map_err(|e| format!("connecting to replica {r}: {e}"))?)
        }
        None => None,
    };
    let mut replica_checks = 0u64;
    if let Some(rc) = rc.as_mut() {
        replica_checks += sync_and_compare(&mut c, rc, rho, o.l)?;
    }

    // Register the standing queries up front; the initial answer
    // arrives as each subscription's first delta.
    let mut subs: Vec<WireSub> = Vec::new();
    for k in 0..o.subs {
        let q_t = [0u64, 5, 10][k % 3];
        // Alternate full-domain and interior regions of interest.
        let (region, region_part) = if k % 2 == 0 {
            (Rect::new(0.0, 0.0, o.extent, o.extent), String::new())
        } else {
            let r = Rect::new(
                0.05 * o.extent,
                0.10 * o.extent,
                0.75 * o.extent,
                0.90 * o.extent,
            );
            (
                r,
                format!(",\"region\":[{},{},{},{}]", r.x_lo, r.y_lo, r.x_hi, r.y_hi),
            )
        };
        let body = format!(
            "{{\"op\":\"subscribe\",\"rho\":{rho},\"l\":{},\"q_t\":{q_t}{region_part}}}",
            o.l
        );
        let r = c.request(&body).map_err(|e| format!("subscribe: {e}"))?;
        if !ok(&r) {
            return Err(format!("subscribe {k} failed: {r:?}"));
        }
        let id = r
            .get("sub")
            .and_then(Json::as_u64)
            .ok_or("subscribe response without sub id")?;
        subs.push(WireSub {
            id,
            rho,
            q_t,
            region,
            mirror: Vec::new(),
        });
    }
    let mut sub_checks = 0u64;
    let mut sub_divergence = 0u64;
    if !subs.is_empty() {
        poll_and_replay(&mut c, &mut subs)?;
        sub_divergence += check_wire_subs(&mut c, o, &subs)?;
        sub_checks += subs.len() as u64;
    }

    let mut checked = 0u64;
    for tick in 0..o.ticks {
        let r = c
            .request("{\"op\":\"tick\"}")
            .map_err(|e| format!("tick: {e}"))?;
        if !ok(&r) {
            return Err(format!("tick {tick} failed: {r:?}"));
        }
        if !subs.is_empty() {
            poll_and_replay(&mut c, &mut subs)?;
            sub_divergence += check_wire_subs(&mut c, o, &subs)?;
            sub_checks += subs.len() as u64;
        }
        if let Some(rc) = rc.as_mut() {
            replica_checks += sync_and_compare(&mut c, rc, rho, o.l)?;
        }
        // `--rebalance`: drive one topology change at each end of the
        // run, right before the tick's checked queries — the split and
        // the merge cutover must both leave the answers exact.
        if o.rebalance && (tick == 0 || tick + 1 == o.ticks) {
            let action = if tick == 0 { "split" } else { "merge" };
            let body = format!("{{\"op\":\"rebalance\",\"action\":\"{action}\"}}");
            let r = c.request(&body).map_err(|e| format!("rebalance: {e}"))?;
            if !ok(&r) {
                return Err(format!("rebalance {action} failed: {r:?}"));
            }
            println!(
                "{{\"rebalance\":\"{action}\",\"leaves\":{},\"part_epoch\":{}}}",
                r.get("leaves").and_then(Json::as_u64).unwrap_or(0),
                r.get("part_epoch").and_then(Json::as_u64).unwrap_or(0),
            );
        }
        // Offsets span the serve horizon's prediction window (W = 10).
        for k in 0..o.queries {
            let q_t = [0u64, 5, 10][k % 3];
            let body = format!(
                "{{\"op\":\"check\",\"rho\":{rho},\"l\":{},\"q_t\":{q_t}}}",
                o.l
            );
            let r = c.request(&body).map_err(|e| format!("check: {e}"))?;
            if !ok(&r) {
                return Err(format!("check failed at tick {tick}: {r:?}"));
            }
            if r.get("exact").and_then(Json::as_bool) != Some(true) {
                return Err(format!("inexact answer at tick {tick}: {r:?}"));
            }
            checked += 1;
        }
    }
    if let Some(first) = subs.first() {
        // Exercise the unsubscribe path before shutdown.
        let r = c
            .request(&format!("{{\"op\":\"unsubscribe\",\"sub\":{}}}", first.id))
            .map_err(|e| format!("unsubscribe: {e}"))?;
        if r.get("removed").and_then(Json::as_bool) != Some(true) {
            return Err(format!("unsubscribe failed: {r:?}"));
        }
    }
    let metrics = c
        .request_raw("{\"op\":\"metrics\"}")
        .map_err(|e| format!("metrics: {e}"))?;
    println!("{metrics}");
    if !subs.is_empty() {
        println!(
            "{{\"subs\":{},\"sub_checks\":{sub_checks},\"subs_exact\":{}}}",
            subs.len(),
            sub_divergence == 0
        );
    }
    if let Some(rc) = rc.as_mut() {
        // Replica metrics (including the lag gauge) before shutdown.
        let m = rc
            .request_raw("{\"op\":\"metrics\"}")
            .map_err(|e| format!("replica metrics: {e}"))?;
        println!("{m}");
        println!("{{\"replica_checks\":{replica_checks},\"replica_exact\":true}}");
        if !o.keep_open {
            let r = rc
                .request("{\"op\":\"shutdown\"}")
                .map_err(|e| format!("replica shutdown: {e}"))?;
            if !ok(&r) {
                return Err(format!("replica shutdown refused: {r:?}"));
            }
        }
    }
    println!(
        "{{\"reconnects\":{},\"failovers\":{},\"retries\":{},\"target\":{:?}}}",
        c.reconnects,
        c.failovers,
        c.retries,
        c.target()
    );
    if !o.keep_open {
        let r = c
            .request("{\"op\":\"shutdown\"}")
            .map_err(|e| format!("shutdown: {e}"))?;
        if !ok(&r) {
            return Err(format!("shutdown refused: {r:?}"));
        }
    }
    if sub_divergence > 0 {
        return Err(format!(
            "{sub_divergence} subscription replay checks diverged from from-scratch queries"
        ));
    }
    if o.keep_open {
        println!("# {checked} checked queries, all exact; servers left open");
    } else {
        println!("# {checked} checked queries, all exact; shutdown requested");
    }
    Ok(())
}

/// Treats a closed downstream pipe (`pdrcli ... | head`) as success.
fn tolerate_broken_pipe(r: std::io::Result<()>) -> Result<(), String> {
    match r {
        Ok(()) => Ok(()),
        Err(e) if e.kind() == std::io::ErrorKind::BrokenPipe => Ok(()),
        Err(e) => Err(format!("writing output: {e}")),
    }
}

fn cmd_hotspots(o: &Options) -> Result<(), String> {
    let pop = load_data(o)?;
    let mut pa = PaEngine::new(
        PaConfig {
            extent: o.extent,
            g: 20,
            degree: 5,
            l: o.l,
            horizon: horizon_for(o.at),
            m_d: 512,
        },
        0,
    );
    for (id, m) in &pop {
        pa.apply(&Update::insert(*id, 0, *m));
    }
    let peaks = pa.top_k_dense(o.top, o.at, 2.0 * o.l);
    println!(
        "# top {} density peaks at t = {} (l = {})",
        peaks.len(),
        o.at,
        o.l
    );
    println!("rank,x,y,density,objects_per_neighborhood");
    for (i, (r, d)) in peaks.iter().enumerate() {
        let c = r.center();
        println!(
            "{},{:.1},{:.1},{:.6},{:.1}",
            i + 1,
            c.x,
            c.y,
            d,
            d * o.l * o.l
        );
    }
    Ok(())
}
