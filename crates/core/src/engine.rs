//! The unified engine plane: one trait every density-query method
//! implements, so ingest and serving are written once.
//!
//! The paper evaluates four parallel stacks — exact FR (Section 5),
//! approximate PA (Section 6), the brute-force oracle, and the
//! prior-work baselines — and before this module every consumer
//! (`pdrcli`, the benches, the experiment binaries) hand-wired each of
//! them separately. [`DensityEngine`] collapses that into a single
//! contract:
//!
//! * **ingest is exclusive** — [`apply_batch`](DensityEngine::apply_batch)
//!   and [`advance_to`](DensityEngine::advance_to) take `&mut self`, so
//!   the type system guarantees no query observes a half-applied batch;
//! * **queries are shared** — [`query`](DensityEngine::query) takes
//!   `&self`, and every implementation is `Sync`, so any number of
//!   threads may query one engine concurrently between batches. The FR
//!   engine keeps its per-timestamp classification cache behind a
//!   `RwLock` keyed by the histogram epoch, so concurrent readers still
//!   compute each `(timestamp, ρ, l)` classification at most once;
//! * **cost is uniform** — every answer is an [`EngineAnswer`] carrying
//!   the region plus CPU time and buffer-pool I/O, convertible to the
//!   paper's total-cost metric via [`EngineAnswer::total_ms`];
//! * **health is uniform** — [`stats`](DensityEngine::stats) exposes
//!   update counts, anomaly counts (missed deletes) and resident
//!   memory for any engine behind the trait.
//!
//! [`EngineSpec`] is the declarative constructor: a serve driver or CLI
//! names the engines it wants and gets `Box<dyn DensityEngine>`s back,
//! never touching concrete types.

use crate::obs::ObsReport;
use crate::sub::{AnswerDelta, QtPolicy, SubError, SubId, Subscription, SubscriptionTable};
use crate::wal::{open_checkpoint, seal_checkpoint, RecoverError};
use crate::{
    baselines, classify_cells, dh_optimistic, dh_pessimistic, ExactOracle, FrConfig, FrEngine,
    PaConfig, PaEngine, PdrQuery, RangeIndex,
};
use pdr_geometry::{GridSpec, Rect, RegionSet};
use pdr_histogram::DensityHistogram;
use pdr_mobject::{
    screen_batch, MotionState, ObjectId, ObjectTable, TimeHorizon, Timestamp, Update,
};
use pdr_storage::{CostModel, FaultPlan, FaultStats, IoStats, StorageError};
use std::collections::HashMap;
use std::time::{Duration, Instant};

/// Coalesce cadence for the default interval-query implementation
/// (mirrors [`INTERVAL_COALESCE_EVERY`](crate::INTERVAL_COALESCE_EVERY)).
const DEFAULT_INTERVAL_COALESCE_EVERY: u32 = 4;

/// One engine's answer to a PDR query, in units every method shares.
#[derive(Clone, Debug)]
pub struct EngineAnswer {
    /// The reported dense region.
    pub regions: RegionSet,
    /// Wall-clock CPU time of the query.
    pub cpu: Duration,
    /// Buffer-pool I/O incurred (zero for memory-resident methods).
    pub io: IoStats,
    /// `true` when the method is exact (FR, oracle); `false` for
    /// approximate or lossy methods (PA, DH, the baselines).
    pub exact: bool,
}

impl EngineAnswer {
    /// Total query cost in milliseconds under `model`:
    /// `CPU + random-I/O charge` (the paper's Figure 10 metric).
    pub fn total_ms(&self, model: &CostModel) -> f64 {
        self.cpu.as_secs_f64() * 1e3 + model.io_ms(&self.io)
    }
}

/// Uniform health/accounting snapshot of an engine.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Protocol updates applied over the engine's lifetime.
    pub updates_applied: u64,
    /// Deletions that did not match any indexed object — each one is a
    /// tolerated but logged anomaly (client retraction of a report the
    /// server never saw, or a bug upstream).
    pub missed_deletes: u64,
    /// Reports rejected by input screening (non-finite motions,
    /// duplicate insertions in one batch, timestamps outside the
    /// horizon) — counted and skipped, never applied.
    pub rejected_updates: u64,
    /// Resident bytes of the engine's summary structures.
    pub memory_bytes: usize,
    /// Live objects the engine currently accounts for.
    pub objects: usize,
    /// Snapshot queries answered over the engine's lifetime. Engines
    /// without per-query accounting (oracle, baselines, DH) report 0.
    pub queries_served: u64,
}

/// A density-query engine: ingest protocol updates exclusively, answer
/// PDR queries shared.
///
/// # Contract
///
/// * [`query`](Self::query) and [`interval_query`](Self::interval_query)
///   take `&self` and must be safe to call from many threads at once
///   (`Sync` is a supertrait); repeated identical queries between two
///   batches return identical answers.
/// * [`apply_batch`](Self::apply_batch) applies updates in order;
///   [`advance_to`](Self::advance_to) moves the engine's time horizon
///   forward and must be called before applying a batch stamped with
///   the new timestamp.
/// * Methods with a fixed neighborhood edge (PA) answer for their
///   configured `l` and ignore the query's; exact methods honor the
///   query's `l` exactly. [`EngineAnswer::exact`] tells consumers
///   which case they got.
pub trait DensityEngine: Send + Sync {
    /// Short stable name for tables and logs (`"fr"`, `"pa"`, …).
    fn name(&self) -> &'static str;

    /// Loads an initial population into an empty engine. The default
    /// turns the population into insertion updates; engines with packed
    /// loaders override it.
    fn bulk_load(&mut self, objects: &[(ObjectId, MotionState)], t_now: Timestamp) {
        let updates: Vec<Update> = objects
            .iter()
            .map(|(id, m)| Update::insert(*id, t_now, *m))
            .collect();
        self.apply_batch(&updates);
    }

    /// Applies one tick's protocol updates, in order.
    fn apply_batch(&mut self, updates: &[Update]);

    /// Advances the engine's time horizon to `t_now`.
    fn advance_to(&mut self, t_now: Timestamp);

    /// Answers a snapshot PDR query.
    fn query(&self, q: &PdrQuery) -> EngineAnswer;

    /// Fallible [`query`](Self::query): surfaces storage faults as a
    /// typed [`StorageError`] instead of panicking. The default wraps
    /// the infallible path, correct for memory-resident engines whose
    /// queries cannot fail.
    fn try_query(&self, q: &PdrQuery) -> Result<EngineAnswer, StorageError> {
        Ok(self.query(q))
    }

    /// Best-effort answer that avoids the failing storage plane — for
    /// FR, the optimistic filter-only answer (a superset of the exact
    /// one). `None` when the engine has no degraded mode; serving then
    /// fails the query instead of degrading it. Degraded answers are
    /// never flagged `exact`.
    fn degraded_query(&self, _q: &PdrQuery) -> Option<EngineAnswer> {
        None
    }

    /// Sealed, checksummed snapshot of the engine's durable state, or
    /// `None` for engines without checkpoint support. Feeding the bytes
    /// to [`restore_from`](Self::restore_from) on a same-configured
    /// engine reproduces bit-identical answers.
    fn checkpoint(&self) -> Option<Vec<u8>> {
        None
    }

    /// Restores the engine in place from [`checkpoint`](Self::checkpoint)
    /// bytes. The default — for engines without checkpoint support —
    /// reports [`RecoverError::Unsupported`].
    fn restore_from(&mut self, _bytes: &[u8]) -> Result<(), RecoverError> {
        Err(RecoverError::Unsupported)
    }

    /// Installs a fault-injection plan beneath the engine's storage
    /// plane. A no-op (the default) for memory-resident engines.
    fn set_fault_plan(&self, _plan: FaultPlan) {}

    /// Counters of injected faults and detected checksum failures on
    /// the engine's storage plane. All zeros for memory-resident
    /// engines.
    fn fault_stats(&self) -> FaultStats {
        FaultStats::default()
    }

    /// The union of snapshot answers over `from..=to` (Definition 5).
    /// The default evaluates each timestamp through
    /// [`query`](Self::query); engines with incremental interval plans
    /// override it.
    fn interval_query(&self, rho: f64, l: f64, from: Timestamp, to: Timestamp) -> RegionSet {
        let mut acc = RegionSet::new();
        let mut since_coalesce = 0u32;
        for t in from..=to {
            let ans = self.query(&PdrQuery::new(rho, l, t));
            for r in ans.regions.rects() {
                acc.push(*r);
            }
            since_coalesce += 1;
            if since_coalesce >= DEFAULT_INTERVAL_COALESCE_EVERY {
                acc.canonicalize();
                since_coalesce = 0;
            }
        }
        acc.canonicalize();
        acc
    }

    /// Uniform health/accounting snapshot.
    fn stats(&self) -> EngineStats;

    /// Instrumentation snapshot: internal counters plus per-stage
    /// latency histograms (see [`crate::obs`]). The default — for
    /// engines without instrumentation — is the empty report.
    fn obs(&self) -> ObsReport {
        ObsReport::default()
    }

    /// Enables or disables instrumentation recording (engines that have
    /// it start enabled). Purely observational either way: answers are
    /// bit-identical with recording on or off. The default is a no-op.
    fn set_obs_enabled(&mut self, _on: bool) {}

    /// Per-shard metrics as a JSON array, or `None` for unsharded
    /// engines. A sharded plane reports one block per shard (tile,
    /// degraded flag, WAL segment size, object count, obs counters);
    /// the serve report surfaces it under a `"shards"` key.
    fn shard_metrics_json(&self) -> Option<String> {
        None
    }

    /// The sharded plane behind this engine, when there is one — the
    /// log-shipping primary surface
    /// ([`wal_since`](crate::shard::ShardedEngine::wal_since) and
    /// friends). `None` (the default) for unsharded engines.
    fn as_sharded(&self) -> Option<&crate::shard::ShardedEngine> {
        None
    }

    /// Mutable counterpart of [`as_sharded`](Self::as_sharded).
    fn as_sharded_mut(&mut self) -> Option<&mut crate::shard::ShardedEngine> {
        None
    }

    /// The log-shipping replica behind this engine, when it is one.
    /// `None` (the default) for every primary engine.
    fn as_replica(&self) -> Option<&crate::replica::Replica> {
        None
    }

    /// Mutable counterpart of [`as_replica`](Self::as_replica).
    fn as_replica_mut(&mut self) -> Option<&mut crate::replica::Replica> {
        None
    }

    /// The engine's standing-subscription registry, or `None` for
    /// engines without subscription support. Every in-tree engine
    /// carries one; only exotic test stubs return `None`.
    fn subscriptions(&self) -> Option<&SubscriptionTable> {
        None
    }

    /// Mutable access to the subscription registry (see
    /// [`subscriptions`](Self::subscriptions)).
    fn subscriptions_mut(&mut self) -> Option<&mut SubscriptionTable> {
        None
    }

    /// Registers a standing PDR query. The first maintenance pass after
    /// registration emits the full current answer as `added`. Engines
    /// with structural limits (the sharded plane's halo width) reject
    /// queries they could not maintain exactly.
    fn register_subscription(
        &mut self,
        rho: f64,
        l: f64,
        region: Rect,
        policy: QtPolicy,
    ) -> Result<SubId, SubError> {
        match self.subscriptions_mut() {
            Some(t) => t.register(rho, l, region, policy),
            None => Err(SubError::Unsupported),
        }
    }

    /// Removes a standing subscription; `false` when the id is unknown.
    fn unregister_subscription(&mut self, id: SubId) -> bool {
        self.subscriptions_mut().is_some_and(|t| t.unregister(id))
    }

    /// Brings every standing subscription's answer up to date with the
    /// engine state at clock `now` and returns the patches. The default
    /// recomputes each standing query from scratch through
    /// [`query`](Self::query) — always exact, never incremental; FR and
    /// DH override it with the dirty-cell-driven incremental path.
    /// Either path commits the same canonical answers, so the emitted
    /// deltas are bit-identical.
    fn maintain_subscriptions(&mut self, now: Timestamp) -> Vec<AnswerDelta> {
        let specs: Vec<Subscription> = match self.subscriptions() {
            Some(t) if !t.is_empty() => t.subs().copied().collect(),
            _ => return Vec::new(),
        };
        let mut deltas = Vec::new();
        for s in specs {
            let q_t = s.policy.resolve(now);
            let ans = self.query(&PdrQuery::new(s.rho, s.l, q_t));
            let clipped = SubscriptionTable::clip(&ans.regions, s.region);
            let table = self
                .subscriptions_mut()
                .expect("subscription table vanished mid-maintenance");
            if let Some(d) = table.commit(s.id, clipped, now, q_t) {
                deltas.push(d);
            }
        }
        deltas
    }

    /// Applies one tick's updates and maintains every standing
    /// subscription in the same exclusive write, returning the patches.
    /// `now` is the clock tick the batch belongs to (the timestamp
    /// passed to the preceding [`advance_to`](Self::advance_to)).
    fn apply_batch_with_deltas(&mut self, updates: &[Update], now: Timestamp) -> Vec<AnswerDelta> {
        self.apply_batch(updates);
        self.maintain_subscriptions(now)
    }
}

/// Applies a batch with input screening: reports rejected by
/// [`screen_batch`] are skipped, accepted ones applied in order.
/// Returns the number of rejects (`screen_batch` yields indices in
/// ascending order, so one forward cursor suffices).
fn apply_screened(
    updates: &[Update],
    window: Option<(Timestamp, TimeHorizon)>,
    mut apply: impl FnMut(&Update),
) -> u64 {
    let rejected = screen_batch(updates, window);
    let mut next = 0usize;
    for (i, u) in updates.iter().enumerate() {
        if next < rejected.len() && rejected[next].0 == i {
            next += 1;
            continue;
        }
        apply(u);
    }
    rejected.len() as u64
}

impl<I: RangeIndex> DensityEngine for FrEngine<I> {
    fn name(&self) -> &'static str {
        "fr"
    }

    fn bulk_load(&mut self, objects: &[(ObjectId, MotionState)], t_now: Timestamp) {
        FrEngine::bulk_load(self, objects, t_now);
    }

    fn apply_batch(&mut self, updates: &[Update]) {
        let window = Some((self.histogram().t_base(), self.config().horizon));
        let rejects = apply_screened(updates, window, |u| self.apply(u));
        self.note_rejected(rejects);
    }

    fn advance_to(&mut self, t_now: Timestamp) {
        FrEngine::advance_to(self, t_now);
    }

    fn query(&self, q: &PdrQuery) -> EngineAnswer {
        let a = FrEngine::query(self, q);
        EngineAnswer {
            regions: a.regions,
            cpu: a.cpu,
            io: a.io,
            exact: true,
        }
    }

    fn try_query(&self, q: &PdrQuery) -> Result<EngineAnswer, StorageError> {
        let a = FrEngine::try_query(self, q)?;
        Ok(EngineAnswer {
            regions: a.regions,
            cpu: a.cpu,
            io: a.io,
            exact: true,
        })
    }

    fn degraded_query(&self, q: &PdrQuery) -> Option<EngineAnswer> {
        let a = FrEngine::degraded_query(self, q);
        Some(EngineAnswer {
            regions: a.regions,
            cpu: a.cpu,
            io: a.io,
            exact: false,
        })
    }

    fn checkpoint(&self) -> Option<Vec<u8>> {
        Some(self.checkpoint_bytes())
    }

    fn restore_from(&mut self, bytes: &[u8]) -> Result<(), RecoverError> {
        self.restore_from_bytes(bytes)
    }

    fn set_fault_plan(&self, plan: FaultPlan) {
        FrEngine::set_fault_plan(self, plan);
    }

    fn fault_stats(&self) -> FaultStats {
        FrEngine::fault_stats(self)
    }

    fn interval_query(&self, rho: f64, l: f64, from: Timestamp, to: Timestamp) -> RegionSet {
        FrEngine::interval_query(self, rho, l, from, to)
    }

    fn stats(&self) -> EngineStats {
        EngineStats {
            updates_applied: self.updates_applied(),
            missed_deletes: self.missed_deletes(),
            rejected_updates: self.rejected_updates(),
            memory_bytes: self.histogram().memory_bytes(),
            objects: self.len(),
            queries_served: self.queries_served(),
        }
    }

    fn obs(&self) -> ObsReport {
        self.obs_report()
    }

    fn set_obs_enabled(&mut self, on: bool) {
        FrEngine::set_obs_enabled(self, on);
    }

    fn subscriptions(&self) -> Option<&SubscriptionTable> {
        Some(self.subs())
    }

    fn subscriptions_mut(&mut self) -> Option<&mut SubscriptionTable> {
        Some(self.subs_mut())
    }

    fn maintain_subscriptions(&mut self, now: Timestamp) -> Vec<AnswerDelta> {
        FrEngine::maintain_subs(self, now)
    }
}

impl DensityEngine for PaEngine {
    fn name(&self) -> &'static str {
        "pa"
    }

    fn apply_batch(&mut self, updates: &[Update]) {
        let window = Some((self.t_base(), self.config().horizon));
        let rejects = apply_screened(updates, window, |u| self.apply(u));
        self.note_rejected(rejects);
    }

    fn advance_to(&mut self, t_now: Timestamp) {
        PaEngine::advance_to(self, t_now);
    }

    /// Answers for the engine's *configured* `l` (the PA surface is
    /// maintained for one neighborhood edge); the query's `l` is
    /// ignored, and `exact` is `false` accordingly.
    fn query(&self, q: &PdrQuery) -> EngineAnswer {
        let a = PaEngine::query(self, q.rho, q.q_t);
        EngineAnswer {
            regions: a.regions,
            cpu: a.cpu,
            io: IoStats::default(),
            exact: false,
        }
    }

    fn interval_query(&self, rho: f64, _l: f64, from: Timestamp, to: Timestamp) -> RegionSet {
        PaEngine::interval_query(self, rho, from, to)
    }

    fn checkpoint(&self) -> Option<Vec<u8>> {
        Some(seal_checkpoint(&self.serialize()))
    }

    fn restore_from(&mut self, bytes: &[u8]) -> Result<(), RecoverError> {
        let payload = open_checkpoint(bytes)?;
        let mut restored = PaEngine::deserialize(payload)?;
        if restored.config() != self.config() {
            return Err(RecoverError::Mismatch(
                "PA config disagrees with checkpoint",
            ));
        }
        // Subscriptions are engine-plane state, not checkpoint payload:
        // the live table (and its committed answers) survives the
        // restore so the next maintenance emits exact catch-up deltas.
        restored.subs = std::mem::take(&mut self.subs);
        *self = restored;
        Ok(())
    }

    fn stats(&self) -> EngineStats {
        EngineStats {
            updates_applied: self.updates_applied(),
            missed_deletes: 0,
            rejected_updates: self.rejected_updates(),
            memory_bytes: self.memory_bytes(),
            objects: self.live_objects().max(0) as usize,
            queries_served: self.queries_served(),
        }
    }

    fn obs(&self) -> ObsReport {
        self.obs_report()
    }

    fn set_obs_enabled(&mut self, on: bool) {
        PaEngine::set_obs_enabled(self, on);
    }

    fn subscriptions(&self) -> Option<&SubscriptionTable> {
        Some(&self.subs)
    }

    fn subscriptions_mut(&mut self) -> Option<&mut SubscriptionTable> {
        Some(&mut self.subs)
    }
}

impl DensityEngine for ExactOracle {
    fn name(&self) -> &'static str {
        "oracle"
    }

    fn apply_batch(&mut self, updates: &[Update]) {
        for u in updates {
            self.apply(u);
        }
    }

    fn advance_to(&mut self, _t_now: Timestamp) {
        // Brute force extrapolates on demand; no horizon to advance.
    }

    fn query(&self, q: &PdrQuery) -> EngineAnswer {
        let start = Instant::now();
        let regions = self.dense_regions_at(q);
        EngineAnswer {
            regions,
            cpu: start.elapsed(),
            io: IoStats::default(),
            exact: true,
        }
    }

    fn stats(&self) -> EngineStats {
        EngineStats {
            updates_applied: self.updates_applied(),
            missed_deletes: self.missed_deletes(),
            rejected_updates: 0,
            memory_bytes: (self.positions().len() + self.live_objects())
                * std::mem::size_of::<pdr_geometry::Point>(),
            objects: self.positions().len() + self.live_objects(),
            queries_served: 0,
        }
    }

    fn subscriptions(&self) -> Option<&SubscriptionTable> {
        Some(&self.subs)
    }

    fn subscriptions_mut(&mut self) -> Option<&mut SubscriptionTable> {
        Some(&mut self.subs)
    }
}

/// Shared scaffolding of the table-backed wrapper engines (baselines
/// and oracle-style methods that recompute from live positions).
struct LiveTable {
    table: ObjectTable,
    updates_applied: u64,
    missed_deletes: u64,
    rejected_updates: u64,
}

impl LiveTable {
    fn new() -> Self {
        LiveTable {
            table: ObjectTable::new(),
            updates_applied: 0,
            missed_deletes: 0,
            rejected_updates: 0,
        }
    }

    fn apply_batch(&mut self, updates: &[Update]) {
        // No horizon to screen against (the table extrapolates on
        // demand) — only the structural checks apply.
        let table = &mut self.table;
        let mut applied = 0u64;
        let mut missed = 0u64;
        self.rejected_updates += apply_screened(updates, None, |u| {
            applied += 1;
            if !table.apply(u) {
                missed += 1;
            }
        });
        self.updates_applied += applied;
        self.missed_deletes += missed;
    }

    fn stats(&self) -> EngineStats {
        EngineStats {
            updates_applied: self.updates_applied,
            missed_deletes: self.missed_deletes,
            rejected_updates: self.rejected_updates,
            memory_bytes: self.table.len() * std::mem::size_of::<(ObjectId, MotionState)>(),
            objects: self.table.len(),
            queries_served: 0,
        }
    }
}

/// The dense-cell baseline (Hadjieleftheriou et al.) as an engine:
/// maintains live motions in an [`ObjectTable`] and reports grid cells
/// whose own density clears the threshold. Exists so the paper's
/// answer-loss comparison runs through the same serve plane as FR/PA.
pub struct DenseCellEngine {
    grid: GridSpec,
    live: LiveTable,
    subs: SubscriptionTable,
}

impl DenseCellEngine {
    /// Creates the baseline over a fixed reporting grid.
    pub fn new(grid: GridSpec) -> Self {
        DenseCellEngine {
            grid,
            live: LiveTable::new(),
            subs: SubscriptionTable::new(),
        }
    }
}

impl DensityEngine for DenseCellEngine {
    fn name(&self) -> &'static str {
        "dense-cell"
    }

    fn apply_batch(&mut self, updates: &[Update]) {
        self.live.apply_batch(updates);
    }

    fn advance_to(&mut self, _t_now: Timestamp) {}

    fn query(&self, q: &PdrQuery) -> EngineAnswer {
        let start = Instant::now();
        let positions = self.live.table.positions_at(q.q_t);
        let regions = baselines::dense_cell_query(&positions, self.grid, q.rho);
        EngineAnswer {
            regions,
            cpu: start.elapsed(),
            io: IoStats::default(),
            exact: false,
        }
    }

    fn stats(&self) -> EngineStats {
        self.live.stats()
    }

    fn subscriptions(&self) -> Option<&SubscriptionTable> {
        Some(&self.subs)
    }

    fn subscriptions_mut(&mut self) -> Option<&mut SubscriptionTable> {
        Some(&mut self.subs)
    }
}

/// The effective-density-query baseline (Jensen et al.) as an engine:
/// greedy disjoint `l × l` squares over live positions, reported as the
/// union region.
pub struct EdqEngine {
    bounds: Rect,
    live: LiveTable,
    subs: SubscriptionTable,
}

impl EdqEngine {
    /// Creates the baseline over the monitored region.
    pub fn new(bounds: Rect) -> Self {
        EdqEngine {
            bounds,
            live: LiveTable::new(),
            subs: SubscriptionTable::new(),
        }
    }
}

impl DensityEngine for EdqEngine {
    fn name(&self) -> &'static str {
        "edq"
    }

    fn apply_batch(&mut self, updates: &[Update]) {
        self.live.apply_batch(updates);
    }

    fn advance_to(&mut self, _t_now: Timestamp) {}

    fn query(&self, q: &PdrQuery) -> EngineAnswer {
        let start = Instant::now();
        let positions = self.live.table.positions_at(q.q_t);
        let squares = baselines::effective_density_query(&positions, &self.bounds, q);
        EngineAnswer {
            regions: baselines::edq_region(&squares, q.l),
            cpu: start.elapsed(),
            io: IoStats::default(),
            exact: false,
        }
    }

    fn stats(&self) -> EngineStats {
        self.live.stats()
    }

    fn subscriptions(&self) -> Option<&SubscriptionTable> {
        Some(&self.subs)
    }

    fn subscriptions_mut(&mut self) -> Option<&mut SubscriptionTable> {
        Some(&mut self.subs)
    }
}

/// Forcing strategy of a stand-alone density-histogram engine.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DhMode {
    /// Candidates count as dense: no false negatives (Section 7.2).
    Optimistic,
    /// Candidates are dropped: no false positives.
    Pessimistic,
}

/// The filter step used *as the whole method* (the "DH" rows of
/// Figure 8), behind the engine plane so the accuracy sweeps compare it
/// through the same driver as PA.
pub struct DhEngine {
    histogram: DensityHistogram,
    mode: DhMode,
    updates_applied: u64,
    rejected_updates: u64,
    live: i64,
    subs: SubscriptionTable,
    /// Incremental-maintenance cache: one classified answer per
    /// distinct `(ρ, l, q_t)` group of standing queries, tagged with the
    /// histogram epoch it was computed at. An unchanged epoch means no
    /// update touched the histogram, so the cached answer is reused
    /// without reclassifying.
    sub_cache: HashMap<(u64, u64, Timestamp), (u64, RegionSet)>,
}

impl DhEngine {
    /// Creates a stand-alone DH engine. Reuses [`FrConfig`] for the
    /// grid/horizon shape; the index-related fields are ignored.
    pub fn new(cfg: FrConfig, mode: DhMode, t_start: Timestamp) -> Self {
        DhEngine {
            histogram: DensityHistogram::new(cfg.extent, cfg.m, cfg.horizon, t_start),
            mode,
            updates_applied: 0,
            rejected_updates: 0,
            live: 0,
            subs: SubscriptionTable::new(),
            sub_cache: HashMap::new(),
        }
    }

    /// One group's full-domain answer, through the epoch-tagged cache.
    fn sub_group_answer(&mut self, rho: f64, l: f64, q_t: Timestamp) -> RegionSet {
        let key = (rho.to_bits(), l.to_bits(), q_t);
        let epoch = self.histogram.epoch();
        if let Some((e, cached)) = self.sub_cache.get(&key) {
            if *e == epoch {
                return cached.clone();
            }
        }
        let sums = self.histogram.prefix_sums_at(q_t);
        let cls = classify_cells(self.histogram.grid(), &sums, &PdrQuery::new(rho, l, q_t));
        let regions = match self.mode {
            DhMode::Optimistic => dh_optimistic(&cls),
            DhMode::Pessimistic => dh_pessimistic(&cls),
        };
        self.sub_cache.insert(key, (epoch, regions.clone()));
        regions
    }

    /// The underlying histogram (for memory sweeps).
    pub fn histogram(&self) -> &DensityHistogram {
        &self.histogram
    }
}

impl DensityEngine for DhEngine {
    fn name(&self) -> &'static str {
        match self.mode {
            DhMode::Optimistic => "dh-opt",
            DhMode::Pessimistic => "dh-pess",
        }
    }

    fn apply_batch(&mut self, updates: &[Update]) {
        let window = Some((self.histogram.t_base(), self.histogram.horizon()));
        let histogram = &mut self.histogram;
        let mut applied = 0u64;
        let mut live = 0i64;
        self.rejected_updates += apply_screened(updates, window, |u| {
            applied += 1;
            live += u.sign();
            histogram.apply(u);
        });
        self.updates_applied += applied;
        self.live += live;
    }

    fn advance_to(&mut self, t_now: Timestamp) {
        self.histogram.advance_to(t_now);
    }

    fn query(&self, q: &PdrQuery) -> EngineAnswer {
        let start = Instant::now();
        let sums = self.histogram.prefix_sums_at(q.q_t);
        let cls = classify_cells(self.histogram.grid(), &sums, q);
        let regions = match self.mode {
            DhMode::Optimistic => dh_optimistic(&cls),
            DhMode::Pessimistic => dh_pessimistic(&cls),
        };
        EngineAnswer {
            regions,
            cpu: start.elapsed(),
            io: IoStats::default(),
            exact: false,
        }
    }

    fn stats(&self) -> EngineStats {
        EngineStats {
            updates_applied: self.updates_applied,
            missed_deletes: 0,
            rejected_updates: self.rejected_updates,
            memory_bytes: self.histogram.memory_bytes(),
            objects: self.live.max(0) as usize,
            queries_served: 0,
        }
    }

    fn subscriptions(&self) -> Option<&SubscriptionTable> {
        Some(&self.subs)
    }

    fn subscriptions_mut(&mut self) -> Option<&mut SubscriptionTable> {
        Some(&mut self.subs)
    }

    fn maintain_subscriptions(&mut self, now: Timestamp) -> Vec<AnswerDelta> {
        if self.subs.is_empty() {
            self.sub_cache.clear();
            return Vec::new();
        }
        let specs: Vec<Subscription> = self.subs.subs().copied().collect();
        let mut live_keys = Vec::with_capacity(specs.len());
        let mut deltas = Vec::new();
        for s in specs {
            let q_t = s.policy.resolve(now);
            live_keys.push((s.rho.to_bits(), s.l.to_bits(), q_t));
            let full = self.sub_group_answer(s.rho, s.l, q_t);
            let clipped = SubscriptionTable::clip(&full, s.region);
            if let Some(d) = self.subs.commit(s.id, clipped, now, q_t) {
                deltas.push(d);
            }
        }
        self.sub_cache.retain(|k, _| live_keys.contains(k));
        deltas
    }
}

/// Declarative engine construction: consumers (CLI, benches, serve
/// drivers) name what they want and receive trait objects, never
/// touching concrete engine types.
#[derive(Clone, Debug)]
pub enum EngineSpec {
    /// Exact FR over the TPR-tree (the paper's default).
    Fr(FrConfig),
    /// Exact FR over the velocity-bounded grid index ablation.
    FrGrid {
        /// FR configuration (histogram, horizon, buffer pool).
        fr: FrConfig,
        /// Grid-index buckets per side.
        buckets_per_side: u32,
    },
    /// Approximate PA (Chebyshev surface).
    Pa(PaConfig),
    /// Brute-force oracle over live updates.
    Oracle {
        /// Monitored region.
        bounds: Rect,
    },
    /// Dense-cell prior-work baseline.
    DenseCell {
        /// Reporting grid.
        grid: GridSpec,
    },
    /// Effective-density-query prior-work baseline.
    Edq {
        /// Monitored region.
        bounds: Rect,
    },
    /// Stand-alone density histogram, forced optimistic or pessimistic.
    Dh(FrConfig, DhMode),
    /// Shared-nothing sharded plane over an inner engine: `sx × sy`
    /// spatial shards, each a full-domain inner engine fed the routed
    /// subset of traffic within its halo, merged with the canonical
    /// clipped union (see [`crate::ShardedEngine`]).
    ///
    /// `l_max` is the largest neighborhood edge queries will use; the
    /// halo is sized `l_max/2 + 2·pitch` (pitch = the inner structure's
    /// cell edge), which is exactly what boundary exactness needs.
    /// Queries with `l > l_max` may lose density at cut lines. The EDQ
    /// baseline is *not* decomposable (its greedy packing is global);
    /// sharding it yields a different — still approximate — packing.
    Sharded {
        /// The engine each shard runs (nesting `Sharded` is rejected).
        inner: Box<EngineSpec>,
        /// Shards along X.
        sx: u32,
        /// Shards along Y.
        sy: u32,
        /// Largest query neighborhood edge the halo must cover.
        l_max: f64,
        /// Hotspot-adaptive topology policy. `None` keeps the fixed
        /// `sx`×`sy` grid forever; `Some` lets the plane split hot
        /// leaves and merge cold sibling groups on its own (see
        /// [`SplitPolicy`](crate::SplitPolicy)).
        adaptive: Option<crate::SplitPolicy>,
    },
}

/// Why an [`EngineSpec`] cannot be built or cannot serve a query.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum EngineSpecError {
    /// `Sharded` nested inside `Sharded`.
    NestedSharding,
    /// The sharded plane's `l_max` is non-finite or non-positive.
    InvalidLMax(f64),
    /// A registered/served query's neighborhood edge exceeds the
    /// sharded plane's `l_max`: the halo cannot cover it, so the answer
    /// would silently lose density at cut lines. The plane refuses to
    /// serve it instead.
    QueryEdgeExceedsLMax {
        /// The query's edge length.
        l: f64,
        /// The `l_max` the plane was built for.
        l_max: f64,
    },
    /// A log-shipping replica was requested for a spec that is not
    /// `Sharded` — only a sharded plane has the per-shard WAL segments
    /// replication consumes.
    ReplicaNeedsSharding,
}

impl std::fmt::Display for EngineSpecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineSpecError::NestedSharding => write!(f, "nested sharding is not supported"),
            EngineSpecError::InvalidLMax(l_max) => {
                write!(
                    f,
                    "l_max must be a positive finite edge length, got {l_max}"
                )
            }
            EngineSpecError::QueryEdgeExceedsLMax { l, l_max } => write!(
                f,
                "query edge l = {l} exceeds the sharded plane's l_max = {l_max}: \
                 the halo cannot cover it and density would be lost at cut lines"
            ),
            EngineSpecError::ReplicaNeedsSharding => write!(
                f,
                "a log-shipping replica needs a sharded spec (the per-shard \
                 WAL segments are what replication consumes)"
            ),
        }
    }
}

impl std::error::Error for EngineSpecError {}

impl EngineSpec {
    /// The name the built engine will report.
    pub fn name(&self) -> &'static str {
        match self {
            EngineSpec::Fr(_) => "fr",
            EngineSpec::FrGrid { .. } => "fr",
            EngineSpec::Pa(_) => "pa",
            EngineSpec::Oracle { .. } => "oracle",
            EngineSpec::DenseCell { .. } => "dense-cell",
            EngineSpec::Edq { .. } => "edq",
            EngineSpec::Dh(_, DhMode::Optimistic) => "dh-opt",
            EngineSpec::Dh(_, DhMode::Pessimistic) => "dh-pess",
            EngineSpec::Sharded { inner, .. } => match inner.name() {
                "fr" => "sharded-fr",
                "pa" => "sharded-pa",
                "oracle" => "sharded-oracle",
                "dense-cell" => "sharded-dense-cell",
                "edq" => "sharded-edq",
                "dh-opt" => "sharded-dh-opt",
                "dh-pess" => "sharded-dh-pess",
                _ => "sharded",
            },
        }
    }

    /// The finite domain the engine monitors (the sharded plane cuts
    /// this into tiles).
    fn domain_bounds(&self) -> Rect {
        match self {
            EngineSpec::Fr(cfg) | EngineSpec::FrGrid { fr: cfg, .. } | EngineSpec::Dh(cfg, _) => {
                Rect::new(0.0, 0.0, cfg.extent, cfg.extent)
            }
            EngineSpec::Pa(cfg) => Rect::new(0.0, 0.0, cfg.extent, cfg.extent),
            EngineSpec::Oracle { bounds } | EngineSpec::Edq { bounds } => *bounds,
            EngineSpec::DenseCell { grid } => grid.bounds(),
            EngineSpec::Sharded { inner, .. } => inner.domain_bounds(),
        }
    }

    /// The edge length of the engine's summary-structure cell — the
    /// classification/deposit reach a shard halo must add on top of
    /// `l_max/2` (zero for structure-free engines).
    fn structure_pitch(&self) -> f64 {
        match self {
            EngineSpec::Fr(cfg) | EngineSpec::FrGrid { fr: cfg, .. } | EngineSpec::Dh(cfg, _) => {
                cfg.extent / cfg.m as f64
            }
            EngineSpec::Pa(cfg) => cfg.extent / cfg.g as f64,
            EngineSpec::Oracle { .. } | EngineSpec::Edq { .. } => 0.0,
            EngineSpec::DenseCell { grid } => grid.cell_edge(),
            EngineSpec::Sharded { inner, .. } => inner.structure_pitch(),
        }
    }

    /// The time horizon updates are screened against (engines without
    /// one route by the paper default, a superset — harmless).
    fn routing_horizon(&self) -> pdr_mobject::TimeHorizon {
        match self {
            EngineSpec::Fr(cfg) | EngineSpec::FrGrid { fr: cfg, .. } | EngineSpec::Dh(cfg, _) => {
                cfg.horizon
            }
            EngineSpec::Pa(cfg) => cfg.horizon,
            EngineSpec::Sharded { inner, .. } => inner.routing_horizon(),
            _ => pdr_mobject::TimeHorizon::PAPER_DEFAULT,
        }
    }

    /// The inner spec one shard of an `shards`-way plane runs: the
    /// global buffer pool is divided across shards (shared-nothing).
    /// Refinement parallelism is kept as configured — the shard fan-out
    /// and the inner refinement scopes nest on the same shared
    /// [`Executor`](crate::exec::Executor), so there is no
    /// oversubscription to work around (inner threads used to be pinned
    /// to 1 here when every scope spawned its own threads).
    fn per_shard_spec(&self, shards: usize) -> EngineSpec {
        let mut spec = self.clone();
        match &mut spec {
            EngineSpec::Fr(cfg) | EngineSpec::FrGrid { fr: cfg, .. } | EngineSpec::Dh(cfg, _) => {
                cfg.buffer_pages = (cfg.buffer_pages / shards).max(8);
            }
            _ => {}
        }
        spec
    }

    /// Checks that a query/subscription neighborhood edge is servable
    /// by the engine this spec builds. Unsharded engines serve any
    /// finite edge; a sharded plane rejects `l > l_max` (its halo could
    /// not cover the neighborhood and density would silently be lost at
    /// cut lines — the PR 5 caveat, now a typed error).
    pub fn validate_query_edge(&self, l: f64) -> Result<(), EngineSpecError> {
        if let EngineSpec::Sharded { l_max, .. } = self {
            if l > *l_max {
                return Err(EngineSpecError::QueryEdgeExceedsLMax { l, l_max: *l_max });
            }
        }
        Ok(())
    }

    /// Builds the engine, empty, with its horizon starting at `t_start`.
    /// Panics on an invalid spec; [`try_build`](Self::try_build) is the
    /// fallible form.
    pub fn build(&self, t_start: Timestamp) -> Box<dyn DensityEngine> {
        self.try_build(t_start).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Builds the engine, surfacing invalid specs (nested sharding, bad
    /// `l_max`) as a typed [`EngineSpecError`] instead of panicking.
    pub fn try_build(&self, t_start: Timestamp) -> Result<Box<dyn DensityEngine>, EngineSpecError> {
        Ok(match self {
            EngineSpec::Fr(cfg) => Box::new(FrEngine::new(*cfg, t_start)),
            EngineSpec::FrGrid {
                fr,
                buckets_per_side,
            } => {
                let grid = pdr_gridindex::GridIndex::new(
                    pdr_gridindex::GridIndexConfig {
                        extent: fr.extent,
                        buckets_per_side: *buckets_per_side,
                        buffer_pages: fr.buffer_pages,
                    },
                    t_start,
                );
                Box::new(FrEngine::with_index(*fr, grid, t_start))
            }
            EngineSpec::Pa(cfg) => Box::new(PaEngine::new(*cfg, t_start)),
            EngineSpec::Oracle { bounds } => Box::new(ExactOracle::new(*bounds, Vec::new())),
            EngineSpec::DenseCell { grid } => Box::new(DenseCellEngine::new(*grid)),
            EngineSpec::Edq { bounds } => Box::new(EdqEngine::new(*bounds)),
            EngineSpec::Dh(cfg, mode) => Box::new(DhEngine::new(*cfg, *mode, t_start)),
            EngineSpec::Sharded { .. } => Box::new(self.build_plane(t_start)?),
        })
    }

    /// Builds the concrete sharded plane a `Sharded` spec describes.
    /// Errors on any other variant — callers that need the log-shipping
    /// primary surface ([`ShardedEngine`](crate::ShardedEngine)) or a
    /// replica around it come through here.
    fn build_plane(&self, t_start: Timestamp) -> Result<crate::ShardedEngine, EngineSpecError> {
        let EngineSpec::Sharded {
            inner,
            sx,
            sy,
            l_max,
            adaptive,
        } = self
        else {
            return Err(EngineSpecError::ReplicaNeedsSharding);
        };
        if matches!(**inner, EngineSpec::Sharded { .. }) {
            return Err(EngineSpecError::NestedSharding);
        }
        if !(l_max.is_finite() && *l_max > 0.0) {
            return Err(EngineSpecError::InvalidLMax(*l_max));
        }
        let shards = (*sx as usize) * (*sy as usize);
        let halo = l_max / 2.0 + 2.0 * inner.structure_pitch();
        let map = crate::ShardMap::new(inner.domain_bounds(), *sx, *sy, halo);
        let per_shard = inner.per_shard_spec(shards);
        let threads = match **inner {
            EngineSpec::Fr(cfg) | EngineSpec::FrGrid { fr: cfg, .. } | EngineSpec::Dh(cfg, _) => {
                cfg.threads
            }
            _ => 0,
        };
        let mut plane = crate::ShardedEngine::new(
            self.name(),
            map,
            inner.routing_horizon(),
            t_start,
            threads,
            *l_max,
            move |_| per_shard.build(t_start),
        );
        plane.set_policy(*adaptive);
        Ok(plane)
    }

    /// Builds a read-only log-shipping [`Replica`](crate::Replica)
    /// around the sharded plane this spec describes. The spec (and
    /// therefore the grid, halo and inner engine configuration) must
    /// match the primary's for shipped answers to be bit-identical.
    pub fn try_build_replica(
        &self,
        t_start: Timestamp,
    ) -> Result<Box<dyn DensityEngine>, EngineSpecError> {
        Ok(Box::new(crate::Replica::new(self.build_plane(t_start)?)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdr_geometry::Point;
    use pdr_mobject::TimeHorizon;

    fn small_fr_cfg() -> FrConfig {
        FrConfig {
            extent: 100.0,
            // Cell edge 100/20 = 5 ≤ l/2 for the l = 10..12 queries below.
            m: 20,
            horizon: TimeHorizon::new(4, 4),
            buffer_pages: 32,
            threads: 1,
        }
    }

    fn population(n: usize) -> Vec<(ObjectId, MotionState)> {
        let mut seed = 42u64;
        let mut rng = move || {
            seed = seed
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (seed >> 33) as f64 / (1u64 << 31) as f64
        };
        (0..n)
            .map(|i| {
                (
                    ObjectId(i as u64),
                    MotionState::new(
                        Point::new(rng() * 100.0, rng() * 100.0),
                        Point::new(rng() * 2.0 - 1.0, rng() * 2.0 - 1.0),
                        0,
                    ),
                )
            })
            .collect()
    }

    #[test]
    fn every_spec_builds_and_serves_the_same_script() {
        let bounds = Rect::new(0.0, 0.0, 100.0, 100.0);
        let specs = [
            EngineSpec::Fr(small_fr_cfg()),
            EngineSpec::FrGrid {
                fr: small_fr_cfg(),
                buckets_per_side: 8,
            },
            EngineSpec::Pa(PaConfig {
                extent: 100.0,
                g: 5,
                degree: 4,
                l: 10.0,
                horizon: TimeHorizon::new(4, 4),
                m_d: 100,
            }),
            EngineSpec::Oracle { bounds },
            EngineSpec::DenseCell {
                grid: GridSpec::unit_origin(100.0, 10),
            },
            EngineSpec::Edq { bounds },
            EngineSpec::Dh(small_fr_cfg(), DhMode::Optimistic),
            EngineSpec::Dh(small_fr_cfg(), DhMode::Pessimistic),
        ];
        let pop = population(120);
        let q = PdrQuery::new(4.0 / 100.0, 10.0, 2);
        for spec in &specs {
            let mut eng = spec.build(0);
            assert_eq!(eng.name(), spec.name());
            eng.bulk_load(&pop, 0);
            let stats = eng.stats();
            assert_eq!(stats.updates_applied, 120, "{}", eng.name());
            assert_eq!(stats.missed_deletes, 0, "{}", eng.name());
            let a1 = eng.query(&q);
            let a2 = eng.query(&q);
            assert_eq!(
                a1.regions.rects(),
                a2.regions.rects(),
                "{}: repeated query must be deterministic",
                eng.name()
            );
            // Ingest continues to work after queries.
            eng.advance_to(1);
            eng.apply_batch(&[Update::insert(
                ObjectId(10_000),
                1,
                MotionState::stationary(Point::new(50.0, 50.0), 1),
            )]);
            assert_eq!(eng.stats().updates_applied, 121, "{}", eng.name());
        }
    }

    #[test]
    fn exact_engines_agree_and_flag_exactness() {
        let bounds = Rect::new(0.0, 0.0, 100.0, 100.0);
        let pop = population(200);
        let mut fr = EngineSpec::Fr(small_fr_cfg()).build(0);
        let mut oracle = EngineSpec::Oracle { bounds }.build(0);
        fr.bulk_load(&pop, 0);
        oracle.bulk_load(&pop, 0);
        for q_t in 0..3u64 {
            let q = PdrQuery::new(5.0 / 100.0, 12.0, q_t);
            let a = fr.query(&q);
            let b = oracle.query(&q);
            assert!(a.exact && b.exact);
            assert!(
                a.regions.symmetric_difference_area(&b.regions) < 1e-9,
                "FR and oracle disagree at t={q_t}"
            );
        }
    }

    #[test]
    fn missed_deletes_are_counted_not_fatal() {
        let mut eng = EngineSpec::Fr(small_fr_cfg()).build(0);
        let phantom = Update::delete(
            ObjectId(777),
            0,
            MotionState::stationary(Point::new(5.0, 5.0), 0),
        );
        eng.apply_batch(&[phantom]);
        let stats = eng.stats();
        assert_eq!(stats.updates_applied, 1);
        assert_eq!(stats.missed_deletes, 1);
    }

    #[test]
    fn default_interval_query_unions_snapshots() {
        let bounds = Rect::new(0.0, 0.0, 100.0, 100.0);
        let mut oracle = EngineSpec::Oracle { bounds }.build(0);
        // One stationary cluster: dense at every timestamp.
        let pop: Vec<(ObjectId, MotionState)> = (0..6)
            .map(|i| {
                (
                    ObjectId(i),
                    MotionState::stationary(Point::new(40.0, 40.0), 0),
                )
            })
            .collect();
        oracle.bulk_load(&pop, 0);
        let region = oracle.interval_query(5.0 / 100.0, 10.0, 0, 5);
        assert!(region.contains(Point::new(40.0, 40.0)));
        let snap = oracle.query(&PdrQuery::new(5.0 / 100.0, 10.0, 3));
        // The interval union covers any single snapshot.
        assert!(region.area() >= snap.regions.area() - 1e-9);
    }

    #[test]
    fn spec_errors_are_typed_and_query_edges_validated() {
        let sharded = EngineSpec::Sharded {
            adaptive: None,
            inner: Box::new(EngineSpec::Fr(small_fr_cfg())),
            sx: 2,
            sy: 2,
            l_max: 10.0,
        };
        let nested = EngineSpec::Sharded {
            adaptive: None,
            inner: Box::new(sharded.clone()),
            sx: 2,
            sy: 1,
            l_max: 10.0,
        };
        assert_eq!(
            nested.try_build(0).err(),
            Some(EngineSpecError::NestedSharding)
        );
        for bad_l_max in [f64::NAN, f64::INFINITY, 0.0, -3.0] {
            let bad = EngineSpec::Sharded {
                adaptive: None,
                inner: Box::new(EngineSpec::Fr(small_fr_cfg())),
                sx: 2,
                sy: 2,
                l_max: bad_l_max,
            };
            assert!(
                matches!(
                    bad.try_build(0).err(),
                    Some(EngineSpecError::InvalidLMax(_))
                ),
                "l_max = {bad_l_max} must be refused"
            );
        }
        assert!(sharded.validate_query_edge(10.0).is_ok());
        assert_eq!(
            sharded.validate_query_edge(12.0),
            Err(EngineSpecError::QueryEdgeExceedsLMax {
                l: 12.0,
                l_max: 10.0
            })
        );
        // Unsharded engines serve any edge; there is no halo to outrun.
        assert!(EngineSpec::Fr(small_fr_cfg())
            .validate_query_edge(1e9)
            .is_ok());
    }

    #[test]
    fn sharded_plane_refuses_subscriptions_wider_than_its_halo() {
        use crate::sub::{QtPolicy, SubError};
        let spec = EngineSpec::Sharded {
            adaptive: None,
            inner: Box::new(EngineSpec::Fr(small_fr_cfg())),
            sx: 2,
            sy: 2,
            l_max: 10.0,
        };
        let mut eng = spec.try_build(0).expect("valid spec builds");
        let region = Rect::new(0.0, 0.0, 100.0, 100.0);
        match eng.register_subscription(0.05, 12.0, region, QtPolicy::NowPlus(2)) {
            Err(SubError::EdgeExceedsHalo { l, l_max }) => {
                assert_eq!(l, 12.0);
                assert_eq!(l_max, 10.0);
            }
            other => panic!("expected EdgeExceedsHalo, got {other:?}"),
        }
        let id = eng
            .register_subscription(0.05, 10.0, region, QtPolicy::NowPlus(2))
            .expect("l = l_max registers");
        assert!(eng.subscriptions().expect("sharded table").contains(id));
        // Per-shard metrics expose the routed registration.
        let json = eng.shard_metrics_json().expect("sharded metrics");
        assert!(json.contains("\"subs\":1"), "{json}");
        assert!(eng.unregister_subscription(id));
        assert!(!eng.unregister_subscription(id));
    }

    /// Every engine — whatever its maintenance path (default recompute,
    /// FR/DH incremental, sharded fan-out) — must keep each standing
    /// subscription's answer bit-identical to a from-scratch `query`
    /// clipped to the region, and its deltas must replay to the same
    /// rect list.
    #[test]
    fn subscription_deltas_replay_to_from_scratch_answers_for_every_spec() {
        use crate::sub::QtPolicy;
        let bounds = Rect::new(0.0, 0.0, 100.0, 100.0);
        let specs = [
            EngineSpec::Fr(small_fr_cfg()),
            EngineSpec::Pa(PaConfig {
                extent: 100.0,
                g: 5,
                degree: 4,
                l: 10.0,
                horizon: TimeHorizon::new(4, 4),
                m_d: 100,
            }),
            EngineSpec::Oracle { bounds },
            EngineSpec::DenseCell {
                grid: GridSpec::unit_origin(100.0, 10),
            },
            EngineSpec::Edq { bounds },
            EngineSpec::Dh(small_fr_cfg(), DhMode::Optimistic),
            EngineSpec::Dh(small_fr_cfg(), DhMode::Pessimistic),
            EngineSpec::Sharded {
                adaptive: None,
                inner: Box::new(EngineSpec::Fr(small_fr_cfg())),
                sx: 2,
                sy: 2,
                l_max: 10.0,
            },
        ];
        let pop = population(150);
        for spec in &specs {
            let mut eng = spec.build(0);
            eng.bulk_load(&pop, 0);
            let subs = [
                (
                    0.04,
                    10.0,
                    Rect::new(0.0, 0.0, 100.0, 100.0),
                    QtPolicy::NowPlus(2),
                ),
                (
                    0.05,
                    10.0,
                    Rect::new(10.0, 15.0, 70.0, 90.0),
                    QtPolicy::Fixed(3),
                ),
            ];
            let ids: Vec<_> = subs
                .iter()
                .map(|&(rho, l, region, policy)| {
                    eng.register_subscription(rho, l, region, policy)
                        .expect("registration")
                })
                .collect();
            let mut mirrors: Vec<Vec<Rect>> = vec![Vec::new(); ids.len()];
            let mut seed = 7u64;
            let mut rng = move || {
                seed = seed
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                (seed >> 33) as f64 / (1u64 << 31) as f64
            };
            for now in 0..4u64 {
                if now > 0 {
                    eng.advance_to(now);
                }
                let batch: Vec<Update> = (0..20)
                    .map(|j| {
                        // Fresh ids each tick: the TPR-tree requires moves
                        // to arrive as delete + insert, and inserts alone
                        // are enough to flip classifications.
                        let id = ObjectId(10_000 + now * 100 + j);
                        Update::insert(
                            id,
                            now,
                            MotionState::new(
                                Point::new(rng() * 100.0, rng() * 100.0),
                                Point::new(rng() * 2.0 - 1.0, rng() * 2.0 - 1.0),
                                now,
                            ),
                        )
                    })
                    .collect();
                let deltas = eng.apply_batch_with_deltas(&batch, now);
                for d in &deltas {
                    let k = ids.iter().position(|&i| i == d.id).expect("known sub");
                    assert!(!d.degraded, "{}: no faults were armed", eng.name());
                    d.apply_to(&mut mirrors[k]);
                }
                for (k, &(rho, l, region, policy)) in subs.iter().enumerate() {
                    let q_t = policy.resolve(now);
                    let reference = crate::sub::SubscriptionTable::clip(
                        &eng.query(&PdrQuery::new(rho, l, q_t)).regions,
                        region,
                    );
                    let table = eng.subscriptions().expect("every engine has a table");
                    assert_eq!(
                        table.answer(ids[k]).expect("registered"),
                        reference.rects(),
                        "{}: committed answer diverged at t={now}",
                        eng.name()
                    );
                    assert_eq!(
                        mirrors[k].as_slice(),
                        reference.rects(),
                        "{}: replayed deltas diverged at t={now}",
                        eng.name()
                    );
                }
            }
        }
    }
}
