//! Stand-alone density-histogram answers (the "DH" method of
//! Section 7.2).
//!
//! The paper evaluates what happens if the filter step is used *as the
//! whole method*: its three-way classification must be forced into a
//! yes/no answer for the candidate cells.
//!
//! * **optimistic DH** counts every candidate cell as dense: no false
//!   negatives, possibly huge false positives;
//! * **pessimistic DH** drops all candidates: no false positives,
//!   possibly huge false negatives.
//!
//! Both are shown in Figure 8 to be far less accurate than PA at equal
//! (even much larger) memory, which is the paper's argument that DH
//! must be paired with the refinement sweep.

use crate::{CellClass, Classification};
use pdr_geometry::RegionSet;

/// The optimistic DH answer: accepted ∪ candidate cells.
pub fn dh_optimistic(cls: &Classification) -> RegionSet {
    let grid = cls.grid();
    let mut rs: RegionSet = cls
        .cells_of(CellClass::Accept)
        .chain(cls.cells_of(CellClass::Candidate))
        .map(|c| grid.cell_rect(c))
        .collect();
    rs.coalesce();
    rs
}

/// The pessimistic DH answer: accepted cells only.
pub fn dh_pessimistic(cls: &Classification) -> RegionSet {
    let grid = cls.grid();
    let mut rs: RegionSet = cls
        .cells_of(CellClass::Accept)
        .map(|c| grid.cell_rect(c))
        .collect();
    rs.coalesce();
    rs
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{accuracy, classify_cells, ExactOracle, PdrQuery};
    use pdr_geometry::Point;
    use pdr_histogram::DensityHistogram;
    use pdr_mobject::{MotionState, ObjectId, TimeHorizon, Update};

    fn scene() -> (DensityHistogram, Vec<Point>) {
        let mut h = DensityHistogram::new(100.0, 10, TimeHorizon::new(1, 1), 0);
        let mut pts = Vec::new();
        let mut seed = 5u64;
        let mut rng = move || {
            seed = seed
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (seed >> 33) as f64 / (1u64 << 31) as f64
        };
        for i in 0..150 {
            let p = if i % 2 == 0 {
                Point::new(30.0 + rng() * 25.0, 30.0 + rng() * 25.0)
            } else {
                Point::new(rng() * 100.0, rng() * 100.0)
            };
            pts.push(p);
            h.apply(&Update::insert(
                ObjectId(i as u64),
                0,
                MotionState::stationary(p, 0),
            ));
        }
        (h, pts)
    }

    #[test]
    fn optimistic_has_no_false_negatives_pessimistic_no_false_positives() {
        let (h, pts) = scene();
        let q = PdrQuery::new(0.025, 20.0, 0); // threshold = 10 objects
        let cls = classify_cells(h.grid(), &h.prefix_sums_at(0), &q);
        let oracle = ExactOracle::new(h.grid().bounds(), pts);
        let truth = oracle.dense_regions(&q);
        let opt = dh_optimistic(&cls);
        let pes = dh_pessimistic(&cls);
        let a_opt = accuracy(&truth, &opt);
        let a_pes = accuracy(&truth, &pes);
        assert!(
            a_opt.r_fn < 1e-9,
            "optimistic DH must cover all dense area, r_fn = {}",
            a_opt.r_fn
        );
        assert!(
            a_pes.r_fp < 1e-9,
            "pessimistic DH must report only dense area, r_fp = {}",
            a_pes.r_fp
        );
        // And both are (generally) inaccurate on the other metric.
        assert!(a_opt.r_fp > 0.0);
        assert!(a_pes.r_fn > 0.0);
    }

    #[test]
    fn pessimistic_subset_of_optimistic() {
        let (h, _) = scene();
        let q = PdrQuery::new(0.025, 20.0, 0);
        let cls = classify_cells(h.grid(), &h.prefix_sums_at(0), &q);
        let opt = dh_optimistic(&cls);
        let pes = dh_pessimistic(&cls);
        assert!(pes.difference_area(&opt) < 1e-9);
    }
}
