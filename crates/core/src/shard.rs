//! The shared-nothing sharded engine plane.
//!
//! The PDR machinery is embarrassingly partitionable in space: a point
//! `p` is ρ-dense from objects within `l/2` of `p` (plus one structure
//! cell of classification slack), so a shard that *owns* a sub-rectangle
//! of the domain can answer exactly for every owned point as long as it
//! also sees the **ghost objects** within a halo of its cut lines.
//!
//! * [`ShardMap`] — a regular `Sx × Sy` partition of the domain. Each
//!   shard owns one sub-rectangle (edge shards own out to infinity, so
//!   the owned rectangles tile the whole plane) and ingests everything
//!   whose trajectory passes within `halo` of it.
//! * [`ShardedEngine`] — implements [`DensityEngine`] over a vector of
//!   inner engines, one per shard, each with its own buffer pool, WAL
//!   segment, checkpoint, and fault scope:
//!   - `apply_batch` screens once at the router, then routes each
//!     update by [`Update::routing_bbox`] to its owner shard **and**
//!     every shard whose halo the trajectory crosses (one routing pass
//!     computes the complete target set, so an object crossing a cut is
//!     delivered at most once per shard);
//!   - `query`/`interval_query` fan out across a scoped worker pool,
//!     clip every per-shard answer to the shard's owned rectangle, and
//!     merge through [`RegionSet::union_disjoint_clipped`] — because
//!     the merge canonicalizes, the answer is a **bit-identical**
//!     rectangle list to `canonicalize(unsharded answer)` at any shard
//!     count (boundary-sweep tested for FR and PA);
//!   - crash recovery is *shard-local*: a corrupted shard restores its
//!     own checkpoint and replays its own WAL segment; a shard that
//!     stays broken is stickily degraded and serves its sub-domain with
//!     the inner engine's filter-only answer while every other shard
//!     keeps serving exactly.
//!
//! # Exactness invariant
//!
//! With halo `≥ l/2 + 2 · pitch` (pitch = the inner engine's structure
//! cell edge), any structure cell intersecting the owned rectangle has
//! bit-identical contents on the shard and on an unsharded engine:
//! objects that can contribute to such a cell lie within
//! `l/2 + pitch` of the owned rectangle plus one cell of overhang, all
//! inside the ingest region. FR classification is integer counting and
//! PA tile sums add the identical contribution subsequence in the
//! identical order (unrouted updates touch no relevant tile at all), so
//! the per-shard answer restricted to the owned rectangle equals the
//! unsharded answer restricted to it *as a point set* — and the
//! canonicalizing merge turns point-set equality into rectangle-list
//! equality.

use crate::engine::{DensityEngine, EngineAnswer, EngineStats};
use crate::exec::Executor;
use crate::obs::ObsReport;
use crate::sub::{AnswerDelta, QtPolicy, SubError, SubId, Subscription, SubscriptionTable};
use crate::wal::{
    open_checkpoint, replay, seal_checkpoint, segment_name, RecoverError, SegmentHeader, Wal,
    WalCodec, WalRecord, SEGMENT_HEADER_LEN,
};
use crate::PdrQuery;
use pdr_geometry::{Rect, RegionSet};
use pdr_mobject::{screen_batch, MotionState, ObjectId, TimeHorizon, Timestamp, Update};
use pdr_storage::{crc32, ByteReader, ByteWriter, FaultPlan, FaultStats, IoStats, StorageError};
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, RwLock};
use std::time::Instant;

/// A regular `Sx × Sy` spatial partition of the monitored domain with a
/// halo of ghost coverage around every cut line.
///
/// Interior cuts replicate the grid arithmetic of the engine structures
/// (`lo + k * (extent / s)`), though exactness does not depend on cut
/// alignment — the merge canonicalizes. Edge shards own out to
/// ±infinity so that engine answers slightly overhanging the nominal
/// domain (grid arithmetic may round the last cell past `extent`) are
/// never lost to clipping.
#[derive(Clone, Copy, Debug)]
pub struct ShardMap {
    bounds: Rect,
    sx: u32,
    sy: u32,
    halo: f64,
}

impl ShardMap {
    /// Creates a map of `sx × sy` shards over `bounds` with ghost
    /// coverage `halo` around every cut.
    ///
    /// # Panics
    ///
    /// Panics when a shard axis is zero or the halo is not a finite
    /// non-negative width.
    pub fn new(bounds: Rect, sx: u32, sy: u32, halo: f64) -> Self {
        assert!(sx >= 1 && sy >= 1, "shard grid must be at least 1x1");
        assert!(
            halo.is_finite() && halo >= 0.0,
            "halo must be finite and non-negative, got {halo}"
        );
        ShardMap {
            bounds,
            sx,
            sy,
            halo,
        }
    }

    /// Total number of shards.
    pub fn shards(&self) -> usize {
        (self.sx as usize) * (self.sy as usize)
    }

    /// Shards per side, `(sx, sy)`.
    pub fn grid(&self) -> (u32, u32) {
        (self.sx, self.sy)
    }

    /// The halo width around every cut line.
    pub fn halo(&self) -> f64 {
        self.halo
    }

    /// The nominal (finite) domain the map partitions.
    pub fn bounds(&self) -> Rect {
        self.bounds
    }

    fn cut_x(&self, k: u32) -> f64 {
        self.bounds.x_lo + k as f64 * (self.bounds.width() / self.sx as f64)
    }

    fn cut_y(&self, k: u32) -> f64 {
        self.bounds.y_lo + k as f64 * (self.bounds.height() / self.sy as f64)
    }

    /// The finite tile of shard `i` (row-major: `i = row * sx + col`),
    /// for display and metrics.
    pub fn tile(&self, i: usize) -> Rect {
        let (col, row) = (i as u32 % self.sx, i as u32 / self.sx);
        Rect::new(
            self.cut_x(col),
            self.cut_y(row),
            if col + 1 == self.sx {
                self.bounds.x_hi
            } else {
                self.cut_x(col + 1)
            },
            if row + 1 == self.sy {
                self.bounds.y_hi
            } else {
                self.cut_y(row + 1)
            },
        )
    }

    /// The rectangle shard `i` *owns* — its tile with outer edges
    /// extended to ±infinity, so the owned rectangles of all shards
    /// tile the entire plane. Per-shard answers are clipped to this.
    pub fn owned(&self, i: usize) -> Rect {
        let (col, row) = (i as u32 % self.sx, i as u32 / self.sx);
        Rect::new(
            if col == 0 {
                f64::NEG_INFINITY
            } else {
                self.cut_x(col)
            },
            if row == 0 {
                f64::NEG_INFINITY
            } else {
                self.cut_y(row)
            },
            if col + 1 == self.sx {
                f64::INFINITY
            } else {
                self.cut_x(col + 1)
            },
            if row + 1 == self.sy {
                f64::INFINITY
            } else {
                self.cut_y(row + 1)
            },
        )
    }

    /// The region shard `i` ingests: its owned rectangle inflated by
    /// the halo. An update is routed to shard `i` iff its
    /// [`Update::routing_bbox`] intersects this (closed semantics —
    /// touching the halo edge still routes, a superset of what
    /// exactness needs).
    pub fn ingest_region(&self, i: usize) -> Rect {
        self.owned(i).inflate(self.halo)
    }

    /// Indices of every shard whose ingest region intersects `bbox`.
    pub fn route(&self, bbox: &Rect) -> impl Iterator<Item = usize> + '_ {
        let bbox = *bbox;
        (0..self.shards()).filter(move |&i| self.ingest_region(i).intersects(&bbox))
    }
}

/// Everything one shard owns: its engine, its WAL segment, and its
/// latest checkpoint (with the segment offset it replays from).
struct ShardState {
    engine: Box<dyn DensityEngine>,
    wal: Wal,
    checkpoint: Option<Vec<u8>>,
    checkpoint_offset: usize,
}

/// The plane's shared state — everything the per-shard fan-out tasks
/// touch. Lives behind an `Arc` so the [`Executor`]'s `'static` task
/// closures can share it with the engine; every mutation goes through
/// the per-shard `RwLock`s, so `&mut self` ingest paths and `&self`
/// queries synchronize on the same locks whichever pool thread runs
/// the task.
struct ShardPlane {
    map: ShardMap,
    shards: Vec<RwLock<ShardState>>,
    degraded: Vec<AtomicBool>,
}

impl ShardPlane {
    fn read_shard(&self, i: usize) -> std::sync::RwLockReadGuard<'_, ShardState> {
        self.shards[i].read().unwrap_or_else(|p| p.into_inner())
    }

    fn write_shard(&self, i: usize) -> std::sync::RwLockWriteGuard<'_, ShardState> {
        self.shards[i].write().unwrap_or_else(|p| p.into_inner())
    }

    /// Shard-local crash recovery: restore the shard's checkpoint and
    /// replay its WAL segment tail. The rest of the plane is untouched.
    fn recover_shard(&self, i: usize) -> Result<(), ()> {
        let mut s = self.write_shard(i);
        let ShardState {
            engine,
            wal,
            checkpoint,
            checkpoint_offset,
        } = &mut *s;
        let Some(cp) = checkpoint.as_deref() else {
            return Err(());
        };
        engine.restore_from(cp).map_err(|_| ())?;
        let tail = replay(&wal.bytes()[*checkpoint_offset..]).map_err(|_| ())?;
        for rec in tail.records {
            match rec {
                WalRecord::Advance(t) => engine.advance_to(t),
                WalRecord::Batch(batch) => engine.apply_batch(&batch),
            }
        }
        Ok(())
    }

    /// The degraded answer for shard `i`, or the error that forced it.
    fn degraded_shard_answer(
        &self,
        i: usize,
        q: &PdrQuery,
        err: StorageError,
    ) -> Result<EngineAnswer, StorageError> {
        match self.read_shard(i).engine.degraded_query(q) {
            Some(a) => Ok(a),
            None => Err(err),
        }
    }

    /// One shard's (unclipped) answer: healthy shards answer exactly;
    /// corruption triggers shard-local recovery and one retry; a shard
    /// that stays broken on a non-transient fault is stickily degraded
    /// and serves filter-only from then on. Transient faults propagate
    /// so the caller can retry the whole query under its own policy.
    fn shard_query(&self, i: usize, q: &PdrQuery) -> Result<EngineAnswer, StorageError> {
        if self.degraded[i].load(Ordering::Acquire) {
            let synthetic = StorageError::ReadFailed {
                page: pdr_storage::PageId(0),
                transient: false,
            };
            return self.degraded_shard_answer(i, q, synthetic);
        }
        let err = match self.read_shard(i).engine.try_query(q) {
            Ok(a) => return Ok(a),
            Err(e) => e,
        };
        if err.is_transient() {
            return Err(err);
        }
        if err.is_corruption() && self.recover_shard(i).is_ok() {
            if let Ok(a) = self.read_shard(i).engine.try_query(q) {
                return Ok(a);
            }
        }
        self.degraded[i].store(true, Ordering::Release);
        self.degraded_shard_answer(i, q, err)
    }
}

/// A shared-nothing sharded engine plane, itself a [`DensityEngine`].
///
/// Fault scoping: [`set_fault_plan`](DensityEngine::set_fault_plan)
/// installs the plan beneath **shard 0 only**, so fault injection
/// exercises partial degradation — the faulted shard recovers or
/// degrades while every other shard keeps serving exactly. Use
/// [`set_shard_fault_plan`](ShardedEngine::set_shard_fault_plan) to
/// target a specific shard.
pub struct ShardedEngine {
    name: &'static str,
    horizon: TimeHorizon,
    t_base: Timestamp,
    threads: usize,
    /// The largest neighborhood edge the halo was sized for. Queries
    /// and subscriptions with `l > l_max` are refused — the halo cannot
    /// cover them and density would silently be lost at cut lines.
    l_max: f64,
    plane: Arc<ShardPlane>,
    /// Plane-level registry; each subscription is also registered (same
    /// id) on every owning shard's inner engine.
    subs: SubscriptionTable,
    /// Subscription id → indices of the shards whose owned rectangle
    /// intersects its region.
    sub_owners: HashMap<u64, Vec<usize>>,
    updates_applied: u64,
    rejected_updates: u64,
    queries_served: AtomicU64,
    /// Incremented whenever the segments reset (a restore): byte
    /// offsets are only comparable within one epoch, so log shipping
    /// bootstraps on any epoch change — a reset segment re-filled to
    /// the old length would otherwise be indistinguishable.
    wal_epoch: u64,
    /// The replication epoch this plane writes under. Fresh primaries
    /// start at 1; a replica promotion seals the applied state and
    /// bumps past the epoch it replicated, so any shipment cut by the
    /// deposed primary carries a smaller value and is refused.
    repl_epoch: u64,
    /// Set when this plane has observed a higher replication epoch —
    /// it is a deposed primary. Writes are dropped (and counted in
    /// `fenced_writes`), never applied, so a stale primary can never
    /// silently diverge from the promoted lineage.
    fenced: AtomicBool,
    /// Writes dropped because the plane is fenced.
    fenced_writes: AtomicU64,
}

impl ShardedEngine {
    /// Builds the plane: `build(i)` constructs shard `i`'s inner engine
    /// (each one a full-domain engine that will simply see a routed
    /// subset of the traffic). `l_max` is the largest neighborhood edge
    /// the map's halo was sized for; larger queries are refused.
    ///
    /// # Panics
    ///
    /// Panics when `l_max` is non-finite or non-positive.
    pub fn new(
        name: &'static str,
        map: ShardMap,
        horizon: TimeHorizon,
        t_start: Timestamp,
        threads: usize,
        l_max: f64,
        mut build: impl FnMut(usize) -> Box<dyn DensityEngine>,
    ) -> Self {
        assert!(
            l_max.is_finite() && l_max > 0.0,
            "l_max must be a positive finite edge length, got {l_max}"
        );
        let n = map.shards();
        let shards = (0..n)
            .map(|i| {
                let header = SegmentHeader {
                    shard: i as u32,
                    shards: n as u32,
                };
                // Per-shard segments write the columnar codec2 records;
                // replay auto-detects per record, so pre-upgrade
                // segments and legacy journals keep reading.
                let wal = Wal::new_segment_with(header, WalCodec::V2);
                let checkpoint_offset = wal.offset();
                RwLock::new(ShardState {
                    engine: build(i),
                    wal,
                    checkpoint: None,
                    checkpoint_offset,
                })
            })
            .collect();
        ShardedEngine {
            name,
            horizon,
            t_base: t_start,
            threads,
            l_max,
            plane: Arc::new(ShardPlane {
                map,
                shards,
                degraded: (0..n).map(|_| AtomicBool::new(false)).collect(),
            }),
            subs: SubscriptionTable::new(),
            sub_owners: HashMap::new(),
            updates_applied: 0,
            rejected_updates: 0,
            queries_served: AtomicU64::new(0),
            wal_epoch: 0,
            repl_epoch: 1,
            fenced: AtomicBool::new(false),
            fenced_writes: AtomicU64::new(0),
        }
    }

    /// The replication epoch this plane writes under (see
    /// [`promote_to`](Self::promote_to)).
    pub fn repl_epoch(&self) -> u64 {
        self.repl_epoch
    }

    /// Seals the plane's current state under a fresh checkpoint and
    /// adopts `epoch` as its replication epoch — the replica-promotion
    /// primitive. The caller (a [`Replica`](crate::Replica) being
    /// promoted) picks an epoch strictly greater than the one it
    /// replicated, which fences the deposed primary's lineage.
    pub fn promote_to(&mut self, epoch: u64) {
        self.repl_epoch = epoch;
        self.fenced.store(false, Ordering::SeqCst);
        self.refresh_checkpoints();
    }

    /// Observes a replication epoch seen on the wire: when it is newer
    /// than this plane's, the plane fences itself (a newer primary
    /// exists — this one was deposed). Returns whether the plane is
    /// fenced afterwards. Shared-ref on purpose: the observation
    /// arrives on read paths (`ship_log`) that hold no write lock.
    pub fn fence_if_stale(&self, observed: u64) -> bool {
        if observed > self.repl_epoch {
            self.fenced.store(true, Ordering::SeqCst);
        }
        self.is_fenced()
    }

    /// `true` when the plane has been fenced off by a newer
    /// replication epoch.
    pub fn is_fenced(&self) -> bool {
        self.fenced.load(Ordering::SeqCst)
    }

    /// Writes dropped because the plane was fenced. Zero silent
    /// divergence: every refused mutation is visible here.
    pub fn fenced_writes(&self) -> u64 {
        self.fenced_writes.load(Ordering::SeqCst)
    }

    /// The largest neighborhood edge this plane's halo covers.
    pub fn l_max(&self) -> f64 {
        self.l_max
    }

    fn assert_edge_covered(&self, l: f64) {
        assert!(
            l <= self.l_max,
            "query edge l = {l} exceeds the sharded plane's l_max = {}: \
             the halo cannot cover it and density would be lost at cut lines \
             (use EngineSpec::validate_query_edge to pre-check)",
            self.l_max
        );
    }

    /// The shards whose owned rectangle intersects `region` — the set a
    /// subscription over `region` is registered on. Owned rectangles
    /// tile the plane, so this is never empty.
    fn owners_of(&self, region: &Rect) -> Vec<usize> {
        (0..self.plane.shards.len())
            .filter(|&i| self.plane.map.owned(i).intersects(region))
            .collect()
    }

    /// The spatial partition this plane serves.
    pub fn map(&self) -> &ShardMap {
        &self.plane.map
    }

    /// `true` when shard `i` is stickily degraded.
    pub fn shard_degraded(&self, i: usize) -> bool {
        self.plane.degraded[i].load(Ordering::Acquire)
    }

    /// Installs a fault plan beneath one specific shard's storage.
    pub fn set_shard_fault_plan(&self, shard: usize, plan: FaultPlan) {
        self.plane.read_shard(shard).engine.set_fault_plan(plan);
    }

    /// Re-checkpoints every shard and marks its WAL segment position,
    /// bounding shard-local replay work. Called automatically after
    /// [`bulk_load`](DensityEngine::bulk_load).
    pub fn refresh_checkpoints(&mut self) {
        for i in 0..self.plane.shards.len() {
            let mut s = self.plane.write_shard(i);
            if let Some(cp) = s.engine.checkpoint() {
                s.checkpoint = Some(cp);
                s.checkpoint_offset = s.wal.offset();
            }
        }
    }

    /// Runs `f(i)` for every shard as one task group on the shared
    /// [`Executor`] (`threads == 1` keeps the serial inline loop);
    /// results come back in shard order and a child panic is re-raised
    /// with its original payload (so the serve loop's
    /// fault-caused-panic detection keeps working). The closure
    /// captures the plane through `Arc` clones, so inner FR refinement
    /// scopes opened by a shard task nest on the same pool instead of
    /// spawning — which is what lets the per-shard engines keep their
    /// own refinement parallelism.
    fn fan_out<R, F>(&self, f: F) -> Vec<R>
    where
        R: Send + 'static,
        F: Fn(usize) -> R + Send + Sync + 'static,
    {
        let n = self.plane.shards.len();
        if self.threads == 1 || n <= 1 {
            return (0..n).map(f).collect();
        }
        Executor::global().scope(n, f)
    }

    /// Merges per-shard answers: clip to owned rectangles, canonical
    /// union, accumulate I/O, AND together exactness.
    fn merge(&self, parts: Vec<EngineAnswer>, started: Instant) -> EngineAnswer {
        let mut io = IoStats::default();
        let mut exact = true;
        for a in &parts {
            io += a.io;
            exact &= a.exact;
        }
        let regions = RegionSet::union_disjoint_clipped(
            parts
                .iter()
                .enumerate()
                .map(|(i, a)| (&a.regions, self.plane.map.owned(i))),
        );
        EngineAnswer {
            regions,
            cpu: started.elapsed(),
            io,
            exact,
        }
    }

    fn route_targets(&self, u: &Update) -> impl Iterator<Item = usize> + '_ {
        let bbox = u.routing_bbox(self.horizon.h());
        self.plane.map.route(&bbox)
    }

    /// Composes per-shard checkpoint payloads into one sealed
    /// container: `[count u32]` then per shard `[len u64][crc u32][bytes]`.
    fn compose_checkpoint(parts: &[Vec<u8>]) -> Vec<u8> {
        let mut w = ByteWriter::new();
        w.put_u32(parts.len() as u32);
        for cp in parts {
            w.put_u64(cp.len() as u64);
            w.put_u32(crc32(cp));
            w.put_bytes(cp);
        }
        seal_checkpoint(w.as_slice())
    }

    // -----------------------------------------------------------------
    // Log shipping (primary side)
    // -----------------------------------------------------------------

    /// Current byte offset of every shard's WAL segment, in shard
    /// order. A replica reports these back through
    /// [`ShardedEngine::wal_since`] to receive only the delta.
    pub fn wal_offsets(&self) -> Vec<usize> {
        (0..self.plane.shards.len())
            .map(|i| self.plane.read_shard(i).wal.offset())
            .collect()
    }

    /// The current segment epoch (see [`ShardedEngine::wal_since`]).
    pub fn wal_epoch(&self) -> u64 {
        self.wal_epoch
    }

    /// Cuts a [`LogShipment`] for a replica that has applied each
    /// shard's segment through `from[i]` within segment epoch `epoch`.
    /// Pass an empty slice to bootstrap: the shipment then carries the
    /// plane's last sealed checkpoint (when one exists) plus every
    /// segment's tail from its checkpoint mark. A `(epoch, from)` that
    /// no longer matches this plane — a stale epoch (the primary
    /// restored and its segments reset), wrong shard count, an offset
    /// past the segment end, or one inside the segment header — also
    /// falls back to a bootstrap shipment, so a replica can always
    /// converge by re-ingesting.
    pub fn wal_since(&self, epoch: u64, from: &[usize]) -> LogShipment {
        let n = self.plane.shards.len();
        let incremental = epoch == self.wal_epoch
            && from.len() == n
            && (0..n).all(|i| {
                let s = self.plane.read_shard(i);
                from[i] >= SEGMENT_HEADER_LEN && from[i] <= s.wal.offset()
            });
        if incremental {
            let segments = (0..n)
                .map(|i| {
                    let s = self.plane.read_shard(i);
                    ShippedSegment {
                        shard: i as u32,
                        start: from[i],
                        bytes: s.wal.bytes()[from[i]..].to_vec(),
                    }
                })
                .collect();
            return LogShipment {
                shards: n as u32,
                epoch: self.wal_epoch,
                repl_epoch: self.repl_epoch,
                t_base: self.t_base,
                checkpoint: None,
                segments,
            };
        }
        // Bootstrap: ship the stored per-shard checkpoints (sealed as
        // one container) and each segment's tail from its checkpoint
        // mark. Without a stored checkpoint (nothing bulk-loaded yet)
        // the full segments from just past their headers reproduce the
        // whole history.
        let stored: Option<Vec<Vec<u8>>> = (0..n)
            .map(|i| self.plane.read_shard(i).checkpoint.clone())
            .collect();
        let (checkpoint, starts): (Option<Vec<u8>>, Vec<usize>) = match stored {
            Some(parts) => (
                Some(Self::compose_checkpoint(&parts)),
                (0..n)
                    .map(|i| self.plane.read_shard(i).checkpoint_offset)
                    .collect(),
            ),
            None => (None, vec![SEGMENT_HEADER_LEN; n]),
        };
        let segments = (0..n)
            .map(|i| {
                let s = self.plane.read_shard(i);
                ShippedSegment {
                    shard: i as u32,
                    start: starts[i],
                    bytes: s.wal.bytes()[starts[i]..].to_vec(),
                }
            })
            .collect();
        LogShipment {
            shards: n as u32,
            epoch: self.wal_epoch,
            repl_epoch: self.repl_epoch,
            t_base: self.t_base,
            checkpoint,
            segments,
        }
    }

    // -----------------------------------------------------------------
    // Log shipping (replica side)
    // -----------------------------------------------------------------

    /// Replays one shipped segment tail into shard `shard`: verifies
    /// the frames, appends them to the shard's local segment, and
    /// applies each record to the shard's engine. The shipped bytes
    /// were routed and screened by the primary, so they apply
    /// directly, bypassing the router. Returns a per-tail summary.
    pub fn apply_segment_tail(
        &mut self,
        shard: usize,
        bytes: &[u8],
    ) -> Result<TailSummary, RecoverError> {
        let rep = replay(bytes)?;
        if rep.torn_bytes != 0 {
            return Err(RecoverError::Codec(pdr_storage::CodecError::Corrupt(
                "shipped segment tail is torn",
            )));
        }
        let mut summary = TailSummary::default();
        let mut s = self.plane.write_shard(shard);
        s.wal.append_framed(bytes, rep.records.len() as u64);
        for rec in &rep.records {
            summary.records += 1;
            match rec {
                WalRecord::Advance(t) => {
                    s.engine.advance_to(*t);
                    summary.last_advance = Some(*t);
                }
                WalRecord::Batch(batch) => {
                    summary.updates += batch.len() as u64;
                    s.engine.apply_batch(batch);
                }
            }
        }
        drop(s);
        if let Some(t) = summary.last_advance {
            self.t_base = self.t_base.max(t);
        }
        self.updates_applied += summary.updates;
        Ok(summary)
    }
}

/// What applying one shipped segment tail did.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TailSummary {
    /// Records replayed.
    pub records: u64,
    /// Updates contained in replayed batches.
    pub updates: u64,
    /// The last `advance_to` timestamp in the tail, if any.
    pub last_advance: Option<Timestamp>,
}

/// One shard's WAL delta inside a [`LogShipment`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ShippedSegment {
    /// Which shard the bytes belong to.
    pub shard: u32,
    /// Byte offset in the primary's segment where `bytes` begins.
    pub start: usize,
    /// Whole framed records (never a torn tail).
    pub bytes: Vec<u8>,
}

/// A batch of sealed-checkpoint + WAL-segment deltas cut by a primary
/// [`ShardedEngine`] for a log-shipping replica.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LogShipment {
    /// Shard count of the plane that cut the shipment.
    pub shards: u32,
    /// Segment epoch the offsets are valid within (see
    /// [`ShardedEngine::wal_since`]).
    pub epoch: u64,
    /// Replication epoch of the plane that cut the shipment (see
    /// [`ShardedEngine::promote_to`]). A receiver on a newer epoch
    /// refuses the shipment as fenced.
    pub repl_epoch: u64,
    /// The primary's protocol time when the shipment was cut — the
    /// replica's staleness bound is measured against this.
    pub t_base: Timestamp,
    /// A sealed full-plane checkpoint, present on bootstrap shipments.
    pub checkpoint: Option<Vec<u8>>,
    /// Per-shard segment deltas, in shard order.
    pub segments: Vec<ShippedSegment>,
}

fn finite(m: &MotionState) -> bool {
    m.origin.x.is_finite()
        && m.origin.y.is_finite()
        && m.velocity.x.is_finite()
        && m.velocity.y.is_finite()
}

impl DensityEngine for ShardedEngine {
    fn name(&self) -> &'static str {
        self.name
    }

    fn bulk_load(&mut self, objects: &[(ObjectId, MotionState)], t_now: Timestamp) {
        if self.is_fenced() {
            self.fenced_writes
                .fetch_add(objects.len() as u64, Ordering::SeqCst);
            return;
        }
        let h = self.horizon.h();
        let mut per_shard: Vec<Vec<(ObjectId, MotionState)>> =
            (0..self.plane.shards.len()).map(|_| Vec::new()).collect();
        for &(id, m) in objects {
            if !finite(&m) {
                // Route to shard 0 so the inner screening rejects (and
                // counts) the report exactly once.
                per_shard[0].push((id, m));
                continue;
            }
            let bbox = Rect::from_corners(m.position_at(m.t_ref), m.position_at(m.t_ref + h));
            for i in self.plane.map.route(&bbox) {
                per_shard[i].push((id, m));
            }
        }
        self.updates_applied += objects.len() as u64;
        let plane = Arc::clone(&self.plane);
        let per_shard = Arc::new(per_shard);
        self.fan_out(move |i| {
            plane.write_shard(i).engine.bulk_load(&per_shard[i], t_now);
        });
        self.refresh_checkpoints();
    }

    fn apply_batch(&mut self, updates: &[Update]) {
        if self.is_fenced() {
            self.fenced_writes
                .fetch_add(updates.len() as u64, Ordering::SeqCst);
            return;
        }
        // Screen once at the router (the same window the inner engines
        // enforce) so rejects are counted exactly once, then route the
        // accepted traffic. One pass computes each update's complete
        // target set, so re-routing at a cut crossing never duplicates
        // a delivery within a shard.
        let rejected = screen_batch(updates, Some((self.t_base, self.horizon)));
        self.rejected_updates += rejected.len() as u64;
        let mut per_shard: Vec<Vec<Update>> =
            (0..self.plane.shards.len()).map(|_| Vec::new()).collect();
        let mut next = 0usize;
        for (idx, u) in updates.iter().enumerate() {
            if next < rejected.len() && rejected[next].0 == idx {
                next += 1;
                continue;
            }
            self.updates_applied += 1;
            for i in self.route_targets(u) {
                per_shard[i].push(*u);
            }
        }
        // Per-shard batches apply concurrently (one task per shard):
        // each task takes only its own shard's write lock, so ingest
        // parallelism is shared-nothing like everything else here.
        let plane = Arc::clone(&self.plane);
        let per_shard = Arc::new(per_shard);
        self.fan_out(move |i| {
            if per_shard[i].is_empty() {
                return;
            }
            let mut s = plane.write_shard(i);
            s.wal.append_batch(&per_shard[i]);
            s.engine.apply_batch(&per_shard[i]);
        });
    }

    fn advance_to(&mut self, t_now: Timestamp) {
        if self.is_fenced() {
            self.fenced_writes.fetch_add(1, Ordering::SeqCst);
            return;
        }
        self.t_base = t_now;
        let plane = Arc::clone(&self.plane);
        self.fan_out(move |i| {
            let mut s = plane.write_shard(i);
            s.wal.append_advance(t_now);
            s.engine.advance_to(t_now);
        });
    }

    fn query(&self, q: &PdrQuery) -> EngineAnswer {
        self.try_query(q)
            .expect("sharded query hit a storage fault; use try_query when serving with faults")
    }

    fn try_query(&self, q: &PdrQuery) -> Result<EngineAnswer, StorageError> {
        self.assert_edge_covered(q.l);
        let started = Instant::now();
        let plane = Arc::clone(&self.plane);
        let q_owned = *q;
        let results = self.fan_out(move |i| plane.shard_query(i, &q_owned));
        let mut parts = Vec::with_capacity(results.len());
        for r in results {
            parts.push(r?);
        }
        self.queries_served.fetch_add(1, Ordering::Relaxed);
        Ok(self.merge(parts, started))
    }

    fn degraded_query(&self, q: &PdrQuery) -> Option<EngineAnswer> {
        let started = Instant::now();
        let plane = Arc::clone(&self.plane);
        let q_owned = *q;
        let results = self.fan_out(move |i| plane.read_shard(i).engine.degraded_query(&q_owned));
        let parts: Option<Vec<EngineAnswer>> = results.into_iter().collect();
        let mut merged = self.merge(parts?, started);
        merged.exact = false;
        Some(merged)
    }

    fn checkpoint(&self) -> Option<Vec<u8>> {
        let parts: Option<Vec<Vec<u8>>> = (0..self.plane.shards.len())
            .map(|i| self.plane.read_shard(i).engine.checkpoint())
            .collect();
        Some(Self::compose_checkpoint(&parts?))
    }

    fn restore_from(&mut self, bytes: &[u8]) -> Result<(), RecoverError> {
        let payload = open_checkpoint(bytes)?;
        let mut r = ByteReader::new(payload);
        let n = r.get_u32()? as usize;
        if n != self.plane.shards.len() {
            return Err(RecoverError::Mismatch(
                "checkpoint was taken at a different shard count",
            ));
        }
        let mut pos = payload.len() - r.remaining();
        for i in 0..n {
            let mut r = ByteReader::new(&payload[pos..]);
            let len = r.get_u64()? as usize;
            let crc = r.get_u32()?;
            let header = 12;
            let slice = payload
                .get(pos + header..pos + header + len)
                .ok_or(RecoverError::Codec(pdr_storage::CodecError::UnexpectedEof))?;
            if crc32(slice) != crc {
                return Err(RecoverError::Codec(pdr_storage::CodecError::Corrupt(
                    "per-shard checkpoint checksum mismatch",
                )));
            }
            pos += header + len;
            let mut s = self.plane.write_shard(i);
            s.engine.restore_from(slice)?;
            s.checkpoint = Some(slice.to_vec());
            s.wal = Wal::new_segment_with(
                SegmentHeader {
                    shard: i as u32,
                    shards: n as u32,
                },
                WalCodec::V2,
            );
            s.checkpoint_offset = s.wal.offset();
            self.plane.degraded[i].store(false, Ordering::Release);
        }
        // Segments reset: start a new epoch so shipped byte offsets
        // from the old log can never be misread against the new one.
        self.wal_epoch += 1;
        Ok(())
    }

    fn set_fault_plan(&self, plan: FaultPlan) {
        // Scoped to shard 0: fault injection exercises *partial*
        // degradation — only the faulted shard's sub-domain degrades.
        self.set_shard_fault_plan(0, plan);
    }

    fn fault_stats(&self) -> FaultStats {
        let mut total = FaultStats::default();
        for i in 0..self.plane.shards.len() {
            total += self.plane.read_shard(i).engine.fault_stats();
        }
        total
    }

    fn interval_query(&self, rho: f64, l: f64, from: Timestamp, to: Timestamp) -> RegionSet {
        self.assert_edge_covered(l);
        let plane = Arc::clone(&self.plane);
        let parts = self.fan_out(move |i| {
            if plane.degraded[i].load(Ordering::Acquire) {
                // Filter-only union over the interval for a lost shard.
                let mut acc = RegionSet::new();
                for t in from..=to {
                    if let Some(a) = plane
                        .read_shard(i)
                        .engine
                        .degraded_query(&PdrQuery::new(rho, l, t))
                    {
                        acc.extend_from(&a.regions);
                    }
                }
                acc
            } else {
                plane.read_shard(i).engine.interval_query(rho, l, from, to)
            }
        });
        RegionSet::union_disjoint_clipped(
            parts
                .iter()
                .enumerate()
                .map(|(i, rs)| (rs, self.plane.map.owned(i))),
        )
    }

    fn subscriptions(&self) -> Option<&SubscriptionTable> {
        Some(&self.subs)
    }

    fn subscriptions_mut(&mut self) -> Option<&mut SubscriptionTable> {
        Some(&mut self.subs)
    }

    fn register_subscription(
        &mut self,
        rho: f64,
        l: f64,
        region: Rect,
        policy: QtPolicy,
    ) -> Result<SubId, SubError> {
        // The halo covers edges up to `l_max`; a wider standing query
        // would silently lose density at cut lines, so refuse it with a
        // typed error instead of maintaining a wrong answer.
        if l > self.l_max {
            return Err(SubError::EdgeExceedsHalo {
                l,
                l_max: self.l_max,
            });
        }
        let id = self.subs.register(rho, l, region, policy)?;
        let sub = *self.subs.get(id).expect("just registered");
        let owners = self.owners_of(&region);
        for &i in &owners {
            let mut s = self.plane.write_shard(i);
            match s.engine.subscriptions_mut() {
                Some(table) => table.register_with_id(sub),
                None => {
                    // Roll back: leave no half-registered subscription.
                    drop(s);
                    for &j in &owners {
                        if let Some(t) = self.plane.write_shard(j).engine.subscriptions_mut() {
                            t.unregister(id);
                        }
                    }
                    self.subs.unregister(id);
                    return Err(SubError::Unsupported);
                }
            }
        }
        self.sub_owners.insert(id.0, owners);
        Ok(id)
    }

    fn unregister_subscription(&mut self, id: SubId) -> bool {
        if !self.subs.unregister(id) {
            return false;
        }
        for i in self.sub_owners.remove(&id.0).unwrap_or_default() {
            if let Some(t) = self.plane.write_shard(i).engine.subscriptions_mut() {
                t.unregister(id);
            }
        }
        true
    }

    fn maintain_subscriptions(&mut self, now: Timestamp) -> Vec<AnswerDelta> {
        if self.subs.is_empty() {
            return Vec::new();
        }
        // Fan the inner incremental maintenance across shards — each
        // shard patches its own (full-domain) answers for the subs it
        // owns; the plane-level merge below turns those into one
        // cut-independent canonical answer per subscription.
        let plane = Arc::clone(&self.plane);
        self.fan_out(move |i| {
            plane.write_shard(i).engine.maintain_subscriptions(now);
        });
        let specs: Vec<Subscription> = self.subs.subs().copied().collect();
        let mut deltas = Vec::new();
        for sub in specs {
            let q_t = sub.policy.resolve(now);
            let owners = self.sub_owners.get(&sub.id.0).cloned().unwrap_or_default();
            // Clip each owning shard's maintained answer to its owned
            // rectangle and merge canonically: point-set equality of
            // the per-shard answers (the halo invariant) makes the
            // merged rect list bit-identical to the unsharded one. A
            // degraded owner cannot vouch for its sub-domain, so the
            // subscription is marked degraded rather than patched with
            // rects that may be wrong.
            let mut parts: Vec<(RegionSet, Rect)> = Vec::with_capacity(owners.len());
            let mut degraded = false;
            for &i in &owners {
                if self.plane.degraded[i].load(Ordering::Acquire) {
                    degraded = true;
                    break;
                }
                let s = self.plane.read_shard(i);
                let inner = s.engine.subscriptions();
                match (
                    inner.and_then(|t| t.answer(sub.id)),
                    inner.and_then(|t| t.is_degraded(sub.id)),
                ) {
                    (Some(rects), Some(false)) => parts.push((
                        RegionSet::from_rects(rects.iter().copied()),
                        self.plane.map.owned(i),
                    )),
                    _ => {
                        degraded = true;
                        break;
                    }
                }
            }
            let delta = if degraded {
                self.subs.mark_degraded(sub.id, now, q_t)
            } else {
                let merged =
                    RegionSet::union_disjoint_clipped(parts.iter().map(|(rs, r)| (rs, *r)));
                self.subs.commit(sub.id, merged, now, q_t)
            };
            deltas.extend(delta);
        }
        deltas
    }

    fn stats(&self) -> EngineStats {
        // Router-level counts for protocol totals (each input update
        // counted once, however many shards it was replicated to);
        // shard sums for capacity numbers (`objects` therefore counts
        // halo ghosts once per replica — it measures shard load, not
        // distinct objects).
        let mut memory_bytes = 0usize;
        let mut objects = 0usize;
        let mut missed_deletes = 0u64;
        let mut inner_rejected = 0u64;
        for i in 0..self.plane.shards.len() {
            let st = self.plane.read_shard(i).engine.stats();
            memory_bytes += st.memory_bytes;
            objects += st.objects;
            missed_deletes += st.missed_deletes;
            inner_rejected += st.rejected_updates;
        }
        EngineStats {
            updates_applied: self.updates_applied,
            missed_deletes,
            rejected_updates: self.rejected_updates + inner_rejected,
            memory_bytes,
            objects,
            queries_served: self.queries_served.load(Ordering::Relaxed),
        }
    }

    fn obs(&self) -> ObsReport {
        // Counters sum across shards; per-stage latency detail lives in
        // `shard_metrics_json` (histogram snapshots do not merge).
        let mut counters: Vec<(&'static str, u64)> = Vec::new();
        for i in 0..self.plane.shards.len() {
            for (name, v) in self.plane.read_shard(i).engine.obs().counters {
                match counters.iter_mut().find(|(n, _)| *n == name) {
                    Some((_, total)) => *total += v,
                    None => counters.push((name, v)),
                }
            }
        }
        // WAL append-path allocation accounting, mirroring the
        // `refine_allocs` pattern: records frame directly into the log
        // buffer, so this stays O(log bytes), not O(records).
        let (mut wal_allocs, mut wal_bytes) = (0u64, 0u64);
        for i in 0..self.plane.shards.len() {
            let s = self.plane.read_shard(i);
            wal_allocs += s.wal.allocs();
            wal_bytes += s.wal.offset() as u64;
        }
        counters.push(("wal_allocs", wal_allocs));
        counters.push(("wal_bytes", wal_bytes));
        counters.push(("repl_epoch", self.repl_epoch));
        counters.push(("fenced_writes", self.fenced_writes()));
        ObsReport {
            counters,
            stages: Vec::new(),
        }
    }

    fn set_obs_enabled(&mut self, on: bool) {
        for i in 0..self.plane.shards.len() {
            self.plane.write_shard(i).engine.set_obs_enabled(on);
        }
    }

    fn as_sharded(&self) -> Option<&ShardedEngine> {
        Some(self)
    }

    fn as_sharded_mut(&mut self) -> Option<&mut ShardedEngine> {
        Some(self)
    }

    fn shard_metrics_json(&self) -> Option<String> {
        let blocks: Vec<String> = (0..self.plane.shards.len())
            .map(|i| {
                let s = self.plane.read_shard(i);
                let st = s.engine.stats();
                let tile = self.plane.map.tile(i);
                format!(
                    "{{\"shard\":{i},\"segment\":\"{}\",\"tile\":[{},{},{},{}],\
                     \"degraded\":{},\"wal_records\":{},\"wal_bytes\":{},\
                     \"wal_codec\":\"{}\",\"wal_allocs\":{},\
                     \"objects\":{},\"updates_applied\":{},\"queries_served\":{},\
                     \"subs\":{},\"faults\":{},\"obs\":{}}}",
                    segment_name(i as u32),
                    crate::obs::json_f64(tile.x_lo),
                    crate::obs::json_f64(tile.y_lo),
                    crate::obs::json_f64(tile.x_hi),
                    crate::obs::json_f64(tile.y_hi),
                    self.plane.degraded[i].load(Ordering::Acquire),
                    s.wal.records(),
                    s.wal.bytes().len(),
                    s.wal.codec().label(),
                    s.wal.allocs(),
                    st.objects,
                    st.updates_applied,
                    st.queries_served,
                    s.engine.subscriptions().map_or(0, |t| t.len()),
                    s.engine.fault_stats().injected(),
                    s.engine.obs().to_json(),
                )
            })
            .collect();
        Some(format!("[{}]", blocks.join(",")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdr_geometry::Point;

    fn map_2x2() -> ShardMap {
        ShardMap::new(Rect::new(0.0, 0.0, 100.0, 100.0), 2, 2, 10.0)
    }

    #[test]
    fn owned_rects_tile_the_plane() {
        let map = map_2x2();
        assert_eq!(map.shards(), 4);
        // Every point belongs to exactly one owned rect (half-open).
        for &p in &[
            Point::new(0.0, 0.0),
            Point::new(50.0, 50.0),
            Point::new(49.999, 50.0),
            Point::new(-1e9, 1e9),
            Point::new(120.0, -3.0),
        ] {
            let owners: Vec<usize> = (0..4)
                .filter(|&i| map.owned(i).contains_half_open(p))
                .collect();
            assert_eq!(owners.len(), 1, "point {p:?} owned by {owners:?}");
        }
        // Tiles are finite and cover the nominal bounds.
        let mut area = 0.0;
        for i in 0..4 {
            area += map.tile(i).area();
        }
        assert!((area - 100.0 * 100.0).abs() < 1e-6);
    }

    #[test]
    fn routing_includes_halo_neighbors() {
        let map = map_2x2();
        // A box strictly inside shard 0's tile, far from cuts: one target.
        let inner = Rect::new(10.0, 10.0, 20.0, 20.0);
        assert_eq!(map.route(&inner).collect::<Vec<_>>(), vec![0]);
        // A box within halo distance of the x = 50 cut: shards 0 and 1.
        let near_cut = Rect::new(41.0, 10.0, 45.0, 20.0);
        assert_eq!(map.route(&near_cut).collect::<Vec<_>>(), vec![0, 1]);
        // A box on the cut crossing: all four.
        let center = Rect::new(49.0, 49.0, 51.0, 51.0);
        assert_eq!(map.route(&center).collect::<Vec<_>>(), vec![0, 1, 2, 3]);
        // Outside the nominal bounds still routes (edge shards own the
        // plane out to infinity).
        let outside = Rect::new(150.0, 150.0, 160.0, 160.0);
        assert_eq!(map.route(&outside).collect::<Vec<_>>(), vec![3]);
    }

    #[test]
    fn one_by_one_map_routes_everything_to_shard_zero() {
        let map = ShardMap::new(Rect::new(0.0, 0.0, 100.0, 100.0), 1, 1, 0.0);
        let anywhere = Rect::new(-1e12, -1e12, 1e12, 1e12);
        assert_eq!(map.route(&anywhere).collect::<Vec<_>>(), vec![0]);
        assert_eq!(
            map.route(&Rect::new(3.0, 3.0, 4.0, 4.0))
                .collect::<Vec<_>>(),
            vec![0]
        );
    }
}
