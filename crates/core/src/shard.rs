//! The shared-nothing sharded engine plane.
//!
//! The PDR machinery is embarrassingly partitionable in space: a point
//! `p` is ρ-dense from objects within `l/2` of `p` (plus one structure
//! cell of classification slack), so a shard that *owns* a sub-rectangle
//! of the domain can answer exactly for every owned point as long as it
//! also sees the **ghost objects** within a halo of its cut lines.
//!
//! * [`ShardMap`] — a regular `Sx × Sy` partition of the domain. Each
//!   shard owns one sub-rectangle (edge shards own out to infinity, so
//!   the owned rectangles tile the whole plane) and ingests everything
//!   whose trajectory passes within `halo` of it.
//! * [`ShardedEngine`] — implements [`DensityEngine`] over a vector of
//!   inner engines, one per shard, each with its own buffer pool, WAL
//!   segment, checkpoint, and fault scope:
//!   - `apply_batch` screens once at the router, then routes each
//!     update by [`Update::routing_bbox`] to its owner shard **and**
//!     every shard whose halo the trajectory crosses (one routing pass
//!     computes the complete target set, so an object crossing a cut is
//!     delivered at most once per shard);
//!   - `query`/`interval_query` fan out across a scoped worker pool,
//!     clip every per-shard answer to the shard's owned rectangle, and
//!     merge through [`RegionSet::union_disjoint_clipped`] — because
//!     the merge canonicalizes, the answer is a **bit-identical**
//!     rectangle list to `canonicalize(unsharded answer)` at any shard
//!     count (boundary-sweep tested for FR and PA);
//!   - crash recovery is *shard-local*: a corrupted shard restores its
//!     own checkpoint and replays its own WAL segment; a shard that
//!     stays broken is stickily degraded and serves its sub-domain with
//!     the inner engine's filter-only answer while every other shard
//!     keeps serving exactly.
//!
//! # Exactness invariant
//!
//! With halo `≥ l/2 + 2 · pitch` (pitch = the inner engine's structure
//! cell edge), any structure cell intersecting the owned rectangle has
//! bit-identical contents on the shard and on an unsharded engine:
//! objects that can contribute to such a cell lie within
//! `l/2 + pitch` of the owned rectangle plus one cell of overhang, all
//! inside the ingest region. FR classification is integer counting and
//! PA tile sums add the identical contribution subsequence in the
//! identical order (unrouted updates touch no relevant tile at all), so
//! the per-shard answer restricted to the owned rectangle equals the
//! unsharded answer restricted to it *as a point set* — and the
//! canonicalizing merge turns point-set equality into rectangle-list
//! equality.

use crate::engine::{DensityEngine, EngineAnswer, EngineStats};
use crate::exec::Executor;
use crate::obs::ObsReport;
use crate::sub::{AnswerDelta, QtPolicy, SubError, SubId, Subscription, SubscriptionTable};
use crate::wal::{
    open_checkpoint, replay, seal_checkpoint, segment_name, RecoverError, SegmentHeader, Wal,
    WalCodec, WalRecord, SEGMENT_HEADER_LEN,
};
use crate::PdrQuery;
use pdr_geometry::{Rect, RegionSet};
use pdr_mobject::{screen_batch, MotionState, ObjectId, TimeHorizon, Timestamp, Update};
use pdr_storage::{crc32, ByteReader, ByteWriter, FaultPlan, FaultStats, IoStats, StorageError};
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, RwLock};
use std::time::Instant;

/// Tag at the head of a composed plane checkpoint: distinguishes the
/// adaptive container (partition + router table + per-leaf payloads)
/// from anything else `open_checkpoint` might hand back.
const ADAPTIVE_CHECKPOINT_MAGIC: u32 = 0xADA7_71C5;

/// A regular `Sx × Sy` spatial partition of the monitored domain with a
/// halo of ghost coverage around every cut line.
///
/// Interior cuts replicate the grid arithmetic of the engine structures
/// (`lo + k * (extent / s)`), though exactness does not depend on cut
/// alignment — the merge canonicalizes. Edge shards own out to
/// ±infinity so that engine answers slightly overhanging the nominal
/// domain (grid arithmetic may round the last cell past `extent`) are
/// never lost to clipping.
#[derive(Clone, Copy, Debug)]
pub struct ShardMap {
    bounds: Rect,
    sx: u32,
    sy: u32,
    halo: f64,
}

impl ShardMap {
    /// Creates a map of `sx × sy` shards over `bounds` with ghost
    /// coverage `halo` around every cut.
    ///
    /// # Panics
    ///
    /// Panics when a shard axis is zero or the halo is not a finite
    /// non-negative width.
    pub fn new(bounds: Rect, sx: u32, sy: u32, halo: f64) -> Self {
        assert!(sx >= 1 && sy >= 1, "shard grid must be at least 1x1");
        assert!(
            halo.is_finite() && halo >= 0.0,
            "halo must be finite and non-negative, got {halo}"
        );
        ShardMap {
            bounds,
            sx,
            sy,
            halo,
        }
    }

    /// Total number of shards.
    pub fn shards(&self) -> usize {
        (self.sx as usize) * (self.sy as usize)
    }

    /// Shards per side, `(sx, sy)`.
    pub fn grid(&self) -> (u32, u32) {
        (self.sx, self.sy)
    }

    /// The halo width around every cut line.
    pub fn halo(&self) -> f64 {
        self.halo
    }

    /// The nominal (finite) domain the map partitions.
    pub fn bounds(&self) -> Rect {
        self.bounds
    }

    fn cut_x(&self, k: u32) -> f64 {
        self.bounds.x_lo + k as f64 * (self.bounds.width() / self.sx as f64)
    }

    fn cut_y(&self, k: u32) -> f64 {
        self.bounds.y_lo + k as f64 * (self.bounds.height() / self.sy as f64)
    }

    /// The finite tile of shard `i` (row-major: `i = row * sx + col`),
    /// for display and metrics.
    pub fn tile(&self, i: usize) -> Rect {
        let (col, row) = (i as u32 % self.sx, i as u32 / self.sx);
        Rect::new(
            self.cut_x(col),
            self.cut_y(row),
            if col + 1 == self.sx {
                self.bounds.x_hi
            } else {
                self.cut_x(col + 1)
            },
            if row + 1 == self.sy {
                self.bounds.y_hi
            } else {
                self.cut_y(row + 1)
            },
        )
    }

    /// The rectangle shard `i` *owns* — its tile with outer edges
    /// extended to ±infinity, so the owned rectangles of all shards
    /// tile the entire plane. Per-shard answers are clipped to this.
    pub fn owned(&self, i: usize) -> Rect {
        let (col, row) = (i as u32 % self.sx, i as u32 / self.sx);
        Rect::new(
            if col == 0 {
                f64::NEG_INFINITY
            } else {
                self.cut_x(col)
            },
            if row == 0 {
                f64::NEG_INFINITY
            } else {
                self.cut_y(row)
            },
            if col + 1 == self.sx {
                f64::INFINITY
            } else {
                self.cut_x(col + 1)
            },
            if row + 1 == self.sy {
                f64::INFINITY
            } else {
                self.cut_y(row + 1)
            },
        )
    }

    /// The region shard `i` ingests: its owned rectangle inflated by
    /// the halo. An update is routed to shard `i` iff its
    /// [`Update::routing_bbox`] intersects this (closed semantics —
    /// touching the halo edge still routes, a superset of what
    /// exactness needs).
    pub fn ingest_region(&self, i: usize) -> Rect {
        self.owned(i).inflate(self.halo)
    }

    /// Indices of every shard whose ingest region intersects `bbox`.
    pub fn route(&self, bbox: &Rect) -> impl Iterator<Item = usize> + '_ {
        let bbox = *bbox;
        (0..self.shards()).filter(move |&i| self.ingest_region(i).intersects(&bbox))
    }
}

/// One leaf of an adaptive [`Partition`]: a finite tile with a stable
/// shard id and the ancestry of tiles it was split out of.
#[derive(Clone, Debug, PartialEq)]
pub struct PartLeaf {
    /// Stable shard id — assigned once, never reused. WAL segments and
    /// log shipments are keyed by this, so a shard's identity survives
    /// renumbering when neighbors split or merge.
    pub id: u32,
    /// The finite tile this leaf covers.
    pub tile: Rect,
    /// Ancestor tiles, root grid cell first, immediate parent last
    /// (`depth == path.len()`). Four leaves sharing the same last path
    /// entry are merge siblings; merging pops it.
    pub path: Vec<Rect>,
}

impl PartLeaf {
    /// How many splits below the root grid this leaf sits.
    pub fn depth(&self) -> u32 {
        self.path.len() as u32
    }

    /// The tile of the split this leaf came out of, if any.
    pub fn parent_tile(&self) -> Option<&Rect> {
        self.path.last()
    }
}

/// Bitwise rect identity — the sibling-grouping key (tiles are exact
/// midpoint fractions of their parent, so equality is reliable).
fn rect_bits(r: &Rect) -> (u64, u64, u64, u64) {
    (
        r.x_lo.to_bits(),
        r.y_lo.to_bits(),
        r.x_hi.to_bits(),
        r.y_hi.to_bits(),
    )
}

/// An adaptive spatial partition: a grid of root tiles, each
/// recursively splittable into quadrants and re-mergeable, behind the
/// same routing/halo/owned-rect contract as [`ShardMap`].
///
/// A partition built by [`from_grid`](Partition::from_grid) produces
/// bit-identical `tile`/`owned`/`ingest_region`/`route` results to the
/// `ShardMap` it mirrors, so a never-split adaptive plane behaves
/// exactly like the fixed grid it replaced. `epoch` increments on every
/// topology change; log shipments carry it so replicas re-bootstrap
/// instead of misapplying offsets cut under another topology.
#[derive(Clone, Debug, PartialEq)]
pub struct Partition {
    bounds: Rect,
    halo: f64,
    epoch: u64,
    next_id: u32,
    leaves: Vec<PartLeaf>,
}

impl Partition {
    /// Mirrors a fixed [`ShardMap`]: one root leaf per grid cell, in
    /// the map's row-major order, with stable ids `0..n`.
    pub fn from_grid(map: &ShardMap) -> Self {
        let n = map.shards();
        Partition {
            bounds: map.bounds(),
            halo: map.halo(),
            epoch: 0,
            next_id: n as u32,
            leaves: (0..n)
                .map(|i| PartLeaf {
                    id: i as u32,
                    tile: map.tile(i),
                    path: Vec::new(),
                })
                .collect(),
        }
    }

    /// Total number of leaves (shards).
    pub fn shards(&self) -> usize {
        self.leaves.len()
    }

    /// The halo width around every cut line.
    pub fn halo(&self) -> f64 {
        self.halo
    }

    /// The nominal (finite) domain the partition covers.
    pub fn bounds(&self) -> Rect {
        self.bounds
    }

    /// The topology epoch: bumped by every split and merge.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The leaves, in routing order.
    pub fn leaves(&self) -> &[PartLeaf] {
        &self.leaves
    }

    /// The finite tile of leaf `i`.
    pub fn tile(&self, i: usize) -> Rect {
        self.leaves[i].tile
    }

    /// Index of the leaf with stable id `id`, if it is still a leaf.
    pub fn index_of_id(&self, id: u32) -> Option<usize> {
        self.leaves.iter().position(|l| l.id == id)
    }

    /// The rectangle leaf `i` *owns*: its tile, with every edge that
    /// coincides with the domain boundary extended to ±infinity so the
    /// owned rectangles of all leaves tile the entire plane (engine
    /// answers overhang the nominal domain by up to a structure cell).
    pub fn owned(&self, i: usize) -> Rect {
        let t = self.leaves[i].tile;
        Rect::new(
            if t.x_lo == self.bounds.x_lo {
                f64::NEG_INFINITY
            } else {
                t.x_lo
            },
            if t.y_lo == self.bounds.y_lo {
                f64::NEG_INFINITY
            } else {
                t.y_lo
            },
            if t.x_hi == self.bounds.x_hi {
                f64::INFINITY
            } else {
                t.x_hi
            },
            if t.y_hi == self.bounds.y_hi {
                f64::INFINITY
            } else {
                t.y_hi
            },
        )
    }

    /// The region leaf `i` ingests: its owned rectangle inflated by the
    /// halo (closed intersection semantics, same as [`ShardMap`]).
    pub fn ingest_region(&self, i: usize) -> Rect {
        self.owned(i).inflate(self.halo)
    }

    /// Indices of every leaf whose ingest region intersects `bbox`.
    pub fn route(&self, bbox: &Rect) -> impl Iterator<Item = usize> + '_ {
        let bbox = *bbox;
        (0..self.shards()).filter(move |&i| self.ingest_region(i).intersects(&bbox))
    }

    /// Splits leaf `i` into four quadrant children at the tile's
    /// midpoints (SW, SE, NW, NE — routing order preserved in place)
    /// and returns the children's fresh stable ids.
    pub fn split(&mut self, i: usize) -> [u32; 4] {
        let leaf = self.leaves[i].clone();
        let t = leaf.tile;
        let mx = t.x_lo + t.width() * 0.5;
        let my = t.y_lo + t.height() * 0.5;
        let mut path = leaf.path;
        path.push(t);
        let tiles = [
            Rect::new(t.x_lo, t.y_lo, mx, my),
            Rect::new(mx, t.y_lo, t.x_hi, my),
            Rect::new(t.x_lo, my, mx, t.y_hi),
            Rect::new(mx, my, t.x_hi, t.y_hi),
        ];
        let ids = [
            self.next_id,
            self.next_id + 1,
            self.next_id + 2,
            self.next_id + 3,
        ];
        self.next_id += 4;
        let children = tiles.iter().zip(ids).map(|(&tile, id)| PartLeaf {
            id,
            tile,
            path: path.clone(),
        });
        self.leaves.splice(i..=i, children);
        self.epoch += 1;
        ids
    }

    /// Complete sibling groups: every set of four leaves that share the
    /// same parent tile (and so can merge back into it). Each group's
    /// indices are ascending and contiguous.
    pub fn sibling_groups(&self) -> Vec<[usize; 4]> {
        let mut by_parent: HashMap<(u64, u64, u64, u64), Vec<usize>> = HashMap::new();
        for (i, leaf) in self.leaves.iter().enumerate() {
            if let Some(p) = leaf.parent_tile() {
                by_parent.entry(rect_bits(p)).or_default().push(i);
            }
        }
        let mut groups: Vec<[usize; 4]> = by_parent
            .into_values()
            .filter(|g| g.len() == 4)
            .map(|g| [g[0], g[1], g[2], g[3]])
            .collect();
        groups.sort();
        groups
    }

    /// Merges a complete sibling group (ascending indices, as returned
    /// by [`sibling_groups`](Self::sibling_groups)) back into its
    /// parent tile under a fresh stable id; returns that id.
    ///
    /// # Panics
    ///
    /// Panics when the indices are not four contiguous leaves sharing
    /// one parent tile.
    pub fn merge(&mut self, group: [usize; 4]) -> u32 {
        assert!(
            group.windows(2).all(|w| w[1] == w[0] + 1),
            "merge group must be contiguous, got {group:?}"
        );
        let parent = *self.leaves[group[0]]
            .parent_tile()
            .expect("merge group has no parent tile");
        assert!(
            group
                .iter()
                .all(|&i| self.leaves[i].parent_tile().map(rect_bits) == Some(rect_bits(&parent))),
            "merge group members disagree on the parent tile"
        );
        let mut path = self.leaves[group[0]].path.clone();
        path.pop();
        let id = self.next_id;
        self.next_id += 1;
        let merged = PartLeaf {
            id,
            tile: parent,
            path,
        };
        self.leaves.splice(group[0]..=group[3], [merged]);
        self.epoch += 1;
        id
    }

    /// Serializes the partition (for composed checkpoints and replica
    /// bootstrap shipments).
    pub fn encode(&self, w: &mut ByteWriter) {
        fn put_rect(w: &mut ByteWriter, r: &Rect) {
            w.put_f64(r.x_lo);
            w.put_f64(r.y_lo);
            w.put_f64(r.x_hi);
            w.put_f64(r.y_hi);
        }
        w.put_u32(1); // partition codec version
        put_rect(w, &self.bounds);
        w.put_f64(self.halo);
        w.put_u64(self.epoch);
        w.put_u32(self.next_id);
        w.put_u32(self.leaves.len() as u32);
        for leaf in &self.leaves {
            w.put_u32(leaf.id);
            put_rect(w, &leaf.tile);
            w.put_u32(leaf.path.len() as u32);
            for p in &leaf.path {
                put_rect(w, p);
            }
        }
    }

    /// Inverse of [`encode`](Self::encode).
    pub fn decode(r: &mut ByteReader) -> Result<Partition, RecoverError> {
        fn get_rect(r: &mut ByteReader) -> Result<Rect, RecoverError> {
            let (x_lo, y_lo, x_hi, y_hi) = (r.get_f64()?, r.get_f64()?, r.get_f64()?, r.get_f64()?);
            Ok(Rect::new(x_lo, y_lo, x_hi, y_hi))
        }
        let version = r.get_u32()?;
        if version != 1 {
            return Err(RecoverError::Mismatch("unknown partition codec version"));
        }
        let bounds = get_rect(r)?;
        let halo = r.get_f64()?;
        let epoch = r.get_u64()?;
        let next_id = r.get_u32()?;
        let n = r.get_u32()? as usize;
        let mut leaves = Vec::with_capacity(n);
        for _ in 0..n {
            let id = r.get_u32()?;
            let tile = get_rect(r)?;
            let depth = r.get_u32()? as usize;
            let mut path = Vec::with_capacity(depth);
            for _ in 0..depth {
                path.push(get_rect(r)?);
            }
            leaves.push(PartLeaf { id, tile, path });
        }
        Ok(Partition {
            bounds,
            halo,
            epoch,
            next_id,
            leaves,
        })
    }
}

/// Hysteresis knobs for policy-driven topology changes on an adaptive
/// plane. Thresholds are in *owned* objects (halo ghosts excluded —
/// they would otherwise inflate apparent load on every shard bordering
/// a hotspot): a leaf owning more than `split_threshold` splits; a
/// complete sibling group owning fewer than `merge_threshold` combined
/// merges. `min_interval` ticks must pass between topology changes, and
/// `max_depth`/`max_shards` bound the tree.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SplitPolicy {
    /// Owned objects above which a leaf splits.
    pub split_threshold: u64,
    /// Combined owned objects below which four siblings merge.
    pub merge_threshold: u64,
    /// Minimum ticks between topology changes (hysteresis).
    pub min_interval: u64,
    /// Maximum splits below a root grid cell.
    pub max_depth: u32,
    /// Maximum total leaves.
    pub max_shards: usize,
}

impl Default for SplitPolicy {
    fn default() -> Self {
        SplitPolicy {
            split_threshold: 512,
            merge_threshold: 64,
            min_interval: 4,
            max_depth: 6,
            max_shards: 64,
        }
    }
}

/// Why a requested split/merge/rebalance was refused.
#[derive(Clone, Debug, PartialEq)]
pub enum TopologyError {
    /// The plane is fenced (a newer primary exists) — topology changes
    /// are writes and are refused like any other.
    Fenced,
    /// No leaf (or sibling group) qualifies for the requested action.
    NoCandidate,
    /// Splitting the leaf would exceed `max_depth` or `max_shards`.
    Limits,
    /// The handoff was aborted mid-replay (crash injection) — the plane
    /// is untouched.
    Aborted,
    /// Cloning the source shard's state into the children failed.
    Recover(RecoverError),
}

impl std::fmt::Display for TopologyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TopologyError::Fenced => write!(f, "plane is fenced; topology changes refused"),
            TopologyError::NoCandidate => write!(f, "no shard qualifies for the action"),
            TopologyError::Limits => write!(f, "split would exceed max_depth or max_shards"),
            TopologyError::Aborted => write!(f, "migration handoff aborted before cutover"),
            TopologyError::Recover(e) => write!(f, "migration handoff failed: {e}"),
        }
    }
}

impl std::error::Error for TopologyError {}

/// What a completed split or merge did, for the `rebalance` wire op
/// and the metrics plane.
#[derive(Clone, Debug, PartialEq)]
pub struct RebalanceReport {
    /// `"split"` or `"merge"`.
    pub action: &'static str,
    /// Stable ids of the shards retired by the cutover.
    pub retired: Vec<u32>,
    /// Stable ids of the shards created by the cutover.
    pub created: Vec<u32>,
    /// WAL records replayed during the handoff.
    pub records_replayed: u64,
    /// Leaf count after the cutover.
    pub leaves: usize,
    /// Partition epoch after the cutover.
    pub part_epoch: u64,
}

/// Everything one shard owns: its engine, its WAL segment, and its
/// latest checkpoint (with the segment offset it replays from).
struct ShardState {
    engine: Box<dyn DensityEngine>,
    wal: Wal,
    checkpoint: Option<Vec<u8>>,
    checkpoint_offset: usize,
}

/// The plane's shared state — everything the per-shard fan-out tasks
/// touch. Lives behind an `Arc` so the [`Executor`]'s `'static` task
/// closures can share it with the engine; every mutation goes through
/// the per-shard `RwLock`s, so `&mut self` ingest paths and `&self`
/// queries synchronize on the same locks whichever pool thread runs
/// the task.
struct ShardPlane {
    part: Partition,
    shards: Vec<RwLock<ShardState>>,
    degraded: Vec<AtomicBool>,
}

impl ShardPlane {
    fn read_shard(&self, i: usize) -> std::sync::RwLockReadGuard<'_, ShardState> {
        self.shards[i].read().unwrap_or_else(|p| p.into_inner())
    }

    fn write_shard(&self, i: usize) -> std::sync::RwLockWriteGuard<'_, ShardState> {
        self.shards[i].write().unwrap_or_else(|p| p.into_inner())
    }

    /// Shard-local crash recovery: restore the shard's checkpoint and
    /// replay its WAL segment tail. The rest of the plane is untouched.
    fn recover_shard(&self, i: usize) -> Result<(), ()> {
        let mut s = self.write_shard(i);
        let ShardState {
            engine,
            wal,
            checkpoint,
            checkpoint_offset,
        } = &mut *s;
        let Some(cp) = checkpoint.as_deref() else {
            return Err(());
        };
        engine.restore_from(cp).map_err(|_| ())?;
        let tail = replay(&wal.bytes()[*checkpoint_offset..]).map_err(|_| ())?;
        for rec in tail.records {
            match rec {
                WalRecord::Advance(t) => engine.advance_to(t),
                WalRecord::Batch(batch) => engine.apply_batch(&batch),
            }
        }
        Ok(())
    }

    /// The degraded answer for shard `i`, or the error that forced it.
    fn degraded_shard_answer(
        &self,
        i: usize,
        q: &PdrQuery,
        err: StorageError,
    ) -> Result<EngineAnswer, StorageError> {
        match self.read_shard(i).engine.degraded_query(q) {
            Some(a) => Ok(a),
            None => Err(err),
        }
    }

    /// One shard's (unclipped) answer: healthy shards answer exactly;
    /// corruption triggers shard-local recovery and one retry; a shard
    /// that stays broken on a non-transient fault is stickily degraded
    /// and serves filter-only from then on. Transient faults propagate
    /// so the caller can retry the whole query under its own policy.
    fn shard_query(&self, i: usize, q: &PdrQuery) -> Result<EngineAnswer, StorageError> {
        if self.degraded[i].load(Ordering::Acquire) {
            let synthetic = StorageError::ReadFailed {
                page: pdr_storage::PageId(0),
                transient: false,
            };
            return self.degraded_shard_answer(i, q, synthetic);
        }
        let err = match self.read_shard(i).engine.try_query(q) {
            Ok(a) => return Ok(a),
            Err(e) => e,
        };
        if err.is_transient() {
            return Err(err);
        }
        if err.is_corruption() && self.recover_shard(i).is_ok() {
            if let Ok(a) = self.read_shard(i).engine.try_query(q) {
                return Ok(a);
            }
        }
        self.degraded[i].store(true, Ordering::Release);
        self.degraded_shard_answer(i, q, err)
    }
}

/// A shared-nothing sharded engine plane, itself a [`DensityEngine`].
///
/// Fault scoping: [`set_fault_plan`](DensityEngine::set_fault_plan)
/// installs the plan beneath **shard 0 only**, so fault injection
/// exercises partial degradation — the faulted shard recovers or
/// degrades while every other shard keeps serving exactly. Use
/// [`set_shard_fault_plan`](ShardedEngine::set_shard_fault_plan) to
/// target a specific shard.
pub struct ShardedEngine {
    name: &'static str,
    horizon: TimeHorizon,
    t_base: Timestamp,
    threads: usize,
    /// The largest neighborhood edge the halo was sized for. Queries
    /// and subscriptions with `l > l_max` are refused — the halo cannot
    /// cover them and density would silently be lost at cut lines.
    l_max: f64,
    plane: Arc<ShardPlane>,
    /// Plane-level registry; each subscription is also registered (same
    /// id) on every owning shard's inner engine.
    subs: SubscriptionTable,
    /// Subscription id → indices of the shards whose owned rectangle
    /// intersects its region.
    sub_owners: HashMap<u64, Vec<usize>>,
    updates_applied: u64,
    rejected_updates: u64,
    queries_served: AtomicU64,
    /// Incremented whenever the segments reset (a restore): byte
    /// offsets are only comparable within one epoch, so log shipping
    /// bootstraps on any epoch change — a reset segment re-filled to
    /// the old length would otherwise be indistinguishable.
    wal_epoch: u64,
    /// The replication epoch this plane writes under. Fresh primaries
    /// start at 1; a replica promotion seals the applied state and
    /// bumps past the epoch it replicated, so any shipment cut by the
    /// deposed primary carries a smaller value and is refused.
    repl_epoch: u64,
    /// Set when this plane has observed a higher replication epoch —
    /// it is a deposed primary. Writes are dropped (and counted in
    /// `fenced_writes`), never applied, so a stale primary can never
    /// silently diverge from the promoted lineage.
    fenced: AtomicBool,
    /// Writes dropped because the plane is fenced.
    fenced_writes: AtomicU64,
    /// Builds a fresh inner engine — kept so splits, merges, and
    /// topology-reshaping restores can mint shards after construction.
    builder: Box<dyn FnMut(usize) -> Box<dyn DensityEngine> + Send + Sync>,
    /// The router's view of the live object set: id → the motion bits
    /// the shards were handed (inserts keep the newest `t_ref`; deletes
    /// remove only an exact bit-match, which makes per-shard WAL replay
    /// order-insensitive). This is what shard merges rebuild from and
    /// what the owned-load accounting below counts.
    router_table: HashMap<u64, MotionState>,
    /// Per-leaf count of *owned* live objects (the leaf whose owned
    /// rectangle contains the object's reported position). Unlike the
    /// inner engines' `objects` stat this excludes halo ghosts, so the
    /// split policy sees true load.
    owned_counts: Vec<u64>,
    /// Policy for automatic splits/merges; `None` = fixed topology.
    policy: Option<SplitPolicy>,
    /// Tick of the last topology change, for policy hysteresis.
    last_topology_at: Option<Timestamp>,
    /// Completed splits / merges, for metrics.
    splits: u64,
    merges: u64,
}

impl ShardedEngine {
    /// Builds the plane: `build(i)` constructs shard `i`'s inner engine
    /// (each one a full-domain engine that will simply see a routed
    /// subset of the traffic). `l_max` is the largest neighborhood edge
    /// the map's halo was sized for; larger queries are refused.
    ///
    /// # Panics
    ///
    /// Panics when `l_max` is non-finite or non-positive.
    pub fn new(
        name: &'static str,
        map: ShardMap,
        horizon: TimeHorizon,
        t_start: Timestamp,
        threads: usize,
        l_max: f64,
        build: impl FnMut(usize) -> Box<dyn DensityEngine> + Send + Sync + 'static,
    ) -> Self {
        Self::with_partition(
            name,
            Partition::from_grid(&map),
            horizon,
            t_start,
            threads,
            l_max,
            Box::new(build),
        )
    }

    /// Builds the plane over an explicit [`Partition`]; [`new`](Self::new)
    /// is the grid-shaped convenience wrapper.
    pub fn with_partition(
        name: &'static str,
        part: Partition,
        horizon: TimeHorizon,
        t_start: Timestamp,
        threads: usize,
        l_max: f64,
        mut builder: Box<dyn FnMut(usize) -> Box<dyn DensityEngine> + Send + Sync>,
    ) -> Self {
        assert!(
            l_max.is_finite() && l_max > 0.0,
            "l_max must be a positive finite edge length, got {l_max}"
        );
        let n = part.shards();
        let shards = (0..n)
            .map(|i| {
                let header = SegmentHeader {
                    shard: part.leaves()[i].id,
                    shards: n as u32,
                };
                // Per-shard segments write the columnar codec2 records;
                // replay auto-detects per record, so pre-upgrade
                // segments and legacy journals keep reading.
                let wal = Wal::new_segment_with(header, WalCodec::V2);
                let checkpoint_offset = wal.offset();
                RwLock::new(ShardState {
                    engine: builder(i),
                    wal,
                    checkpoint: None,
                    checkpoint_offset,
                })
            })
            .collect();
        ShardedEngine {
            name,
            horizon,
            t_base: t_start,
            threads,
            l_max,
            plane: Arc::new(ShardPlane {
                part,
                shards,
                degraded: (0..n).map(|_| AtomicBool::new(false)).collect(),
            }),
            subs: SubscriptionTable::new(),
            sub_owners: HashMap::new(),
            updates_applied: 0,
            rejected_updates: 0,
            queries_served: AtomicU64::new(0),
            wal_epoch: 0,
            repl_epoch: 1,
            fenced: AtomicBool::new(false),
            fenced_writes: AtomicU64::new(0),
            builder,
            router_table: HashMap::new(),
            owned_counts: vec![0; n],
            policy: None,
            last_topology_at: None,
            splits: 0,
            merges: 0,
        }
    }

    /// The replication epoch this plane writes under (see
    /// [`promote_to`](Self::promote_to)).
    pub fn repl_epoch(&self) -> u64 {
        self.repl_epoch
    }

    /// Seals the plane's current state under a fresh checkpoint and
    /// adopts `epoch` as its replication epoch — the replica-promotion
    /// primitive. The caller (a [`Replica`](crate::Replica) being
    /// promoted) picks an epoch strictly greater than the one it
    /// replicated, which fences the deposed primary's lineage.
    pub fn promote_to(&mut self, epoch: u64) {
        self.repl_epoch = epoch;
        self.fenced.store(false, Ordering::SeqCst);
        self.refresh_checkpoints();
    }

    /// Observes a replication epoch seen on the wire: when it is newer
    /// than this plane's, the plane fences itself (a newer primary
    /// exists — this one was deposed). Returns whether the plane is
    /// fenced afterwards. Shared-ref on purpose: the observation
    /// arrives on read paths (`ship_log`) that hold no write lock.
    pub fn fence_if_stale(&self, observed: u64) -> bool {
        if observed > self.repl_epoch {
            self.fenced.store(true, Ordering::SeqCst);
        }
        self.is_fenced()
    }

    /// `true` when the plane has been fenced off by a newer
    /// replication epoch.
    pub fn is_fenced(&self) -> bool {
        self.fenced.load(Ordering::SeqCst)
    }

    /// Writes dropped because the plane was fenced. Zero silent
    /// divergence: every refused mutation is visible here.
    pub fn fenced_writes(&self) -> u64 {
        self.fenced_writes.load(Ordering::SeqCst)
    }

    /// The largest neighborhood edge this plane's halo covers.
    pub fn l_max(&self) -> f64 {
        self.l_max
    }

    fn assert_edge_covered(&self, l: f64) {
        assert!(
            l <= self.l_max,
            "query edge l = {l} exceeds the sharded plane's l_max = {}: \
             the halo cannot cover it and density would be lost at cut lines \
             (use EngineSpec::validate_query_edge to pre-check)",
            self.l_max
        );
    }

    /// The shards whose owned rectangle intersects `region` — the set a
    /// subscription over `region` is registered on. Owned rectangles
    /// tile the plane, so this is never empty.
    fn owners_of(&self, region: &Rect) -> Vec<usize> {
        (0..self.plane.shards.len())
            .filter(|&i| self.plane.part.owned(i).intersects(region))
            .collect()
    }

    /// The spatial partition this plane serves.
    pub fn map(&self) -> &Partition {
        &self.plane.part
    }

    /// `true` when shard `i` is stickily degraded.
    pub fn shard_degraded(&self, i: usize) -> bool {
        self.plane.degraded[i].load(Ordering::Acquire)
    }

    /// Installs a fault plan beneath one specific shard's storage.
    pub fn set_shard_fault_plan(&self, shard: usize, plan: FaultPlan) {
        self.plane.read_shard(shard).engine.set_fault_plan(plan);
    }

    /// Re-checkpoints every shard and marks its WAL segment position,
    /// bounding shard-local replay work. Called automatically after
    /// [`bulk_load`](DensityEngine::bulk_load).
    pub fn refresh_checkpoints(&mut self) {
        for i in 0..self.plane.shards.len() {
            let mut s = self.plane.write_shard(i);
            if let Some(cp) = s.engine.checkpoint() {
                s.checkpoint = Some(cp);
                s.checkpoint_offset = s.wal.offset();
            }
        }
    }

    /// Runs `f(i)` for every shard as one task group on the shared
    /// [`Executor`] (`threads == 1` keeps the serial inline loop);
    /// results come back in shard order and a child panic is re-raised
    /// with its original payload (so the serve loop's
    /// fault-caused-panic detection keeps working). The closure
    /// captures the plane through `Arc` clones, so inner FR refinement
    /// scopes opened by a shard task nest on the same pool instead of
    /// spawning — which is what lets the per-shard engines keep their
    /// own refinement parallelism.
    fn fan_out<R, F>(&self, f: F) -> Vec<R>
    where
        R: Send + 'static,
        F: Fn(usize) -> R + Send + Sync + 'static,
    {
        let n = self.plane.shards.len();
        if self.threads == 1 || n <= 1 {
            return (0..n).map(f).collect();
        }
        Executor::global().scope(n, f)
    }

    /// Merges per-shard answers: clip to owned rectangles, canonical
    /// union, accumulate I/O, AND together exactness.
    fn merge(&self, parts: Vec<EngineAnswer>, started: Instant) -> EngineAnswer {
        let mut io = IoStats::default();
        let mut exact = true;
        for a in &parts {
            io += a.io;
            exact &= a.exact;
        }
        let regions = RegionSet::union_disjoint_clipped(
            parts
                .iter()
                .enumerate()
                .map(|(i, a)| (&a.regions, self.plane.part.owned(i))),
        );
        EngineAnswer {
            regions,
            cpu: started.elapsed(),
            io,
            exact,
        }
    }

    fn route_targets(&self, u: &Update) -> impl Iterator<Item = usize> + '_ {
        let bbox = u.routing_bbox(self.horizon.h());
        self.plane.part.route(&bbox)
    }

    /// The leaf owning the reported position of `m` (owned rectangles
    /// tile the plane, so this is `None` only for non-finite motions).
    fn owner_index(part: &Partition, m: &MotionState) -> Option<usize> {
        let p = m.position_at(m.t_ref);
        (0..part.shards()).find(|&i| part.owned(i).contains_half_open(p))
    }

    /// Folds one routed update into the router's live-object table and
    /// the per-leaf owned counts. Inserts keep the newest `t_ref` and
    /// deletes remove only an exact bit-match — that makes replaying
    /// the same updates from several per-shard WAL tails (duplicated,
    /// shard-ordered rather than globally ordered) converge to the same
    /// table a chronological feed produces.
    fn note_update(&mut self, u: &Update) {
        match u.kind {
            pdr_mobject::UpdateKind::Insert { motion } => {
                if let Some(prev) = self.router_table.get(&u.id.0) {
                    if prev.t_ref > motion.t_ref {
                        return; // stale copy replayed out of order
                    }
                    let prev = *prev;
                    if let Some(o) = Self::owner_index(&self.plane.part, &prev) {
                        self.owned_counts[o] -= 1;
                    }
                }
                self.router_table.insert(u.id.0, motion);
                if let Some(o) = Self::owner_index(&self.plane.part, &motion) {
                    self.owned_counts[o] += 1;
                }
            }
            pdr_mobject::UpdateKind::Delete { old_motion } => {
                if self.router_table.get(&u.id.0) == Some(&old_motion) {
                    self.router_table.remove(&u.id.0);
                    if let Some(o) = Self::owner_index(&self.plane.part, &old_motion) {
                        self.owned_counts[o] -= 1;
                    }
                }
            }
        }
    }

    /// Recomputes the per-leaf owned counts from the router table —
    /// used after a topology change re-shapes the leaf vector.
    fn recount_owned(&mut self) {
        let mut counts = vec![0u64; self.plane.part.shards()];
        for m in self.router_table.values() {
            if let Some(o) = Self::owner_index(&self.plane.part, m) {
                counts[o] += 1;
            }
        }
        self.owned_counts = counts;
    }

    /// Per-leaf count of live objects whose reported position the leaf
    /// owns (halo ghosts excluded) — the load signal [`SplitPolicy`]
    /// acts on.
    pub fn owned_objects(&self) -> &[u64] {
        &self.owned_counts
    }

    /// Composes per-shard checkpoint payloads into one sealed
    /// container: a magic tag, the partition, the router's live-object
    /// table, then per leaf `[len u64][crc u32][bytes]` in leaf order.
    /// Embedding the partition is what lets a restore (or a replica
    /// bootstrap) adopt the sender's topology instead of refusing it.
    fn compose_checkpoint(&self, parts: &[Vec<u8>]) -> Vec<u8> {
        let mut w = ByteWriter::new();
        w.put_u32(ADAPTIVE_CHECKPOINT_MAGIC);
        w.put_u64(self.t_base);
        self.plane.part.encode(&mut w);
        let mut ids: Vec<&u64> = self.router_table.keys().collect();
        ids.sort();
        w.put_u32(self.router_table.len() as u32);
        for id in ids {
            let m = &self.router_table[id];
            w.put_u64(*id);
            w.put_f64(m.origin.x);
            w.put_f64(m.origin.y);
            w.put_f64(m.velocity.x);
            w.put_f64(m.velocity.y);
            w.put_u64(m.t_ref);
        }
        w.put_u32(parts.len() as u32);
        for cp in parts {
            w.put_u64(cp.len() as u64);
            w.put_u32(crc32(cp));
            w.put_bytes(cp);
        }
        seal_checkpoint(w.as_slice())
    }

    // -----------------------------------------------------------------
    // Log shipping (primary side)
    // -----------------------------------------------------------------

    /// Current byte offset of every shard's WAL segment, in shard
    /// order. A replica reports these back through
    /// [`ShardedEngine::wal_since`] to receive only the delta.
    pub fn wal_offsets(&self) -> Vec<usize> {
        (0..self.plane.shards.len())
            .map(|i| self.plane.read_shard(i).wal.offset())
            .collect()
    }

    /// The current segment epoch (see [`ShardedEngine::wal_since`]).
    pub fn wal_epoch(&self) -> u64 {
        self.wal_epoch
    }

    /// Cuts a [`LogShipment`] for a replica that has applied each
    /// shard's segment through `from[i]` within segment epoch `epoch`.
    /// Pass an empty slice to bootstrap: the shipment then carries the
    /// plane's last sealed checkpoint (when one exists) plus every
    /// segment's tail from its checkpoint mark. A `(epoch, from)` that
    /// no longer matches this plane — a stale epoch (the primary
    /// restored and its segments reset), wrong shard count, an offset
    /// past the segment end, or one inside the segment header — also
    /// falls back to a bootstrap shipment, so a replica can always
    /// converge by re-ingesting.
    pub fn wal_since(&self, epoch: u64, from: &[usize]) -> LogShipment {
        let n = self.plane.shards.len();
        let incremental = epoch == self.wal_epoch
            && from.len() == n
            && (0..n).all(|i| {
                let s = self.plane.read_shard(i);
                from[i] >= SEGMENT_HEADER_LEN && from[i] <= s.wal.offset()
            });
        if incremental {
            let segments = (0..n)
                .map(|i| {
                    let s = self.plane.read_shard(i);
                    ShippedSegment {
                        shard: self.plane.part.leaves()[i].id,
                        start: from[i],
                        bytes: s.wal.bytes()[from[i]..].to_vec(),
                    }
                })
                .collect();
            return LogShipment {
                shards: n as u32,
                epoch: self.wal_epoch,
                repl_epoch: self.repl_epoch,
                part_epoch: self.plane.part.epoch(),
                t_base: self.t_base,
                checkpoint: None,
                segments,
            };
        }
        // Bootstrap: ship the stored per-shard checkpoints (sealed as
        // one container, with the partition and router table embedded)
        // and each segment's tail from its checkpoint mark. Without a
        // stored checkpoint (nothing bulk-loaded yet) the full segments
        // from just past their headers reproduce the whole history.
        let stored: Option<Vec<Vec<u8>>> = (0..n)
            .map(|i| self.plane.read_shard(i).checkpoint.clone())
            .collect();
        let (checkpoint, starts): (Option<Vec<u8>>, Vec<usize>) = match stored {
            Some(parts) => (
                Some(self.compose_checkpoint(&parts)),
                (0..n)
                    .map(|i| self.plane.read_shard(i).checkpoint_offset)
                    .collect(),
            ),
            None => (None, vec![SEGMENT_HEADER_LEN; n]),
        };
        let segments = (0..n)
            .map(|i| {
                let s = self.plane.read_shard(i);
                ShippedSegment {
                    shard: self.plane.part.leaves()[i].id,
                    start: starts[i],
                    bytes: s.wal.bytes()[starts[i]..].to_vec(),
                }
            })
            .collect();
        LogShipment {
            shards: n as u32,
            epoch: self.wal_epoch,
            repl_epoch: self.repl_epoch,
            part_epoch: self.plane.part.epoch(),
            t_base: self.t_base,
            checkpoint,
            segments,
        }
    }

    // -----------------------------------------------------------------
    // Log shipping (replica side)
    // -----------------------------------------------------------------

    /// Replays one shipped segment tail into shard `shard`: verifies
    /// the frames, appends them to the shard's local segment, and
    /// applies each record to the shard's engine. The shipped bytes
    /// were routed and screened by the primary, so they apply
    /// directly, bypassing the router. Returns a per-tail summary.
    pub fn apply_segment_tail(
        &mut self,
        shard: usize,
        bytes: &[u8],
    ) -> Result<TailSummary, RecoverError> {
        let rep = replay(bytes)?;
        if rep.torn_bytes != 0 {
            return Err(RecoverError::Codec(pdr_storage::CodecError::Corrupt(
                "shipped segment tail is torn",
            )));
        }
        let mut summary = TailSummary::default();
        let plane = Arc::clone(&self.plane);
        let mut s = plane.write_shard(shard);
        s.wal.append_framed(bytes, rep.records.len() as u64);
        for rec in &rep.records {
            summary.records += 1;
            match rec {
                WalRecord::Advance(t) => {
                    s.engine.advance_to(*t);
                    summary.last_advance = Some(*t);
                }
                WalRecord::Batch(batch) => {
                    summary.updates += batch.len() as u64;
                    s.engine.apply_batch(batch);
                    for u in batch.iter() {
                        self.note_update(u);
                    }
                }
            }
        }
        drop(s);
        if let Some(t) = summary.last_advance {
            self.t_base = self.t_base.max(t);
        }
        self.updates_applied += summary.updates;
        Ok(summary)
    }

    // -----------------------------------------------------------------
    // Adaptive topology: splits, merges, live migration
    // -----------------------------------------------------------------

    /// The current partition (topology) epoch.
    pub fn part_epoch(&self) -> u64 {
        self.plane.part.epoch()
    }

    /// Installs (or clears) the automatic split/merge policy. With a
    /// policy set, `advance_to` evaluates it once per tick on the
    /// owned-load counters; without one the topology never changes on
    /// its own (manual [`rebalance`](Self::rebalance) still works).
    pub fn set_policy(&mut self, policy: Option<SplitPolicy>) {
        self.policy = policy;
    }

    /// The installed automatic policy, if any.
    pub fn policy(&self) -> Option<SplitPolicy> {
        self.policy
    }

    /// Completed split count.
    pub fn splits(&self) -> u64 {
        self.splits
    }

    /// Completed merge count.
    pub fn merges(&self) -> u64 {
        self.merges
    }

    /// Takes exclusive ownership of the plane for a topology flip.
    /// `&mut self` guarantees no fan-out task group is in flight (they
    /// only live inside a single engine call), so the `Arc` is unique.
    fn take_plane(&mut self) -> ShardPlane {
        let placeholder = Arc::new(ShardPlane {
            part: Partition::from_grid(&ShardMap::new(Rect::new(0.0, 0.0, 1.0, 1.0), 1, 1, 0.0)),
            shards: Vec::new(),
            degraded: Vec::new(),
        });
        match Arc::try_unwrap(std::mem::replace(&mut self.plane, placeholder)) {
            Ok(plane) => plane,
            Err(_) => unreachable!("plane Arc aliased outside an engine call"),
        }
    }

    /// Re-registers every plane-level subscription on its (possibly
    /// new) owner set and flags it for a `resync` marker. Called after
    /// every topology change: `register_with_id` resets the inner
    /// answer, so the next maintenance pass recomputes from scratch on
    /// each owner — the plane-level diff stays exact throughout because
    /// it is taken against the plane's own committed answer.
    fn reroute_subscriptions(&mut self) {
        let specs: Vec<Subscription> = self.subs.subs().copied().collect();
        self.sub_owners.clear();
        for sub in specs {
            let owners = self.owners_of(&sub.region);
            for &i in &owners {
                if let Some(t) = self.plane.write_shard(i).engine.subscriptions_mut() {
                    t.register_with_id(sub);
                }
            }
            self.sub_owners.insert(sub.id.0, owners);
            self.subs.mark_resync(sub.id);
        }
    }

    /// Splits leaf `idx` into four children by live migration: the
    /// source shard's sealed checkpoint and WAL-segment tail are
    /// "shipped" to each child, replayed (each child restores the exact
    /// byte state the source would recover to), pruned down to the
    /// child's own ingest region (so the routing invariant — an object
    /// lives only in shards its bbox intersects — survives the
    /// migration), and only then is routing flipped — atomically,
    /// under `&mut self`, with the partition and WAL epochs bumped so
    /// replicas re-bootstrap instead of misapplying offsets. No update
    /// is lost: everything the source ingested is in its checkpoint or
    /// tail, and everything after the flip routes to the children.
    pub fn split_shard(&mut self, idx: usize) -> Result<RebalanceReport, TopologyError> {
        self.split_shard_inner(idx, None)
    }

    /// [`split_shard`](Self::split_shard) with crash injection: abort
    /// the handoff after replaying `abort_after` tail records, before
    /// the cutover. The plane is untouched — exactly what a crash at
    /// that WAL-record boundary would leave behind.
    pub fn split_shard_aborting(
        &mut self,
        idx: usize,
        abort_after: usize,
    ) -> Result<RebalanceReport, TopologyError> {
        self.split_shard_inner(idx, Some(abort_after))
    }

    fn split_shard_inner(
        &mut self,
        idx: usize,
        abort_after: Option<usize>,
    ) -> Result<RebalanceReport, TopologyError> {
        if self.is_fenced() {
            return Err(TopologyError::Fenced);
        }
        let limits = self.policy.unwrap_or_default();
        if idx >= self.plane.part.shards() {
            return Err(TopologyError::NoCandidate);
        }
        if self.plane.part.leaves()[idx].depth() >= limits.max_depth
            || self.plane.part.shards() + 3 > limits.max_shards
        {
            return Err(TopologyError::Limits);
        }
        // Seal: under `&mut self` no writer can interleave; snapshot
        // the source's checkpoint and segment tail (the handoff bytes).
        let (source_id, checkpoint, tail) = {
            let s = self.plane.read_shard(idx);
            (
                self.plane.part.leaves()[idx].id,
                s.checkpoint.clone(),
                s.wal.bytes()[s.checkpoint_offset..].to_vec(),
            )
        };
        // Each child's ingest region under the post-split geometry,
        // taken from a cloned partition with the split applied — the
        // prune filter below must agree *bitwise* with how the real
        // partition will route once the cutover lands, so the geometry
        // is never re-derived by hand.
        let post = {
            let mut p = self.plane.part.clone();
            p.split(idx);
            p
        };
        let child_ingest = [
            post.ingest_region(idx),
            post.ingest_region(idx + 1),
            post.ingest_region(idx + 2),
            post.ingest_region(idx + 3),
        ];
        let source_ingest = self.plane.part.ingest_region(idx);
        let h = self.horizon.h();
        let mut prune_ids: Vec<u64> = self.router_table.keys().copied().collect();
        prune_ids.sort_unstable();
        // Replay the handoff into four fresh children. Any failure (or
        // an injected crash) before the flip leaves the plane untouched.
        let mut children: Vec<Box<dyn DensityEngine>> = Vec::with_capacity(4);
        let mut records_replayed = 0u64;
        for ingest in &child_ingest {
            let mut e = (self.builder)(idx);
            if let Some(cp) = checkpoint.as_deref() {
                e.restore_from(cp).map_err(TopologyError::Recover)?;
            }
            let rep = crate::wal::replay(&tail)
                .map_err(|e| TopologyError::Recover(RecoverError::Codec(e)))?;
            let mut replayed = 0usize;
            for rec in rep.records {
                if abort_after == Some(replayed) {
                    return Err(TopologyError::Aborted);
                }
                match rec {
                    WalRecord::Advance(t) => e.advance_to(t),
                    WalRecord::Batch(batch) => e.apply_batch(&batch),
                }
                replayed += 1;
            }
            if let Some(k) = abort_after {
                // A boundary at the very end of the tail: the handoff
                // replayed everything but crashed before the flip.
                if k == replayed {
                    return Err(TopologyError::Aborted);
                }
            }
            records_replayed += replayed as u64;
            // Complete the migration: prune from the child every object
            // whose routing bbox misses its post-split ingest region.
            // Routing only ever delivers an object to shards its bbox
            // intersects; the full-state clone would otherwise leave
            // stale copies behind that invariant — a later re-report
            // pair would route its delete elsewhere while the insert
            // collides with the stale copy here.
            let prune: Vec<Update> = prune_ids
                .iter()
                .filter_map(|&id| {
                    let m = self.router_table[&id];
                    let bbox =
                        Rect::from_corners(m.position_at(m.t_ref), m.position_at(m.t_ref + h));
                    (bbox.intersects(&source_ingest) && !bbox.intersects(ingest))
                        .then_some(Update {
                            id: ObjectId(id),
                            t_now: self.t_base,
                            kind: pdr_mobject::UpdateKind::Delete { old_motion: m },
                        })
                })
                .collect();
            if !prune.is_empty() {
                e.apply_batch(&prune);
            }
            children.push(e);
        }
        // Cutover: flip routing atomically. The source shard (engine,
        // WAL, checkpoint) retires with the old plane.
        let ShardPlane {
            mut part,
            shards,
            degraded,
        } = self.take_plane();
        let child_ids = part.split(idx);
        let n = part.shards();
        let source_degraded = degraded[idx].load(Ordering::Acquire);
        let mut new_shards: Vec<RwLock<ShardState>> = Vec::with_capacity(n);
        let mut new_degraded: Vec<AtomicBool> = Vec::with_capacity(n);
        let mut old_shards = shards.into_iter();
        let mut old_degraded = degraded.into_iter();
        for slot in 0..self.wrapping_old_count(n) {
            let state = old_shards.next().expect("old plane exhausted early");
            let was_degraded = old_degraded
                .next()
                .expect("old plane exhausted early")
                .into_inner();
            if slot == idx {
                // Retire the source; seat the four children in place.
                drop(state);
                for (k, e) in children.drain(..).enumerate() {
                    let header = SegmentHeader {
                        shard: child_ids[k],
                        shards: n as u32,
                    };
                    let wal = Wal::new_segment_with(header, WalCodec::V2);
                    let checkpoint_offset = wal.offset();
                    let checkpoint = e.checkpoint();
                    new_shards.push(RwLock::new(ShardState {
                        engine: e,
                        wal,
                        checkpoint,
                        checkpoint_offset,
                    }));
                    new_degraded.push(AtomicBool::new(source_degraded));
                }
            } else {
                new_shards.push(state);
                new_degraded.push(AtomicBool::new(was_degraded));
            }
        }
        self.plane = Arc::new(ShardPlane {
            part,
            shards: new_shards,
            degraded: new_degraded,
        });
        self.finish_topology_change();
        self.splits += 1;
        Ok(RebalanceReport {
            action: "split",
            retired: vec![source_id],
            created: child_ids.to_vec(),
            records_replayed,
            leaves: self.plane.part.shards(),
            part_epoch: self.plane.part.epoch(),
        })
    }

    /// Old-plane slot count during a split: children replace one slot,
    /// so the loop walks the *old* indices.
    fn wrapping_old_count(&self, new_count: usize) -> usize {
        new_count - 3
    }

    /// Merges a complete sibling group back into its parent tile. The
    /// parent engine is rebuilt from the router's live-object table:
    /// every live object whose routing bbox intersects the parent's
    /// ingest region is re-applied as an insertion carrying its
    /// original motion bits **at its original report time** — the seed
    /// is grouped by `t_ref` and replayed in time order, advancing the
    /// fresh engine between groups. This reproduces bit-for-bit the
    /// histogram state a long-running engine holds for those motions at
    /// `t_base` (an insert deposits over `[t_now, t_now+H]`, so
    /// re-inserting "now" would smear density onto slots past
    /// `t_ref + H` that the retired children never touched) — without
    /// inheriting any stale ghost state the children may hold.
    pub fn merge_shards(&mut self, group: [usize; 4]) -> Result<RebalanceReport, TopologyError> {
        if self.is_fenced() {
            return Err(TopologyError::Fenced);
        }
        if !self.plane.part.sibling_groups().contains(&group) {
            return Err(TopologyError::NoCandidate);
        }
        // The parent's ingest region, taken from a cloned partition
        // with the merge applied — the seed filter must agree bitwise
        // with how the post-cutover partition routes.
        let ingest = {
            let mut p = self.plane.part.clone();
            p.merge(group);
            p.ingest_region(group[0])
        };
        let h = self.horizon.h();
        let mut ids: Vec<u64> = self.router_table.keys().copied().collect();
        ids.sort_unstable();
        let mut seed: std::collections::BTreeMap<Timestamp, Vec<Update>> =
            std::collections::BTreeMap::new();
        for id in ids {
            let m = self.router_table[&id];
            let bbox = Rect::from_corners(m.position_at(m.t_ref), m.position_at(m.t_ref + h));
            if bbox.intersects(&ingest) {
                seed.entry(m.t_ref).or_default().push(Update {
                    id: ObjectId(id),
                    t_now: m.t_ref,
                    // Construct the literal (not `Update::insert`) so
                    // the motion keeps its original `t_ref` and bits —
                    // re-anchoring would recompute positions and could
                    // flip a cell assignment at an exact boundary.
                    kind: pdr_mobject::UpdateKind::Insert { motion: m },
                });
            }
        }
        let mut parent = Some((self.builder)(group[0]));
        if let Some(e) = parent.as_mut() {
            for (t, batch) in &seed {
                e.advance_to(*t);
                e.apply_batch(batch);
            }
            e.advance_to(self.t_base);
        }
        let retired: Vec<u32> = group
            .iter()
            .map(|&i| self.plane.part.leaves()[i].id)
            .collect();
        // Cutover.
        let ShardPlane {
            mut part,
            shards,
            degraded,
        } = self.take_plane();
        let parent_id = part.merge(group);
        let n = part.shards();
        let mut new_shards: Vec<RwLock<ShardState>> = Vec::with_capacity(n);
        let mut new_degraded: Vec<AtomicBool> = Vec::with_capacity(n);
        for (slot, (state, was_degraded)) in shards.into_iter().zip(degraded).enumerate() {
            if group.contains(&slot) {
                // Retire the child; seat the parent at the first slot.
                drop(state);
                if slot == group[0] {
                    let engine = parent.take().expect("parent seated once");
                    let header = SegmentHeader {
                        shard: parent_id,
                        shards: n as u32,
                    };
                    let wal = Wal::new_segment_with(header, WalCodec::V2);
                    let checkpoint_offset = wal.offset();
                    let checkpoint = engine.checkpoint();
                    new_shards.push(RwLock::new(ShardState {
                        engine,
                        wal,
                        checkpoint,
                        checkpoint_offset,
                    }));
                    // The parent is rebuilt from the router table, not
                    // the children — a degraded child's lost state is
                    // re-derived, so the merged shard starts healthy.
                    new_degraded.push(AtomicBool::new(false));
                }
            } else {
                let d = was_degraded.into_inner();
                new_shards.push(state);
                new_degraded.push(AtomicBool::new(d));
            }
        }
        self.plane = Arc::new(ShardPlane {
            part,
            shards: new_shards,
            degraded: new_degraded,
        });
        self.finish_topology_change();
        self.merges += 1;
        Ok(RebalanceReport {
            action: "merge",
            retired,
            created: vec![parent_id],
            records_replayed: seed.values().map(|b| b.len() as u64).sum(),
            leaves: self.plane.part.shards(),
            part_epoch: self.plane.part.epoch(),
        })
    }

    /// Shared post-cutover bookkeeping: recount owned load for the new
    /// leaf vector, re-route subscriptions (with resync markers), bump
    /// the WAL epoch (old shipment offsets are meaningless against the
    /// new leaf order) and re-checkpoint every shard so bootstrap
    /// shipments always carry the new topology.
    fn finish_topology_change(&mut self) {
        self.recount_owned();
        self.reroute_subscriptions();
        self.wal_epoch += 1;
        self.last_topology_at = Some(self.t_base);
        self.refresh_checkpoints();
    }

    /// The leaf with the highest owned load that the policy limits
    /// still allow to split.
    pub fn hottest_splittable(&self) -> Option<usize> {
        let limits = self.policy.unwrap_or_default();
        if self.plane.part.shards() + 3 > limits.max_shards {
            return None;
        }
        (0..self.plane.part.shards())
            .filter(|&i| self.plane.part.leaves()[i].depth() < limits.max_depth)
            .max_by_key(|&i| (self.owned_counts[i], std::cmp::Reverse(i)))
    }

    /// The complete sibling group with the lowest combined owned load.
    pub fn coldest_sibling_group(&self) -> Option<[usize; 4]> {
        self.plane
            .part
            .sibling_groups()
            .into_iter()
            .min_by_key(|g| (g.iter().map(|&i| self.owned_counts[i]).sum::<u64>(), g[0]))
    }

    /// Manual rebalance (the `rebalance` wire op): force one split of
    /// the hottest splittable leaf or one merge of the coldest complete
    /// sibling group, regardless of thresholds (limits still apply).
    pub fn rebalance_split(&mut self) -> Result<RebalanceReport, TopologyError> {
        let idx = self.hottest_splittable().ok_or(TopologyError::Limits)?;
        self.split_shard(idx)
    }

    /// See [`rebalance_split`](Self::rebalance_split).
    pub fn rebalance_merge(&mut self) -> Result<RebalanceReport, TopologyError> {
        let group = self
            .coldest_sibling_group()
            .ok_or(TopologyError::NoCandidate)?;
        self.merge_shards(group)
    }

    /// One policy evaluation: split the hottest overloaded leaf, else
    /// merge the coldest underloaded sibling group. Hysteresis: nothing
    /// happens within `min_interval` ticks of the last change.
    fn auto_rebalance(&mut self) {
        let Some(policy) = self.policy else { return };
        if self.is_fenced() {
            return;
        }
        if let Some(last) = self.last_topology_at {
            if self.t_base.saturating_sub(last) < policy.min_interval {
                return;
            }
        }
        if let Some(idx) = self.hottest_splittable() {
            if self.owned_counts[idx] > policy.split_threshold {
                let _ = self.split_shard(idx);
                return;
            }
        }
        if let Some(group) = self.coldest_sibling_group() {
            let combined: u64 = group.iter().map(|&i| self.owned_counts[i]).sum();
            if combined < policy.merge_threshold {
                let _ = self.merge_shards(group);
            }
        }
    }

    /// The partition tree with per-leaf loads, as a JSON block for the
    /// `metrics` wire op.
    pub fn partition_json(&self) -> String {
        let leaves: Vec<String> = (0..self.plane.part.shards())
            .map(|i| {
                let leaf = &self.plane.part.leaves()[i];
                let st = self.plane.read_shard(i).engine.stats();
                let owned = self.owned_counts[i];
                format!(
                    "{{\"id\":{},\"depth\":{},\"tile\":[{},{},{},{}],\
                     \"owned_objects\":{},\"ghost_objects\":{}}}",
                    leaf.id,
                    leaf.depth(),
                    crate::obs::json_f64(leaf.tile.x_lo),
                    crate::obs::json_f64(leaf.tile.y_lo),
                    crate::obs::json_f64(leaf.tile.x_hi),
                    crate::obs::json_f64(leaf.tile.y_hi),
                    owned,
                    (st.objects as u64).saturating_sub(owned),
                )
            })
            .collect();
        format!(
            "{{\"epoch\":{},\"leaves\":{},\"splits\":{},\"merges\":{},\"adaptive\":{},\"tree\":[{}]}}",
            self.plane.part.epoch(),
            self.plane.part.shards(),
            self.splits,
            self.merges,
            self.policy.is_some(),
            leaves.join(",")
        )
    }
}

/// What applying one shipped segment tail did.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TailSummary {
    /// Records replayed.
    pub records: u64,
    /// Updates contained in replayed batches.
    pub updates: u64,
    /// The last `advance_to` timestamp in the tail, if any.
    pub last_advance: Option<Timestamp>,
}

/// One shard's WAL delta inside a [`LogShipment`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ShippedSegment {
    /// Stable shard id the bytes belong to (a [`PartLeaf::id`], not a
    /// positional index — identity survives topology renumbering).
    pub shard: u32,
    /// Byte offset in the primary's segment where `bytes` begins.
    pub start: usize,
    /// Whole framed records (never a torn tail).
    pub bytes: Vec<u8>,
}

/// A batch of sealed-checkpoint + WAL-segment deltas cut by a primary
/// [`ShardedEngine`] for a log-shipping replica.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LogShipment {
    /// Shard count of the plane that cut the shipment.
    pub shards: u32,
    /// Segment epoch the offsets are valid within (see
    /// [`ShardedEngine::wal_since`]).
    pub epoch: u64,
    /// Replication epoch of the plane that cut the shipment (see
    /// [`ShardedEngine::promote_to`]). A receiver on a newer epoch
    /// refuses the shipment as fenced.
    pub repl_epoch: u64,
    /// Partition (topology) epoch of the plane that cut the shipment.
    /// Incremental shipments only apply against an identical topology;
    /// a mismatch forces the replica to re-bootstrap (the bootstrap
    /// checkpoint embeds the new partition, which the replica adopts).
    pub part_epoch: u64,
    /// The primary's protocol time when the shipment was cut — the
    /// replica's staleness bound is measured against this.
    pub t_base: Timestamp,
    /// A sealed full-plane checkpoint, present on bootstrap shipments.
    pub checkpoint: Option<Vec<u8>>,
    /// Per-shard segment deltas, in shard order.
    pub segments: Vec<ShippedSegment>,
}

fn finite(m: &MotionState) -> bool {
    m.origin.x.is_finite()
        && m.origin.y.is_finite()
        && m.velocity.x.is_finite()
        && m.velocity.y.is_finite()
}

impl DensityEngine for ShardedEngine {
    fn name(&self) -> &'static str {
        self.name
    }

    fn bulk_load(&mut self, objects: &[(ObjectId, MotionState)], t_now: Timestamp) {
        if self.is_fenced() {
            self.fenced_writes
                .fetch_add(objects.len() as u64, Ordering::SeqCst);
            return;
        }
        let h = self.horizon.h();
        let mut per_shard: Vec<Vec<(ObjectId, MotionState)>> =
            (0..self.plane.shards.len()).map(|_| Vec::new()).collect();
        for &(id, m) in objects {
            if !finite(&m) {
                // Route to shard 0 so the inner screening rejects (and
                // counts) the report exactly once.
                per_shard[0].push((id, m));
                continue;
            }
            let bbox = Rect::from_corners(m.position_at(m.t_ref), m.position_at(m.t_ref + h));
            for i in self.plane.part.route(&bbox) {
                per_shard[i].push((id, m));
            }
            self.router_table.insert(id.0, m);
        }
        self.recount_owned();
        self.updates_applied += objects.len() as u64;
        let plane = Arc::clone(&self.plane);
        let per_shard = Arc::new(per_shard);
        self.fan_out(move |i| {
            plane.write_shard(i).engine.bulk_load(&per_shard[i], t_now);
        });
        self.refresh_checkpoints();
    }

    fn apply_batch(&mut self, updates: &[Update]) {
        if self.is_fenced() {
            self.fenced_writes
                .fetch_add(updates.len() as u64, Ordering::SeqCst);
            return;
        }
        // Screen once at the router (the same window the inner engines
        // enforce) so rejects are counted exactly once, then route the
        // accepted traffic. One pass computes each update's complete
        // target set, so re-routing at a cut crossing never duplicates
        // a delivery within a shard.
        let rejected = screen_batch(updates, Some((self.t_base, self.horizon)));
        self.rejected_updates += rejected.len() as u64;
        let mut per_shard: Vec<Vec<Update>> =
            (0..self.plane.shards.len()).map(|_| Vec::new()).collect();
        let mut next = 0usize;
        for (idx, u) in updates.iter().enumerate() {
            if next < rejected.len() && rejected[next].0 == idx {
                next += 1;
                continue;
            }
            self.updates_applied += 1;
            let targets: Vec<usize> = self.route_targets(u).collect();
            for i in targets {
                per_shard[i].push(*u);
            }
            self.note_update(u);
        }
        // Per-shard batches apply concurrently (one task per shard):
        // each task takes only its own shard's write lock, so ingest
        // parallelism is shared-nothing like everything else here.
        let plane = Arc::clone(&self.plane);
        let per_shard = Arc::new(per_shard);
        self.fan_out(move |i| {
            if per_shard[i].is_empty() {
                return;
            }
            let mut s = plane.write_shard(i);
            s.wal.append_batch(&per_shard[i]);
            s.engine.apply_batch(&per_shard[i]);
        });
    }

    fn advance_to(&mut self, t_now: Timestamp) {
        if self.is_fenced() {
            self.fenced_writes.fetch_add(1, Ordering::SeqCst);
            return;
        }
        self.t_base = t_now;
        let plane = Arc::clone(&self.plane);
        self.fan_out(move |i| {
            let mut s = plane.write_shard(i);
            s.wal.append_advance(t_now);
            s.engine.advance_to(t_now);
        });
        if self.policy.is_some() {
            self.auto_rebalance();
        }
    }

    fn query(&self, q: &PdrQuery) -> EngineAnswer {
        self.try_query(q)
            .expect("sharded query hit a storage fault; use try_query when serving with faults")
    }

    fn try_query(&self, q: &PdrQuery) -> Result<EngineAnswer, StorageError> {
        self.assert_edge_covered(q.l);
        let started = Instant::now();
        let plane = Arc::clone(&self.plane);
        let q_owned = *q;
        let results = self.fan_out(move |i| plane.shard_query(i, &q_owned));
        let mut parts = Vec::with_capacity(results.len());
        for r in results {
            parts.push(r?);
        }
        self.queries_served.fetch_add(1, Ordering::Relaxed);
        Ok(self.merge(parts, started))
    }

    fn degraded_query(&self, q: &PdrQuery) -> Option<EngineAnswer> {
        let started = Instant::now();
        let plane = Arc::clone(&self.plane);
        let q_owned = *q;
        let results = self.fan_out(move |i| plane.read_shard(i).engine.degraded_query(&q_owned));
        let parts: Option<Vec<EngineAnswer>> = results.into_iter().collect();
        let mut merged = self.merge(parts?, started);
        merged.exact = false;
        Some(merged)
    }

    fn checkpoint(&self) -> Option<Vec<u8>> {
        let parts: Option<Vec<Vec<u8>>> = (0..self.plane.shards.len())
            .map(|i| self.plane.read_shard(i).engine.checkpoint())
            .collect();
        Some(self.compose_checkpoint(&parts?))
    }

    fn restore_from(&mut self, bytes: &[u8]) -> Result<(), RecoverError> {
        let payload = open_checkpoint(bytes)?;
        let mut r = ByteReader::new(payload);
        if r.get_u32()? != ADAPTIVE_CHECKPOINT_MAGIC {
            return Err(RecoverError::Mismatch(
                "not a sharded-plane checkpoint container",
            ));
        }
        let t_base = r.get_u64()?;
        let part = Partition::decode(&mut r)?;
        let table_len = r.get_u32()? as usize;
        let mut table = HashMap::with_capacity(table_len);
        for _ in 0..table_len {
            let id = r.get_u64()?;
            let origin = pdr_geometry::Point::new(r.get_f64()?, r.get_f64()?);
            let velocity = pdr_geometry::Point::new(r.get_f64()?, r.get_f64()?);
            let t_ref = r.get_u64()?;
            table.insert(
                id,
                MotionState {
                    origin,
                    velocity,
                    t_ref,
                },
            );
        }
        let n = r.get_u32()? as usize;
        if n != part.shards() {
            return Err(RecoverError::Mismatch(
                "checkpoint shard count disagrees with its own partition",
            ));
        }
        // Adopt the checkpoint's topology. When the leaf set differs
        // from the current plane's — a replica bootstrapping across a
        // split/merge, or a restore after a topology change — the plane
        // is re-shaped: fresh inner engines are minted by the stored
        // builder and every plane-level subscription re-routes to the
        // new owner set (with a resync marker on its next patch).
        let reshape = self.plane.part.leaves() != part.leaves();
        if reshape {
            let shards = (0..n)
                .map(|i| {
                    let header = SegmentHeader {
                        shard: part.leaves()[i].id,
                        shards: n as u32,
                    };
                    let wal = Wal::new_segment_with(header, WalCodec::V2);
                    let checkpoint_offset = wal.offset();
                    RwLock::new(ShardState {
                        engine: (self.builder)(i),
                        wal,
                        checkpoint: None,
                        checkpoint_offset,
                    })
                })
                .collect();
            self.plane = Arc::new(ShardPlane {
                part,
                shards,
                degraded: (0..n).map(|_| AtomicBool::new(false)).collect(),
            });
        } else {
            // Same leaf set; still adopt the epoch/next_id bookkeeping.
            Arc::get_mut(&mut self.plane)
                .expect("plane aliased outside a fan-out")
                .part = part;
        }
        let mut pos = payload.len() - r.remaining();
        for i in 0..n {
            let mut r = ByteReader::new(&payload[pos..]);
            let len = r.get_u64()? as usize;
            let crc = r.get_u32()?;
            let header = 12;
            let slice = payload
                .get(pos + header..pos + header + len)
                .ok_or(RecoverError::Codec(pdr_storage::CodecError::UnexpectedEof))?;
            if crc32(slice) != crc {
                return Err(RecoverError::Codec(pdr_storage::CodecError::Corrupt(
                    "per-shard checkpoint checksum mismatch",
                )));
            }
            pos += header + len;
            let mut s = self.plane.write_shard(i);
            s.engine.restore_from(slice)?;
            s.checkpoint = Some(slice.to_vec());
            s.wal = Wal::new_segment_with(
                SegmentHeader {
                    shard: self.plane.part.leaves()[i].id,
                    shards: n as u32,
                },
                WalCodec::V2,
            );
            s.checkpoint_offset = s.wal.offset();
            self.plane.degraded[i].store(false, Ordering::Release);
        }
        self.router_table = table;
        // Rewind the router clock to the checkpoint's: the screening
        // window must match the restored state, or replaying the
        // post-checkpoint log would reject its own earliest records
        // as stale.
        self.t_base = t_base;
        self.recount_owned();
        if reshape {
            self.reroute_subscriptions();
        }
        // Segments reset: start a new epoch so shipped byte offsets
        // from the old log can never be misread against the new one.
        self.wal_epoch += 1;
        Ok(())
    }

    fn set_fault_plan(&self, plan: FaultPlan) {
        // Scoped to shard 0: fault injection exercises *partial*
        // degradation — only the faulted shard's sub-domain degrades.
        self.set_shard_fault_plan(0, plan);
    }

    fn fault_stats(&self) -> FaultStats {
        let mut total = FaultStats::default();
        for i in 0..self.plane.shards.len() {
            total += self.plane.read_shard(i).engine.fault_stats();
        }
        total
    }

    fn interval_query(&self, rho: f64, l: f64, from: Timestamp, to: Timestamp) -> RegionSet {
        self.assert_edge_covered(l);
        let plane = Arc::clone(&self.plane);
        let parts = self.fan_out(move |i| {
            if plane.degraded[i].load(Ordering::Acquire) {
                // Filter-only union over the interval for a lost shard.
                let mut acc = RegionSet::new();
                for t in from..=to {
                    if let Some(a) = plane
                        .read_shard(i)
                        .engine
                        .degraded_query(&PdrQuery::new(rho, l, t))
                    {
                        acc.extend_from(&a.regions);
                    }
                }
                acc
            } else {
                plane.read_shard(i).engine.interval_query(rho, l, from, to)
            }
        });
        RegionSet::union_disjoint_clipped(
            parts
                .iter()
                .enumerate()
                .map(|(i, rs)| (rs, self.plane.part.owned(i))),
        )
    }

    fn subscriptions(&self) -> Option<&SubscriptionTable> {
        Some(&self.subs)
    }

    fn subscriptions_mut(&mut self) -> Option<&mut SubscriptionTable> {
        Some(&mut self.subs)
    }

    fn register_subscription(
        &mut self,
        rho: f64,
        l: f64,
        region: Rect,
        policy: QtPolicy,
    ) -> Result<SubId, SubError> {
        // The halo covers edges up to `l_max`; a wider standing query
        // would silently lose density at cut lines, so refuse it with a
        // typed error instead of maintaining a wrong answer.
        if l > self.l_max {
            return Err(SubError::EdgeExceedsHalo {
                l,
                l_max: self.l_max,
            });
        }
        let id = self.subs.register(rho, l, region, policy)?;
        let sub = *self.subs.get(id).expect("just registered");
        let owners = self.owners_of(&region);
        for &i in &owners {
            let mut s = self.plane.write_shard(i);
            match s.engine.subscriptions_mut() {
                Some(table) => table.register_with_id(sub),
                None => {
                    // Roll back: leave no half-registered subscription.
                    drop(s);
                    for &j in &owners {
                        if let Some(t) = self.plane.write_shard(j).engine.subscriptions_mut() {
                            t.unregister(id);
                        }
                    }
                    self.subs.unregister(id);
                    return Err(SubError::Unsupported);
                }
            }
        }
        self.sub_owners.insert(id.0, owners);
        Ok(id)
    }

    fn unregister_subscription(&mut self, id: SubId) -> bool {
        if !self.subs.unregister(id) {
            return false;
        }
        for i in self.sub_owners.remove(&id.0).unwrap_or_default() {
            if let Some(t) = self.plane.write_shard(i).engine.subscriptions_mut() {
                t.unregister(id);
            }
        }
        true
    }

    fn maintain_subscriptions(&mut self, now: Timestamp) -> Vec<AnswerDelta> {
        if self.subs.is_empty() {
            return Vec::new();
        }
        // Fan the inner incremental maintenance across shards — each
        // shard patches its own (full-domain) answers for the subs it
        // owns; the plane-level merge below turns those into one
        // cut-independent canonical answer per subscription.
        let plane = Arc::clone(&self.plane);
        self.fan_out(move |i| {
            plane.write_shard(i).engine.maintain_subscriptions(now);
        });
        let specs: Vec<Subscription> = self.subs.subs().copied().collect();
        let mut deltas = Vec::new();
        for sub in specs {
            let q_t = sub.policy.resolve(now);
            let owners = self.sub_owners.get(&sub.id.0).cloned().unwrap_or_default();
            // Clip each owning shard's maintained answer to its owned
            // rectangle and merge canonically: point-set equality of
            // the per-shard answers (the halo invariant) makes the
            // merged rect list bit-identical to the unsharded one. A
            // degraded owner cannot vouch for its sub-domain, so the
            // subscription is marked degraded rather than patched with
            // rects that may be wrong.
            let mut parts: Vec<(RegionSet, Rect)> = Vec::with_capacity(owners.len());
            let mut degraded = false;
            for &i in &owners {
                if self.plane.degraded[i].load(Ordering::Acquire) {
                    degraded = true;
                    break;
                }
                let s = self.plane.read_shard(i);
                let inner = s.engine.subscriptions();
                match (
                    inner.and_then(|t| t.answer(sub.id)),
                    inner.and_then(|t| t.is_degraded(sub.id)),
                ) {
                    (Some(rects), Some(false)) => parts.push((
                        RegionSet::from_rects(rects.iter().copied()),
                        self.plane.part.owned(i),
                    )),
                    _ => {
                        degraded = true;
                        break;
                    }
                }
            }
            let delta = if degraded {
                self.subs.mark_degraded(sub.id, now, q_t)
            } else {
                let merged =
                    RegionSet::union_disjoint_clipped(parts.iter().map(|(rs, r)| (rs, *r)));
                self.subs.commit(sub.id, merged, now, q_t)
            };
            deltas.extend(delta);
        }
        deltas
    }

    fn stats(&self) -> EngineStats {
        // Router-level counts for protocol totals (each input update
        // counted once, however many shards it was replicated to);
        // shard sums for capacity numbers (`objects` therefore counts
        // halo ghosts once per replica — it measures shard load, not
        // distinct objects).
        let mut memory_bytes = 0usize;
        let mut objects = 0usize;
        let mut missed_deletes = 0u64;
        let mut inner_rejected = 0u64;
        for i in 0..self.plane.shards.len() {
            let st = self.plane.read_shard(i).engine.stats();
            memory_bytes += st.memory_bytes;
            objects += st.objects;
            missed_deletes += st.missed_deletes;
            inner_rejected += st.rejected_updates;
        }
        EngineStats {
            updates_applied: self.updates_applied,
            missed_deletes,
            rejected_updates: self.rejected_updates + inner_rejected,
            memory_bytes,
            objects,
            queries_served: self.queries_served.load(Ordering::Relaxed),
        }
    }

    fn obs(&self) -> ObsReport {
        // Counters sum across shards; per-stage latency detail lives in
        // `shard_metrics_json` (histogram snapshots do not merge).
        let mut counters: Vec<(&'static str, u64)> = Vec::new();
        for i in 0..self.plane.shards.len() {
            for (name, v) in self.plane.read_shard(i).engine.obs().counters {
                match counters.iter_mut().find(|(n, _)| *n == name) {
                    Some((_, total)) => *total += v,
                    None => counters.push((name, v)),
                }
            }
        }
        // WAL append-path allocation accounting, mirroring the
        // `refine_allocs` pattern: records frame directly into the log
        // buffer, so this stays O(log bytes), not O(records).
        let (mut wal_allocs, mut wal_bytes) = (0u64, 0u64);
        for i in 0..self.plane.shards.len() {
            let s = self.plane.read_shard(i);
            wal_allocs += s.wal.allocs();
            wal_bytes += s.wal.offset() as u64;
        }
        counters.push(("wal_allocs", wal_allocs));
        counters.push(("wal_bytes", wal_bytes));
        counters.push(("repl_epoch", self.repl_epoch));
        counters.push(("fenced_writes", self.fenced_writes()));
        ObsReport {
            counters,
            stages: Vec::new(),
        }
    }

    fn set_obs_enabled(&mut self, on: bool) {
        for i in 0..self.plane.shards.len() {
            self.plane.write_shard(i).engine.set_obs_enabled(on);
        }
    }

    fn as_sharded(&self) -> Option<&ShardedEngine> {
        Some(self)
    }

    fn as_sharded_mut(&mut self) -> Option<&mut ShardedEngine> {
        Some(self)
    }

    fn shard_metrics_json(&self) -> Option<String> {
        let blocks: Vec<String> = (0..self.plane.shards.len())
            .map(|i| {
                let s = self.plane.read_shard(i);
                let st = s.engine.stats();
                let tile = self.plane.part.tile(i);
                format!(
                    "{{\"shard\":{i},\"segment\":\"{}\",\"tile\":[{},{},{},{}],\
                     \"degraded\":{},\"wal_records\":{},\"wal_bytes\":{},\
                     \"wal_codec\":\"{}\",\"wal_allocs\":{},\
                     \"objects\":{},\"updates_applied\":{},\"queries_served\":{},\
                     \"subs\":{},\"faults\":{},\"obs\":{}}}",
                    segment_name(i as u32),
                    crate::obs::json_f64(tile.x_lo),
                    crate::obs::json_f64(tile.y_lo),
                    crate::obs::json_f64(tile.x_hi),
                    crate::obs::json_f64(tile.y_hi),
                    self.plane.degraded[i].load(Ordering::Acquire),
                    s.wal.records(),
                    s.wal.bytes().len(),
                    s.wal.codec().label(),
                    s.wal.allocs(),
                    st.objects,
                    st.updates_applied,
                    st.queries_served,
                    s.engine.subscriptions().map_or(0, |t| t.len()),
                    s.engine.fault_stats().injected(),
                    s.engine.obs().to_json(),
                )
            })
            .collect();
        Some(format!("[{}]", blocks.join(",")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdr_geometry::Point;

    fn map_2x2() -> ShardMap {
        ShardMap::new(Rect::new(0.0, 0.0, 100.0, 100.0), 2, 2, 10.0)
    }

    #[test]
    fn owned_rects_tile_the_plane() {
        let map = map_2x2();
        assert_eq!(map.shards(), 4);
        // Every point belongs to exactly one owned rect (half-open).
        for &p in &[
            Point::new(0.0, 0.0),
            Point::new(50.0, 50.0),
            Point::new(49.999, 50.0),
            Point::new(-1e9, 1e9),
            Point::new(120.0, -3.0),
        ] {
            let owners: Vec<usize> = (0..4)
                .filter(|&i| map.owned(i).contains_half_open(p))
                .collect();
            assert_eq!(owners.len(), 1, "point {p:?} owned by {owners:?}");
        }
        // Tiles are finite and cover the nominal bounds.
        let mut area = 0.0;
        for i in 0..4 {
            area += map.tile(i).area();
        }
        assert!((area - 100.0 * 100.0).abs() < 1e-6);
    }

    #[test]
    fn routing_includes_halo_neighbors() {
        let map = map_2x2();
        // A box strictly inside shard 0's tile, far from cuts: one target.
        let inner = Rect::new(10.0, 10.0, 20.0, 20.0);
        assert_eq!(map.route(&inner).collect::<Vec<_>>(), vec![0]);
        // A box within halo distance of the x = 50 cut: shards 0 and 1.
        let near_cut = Rect::new(41.0, 10.0, 45.0, 20.0);
        assert_eq!(map.route(&near_cut).collect::<Vec<_>>(), vec![0, 1]);
        // A box on the cut crossing: all four.
        let center = Rect::new(49.0, 49.0, 51.0, 51.0);
        assert_eq!(map.route(&center).collect::<Vec<_>>(), vec![0, 1, 2, 3]);
        // Outside the nominal bounds still routes (edge shards own the
        // plane out to infinity).
        let outside = Rect::new(150.0, 150.0, 160.0, 160.0);
        assert_eq!(map.route(&outside).collect::<Vec<_>>(), vec![3]);
    }

    #[test]
    fn one_by_one_map_routes_everything_to_shard_zero() {
        let map = ShardMap::new(Rect::new(0.0, 0.0, 100.0, 100.0), 1, 1, 0.0);
        let anywhere = Rect::new(-1e12, -1e12, 1e12, 1e12);
        assert_eq!(map.route(&anywhere).collect::<Vec<_>>(), vec![0]);
        assert_eq!(
            map.route(&Rect::new(3.0, 3.0, 4.0, 4.0))
                .collect::<Vec<_>>(),
            vec![0]
        );
    }

    // -----------------------------------------------------------------
    // Adaptive partition
    // -----------------------------------------------------------------

    #[test]
    fn partition_from_grid_matches_shard_map() {
        let map = map_2x2();
        let part = Partition::from_grid(&map);
        assert_eq!(part.shards(), map.shards());
        assert_eq!(part.epoch(), 0);
        for i in 0..map.shards() {
            assert_eq!(part.tile(i), map.tile(i), "tile {i}");
            assert_eq!(part.owned(i), map.owned(i), "owned {i}");
        }
        for bbox in [
            Rect::new(10.0, 10.0, 20.0, 20.0),
            Rect::new(41.0, 10.0, 45.0, 20.0),
            Rect::new(49.0, 49.0, 51.0, 51.0),
            Rect::new(150.0, 150.0, 160.0, 160.0),
        ] {
            assert_eq!(
                part.route(&bbox).collect::<Vec<_>>(),
                map.route(&bbox).collect::<Vec<_>>(),
                "route {bbox:?}"
            );
        }
    }

    #[test]
    fn partition_split_and_merge_round_trip() {
        let map = ShardMap::new(Rect::new(0.0, 0.0, 100.0, 100.0), 1, 1, 15.0);
        let mut part = Partition::from_grid(&map);
        let before = part.clone();
        let kids = part.split(0);
        assert_eq!(part.shards(), 4);
        assert_eq!(part.epoch(), 1);
        assert_eq!(kids.len(), 4);
        // Children tile the parent exactly and own the whole plane.
        let mut area = 0.0;
        for i in 0..4 {
            area += part.tile(i).area();
            assert_eq!(part.leaves()[i].depth(), 1);
        }
        assert!((area - 100.0 * 100.0).abs() < 1e-9);
        for &p in &[
            Point::new(0.0, 0.0),
            Point::new(50.0, 50.0),
            Point::new(-1e9, 77.0),
            Point::new(25.0, 99.0),
        ] {
            let owners: Vec<usize> = (0..part.shards())
                .filter(|&i| part.owned(i).contains_half_open(p))
                .collect();
            assert_eq!(owners.len(), 1, "point {p:?} owned by {owners:?}");
        }
        // Split a child, then merge it back: the sibling group must
        // exclude the now-incomplete top-level set, include the new one.
        let sub = part.split(2);
        assert_eq!(part.shards(), 7);
        let groups = part.sibling_groups();
        assert_eq!(groups, vec![[2, 3, 4, 5]]);
        let parent = part.merge([2, 3, 4, 5]);
        assert_eq!(part.shards(), 4);
        assert!(!sub.contains(&parent), "merged leaf gets a fresh id");
        assert_eq!(part.sibling_groups(), vec![[0, 1, 2, 3]]);
        let top = part.merge([0, 1, 2, 3]);
        assert_eq!(part.shards(), 1);
        assert_eq!(part.tile(0), before.tile(0));
        assert_eq!(part.owned(0), before.owned(0));
        assert!(top != before.leaves()[0].id || part.epoch() != before.epoch());
    }

    #[test]
    fn partition_codec_round_trip() {
        let map = map_2x2();
        let mut part = Partition::from_grid(&map);
        part.split(1);
        part.split(3);
        let mut w = pdr_storage::ByteWriter::new();
        part.encode(&mut w);
        let bytes = w.into_bytes();
        let mut r = pdr_storage::ByteReader::new(&bytes);
        let back = Partition::decode(&mut r).expect("decodes");
        assert_eq!(back, part);
    }

    fn fr_cfg() -> crate::FrConfig {
        crate::FrConfig {
            extent: 100.0,
            m: 20, // pitch 5: halo = l/2 + 2·pitch = 15
            horizon: pdr_mobject::TimeHorizon::new(4, 4),
            buffer_pages: 16,
            threads: 1,
        }
    }

    fn fr_plane(sx: u32, sy: u32) -> ShardedEngine {
        let map = ShardMap::new(Rect::new(0.0, 0.0, 100.0, 100.0), sx, sy, 15.0);
        ShardedEngine::new(
            "fr",
            map,
            pdr_mobject::TimeHorizon::new(4, 4),
            0,
            1,
            10.0,
            |_| Box::new(crate::FrEngine::new(fr_cfg(), 0)),
        )
    }

    /// A hotspot cluster in the SW quadrant plus thin background — the
    /// shape that makes "split the hottest leaf" deterministic.
    fn hotspot_population() -> Vec<(ObjectId, MotionState)> {
        let mut pop = Vec::new();
        let mut id = 0u64;
        for i in 0..60 {
            let x = 10.0 + (i % 10) as f64 * 2.5;
            let y = 10.0 + (i / 10) as f64 * 3.0;
            pop.push((
                ObjectId(id),
                MotionState::new(Point::new(x, y), Point::new(0.3, 0.2), 0),
            ));
            id += 1;
        }
        for i in 0..12 {
            let x = 55.0 + (i % 4) as f64 * 10.0;
            let y = 55.0 + (i / 4) as f64 * 12.0;
            pop.push((
                ObjectId(id),
                MotionState::new(Point::new(x, y), Point::new(-0.4, 0.1), 0),
            ));
            id += 1;
        }
        pop
    }

    /// Satellite: halo ghosts must not count as load. An object inside
    /// one shard's owned rect but within halo reach of its neighbor is
    /// replicated into both engines, yet the policy-facing counters
    /// must see it exactly once.
    #[test]
    fn owned_load_counts_ghosts_once() {
        let mut plane = fr_plane(2, 2);
        // Right next to the x = 50 cut, owned by shard 0, ghosted into
        // shard 1 (49 + halo 15 crosses the cut).
        let near_cut = (
            ObjectId(7),
            MotionState::new(Point::new(49.0, 10.0), Point::new(0.0, 0.0), 0),
        );
        let deep_inside = (
            ObjectId(8),
            MotionState::new(Point::new(10.0, 10.0), Point::new(0.0, 0.0), 0),
        );
        plane.bulk_load(&[near_cut, deep_inside], 0);
        assert_eq!(plane.owned_objects(), &[2, 0, 0, 0]);
        // The raw engine population shows the replication: shard 1
        // carries the ghost.
        let ghosts: u64 = (0..4)
            .map(|i| plane.plane.read_shard(i).engine.stats().objects as u64)
            .sum::<u64>()
            - 2;
        assert!(ghosts >= 1, "expected at least one halo ghost");
        // A churn that moves the object across the cut moves ownership.
        let batch = vec![
            Update::delete(ObjectId(7), 1, near_cut.1),
            Update::insert(
                ObjectId(7),
                1,
                MotionState::new(Point::new(60.0, 10.0), Point::new(0.0, 0.0), 1),
            ),
        ];
        plane.advance_to(1);
        plane.apply_batch(&batch);
        assert_eq!(plane.owned_objects(), &[1, 1, 0, 0]);
        // Deletes drop the count entirely.
        plane.apply_batch(&[Update::delete(
            ObjectId(8),
            1,
            MotionState::new(Point::new(10.0, 10.0), Point::new(0.0, 0.0), 0),
        )]);
        assert_eq!(plane.owned_objects(), &[0, 1, 0, 0]);
    }

    /// Split (live migration to four children) and merge (rebuild from
    /// the router table) must both preserve answers bit-for-bit against
    /// the unsharded engine.
    #[test]
    fn split_then_merge_keeps_answers_bit_identical() {
        let pop = hotspot_population();
        let mut reference = crate::FrEngine::new(fr_cfg(), 0);
        reference.bulk_load(&pop, 0);
        let mut plane = fr_plane(1, 1);
        plane.bulk_load(&pop, 0);

        let check = |plane: &ShardedEngine, reference: &crate::FrEngine, t: Timestamp| {
            for q_t in t..=t + 2 {
                for (rho, l) in [(0.08, 10.0), (0.15, 10.0), (0.04, 10.0)] {
                    let q = PdrQuery::new(rho, l, q_t);
                    let mut want = reference.query(&q).regions;
                    want.canonicalize();
                    let got = plane.query(&q).regions;
                    assert_eq!(
                        got.rects(),
                        want.rects(),
                        "diverged at t={t} q_t={q_t} rho={rho} l={l} leaves={}",
                        plane.map().shards()
                    );
                }
            }
        };
        check(&plane, &reference, 0);

        let r = plane.rebalance_split().expect("first split");
        assert_eq!(r.leaves, 4);
        assert_eq!(plane.part_epoch(), 1);
        check(&plane, &reference, 0);

        // The hotspot sits in the SW child; a second split goes there.
        let r2 = plane.rebalance_split().expect("second split");
        assert_eq!(r2.leaves, 7);
        check(&plane, &reference, 0);

        // Keep churning after the migrations.
        plane.advance_to(1);
        reference.advance_to(1);
        let old = pop[3].1;
        let batch = vec![
            Update::delete(pop[3].0, 1, old),
            Update::insert(
                pop[3].0,
                1,
                MotionState::new(Point::new(80.0, 80.0), Point::new(0.5, -0.5), 1),
            ),
        ];
        plane.apply_batch(&batch);
        reference.apply_batch(&batch);
        check(&plane, &reference, 1);

        // Merge the deep group back, then the top-level one.
        let m = plane.rebalance_merge().expect("merge");
        assert_eq!(m.leaves, 4);
        check(&plane, &reference, 1);
        let m2 = plane.rebalance_merge().expect("merge to root");
        assert_eq!(m2.leaves, 1);
        check(&plane, &reference, 1);
        assert_eq!(plane.splits(), 2);
        assert_eq!(plane.merges(), 2);
    }

    /// A crash after the flip restores into the *new* topology; a fresh
    /// plane restoring the same checkpoint reshapes to match.
    #[test]
    fn checkpoint_restores_across_topology_change() {
        let pop = hotspot_population();
        let mut plane = fr_plane(1, 1);
        plane.bulk_load(&pop, 0);
        plane.rebalance_split().expect("split");
        plane.advance_to(1);
        let q = PdrQuery::new(0.08, 10.0, 1);
        let want = plane.query(&q).regions;
        let cp = plane.checkpoint().expect("composed checkpoint");

        // Restore into a fresh 1×1 plane: it must reshape to 4 leaves.
        let mut fresh = fr_plane(1, 1);
        fresh.restore_from(&cp).expect("reshaping restore");
        assert_eq!(fresh.map().shards(), 4);
        assert_eq!(fresh.part_epoch(), plane.part_epoch());
        assert_eq!(fresh.query(&q).regions.rects(), want.rects());

        // Restore into the same plane (the crash-recovery path).
        plane.restore_from(&cp).expect("self restore");
        assert_eq!(plane.query(&q).regions.rects(), want.rects());
    }
}
