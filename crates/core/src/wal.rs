//! Write-ahead log and checksummed checkpoints for engine state.
//!
//! The serve loop treats the density state (ObjectTable reports, DH
//! counts, Chebyshev coefficient grids) as state that must survive
//! faults: every tick's protocol traffic is appended to a [`Wal`]
//! *before* it is applied, and engines periodically emit checkpoints
//! sealed with [`seal_checkpoint`]. Recovery restores the latest
//! checkpoint and replays the WAL tail; because every engine mutation
//! is deterministic (integer histogram counters, order-preserving
//! batches) the recovered engine answers queries **bit-identically** to
//! one that never crashed — asserted by the crash-point sweep test.
//!
//! Both layers are checksummed so corruption is detected, not
//! consumed:
//!
//! * each WAL record is framed `[len u32][crc32 u32][payload]`; replay
//!   stops cleanly at a torn tail (a record whose frame is incomplete
//!   or whose checksum fails), reporting how many bytes it dropped;
//! * a checkpoint is wrapped `PDCK` + version + length + crc32 by
//!   [`seal_checkpoint`] and verified by [`open_checkpoint`].
//!
//! Two record codecs share that frame format. [`WalCodec::V1`] is the
//! original row-oriented layout (fixed-width fields per update).
//! [`WalCodec::V2`] is columnar: a batch stores all ids, then all
//! timestamps, then the kind column, then the motion columns —
//! LEB128 varints with delta coding for ids, delta-of-delta for
//! `t_now`, `t_ref` relative to its row's `t_now`, run-length coding
//! for the (alternating) kind column, and XOR-predicted raw-bits f64
//! columns (see [`crate::colcodec`]). [`replay`] and [`replay_any`]
//! decode both codecs bit-exactly; a log may even interleave them,
//! since the codec is a per-record property of the payload tag.

use crate::colcodec::{get_xor_column_classed, put_xor_column_classed};
use pdr_mobject::{MotionState, ObjectId, Timestamp, Update, UpdateKind};
use pdr_storage::{crc32, ByteReader, ByteWriter, CodecError};
use std::fmt;

/// Record payload tags. Tags 1/2 are the row-oriented codec1 layout;
/// tags 3/4 are the columnar codec2 layout.
const TAG_ADVANCE: u8 = 1;
const TAG_BATCH: u8 = 2;
const TAG_ADVANCE2: u8 = 3;
const TAG_BATCH2: u8 = 4;

/// Which record codec a [`Wal`] writes. Readers never need this —
/// every record names its codec in its payload tag.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum WalCodec {
    /// Row-oriented fixed-width records (the original format).
    #[default]
    V1,
    /// Columnar delta/varint/XOR-predicted records (`codec2`).
    V2,
}

impl WalCodec {
    /// Both codecs, for sweep-style tests and benches.
    pub const ALL: [WalCodec; 2] = [WalCodec::V1, WalCodec::V2];

    /// Stable lowercase label (`"codec1"` / `"codec2"`).
    pub fn label(self) -> &'static str {
        match self {
            WalCodec::V1 => "codec1",
            WalCodec::V2 => "codec2",
        }
    }
}

/// One logical WAL record.
#[derive(Clone, Debug, PartialEq)]
pub enum WalRecord {
    /// `advance_to(t)` was about to run.
    Advance(Timestamp),
    /// `apply_batch(updates)` was about to run.
    Batch(Vec<Update>),
}

/// An in-memory write-ahead log of the update protocol. Records are
/// appended *before* the corresponding engine mutation runs.
#[derive(Clone, Debug, Default)]
pub struct Wal {
    log: ByteWriter,
    records: u64,
    codec: WalCodec,
    allocs: u64,
}

impl Wal {
    /// An empty log writing the original codec1 records.
    pub fn new() -> Self {
        Wal::default()
    }

    /// An empty log writing the given codec.
    pub fn with_codec(codec: WalCodec) -> Self {
        Wal {
            codec,
            ..Wal::default()
        }
    }

    /// The codec this log writes (readers auto-detect per record).
    pub fn codec(&self) -> WalCodec {
        self.codec
    }

    /// The raw encoded log (what would be on disk).
    pub fn bytes(&self) -> &[u8] {
        self.log.as_slice()
    }

    /// Current end offset — a checkpoint taken now replays from here.
    pub fn offset(&self) -> usize {
        self.log.len()
    }

    /// Records appended so far.
    pub fn records(&self) -> u64 {
        self.records
    }

    /// Appends that grew the log's heap allocation. Appends frame
    /// records directly into the log buffer, so growth is the only
    /// allocation on this path and amortizes to O(log bytes) events.
    pub fn allocs(&self) -> u64 {
        self.allocs
    }

    /// Appends an `advance_to(t)` record.
    pub fn append_advance(&mut self, t: Timestamp) {
        let codec = self.codec;
        self.frame_with(|w| match codec {
            WalCodec::V1 => {
                w.put_u8(TAG_ADVANCE);
                w.put_u64(t);
            }
            WalCodec::V2 => {
                w.put_u8(TAG_ADVANCE2);
                w.put_uvarint(t);
            }
        });
    }

    /// Appends an `apply_batch` record.
    pub fn append_batch(&mut self, updates: &[Update]) {
        let codec = self.codec;
        self.frame_with(|w| match codec {
            WalCodec::V1 => encode_batch_v1(w, updates),
            WalCodec::V2 => encode_batch_v2(w, updates),
        });
    }

    /// Appends already-framed record bytes — a segment tail shipped
    /// from a primary log whose frames were verified by [`replay`].
    /// `records` is the number of whole frames in `bytes`.
    pub fn append_framed(&mut self, bytes: &[u8], records: u64) {
        let cap = self.log.capacity();
        self.log.put_bytes(bytes);
        if self.log.capacity() != cap {
            self.allocs += 1;
        }
        self.records += records;
    }

    /// Frames one record: writes a placeholder length/crc header,
    /// lets `encode` append the payload *directly into the log
    /// buffer*, then patches the header in place. No temporary
    /// payload buffer, no copy — the only allocation is buffer
    /// growth, which [`Wal::allocs`] counts.
    fn frame_with(&mut self, encode: impl FnOnce(&mut ByteWriter)) {
        let cap = self.log.capacity();
        let start = self.log.len();
        self.log.put_u64(0); // len + crc placeholders
        encode(&mut self.log);
        let payload = &self.log.as_slice()[start + 8..];
        let len = u32::try_from(payload.len()).expect("record exceeds u32");
        let crc = crc32(payload);
        self.log.patch_u32(start, len);
        self.log.patch_u32(start + 4, crc);
        if self.log.capacity() != cap {
            self.allocs += 1;
        }
        self.records += 1;
    }
}

/// Outcome of replaying (a prefix of) a WAL byte stream.
#[derive(Clone, Debug, PartialEq)]
pub struct WalReplay {
    /// The complete, checksum-verified records, in append order.
    pub records: Vec<WalRecord>,
    /// Bytes at the tail that did not form a verified record (torn
    /// final write, or a truncated copy). `0` for a clean log.
    pub torn_bytes: usize,
}

/// Decodes `bytes` record by record, stopping cleanly at a torn tail.
/// A record that passes its checksum but fails to decode is a format
/// error (not a torn write) and is reported as `Err`. Records of both
/// codecs are decoded transparently.
pub fn replay(bytes: &[u8]) -> Result<WalReplay, CodecError> {
    let mut records = Vec::new();
    let mut pos = 0usize;
    while pos < bytes.len() {
        let remaining = &bytes[pos..];
        if remaining.len() < 8 {
            break; // torn frame header
        }
        let len = u32::from_le_bytes(remaining[0..4].try_into().expect("4 bytes")) as usize;
        let crc = u32::from_le_bytes(remaining[4..8].try_into().expect("4 bytes"));
        if remaining.len() < 8 + len {
            break; // torn payload
        }
        let payload = &remaining[8..8 + len];
        if crc32(payload) != crc {
            break; // half-written record: checksum catches it
        }
        records.push(decode_record(payload)?);
        pos += 8 + len;
    }
    Ok(WalReplay {
        records,
        torn_bytes: bytes.len() - pos,
    })
}

/// Byte offsets of every record boundary in `bytes` (0, after record
/// 1, after record 2, …). The crash-point sweep kills the log at each
/// of these and at points in between.
pub fn record_boundaries(bytes: &[u8]) -> Vec<usize> {
    let mut offsets = vec![0usize];
    let mut pos = 0usize;
    while pos + 8 <= bytes.len() {
        let len = u32::from_le_bytes(bytes[pos..pos + 4].try_into().expect("4 bytes")) as usize;
        if pos + 8 + len > bytes.len() {
            break;
        }
        pos += 8 + len;
        offsets.push(pos);
    }
    offsets
}

// ---------------------------------------------------------------------
// codec1: row-oriented records
// ---------------------------------------------------------------------

fn encode_batch_v1(w: &mut ByteWriter, updates: &[Update]) {
    w.put_u8(TAG_BATCH);
    w.put_u32(u32::try_from(updates.len()).expect("batch exceeds u32"));
    for u in updates {
        encode_update(w, u);
    }
}

fn encode_update(w: &mut ByteWriter, u: &Update) {
    w.put_u64(u.id.0);
    w.put_u64(u.t_now);
    let (kind, m) = match u.kind {
        UpdateKind::Insert { motion } => (0u8, motion),
        UpdateKind::Delete { old_motion } => (1u8, old_motion),
    };
    w.put_u8(kind);
    w.put_f64(m.origin.x);
    w.put_f64(m.origin.y);
    w.put_f64(m.velocity.x);
    w.put_f64(m.velocity.y);
    w.put_u64(m.t_ref);
}

fn decode_update(r: &mut ByteReader<'_>) -> Result<Update, CodecError> {
    let id = ObjectId(r.get_u64()?);
    let t_now = r.get_u64()?;
    let kind = r.get_u8()?;
    let ox = r.get_f64()?;
    let oy = r.get_f64()?;
    let vx = r.get_f64()?;
    let vy = r.get_f64()?;
    let t_ref = r.get_u64()?;
    build_update(id, t_now, kind, ox, oy, vx, vy, t_ref)
}

#[allow(clippy::too_many_arguments)]
fn build_update(
    id: ObjectId,
    t_now: Timestamp,
    kind: u8,
    ox: f64,
    oy: f64,
    vx: f64,
    vy: f64,
    t_ref: Timestamp,
) -> Result<Update, CodecError> {
    if !(ox.is_finite() && oy.is_finite() && vx.is_finite() && vy.is_finite()) {
        return Err(CodecError::Corrupt("non-finite motion in WAL"));
    }
    let motion = MotionState {
        origin: pdr_geometry::Point::new(ox, oy),
        velocity: pdr_geometry::Point::new(vx, vy),
        t_ref,
    };
    match kind {
        0 => Ok(Update {
            id,
            t_now,
            kind: UpdateKind::Insert { motion },
        }),
        1 => Ok(Update {
            id,
            t_now,
            kind: UpdateKind::Delete { old_motion: motion },
        }),
        _ => Err(CodecError::Corrupt("unknown update kind in WAL")),
    }
}

// ---------------------------------------------------------------------
// codec2: columnar records
// ---------------------------------------------------------------------
//
// Batch layout (after the tag):
//
//   n            uvarint   row count
//   ids          uvarint first, then ivarint deltas (wrapping)
//   t_now        uvarint first, ivarint first delta, then the
//                delta-of-delta stream zero-run encoded: repeated
//                (uvarint zero-run-length, then — if rows remain —
//                one non-zero ivarint). A tick's batch is
//                constant-time, so the whole column is ~3 bytes
//   kinds        u8 first kind, then RLE runs over the XOR-diff
//                stream kind[i]^kind[i-1] — the workload's
//                delete/insert pairs alternate every row, which is
//                RLE's worst case raw but a single all-ones run after
//                the diff transform
//   t_ref        zigzag(t_ref - t_now) nibble-packed two per byte;
//                nibble 15 escapes to a full uvarint appended after
//                the nibble block in row order. Inserts report
//                t_ref == t_now (nibble 0) and delete ages are small,
//                so this column is ~0.5 bytes/row
//   vx vy        sign-separated f64 bit columns: ceil(n/8) bytes of
//                packed sign bits (LSB-first), then the magnitude
//                bits (sign masked off) as a class-coded XOR column
//                (colcodec) predicted from the previous row's
//                magnitude. Re-reports flip heading sign freely; the
//                magnitudes' exponents stay close, so stripping the
//                sign saves most of the top residual byte
//   ox oy        class-coded XOR f64 bit columns. Origins predict the
//                previous row's value — except when a row is the
//                insert half of a delete/insert pair for the same id
//                at the same t_now, where the prediction is the
//                deleted motion dead-reckoned to t_now
//                (`origin + velocity * dt`, matching
//                `MotionState::position_at`): a timeout re-report's
//                origin is near (often exactly) that point
//
// Velocity columns come before origin columns because the origin
// prediction for row i reads the already-decoded velocity of row i-1
// (full bits, sign included).

/// Zigzag maps signed to unsigned so small magnitudes of either sign
/// get small codes (0, -1, 1, -2, ... → 0, 1, 2, 3, ...).
fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

fn unzigzag(z: u64) -> i64 {
    ((z >> 1) as i64) ^ -((z & 1) as i64)
}

const SIGN_BIT: u64 = 1 << 63;

/// Writes a velocity column: packed sign bits, then the class-coded
/// XOR column of the magnitude bits predicted from the previous row's
/// magnitude.
fn put_velocity_column(w: &mut ByteWriter, col: &[u64]) {
    let n = col.len();
    let mut i = 0;
    while i < n {
        let mut byte = 0u8;
        for j in 0..8 {
            if i + j < n && col[i + j] & SIGN_BIT != 0 {
                byte |= 1 << j;
            }
        }
        w.put_u8(byte);
        i += 8;
    }
    let mags: Vec<u64> = col.iter().map(|&v| v & !SIGN_BIT).collect();
    let preds: Vec<u64> = std::iter::once(0)
        .chain(mags[..n - 1].iter().copied())
        .collect();
    put_xor_column_classed(w, &mags, &preds);
}

/// Reads a column written by [`put_velocity_column`], returning full
/// bits (sign restored).
fn get_velocity_column(r: &mut ByteReader<'_>, n: usize) -> Result<Vec<u64>, CodecError> {
    let sign_bytes = r.get_bytes(n.div_ceil(8))?.to_vec();
    let prev = |i: usize, done: &[u64]| if i == 0 { 0 } else { done[i - 1] };
    let mags = get_xor_column_classed(r, n, prev)?;
    Ok(mags
        .iter()
        .enumerate()
        .map(|(i, &m)| {
            let sign = (sign_bytes[i / 8] >> (i % 8)) & 1;
            m | (u64::from(sign) << 63)
        })
        .collect())
}

/// Marks rows that are the insert half of a same-id, same-timestamp
/// delete/insert pair (the shape `ObjectTable::report` emits).
fn pair_flags(ids: &[u64], t_now: &[u64], kinds: &[u8]) -> Vec<bool> {
    (0..ids.len())
        .map(|i| {
            i > 0
                && kinds[i] == 0
                && kinds[i - 1] == 1
                && ids[i] == ids[i - 1]
                && t_now[i] == t_now[i - 1]
        })
        .collect()
}

/// Dead-reckons a deleted motion's coordinate to `t_now` — the codec2
/// origin prediction for pair rows. Must stay bit-identical between
/// encoder and decoder (it is: both call this), and matches
/// `MotionState::position_at` so simulator timeout re-reports predict
/// exactly.
fn predict_coord(coord_bits: u64, vel_bits: u64, t_now: u64, t_ref: u64) -> u64 {
    let dt = t_now as f64 - t_ref as f64;
    (f64::from_bits(coord_bits) + f64::from_bits(vel_bits) * dt).to_bits()
}

fn encode_batch_v2(w: &mut ByteWriter, updates: &[Update]) {
    w.put_u8(TAG_BATCH2);
    w.put_uvarint(updates.len() as u64);
    let n = updates.len();
    if n == 0 {
        return;
    }
    let ids: Vec<u64> = updates.iter().map(|u| u.id.0).collect();
    let t_now: Vec<u64> = updates.iter().map(|u| u.t_now).collect();
    let mut kinds = Vec::with_capacity(n);
    let mut motions = Vec::with_capacity(n);
    for u in updates {
        let (k, m) = match u.kind {
            UpdateKind::Insert { motion } => (0u8, motion),
            UpdateKind::Delete { old_motion } => (1u8, old_motion),
        };
        kinds.push(k);
        motions.push(m);
    }

    // id column: first value, then wrapping deltas.
    w.put_uvarint(ids[0]);
    for i in 1..n {
        w.put_ivarint(ids[i].wrapping_sub(ids[i - 1]) as i64);
    }

    // t_now column: delta-of-delta, zero-run encoded.
    w.put_uvarint(t_now[0]);
    if n >= 2 {
        let mut prev = t_now[1].wrapping_sub(t_now[0]) as i64;
        w.put_ivarint(prev);
        let mut dod = Vec::with_capacity(n - 2);
        for i in 2..n {
            let d = t_now[i].wrapping_sub(t_now[i - 1]) as i64;
            dod.push(d.wrapping_sub(prev));
            prev = d;
        }
        let mut i = 0;
        while i < dod.len() {
            let mut zeros = 0;
            while i + zeros < dod.len() && dod[i + zeros] == 0 {
                zeros += 1;
            }
            w.put_uvarint(zeros as u64);
            i += zeros;
            if i < dod.len() {
                w.put_ivarint(dod[i]);
                i += 1;
            }
        }
    }

    // kind column: first kind, then RLE over the XOR-diff stream.
    w.put_u8(kinds[0]);
    let mut runs: Vec<(u8, u64)> = Vec::new();
    for i in 1..n {
        let d = kinds[i] ^ kinds[i - 1];
        match runs.last_mut() {
            Some((bit, len)) if *bit == d => *len += 1,
            _ => runs.push((d, 1)),
        }
    }
    w.put_uvarint(runs.len() as u64);
    for (bit, len) in runs {
        w.put_u8(bit);
        w.put_uvarint(len);
    }

    // t_ref column: zigzag deltas against the row's t_now, nibble
    // packed; 15 escapes to a trailing uvarint.
    let rels: Vec<u64> = updates
        .iter()
        .zip(&motions)
        .map(|(u, m)| zigzag(m.t_ref.wrapping_sub(u.t_now) as i64))
        .collect();
    let mut i = 0;
    while i < n {
        let nib = |k: usize| if k < n { rels[k].min(15) as u8 } else { 0 };
        w.put_u8(nib(i) | (nib(i + 1) << 4));
        i += 2;
    }
    for &rel in &rels {
        if rel >= 15 {
            w.put_uvarint(rel);
        }
    }

    // Motion columns.
    let t_ref: Vec<u64> = motions.iter().map(|m| m.t_ref).collect();
    let vx: Vec<u64> = motions.iter().map(|m| m.velocity.x.to_bits()).collect();
    let vy: Vec<u64> = motions.iter().map(|m| m.velocity.y.to_bits()).collect();
    let ox: Vec<u64> = motions.iter().map(|m| m.origin.x.to_bits()).collect();
    let oy: Vec<u64> = motions.iter().map(|m| m.origin.y.to_bits()).collect();
    let pairs = pair_flags(&ids, &t_now, &kinds);
    put_velocity_column(w, &vx);
    put_velocity_column(w, &vy);
    let origin_preds = |coord: &[u64], vel: &[u64]| -> Vec<u64> {
        (0..n)
            .map(|i| {
                if i == 0 {
                    0
                } else if pairs[i] {
                    predict_coord(coord[i - 1], vel[i - 1], t_now[i], t_ref[i - 1])
                } else {
                    coord[i - 1]
                }
            })
            .collect()
    };
    put_xor_column_classed(w, &ox, &origin_preds(&ox, &vx));
    put_xor_column_classed(w, &oy, &origin_preds(&oy, &vy));
}

fn decode_batch_v2(r: &mut ByteReader<'_>) -> Result<Vec<Update>, CodecError> {
    let n = r.get_uvarint()? as usize;
    if n == 0 {
        return Ok(Vec::new());
    }
    if n > r.remaining() {
        return Err(CodecError::Corrupt("batch count exceeds payload"));
    }

    let mut ids = Vec::with_capacity(n);
    ids.push(r.get_uvarint()?);
    for i in 1..n {
        let d = r.get_ivarint()?;
        ids.push(ids[i - 1].wrapping_add(d as u64));
    }

    let mut t_now = Vec::with_capacity(n);
    t_now.push(r.get_uvarint()?);
    if n >= 2 {
        let mut prev = r.get_ivarint()?;
        t_now.push(t_now[0].wrapping_add(prev as u64));
        let m = n - 2;
        let mut dod = Vec::with_capacity(m);
        while dod.len() < m {
            let zeros = r.get_uvarint()? as usize;
            if zeros > m - dod.len() {
                return Err(CodecError::Corrupt("t_now zero run exceeds batch"));
            }
            dod.resize(dod.len() + zeros, 0i64);
            if dod.len() < m {
                dod.push(r.get_ivarint()?);
            }
        }
        for (i, &dd) in dod.iter().enumerate() {
            let d = prev.wrapping_add(dd);
            t_now.push(t_now[i + 1].wrapping_add(d as u64));
            prev = d;
        }
    }

    let first_kind = r.get_u8()?;
    if first_kind > 1 {
        return Err(CodecError::Corrupt("unknown update kind in WAL"));
    }
    let num_runs = r.get_uvarint()? as usize;
    if num_runs > r.remaining() {
        return Err(CodecError::Corrupt("kind run count exceeds payload"));
    }
    let mut kinds = Vec::with_capacity(n);
    kinds.push(first_kind);
    for _ in 0..num_runs {
        let bit = r.get_u8()?;
        if bit > 1 {
            return Err(CodecError::Corrupt("kind diff bit out of range"));
        }
        let len = r.get_uvarint()?;
        if len as u128 > (n - kinds.len()) as u128 {
            return Err(CodecError::Corrupt("kind runs exceed batch"));
        }
        for _ in 0..len {
            kinds.push(kinds.last().expect("non-empty") ^ bit);
        }
    }
    if kinds.len() != n {
        return Err(CodecError::Corrupt("kind runs shorter than batch"));
    }

    let packed = r.get_bytes(n.div_ceil(2))?.to_vec();
    let mut rel_nibbles = Vec::with_capacity(n);
    for byte in packed {
        for nibble in [byte & 0x0F, byte >> 4] {
            if rel_nibbles.len() == n {
                break;
            }
            rel_nibbles.push(nibble);
        }
    }
    let mut t_ref = Vec::with_capacity(n);
    for i in 0..n {
        let rel = if rel_nibbles[i] == 15 {
            r.get_uvarint()?
        } else {
            u64::from(rel_nibbles[i])
        };
        t_ref.push(t_now[i].wrapping_add(unzigzag(rel) as u64));
    }

    let vx = get_velocity_column(r, n)?;
    let vy = get_velocity_column(r, n)?;
    let pairs = pair_flags(&ids, &t_now, &kinds);
    let ox = get_xor_column_classed(r, n, |i, done| {
        if i == 0 {
            0
        } else if pairs[i] {
            predict_coord(done[i - 1], vx[i - 1], t_now[i], t_ref[i - 1])
        } else {
            done[i - 1]
        }
    })?;
    let oy = get_xor_column_classed(r, n, |i, done| {
        if i == 0 {
            0
        } else if pairs[i] {
            predict_coord(done[i - 1], vy[i - 1], t_now[i], t_ref[i - 1])
        } else {
            done[i - 1]
        }
    })?;

    let mut updates = Vec::with_capacity(n);
    for i in 0..n {
        updates.push(build_update(
            ObjectId(ids[i]),
            t_now[i],
            kinds[i],
            f64::from_bits(ox[i]),
            f64::from_bits(oy[i]),
            f64::from_bits(vx[i]),
            f64::from_bits(vy[i]),
            t_ref[i],
        )?);
    }
    Ok(updates)
}

fn decode_record(payload: &[u8]) -> Result<WalRecord, CodecError> {
    let mut r = ByteReader::new(payload);
    match r.get_u8()? {
        TAG_ADVANCE => Ok(WalRecord::Advance(r.get_u64()?)),
        TAG_BATCH => {
            let n = r.get_u32()? as usize;
            let mut updates = Vec::with_capacity(n.min(r.remaining()));
            for _ in 0..n {
                updates.push(decode_update(&mut r)?);
            }
            Ok(WalRecord::Batch(updates))
        }
        TAG_ADVANCE2 => Ok(WalRecord::Advance(r.get_uvarint()?)),
        TAG_BATCH2 => Ok(WalRecord::Batch(decode_batch_v2(&mut r)?)),
        _ => Err(CodecError::Corrupt("unknown WAL record tag")),
    }
}

// ---------------------------------------------------------------------
// Per-shard WAL segments
// ---------------------------------------------------------------------

/// Magic prefix of a per-shard WAL *segment*. A legacy single-file
/// journal starts with a frame length (a small little-endian `u32`), so
/// the two layouts are unambiguous: `b"PDWS"` decodes as the
/// implausible frame length `0x5357_4450` (> 1 GiB), which
/// [`replay`] treats as a torn tail rather than data, and no real
/// frame can start with these bytes.
const SEG_MAGIC: &[u8; 4] = b"PDWS";
const SEG_VERSION: u16 = 1;

/// Identity of one per-shard WAL segment, stored in its header.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SegmentHeader {
    /// Index of the shard that owns this segment.
    pub shard: u32,
    /// Total shard count of the plane that wrote it (a rebuilt plane
    /// with a different shard grid must not replay foreign segments).
    pub shards: u32,
}

/// Encoded byte length of a segment header.
pub const SEGMENT_HEADER_LEN: usize = 4 + 2 + 4 + 4;

/// What kind of byte stream [`replay_any`] was handed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SegmentInfo {
    /// A headerless journal written before the plane was sharded.
    Legacy,
    /// A per-shard segment with a complete, valid header.
    Header(SegmentHeader),
    /// Bytes that start with the full segment magic but end before
    /// the header completes — a torn header write. The stream carries
    /// no replayable records and no trustworthy shard identity; the
    /// caller must treat the whole segment as torn, not as a legacy
    /// journal.
    TornHeader,
}

impl SegmentInfo {
    /// The header, when a complete one was present.
    pub fn header(self) -> Option<SegmentHeader> {
        match self {
            SegmentInfo::Header(h) => Some(h),
            _ => None,
        }
    }
}

/// File name of shard `shard`'s WAL segment. The legacy single-file
/// journal is [`LEGACY_JOURNAL_NAME`]; segment names embed a zero-padded
/// shard index behind a distinct `.seg` infix, so no shard count can
/// ever produce the legacy name (regression-tested).
pub fn segment_name(shard: u32) -> String {
    format!("journal.seg{shard:04}.wal")
}

/// The single-file journal name used before the plane was sharded.
pub const LEGACY_JOURNAL_NAME: &str = "journal.wal";

/// Encodes a segment header (prepend to an empty segment's bytes).
pub fn encode_segment_header(h: SegmentHeader) -> Vec<u8> {
    let mut w = ByteWriter::with_capacity(SEGMENT_HEADER_LEN);
    w.put_bytes(SEG_MAGIC);
    w.put_u16(SEG_VERSION);
    w.put_u32(h.shard);
    w.put_u32(h.shards);
    w.into_bytes()
}

/// Replays either layout: a headered per-shard segment, a legacy
/// headerless journal, or a segment whose header write itself tore
/// (classified [`SegmentInfo::TornHeader`], **not** misread as a
/// legacy journal). This is the migration shim — a plane upgraded to
/// per-shard segments keeps reading journals written before the
/// upgrade.
pub fn replay_any(bytes: &[u8]) -> Result<(SegmentInfo, WalReplay), CodecError> {
    if bytes.len() >= 4 && &bytes[..4] == SEG_MAGIC {
        if bytes.len() < SEGMENT_HEADER_LEN {
            // The magic is unambiguous (no legacy frame can start with
            // it), but the header tore mid-write: nothing after it is
            // trustworthy.
            return Ok((
                SegmentInfo::TornHeader,
                WalReplay {
                    records: Vec::new(),
                    torn_bytes: bytes.len(),
                },
            ));
        }
        let mut r = ByteReader::new(&bytes[..SEGMENT_HEADER_LEN]);
        r.expect_magic(SEG_MAGIC)?;
        let version = r.get_u16()?;
        if version != SEG_VERSION {
            return Err(CodecError::BadVersion(version));
        }
        let header = SegmentHeader {
            shard: r.get_u32()?,
            shards: r.get_u32()?,
        };
        return Ok((
            SegmentInfo::Header(header),
            replay(&bytes[SEGMENT_HEADER_LEN..])?,
        ));
    }
    Ok((SegmentInfo::Legacy, replay(bytes)?))
}

impl Wal {
    /// An empty per-shard segment: its byte stream starts with the
    /// encoded [`SegmentHeader`], so it can never be confused with (or
    /// overwrite the meaning of) a legacy journal. Writes codec1
    /// records; see [`Wal::new_segment_with`].
    pub fn new_segment(header: SegmentHeader) -> Self {
        Wal::new_segment_with(header, WalCodec::V1)
    }

    /// An empty per-shard segment writing the given record codec.
    pub fn new_segment_with(header: SegmentHeader, codec: WalCodec) -> Self {
        let mut log = ByteWriter::with_capacity(SEGMENT_HEADER_LEN);
        log.put_bytes(&encode_segment_header(header));
        Wal {
            log,
            records: 0,
            codec,
            allocs: 0,
        }
    }
}

// ---------------------------------------------------------------------
// Checkpoint container
// ---------------------------------------------------------------------

const CKPT_MAGIC: &[u8; 4] = b"PDCK";
const CKPT_VERSION: u16 = 1;

/// Wraps an engine-specific checkpoint payload in a checksummed,
/// versioned container.
pub fn seal_checkpoint(payload: &[u8]) -> Vec<u8> {
    let mut w = ByteWriter::with_capacity(payload.len() + 18);
    w.put_bytes(CKPT_MAGIC);
    w.put_u16(CKPT_VERSION);
    w.put_u64(payload.len() as u64);
    w.put_u32(crc32(payload));
    w.put_bytes(payload);
    w.into_bytes()
}

/// Verifies a sealed checkpoint and returns the payload slice.
pub fn open_checkpoint(bytes: &[u8]) -> Result<&[u8], CodecError> {
    let mut r = ByteReader::new(bytes);
    r.expect_magic(CKPT_MAGIC)?;
    let version = r.get_u16()?;
    if version != CKPT_VERSION {
        return Err(CodecError::BadVersion(version));
    }
    let len = r.get_u64()? as usize;
    let crc = r.get_u32()?;
    let header = bytes.len() - r.remaining();
    // `len` comes straight from (possibly bitrotted or hostile) input:
    // the end offset must be computed without overflow.
    let end = header
        .checked_add(len)
        .ok_or(CodecError::Corrupt("checkpoint length overflows"))?;
    let payload = bytes.get(header..end).ok_or(CodecError::UnexpectedEof)?;
    if crc32(payload) != crc {
        return Err(CodecError::Corrupt("checkpoint checksum mismatch"));
    }
    Ok(payload)
}

/// Why a [`DensityEngine::restore_from`](crate::DensityEngine::restore_from)
/// call failed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RecoverError {
    /// The engine does not support checkpoint/restore.
    Unsupported,
    /// The checkpoint bytes failed verification or decoding.
    Codec(CodecError),
    /// The checkpoint is valid but belongs to a differently configured
    /// engine.
    Mismatch(&'static str),
    /// The shipment was cut under a replication epoch older than the
    /// receiver's — the sender is a deposed primary and must be fenced
    /// off, never silently merged.
    Fenced {
        /// The stale sender's replication epoch.
        stale: u64,
        /// The receiver's current replication epoch.
        current: u64,
    },
}

impl fmt::Display for RecoverError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RecoverError::Unsupported => write!(f, "engine does not support checkpoints"),
            RecoverError::Codec(e) => write!(f, "checkpoint rejected: {e}"),
            RecoverError::Mismatch(what) => {
                write!(f, "checkpoint belongs to a different engine: {what}")
            }
            RecoverError::Fenced { stale, current } => write!(
                f,
                "fenced: shipment from stale replication epoch {stale} (current epoch {current})"
            ),
        }
    }
}

impl std::error::Error for RecoverError {}

impl From<CodecError> for RecoverError {
    fn from(e: CodecError) -> Self {
        RecoverError::Codec(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdr_geometry::Point;

    fn sample_updates() -> Vec<Update> {
        let m = MotionState::new(Point::new(10.0, 20.0), Point::new(1.0, -1.0), 5);
        vec![
            Update::delete(ObjectId(3), 5, m),
            Update::insert(ObjectId(3), 5, m),
            Update::insert(ObjectId(9), 5, m),
        ]
    }

    #[test]
    fn wal_round_trip() {
        for codec in WalCodec::ALL {
            let mut wal = Wal::with_codec(codec);
            wal.append_advance(5);
            let batch = sample_updates();
            wal.append_batch(&batch);
            wal.append_advance(6);
            assert_eq!(wal.records(), 3);

            let replay = replay(wal.bytes()).expect("clean log decodes");
            assert_eq!(replay.torn_bytes, 0, "{}", codec.label());
            assert_eq!(replay.records.len(), 3);
            assert_eq!(replay.records[0], WalRecord::Advance(5));
            assert_eq!(replay.records[2], WalRecord::Advance(6));
            let WalRecord::Batch(got) = &replay.records[1] else {
                panic!("expected batch");
            };
            assert_eq!(got, &batch);
        }
    }

    #[test]
    fn codec2_batches_decode_bit_identically_and_smaller() {
        // A serve-shaped batch: delete/insert pairs per object at one
        // timestamp, with the insert origin exactly the dead-reckoned
        // deleted position (the simulator's timeout re-report shape).
        let t_now = 1_000u64;
        let mut batch = Vec::new();
        for i in 0..64u64 {
            let old = MotionState::new(
                Point::new(10.0 + i as f64, 20.0 + i as f64 * 0.5),
                Point::new(0.9, -0.4),
                t_now - 10,
            );
            let new = MotionState::new(old.position_at(t_now), Point::new(0.9, -0.4), t_now);
            batch.push(Update::delete(ObjectId(100 + i), t_now, old));
            batch.push(Update::insert(ObjectId(100 + i), t_now, new));
        }
        let mut v1 = Wal::new();
        v1.append_batch(&batch);
        let mut v2 = Wal::with_codec(WalCodec::V2);
        v2.append_batch(&batch);

        let r1 = replay(v1.bytes()).expect("codec1 decodes");
        let r2 = replay(v2.bytes()).expect("codec2 decodes");
        assert_eq!(r1.records, r2.records, "codecs must agree bit-exactly");
        let WalRecord::Batch(got) = &r2.records[0] else {
            panic!("expected batch");
        };
        assert_eq!(got, &batch);
        assert!(
            v2.offset() * 2 <= v1.offset(),
            "codec2 should be at least 2x smaller on the pair-shaped \
             workload: v1={} v2={}",
            v1.offset(),
            v2.offset()
        );
    }

    #[test]
    fn codec2_handles_empty_and_single_row_batches() {
        let mut wal = Wal::with_codec(WalCodec::V2);
        wal.append_batch(&[]);
        let one = vec![sample_updates().remove(2)];
        wal.append_batch(&one);
        let rep = replay(wal.bytes()).expect("decodes");
        assert_eq!(rep.records[0], WalRecord::Batch(Vec::new()));
        assert_eq!(rep.records[1], WalRecord::Batch(one));
    }

    #[test]
    fn mixed_codec_log_replays_in_order() {
        // The codec is a per-record property: a log whose tail was
        // written by an upgraded writer replays seamlessly.
        let mut wal = Wal::new();
        wal.append_advance(1);
        wal.append_batch(&sample_updates());
        let mut tail = Wal::with_codec(WalCodec::V2);
        tail.append_advance(2);
        tail.append_batch(&sample_updates());
        let mut bytes = wal.bytes().to_vec();
        bytes.extend_from_slice(tail.bytes());
        let rep = replay(&bytes).expect("mixed log decodes");
        assert_eq!(rep.torn_bytes, 0);
        assert_eq!(rep.records.len(), 4);
        assert_eq!(rep.records[0], WalRecord::Advance(1));
        assert_eq!(rep.records[2], WalRecord::Advance(2));
        assert_eq!(rep.records[1], rep.records[3]);
    }

    #[test]
    fn torn_tail_is_tolerated_not_consumed() {
        let mut wal = Wal::new();
        wal.append_advance(1);
        wal.append_batch(&sample_updates());
        let full = wal.bytes().to_vec();
        let boundaries = record_boundaries(&full);
        assert_eq!(boundaries, vec![0, 17, full.len()]);

        // Truncate mid-record: only the first record survives.
        let torn = &full[..boundaries[1] + 5];
        let replay_torn = replay(torn).expect("torn tail is not a format error");
        assert_eq!(replay_torn.records, vec![WalRecord::Advance(1)]);
        assert_eq!(replay_torn.torn_bytes, 5);

        // Corrupt a byte inside the last record's payload: the
        // checksum rejects the record instead of decoding garbage.
        let mut bitrot = full.clone();
        let last = bitrot.len() - 3;
        bitrot[last] ^= 0xFF;
        let replay_rot = replay(&bitrot).expect("checksum failure is a torn tail");
        assert_eq!(replay_rot.records, vec![WalRecord::Advance(1)]);
        assert!(replay_rot.torn_bytes > 0);
    }

    #[test]
    fn framing_appends_do_not_allocate_per_record() {
        // Records are framed directly into the log buffer: the only
        // allocations are Vec growth, which amortizes to O(log n)
        // events — not one per append.
        for codec in WalCodec::ALL {
            let mut wal = Wal::with_codec(codec);
            let batch = sample_updates();
            for t in 0..1000u64 {
                wal.append_advance(t);
                wal.append_batch(&batch);
            }
            assert_eq!(wal.records(), 2000);
            let cap = wal.bytes().len().next_power_of_two();
            let bound = (cap.ilog2() + 2) as u64;
            assert!(
                wal.allocs() <= bound,
                "{}: {} allocs for {} bytes (bound {})",
                codec.label(),
                wal.allocs(),
                wal.offset(),
                bound
            );
        }
    }

    #[test]
    fn segment_names_cannot_collide_with_legacy_journal() {
        // Sweep a generous shard range: every segment name is distinct
        // and none equals the legacy single-file journal name.
        let mut seen = std::collections::HashSet::new();
        for shard in 0..4096u32 {
            let name = segment_name(shard);
            assert_ne!(name, LEGACY_JOURNAL_NAME, "shard {shard}");
            assert!(seen.insert(name), "duplicate segment name for {shard}");
        }
    }

    #[test]
    fn replay_any_reads_both_layouts() {
        // New layout: headered per-shard segment.
        let header = SegmentHeader {
            shard: 3,
            shards: 8,
        };
        for codec in WalCodec::ALL {
            let mut seg = Wal::new_segment_with(header, codec);
            seg.append_advance(7);
            seg.append_batch(&sample_updates());
            let (got, rep) = replay_any(seg.bytes()).expect("segment decodes");
            assert_eq!(got, SegmentInfo::Header(header));
            assert_eq!(rep.records.len(), 2);
            assert_eq!(rep.records[0], WalRecord::Advance(7));

            // Old layout: the same records written by a pre-shard
            // journal are still replayed by the upgraded reader
            // (migration shim).
            let mut legacy = Wal::with_codec(codec);
            legacy.append_advance(7);
            legacy.append_batch(&sample_updates());
            let (info, rep_legacy) = replay_any(legacy.bytes()).expect("legacy decodes");
            assert_eq!(info, SegmentInfo::Legacy);
            assert_eq!(rep_legacy.records, rep.records);

            // A legacy reader fed a headered segment must not misparse
            // it as records: the magic is an implausible frame length,
            // so it reads as an all-torn tail, never as garbage
            // updates.
            let as_legacy = replay(seg.bytes()).expect("not a format error");
            assert!(as_legacy.records.is_empty());
            assert_eq!(as_legacy.torn_bytes, seg.bytes().len());

            // Version gate.
            let mut bad = seg.bytes().to_vec();
            bad[4] = 9;
            assert_eq!(replay_any(&bad).unwrap_err(), CodecError::BadVersion(9));
        }
    }

    #[test]
    fn torn_segment_header_is_classified_not_misread() {
        // Kill a segment at every byte of its header. Once the full
        // magic is visible the stream is unambiguously a segment with
        // a torn header; before that it is indistinguishable from a
        // legacy journal's torn frame header. In *every* case the
        // replay yields zero records and reports all bytes torn —
        // never a silent misread.
        let mut seg = Wal::new_segment(SegmentHeader {
            shard: 1,
            shards: 4,
        });
        seg.append_advance(9);
        let full = seg.bytes().to_vec();
        for cut in 0..SEGMENT_HEADER_LEN {
            let torn = &full[..cut];
            let (info, rep) = replay_any(torn).expect("torn header tolerated");
            if cut >= 4 {
                assert_eq!(info, SegmentInfo::TornHeader, "cut at {cut}");
                assert_eq!(info.header(), None);
            } else {
                assert_eq!(info, SegmentInfo::Legacy, "cut at {cut}");
            }
            assert!(rep.records.is_empty(), "cut at {cut}");
            assert_eq!(rep.torn_bytes, cut, "cut at {cut}");
        }
        // One byte past the torn range: the complete header parses.
        let (info, _) = replay_any(&full[..SEGMENT_HEADER_LEN]).expect("header decodes");
        assert_eq!(
            info,
            SegmentInfo::Header(SegmentHeader {
                shard: 1,
                shards: 4
            })
        );
    }

    #[test]
    fn segment_header_survives_torn_tail() {
        let mut seg = Wal::new_segment(SegmentHeader {
            shard: 0,
            shards: 2,
        });
        seg.append_advance(1);
        seg.append_batch(&sample_updates());
        let full = seg.bytes().to_vec();
        let torn = &full[..full.len() - 3];
        let (h, rep) = replay_any(torn).expect("torn tail tolerated");
        assert_eq!(
            h,
            SegmentInfo::Header(SegmentHeader {
                shard: 0,
                shards: 2
            })
        );
        assert_eq!(rep.records, vec![WalRecord::Advance(1)]);
        assert!(rep.torn_bytes > 0);
    }

    #[test]
    fn checkpoint_seal_and_open() {
        let payload = b"engine state bytes".to_vec();
        let sealed = seal_checkpoint(&payload);
        assert_eq!(open_checkpoint(&sealed).expect("verifies"), &payload[..]);

        let mut flipped = sealed.clone();
        let n = flipped.len();
        flipped[n - 1] ^= 1;
        assert_eq!(
            open_checkpoint(&flipped).unwrap_err(),
            CodecError::Corrupt("checkpoint checksum mismatch")
        );

        let mut truncated = sealed.clone();
        truncated.truncate(n - 4);
        assert_eq!(
            open_checkpoint(&truncated).unwrap_err(),
            CodecError::UnexpectedEof
        );
        assert_eq!(open_checkpoint(b"XXXX").unwrap_err(), CodecError::BadMagic);
    }

    #[test]
    fn checkpoint_with_hostile_length_is_rejected_not_overflowed() {
        // A bitrotted/hostile length of u64::MAX must come back as a
        // codec error; the unchecked `header + len` add used to
        // overflow (a debug-build panic) before being bounds-checked.
        let mut w = ByteWriter::new();
        w.put_bytes(CKPT_MAGIC);
        w.put_u16(CKPT_VERSION);
        w.put_u64(u64::MAX);
        w.put_u32(0);
        let hostile = w.into_bytes();
        assert_eq!(
            open_checkpoint(&hostile).unwrap_err(),
            CodecError::Corrupt("checkpoint length overflows")
        );

        // Near-overflow lengths that don't wrap still report EOF.
        let mut w = ByteWriter::new();
        w.put_bytes(CKPT_MAGIC);
        w.put_u16(CKPT_VERSION);
        w.put_u64(u64::MAX / 2);
        w.put_u32(0);
        assert_eq!(
            open_checkpoint(&w.into_bytes()).unwrap_err(),
            CodecError::UnexpectedEof
        );
    }
}
