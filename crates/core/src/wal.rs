//! Write-ahead log and checksummed checkpoints for engine state.
//!
//! The serve loop treats the density state (ObjectTable reports, DH
//! counts, Chebyshev coefficient grids) as state that must survive
//! faults: every tick's protocol traffic is appended to a [`Wal`]
//! *before* it is applied, and engines periodically emit checkpoints
//! sealed with [`seal_checkpoint`]. Recovery restores the latest
//! checkpoint and replays the WAL tail; because every engine mutation
//! is deterministic (integer histogram counters, order-preserving
//! batches) the recovered engine answers queries **bit-identically** to
//! one that never crashed — asserted by the crash-point sweep test.
//!
//! Both layers are checksummed so corruption is detected, not
//! consumed:
//!
//! * each WAL record is framed `[len u32][crc32 u32][payload]`; replay
//!   stops cleanly at a torn tail (a record whose frame is incomplete
//!   or whose checksum fails), reporting how many bytes it dropped;
//! * a checkpoint is wrapped `PDCK` + version + length + crc32 by
//!   [`seal_checkpoint`] and verified by [`open_checkpoint`].

use pdr_mobject::{MotionState, ObjectId, Timestamp, Update, UpdateKind};
use pdr_storage::{crc32, ByteReader, ByteWriter, CodecError};
use std::fmt;

/// Record payload tags.
const TAG_ADVANCE: u8 = 1;
const TAG_BATCH: u8 = 2;

/// One logical WAL record.
#[derive(Clone, Debug, PartialEq)]
pub enum WalRecord {
    /// `advance_to(t)` was about to run.
    Advance(Timestamp),
    /// `apply_batch(updates)` was about to run.
    Batch(Vec<Update>),
}

/// An in-memory write-ahead log of the update protocol. Records are
/// appended *before* the corresponding engine mutation runs.
#[derive(Clone, Debug, Default)]
pub struct Wal {
    bytes: Vec<u8>,
    records: u64,
}

impl Wal {
    /// An empty log.
    pub fn new() -> Self {
        Wal::default()
    }

    /// The raw encoded log (what would be on disk).
    pub fn bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// Current end offset — a checkpoint taken now replays from here.
    pub fn offset(&self) -> usize {
        self.bytes.len()
    }

    /// Records appended so far.
    pub fn records(&self) -> u64 {
        self.records
    }

    /// Appends an `advance_to(t)` record.
    pub fn append_advance(&mut self, t: Timestamp) {
        let mut w = ByteWriter::with_capacity(9);
        w.put_u8(TAG_ADVANCE);
        w.put_u64(t);
        self.frame(&w.into_bytes());
    }

    /// Appends an `apply_batch` record.
    pub fn append_batch(&mut self, updates: &[Update]) {
        let mut w = ByteWriter::with_capacity(8 + updates.len() * 50);
        w.put_u8(TAG_BATCH);
        w.put_u32(u32::try_from(updates.len()).expect("batch exceeds u32"));
        for u in updates {
            encode_update(&mut w, u);
        }
        self.frame(&w.into_bytes());
    }

    fn frame(&mut self, payload: &[u8]) {
        let mut w = ByteWriter::with_capacity(8 + payload.len());
        w.put_u32(u32::try_from(payload.len()).expect("record exceeds u32"));
        w.put_u32(crc32(payload));
        w.put_bytes(payload);
        self.bytes.extend_from_slice(&w.into_bytes());
        self.records += 1;
    }
}

/// Outcome of replaying (a prefix of) a WAL byte stream.
#[derive(Clone, Debug, PartialEq)]
pub struct WalReplay {
    /// The complete, checksum-verified records, in append order.
    pub records: Vec<WalRecord>,
    /// Bytes at the tail that did not form a verified record (torn
    /// final write, or a truncated copy). `0` for a clean log.
    pub torn_bytes: usize,
}

/// Decodes `bytes` record by record, stopping cleanly at a torn tail.
/// A record that passes its checksum but fails to decode is a format
/// error (not a torn write) and is reported as `Err`.
pub fn replay(bytes: &[u8]) -> Result<WalReplay, CodecError> {
    let mut records = Vec::new();
    let mut pos = 0usize;
    while pos < bytes.len() {
        let remaining = &bytes[pos..];
        if remaining.len() < 8 {
            break; // torn frame header
        }
        let len = u32::from_le_bytes(remaining[0..4].try_into().expect("4 bytes")) as usize;
        let crc = u32::from_le_bytes(remaining[4..8].try_into().expect("4 bytes"));
        if remaining.len() < 8 + len {
            break; // torn payload
        }
        let payload = &remaining[8..8 + len];
        if crc32(payload) != crc {
            break; // half-written record: checksum catches it
        }
        records.push(decode_record(payload)?);
        pos += 8 + len;
    }
    Ok(WalReplay {
        records,
        torn_bytes: bytes.len() - pos,
    })
}

/// Byte offsets of every record boundary in `bytes` (0, after record
/// 1, after record 2, …). The crash-point sweep kills the log at each
/// of these and at points in between.
pub fn record_boundaries(bytes: &[u8]) -> Vec<usize> {
    let mut offsets = vec![0usize];
    let mut pos = 0usize;
    while pos + 8 <= bytes.len() {
        let len = u32::from_le_bytes(bytes[pos..pos + 4].try_into().expect("4 bytes")) as usize;
        if pos + 8 + len > bytes.len() {
            break;
        }
        pos += 8 + len;
        offsets.push(pos);
    }
    offsets
}

fn encode_update(w: &mut ByteWriter, u: &Update) {
    w.put_u64(u.id.0);
    w.put_u64(u.t_now);
    let (kind, m) = match u.kind {
        UpdateKind::Insert { motion } => (0u8, motion),
        UpdateKind::Delete { old_motion } => (1u8, old_motion),
    };
    w.put_u8(kind);
    w.put_f64(m.origin.x);
    w.put_f64(m.origin.y);
    w.put_f64(m.velocity.x);
    w.put_f64(m.velocity.y);
    w.put_u64(m.t_ref);
}

fn decode_update(r: &mut ByteReader<'_>) -> Result<Update, CodecError> {
    let id = ObjectId(r.get_u64()?);
    let t_now = r.get_u64()?;
    let kind = r.get_u8()?;
    let ox = r.get_f64()?;
    let oy = r.get_f64()?;
    let vx = r.get_f64()?;
    let vy = r.get_f64()?;
    let t_ref = r.get_u64()?;
    if !(ox.is_finite() && oy.is_finite() && vx.is_finite() && vy.is_finite()) {
        return Err(CodecError::Corrupt("non-finite motion in WAL"));
    }
    let motion = MotionState {
        origin: pdr_geometry::Point::new(ox, oy),
        velocity: pdr_geometry::Point::new(vx, vy),
        t_ref,
    };
    match kind {
        0 => Ok(Update {
            id,
            t_now,
            kind: UpdateKind::Insert { motion },
        }),
        1 => Ok(Update {
            id,
            t_now,
            kind: UpdateKind::Delete { old_motion: motion },
        }),
        _ => Err(CodecError::Corrupt("unknown update kind in WAL")),
    }
}

fn decode_record(payload: &[u8]) -> Result<WalRecord, CodecError> {
    let mut r = ByteReader::new(payload);
    match r.get_u8()? {
        TAG_ADVANCE => Ok(WalRecord::Advance(r.get_u64()?)),
        TAG_BATCH => {
            let n = r.get_u32()? as usize;
            let mut updates = Vec::with_capacity(n);
            for _ in 0..n {
                updates.push(decode_update(&mut r)?);
            }
            Ok(WalRecord::Batch(updates))
        }
        _ => Err(CodecError::Corrupt("unknown WAL record tag")),
    }
}

// ---------------------------------------------------------------------
// Per-shard WAL segments
// ---------------------------------------------------------------------

/// Magic prefix of a per-shard WAL *segment*. A legacy single-file
/// journal starts with a frame length (a small little-endian `u32`), so
/// the two layouts are unambiguous: `b"PDWS"` decodes as the
/// implausible frame length `0x5357_4450` (> 1 GiB), which
/// [`replay`] treats as a torn tail rather than data, and no real
/// frame can start with these bytes.
const SEG_MAGIC: &[u8; 4] = b"PDWS";
const SEG_VERSION: u16 = 1;

/// Identity of one per-shard WAL segment, stored in its header.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SegmentHeader {
    /// Index of the shard that owns this segment.
    pub shard: u32,
    /// Total shard count of the plane that wrote it (a rebuilt plane
    /// with a different shard grid must not replay foreign segments).
    pub shards: u32,
}

/// Encoded byte length of a segment header.
pub const SEGMENT_HEADER_LEN: usize = 4 + 2 + 4 + 4;

/// File name of shard `shard`'s WAL segment. The legacy single-file
/// journal is [`LEGACY_JOURNAL_NAME`]; segment names embed a zero-padded
/// shard index behind a distinct `.seg` infix, so no shard count can
/// ever produce the legacy name (regression-tested).
pub fn segment_name(shard: u32) -> String {
    format!("journal.seg{shard:04}.wal")
}

/// The single-file journal name used before the plane was sharded.
pub const LEGACY_JOURNAL_NAME: &str = "journal.wal";

/// Encodes a segment header (prepend to an empty segment's bytes).
pub fn encode_segment_header(h: SegmentHeader) -> Vec<u8> {
    let mut w = ByteWriter::with_capacity(SEGMENT_HEADER_LEN);
    w.put_bytes(SEG_MAGIC);
    w.put_u16(SEG_VERSION);
    w.put_u32(h.shard);
    w.put_u32(h.shards);
    w.into_bytes()
}

/// Replays either layout: a headered per-shard segment (returns its
/// [`SegmentHeader`]) or a legacy headerless journal (returns `None`).
/// This is the migration shim — a plane upgraded to per-shard segments
/// keeps reading journals written before the upgrade.
pub fn replay_any(bytes: &[u8]) -> Result<(Option<SegmentHeader>, WalReplay), CodecError> {
    if bytes.len() >= SEGMENT_HEADER_LEN && &bytes[..4] == SEG_MAGIC {
        let mut r = ByteReader::new(&bytes[..SEGMENT_HEADER_LEN]);
        r.expect_magic(SEG_MAGIC)?;
        let version = r.get_u16()?;
        if version != SEG_VERSION {
            return Err(CodecError::BadVersion(version));
        }
        let header = SegmentHeader {
            shard: r.get_u32()?,
            shards: r.get_u32()?,
        };
        return Ok((Some(header), replay(&bytes[SEGMENT_HEADER_LEN..])?));
    }
    Ok((None, replay(bytes)?))
}

impl Wal {
    /// An empty per-shard segment: its byte stream starts with the
    /// encoded [`SegmentHeader`], so it can never be confused with (or
    /// overwrite the meaning of) a legacy journal.
    pub fn new_segment(header: SegmentHeader) -> Self {
        Wal {
            bytes: encode_segment_header(header),
            records: 0,
        }
    }
}

// ---------------------------------------------------------------------
// Checkpoint container
// ---------------------------------------------------------------------

const CKPT_MAGIC: &[u8; 4] = b"PDCK";
const CKPT_VERSION: u16 = 1;

/// Wraps an engine-specific checkpoint payload in a checksummed,
/// versioned container.
pub fn seal_checkpoint(payload: &[u8]) -> Vec<u8> {
    let mut w = ByteWriter::with_capacity(payload.len() + 18);
    w.put_bytes(CKPT_MAGIC);
    w.put_u16(CKPT_VERSION);
    w.put_u64(payload.len() as u64);
    w.put_u32(crc32(payload));
    w.put_bytes(payload);
    w.into_bytes()
}

/// Verifies a sealed checkpoint and returns the payload slice.
pub fn open_checkpoint(bytes: &[u8]) -> Result<&[u8], CodecError> {
    let mut r = ByteReader::new(bytes);
    r.expect_magic(CKPT_MAGIC)?;
    let version = r.get_u16()?;
    if version != CKPT_VERSION {
        return Err(CodecError::BadVersion(version));
    }
    let len = r.get_u64()? as usize;
    let crc = r.get_u32()?;
    let header = bytes.len() - r.remaining();
    let payload = bytes
        .get(header..header + len)
        .ok_or(CodecError::UnexpectedEof)?;
    if crc32(payload) != crc {
        return Err(CodecError::Corrupt("checkpoint checksum mismatch"));
    }
    Ok(payload)
}

/// Why a [`DensityEngine::restore_from`](crate::DensityEngine::restore_from)
/// call failed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RecoverError {
    /// The engine does not support checkpoint/restore.
    Unsupported,
    /// The checkpoint bytes failed verification or decoding.
    Codec(CodecError),
    /// The checkpoint is valid but belongs to a differently configured
    /// engine.
    Mismatch(&'static str),
}

impl fmt::Display for RecoverError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RecoverError::Unsupported => write!(f, "engine does not support checkpoints"),
            RecoverError::Codec(e) => write!(f, "checkpoint rejected: {e}"),
            RecoverError::Mismatch(what) => {
                write!(f, "checkpoint belongs to a different engine: {what}")
            }
        }
    }
}

impl std::error::Error for RecoverError {}

impl From<CodecError> for RecoverError {
    fn from(e: CodecError) -> Self {
        RecoverError::Codec(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdr_geometry::Point;

    fn sample_updates() -> Vec<Update> {
        let m = MotionState::new(Point::new(10.0, 20.0), Point::new(1.0, -1.0), 5);
        vec![
            Update::delete(ObjectId(3), 5, m),
            Update::insert(ObjectId(3), 5, m),
            Update::insert(ObjectId(9), 5, m),
        ]
    }

    #[test]
    fn wal_round_trip() {
        let mut wal = Wal::new();
        wal.append_advance(5);
        let batch = sample_updates();
        wal.append_batch(&batch);
        wal.append_advance(6);
        assert_eq!(wal.records(), 3);

        let replay = replay(wal.bytes()).expect("clean log decodes");
        assert_eq!(replay.torn_bytes, 0);
        assert_eq!(replay.records.len(), 3);
        assert_eq!(replay.records[0], WalRecord::Advance(5));
        assert_eq!(replay.records[2], WalRecord::Advance(6));
        let WalRecord::Batch(got) = &replay.records[1] else {
            panic!("expected batch");
        };
        assert_eq!(got, &batch);
    }

    #[test]
    fn torn_tail_is_tolerated_not_consumed() {
        let mut wal = Wal::new();
        wal.append_advance(1);
        wal.append_batch(&sample_updates());
        let full = wal.bytes().to_vec();
        let boundaries = record_boundaries(&full);
        assert_eq!(boundaries, vec![0, 17, full.len()]);

        // Truncate mid-record: only the first record survives.
        let torn = &full[..boundaries[1] + 5];
        let replay_torn = replay(torn).expect("torn tail is not a format error");
        assert_eq!(replay_torn.records, vec![WalRecord::Advance(1)]);
        assert_eq!(replay_torn.torn_bytes, 5);

        // Corrupt a byte inside the last record's payload: the
        // checksum rejects the record instead of decoding garbage.
        let mut bitrot = full.clone();
        let last = bitrot.len() - 3;
        bitrot[last] ^= 0xFF;
        let replay_rot = replay(&bitrot).expect("checksum failure is a torn tail");
        assert_eq!(replay_rot.records, vec![WalRecord::Advance(1)]);
        assert!(replay_rot.torn_bytes > 0);
    }

    #[test]
    fn segment_names_cannot_collide_with_legacy_journal() {
        // Sweep a generous shard range: every segment name is distinct
        // and none equals the legacy single-file journal name.
        let mut seen = std::collections::HashSet::new();
        for shard in 0..4096u32 {
            let name = segment_name(shard);
            assert_ne!(name, LEGACY_JOURNAL_NAME, "shard {shard}");
            assert!(seen.insert(name), "duplicate segment name for {shard}");
        }
    }

    #[test]
    fn replay_any_reads_both_layouts() {
        // New layout: headered per-shard segment.
        let header = SegmentHeader {
            shard: 3,
            shards: 8,
        };
        let mut seg = Wal::new_segment(header);
        seg.append_advance(7);
        seg.append_batch(&sample_updates());
        let (got, rep) = replay_any(seg.bytes()).expect("segment decodes");
        assert_eq!(got, Some(header));
        assert_eq!(rep.records.len(), 2);
        assert_eq!(rep.records[0], WalRecord::Advance(7));

        // Old layout: the same records written by a pre-shard journal
        // are still replayed by the upgraded reader (migration shim).
        let mut legacy = Wal::new();
        legacy.append_advance(7);
        legacy.append_batch(&sample_updates());
        let (none, rep_legacy) = replay_any(legacy.bytes()).expect("legacy decodes");
        assert_eq!(none, None);
        assert_eq!(rep_legacy.records, rep.records);

        // A legacy reader fed a headered segment must not misparse it
        // as records: the magic is an implausible frame length, so it
        // reads as an all-torn tail, never as garbage updates.
        let as_legacy = replay(seg.bytes()).expect("not a format error");
        assert!(as_legacy.records.is_empty());
        assert_eq!(as_legacy.torn_bytes, seg.bytes().len());

        // Version gate.
        let mut bad = seg.bytes().to_vec();
        bad[4] = 9;
        assert_eq!(replay_any(&bad).unwrap_err(), CodecError::BadVersion(9));
    }

    #[test]
    fn segment_header_survives_torn_tail() {
        let mut seg = Wal::new_segment(SegmentHeader {
            shard: 0,
            shards: 2,
        });
        seg.append_advance(1);
        seg.append_batch(&sample_updates());
        let full = seg.bytes().to_vec();
        let torn = &full[..full.len() - 3];
        let (h, rep) = replay_any(torn).expect("torn tail tolerated");
        assert_eq!(
            h,
            Some(SegmentHeader {
                shard: 0,
                shards: 2
            })
        );
        assert_eq!(rep.records, vec![WalRecord::Advance(1)]);
        assert!(rep.torn_bytes > 0);
    }

    #[test]
    fn checkpoint_seal_and_open() {
        let payload = b"engine state bytes".to_vec();
        let sealed = seal_checkpoint(&payload);
        assert_eq!(open_checkpoint(&sealed).expect("verifies"), &payload[..]);

        let mut flipped = sealed.clone();
        let n = flipped.len();
        flipped[n - 1] ^= 1;
        assert_eq!(
            open_checkpoint(&flipped).unwrap_err(),
            CodecError::Corrupt("checkpoint checksum mismatch")
        );

        let mut truncated = sealed.clone();
        truncated.truncate(n - 4);
        assert_eq!(
            open_checkpoint(&truncated).unwrap_err(),
            CodecError::UnexpectedEof
        );
        assert_eq!(open_checkpoint(b"XXXX").unwrap_err(), CodecError::BadMagic);
    }
}
