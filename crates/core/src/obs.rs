//! Dependency-free observability primitives for the engine plane.
//!
//! The serve loop's only visibility used to be a flat per-engine cost
//! sum; attributing *where* FR/PA time goes (filter vs. range query vs.
//! sweep vs. merge, bound evaluations vs. prunes) needs per-stage
//! instrumentation. The build is fully offline, so this module
//! re-implements the minimal useful subset of a metrics library with
//! nothing but `std`:
//!
//! * [`Counter`] — a monotonic atomic counter;
//! * [`Histogram`] — a log₂-bucketed latency histogram over nanosecond
//!   samples, readable as p50/p95/p99/max quantiles;
//! * [`StageTimer`] — a scoped timer that records its elapsed time into
//!   a histogram on drop (and compiles down to nothing when the owner
//!   is disabled);
//! * [`ObsReport`] / [`HistogramSnapshot`] — plain-data snapshots that
//!   engines surface through [`DensityEngine::obs`] and the serve
//!   driver serializes to JSON.
//!
//! Everything records through `&self` (interior atomics), so query
//! paths — which take `&self` and may run on many threads — can be
//! instrumented without changing their signatures. Instrumentation
//! never influences answers: it only ever *reads* the clock and *adds*
//! to counters, and every engine exposes a switch
//! ([`DensityEngine::set_obs_enabled`]) that skips even the clock reads
//! so the identity `answers(obs on) == answers(obs off)` is testable.
//!
//! [`DensityEngine::obs`]: crate::DensityEngine::obs
//! [`DensityEngine::set_obs_enabled`]: crate::DensityEngine::set_obs_enabled

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// A monotonic counter, incrementable through `&self`.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// A fresh zeroed counter.
    pub const fn new() -> Self {
        Counter(AtomicU64::new(0))
    }

    /// Adds 1.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Number of log₂ buckets; bucket `i ≥ 1` holds samples in
/// `[2^(i−1), 2^i)` nanoseconds, bucket 0 holds zero. 64 buckets cover
/// the whole `u64` nanosecond range.
const BUCKETS: usize = 64;

/// A log₂-bucketed histogram of nanosecond samples.
///
/// Recording is lock-free (`&self`, relaxed atomics) and O(1): a sample
/// lands in the bucket of its bit length. Quantiles are therefore
/// approximate — a reported quantile is the midpoint of its bucket's
/// range, so it is correct within a factor of two — while `count`,
/// `sum` (hence the mean) and `max` are exact. That trade-off is the
/// standard one for production latency tracking; the alternative
/// (storing samples) has unbounded memory.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum_ns: AtomicU64,
    max_ns: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum_ns: AtomicU64::new(0),
            max_ns: AtomicU64::new(0),
        }
    }
}

impl Histogram {
    /// A fresh empty histogram.
    pub fn new() -> Self {
        Histogram::default()
    }

    /// Records one duration sample.
    #[inline]
    pub fn record(&self, d: Duration) {
        self.record_ns(d.as_nanos().min(u64::MAX as u128) as u64);
    }

    /// Records one raw nanosecond sample.
    pub fn record_ns(&self, ns: u64) {
        let idx = (64 - ns.leading_zeros() as usize).min(BUCKETS - 1);
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_ns.fetch_add(ns, Ordering::Relaxed);
        self.max_ns.fetch_max(ns, Ordering::Relaxed);
    }

    /// Starts a scoped timer recording into this histogram on drop; a
    /// disabled timer never reads the clock.
    pub fn timer(&self, enabled: bool) -> StageTimer<'_> {
        StageTimer {
            hist: self,
            start: enabled.then(Instant::now),
        }
    }

    /// Samples recorded so far.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// The quantile estimate for `q ∈ [0, 1]`, in nanoseconds: the
    /// midpoint of the bucket holding the rank-`⌈q·count⌉` sample,
    /// clamped to the exact observed maximum. Returns 0 when empty.
    pub fn quantile_ns(&self, q: f64) -> f64 {
        let count = self.count();
        if count == 0 {
            return 0.0;
        }
        let max = self.max_ns.load(Ordering::Relaxed) as f64;
        let rank = ((q * count as f64).ceil() as u64).clamp(1, count);
        let mut cum = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            cum += b.load(Ordering::Relaxed);
            if cum >= rank {
                if i == 0 {
                    return 0.0;
                }
                // Midpoint of [2^(i-1), 2^i), never past the true max.
                let mid = 1.5 * (1u64 << (i - 1)) as f64;
                return mid.min(max);
            }
        }
        max
    }

    /// A plain-data snapshot (microsecond units) for reports.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let count = self.count();
        let mean_ns = if count == 0 {
            0.0
        } else {
            self.sum_ns.load(Ordering::Relaxed) as f64 / count as f64
        };
        HistogramSnapshot {
            count,
            mean_us: mean_ns / 1e3,
            p50_us: self.quantile_ns(0.50) / 1e3,
            p95_us: self.quantile_ns(0.95) / 1e3,
            p99_us: self.quantile_ns(0.99) / 1e3,
            max_us: self.max_ns.load(Ordering::Relaxed) as f64 / 1e3,
        }
    }
}

/// A scoped stage timer: created by [`Histogram::timer`], records the
/// elapsed wall-clock time into its histogram when dropped. When
/// created disabled it holds no start time and drops for free.
#[must_use = "a timer records on drop; binding it to _ drops immediately"]
pub struct StageTimer<'a> {
    hist: &'a Histogram,
    start: Option<Instant>,
}

impl StageTimer<'_> {
    /// Stops the timer now (equivalent to dropping it).
    pub fn stop(self) {}
}

impl Drop for StageTimer<'_> {
    fn drop(&mut self) {
        if let Some(start) = self.start {
            self.hist.record(start.elapsed());
        }
    }
}

/// Plain-data view of a [`Histogram`], in microseconds.
///
/// `count`, `mean_us` and `max_us` are exact; the quantiles are bucket
/// midpoints (correct within 2×, see [`Histogram`]).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct HistogramSnapshot {
    /// Samples recorded.
    pub count: u64,
    /// Exact mean, microseconds.
    pub mean_us: f64,
    /// Median estimate, microseconds.
    pub p50_us: f64,
    /// 95th-percentile estimate, microseconds.
    pub p95_us: f64,
    /// 99th-percentile estimate, microseconds.
    pub p99_us: f64,
    /// Exact maximum, microseconds.
    pub max_us: f64,
}

impl HistogramSnapshot {
    /// Serializes as a JSON object
    /// `{"count":…,"mean_us":…,"p50_us":…,"p95_us":…,"p99_us":…,"max_us":…}`.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"count\":{},\"mean_us\":{},\"p50_us\":{},\"p95_us\":{},\"p99_us\":{},\"max_us\":{}}}",
            self.count,
            json_f64(self.mean_us),
            json_f64(self.p50_us),
            json_f64(self.p95_us),
            json_f64(self.p99_us),
            json_f64(self.max_us)
        )
    }
}

/// Formats an `f64` as a JSON number (3 decimals); non-finite values —
/// which JSON cannot represent — become `null`.
pub fn json_f64(x: f64) -> String {
    if x.is_finite() {
        format!("{x:.3}")
    } else {
        "null".to_string()
    }
}

/// A named snapshot of one engine's instrumentation: monotonic counters
/// plus per-stage latency histograms, in the order the engine chose.
/// The empty report (engines without instrumentation) is `default()`.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ObsReport {
    /// `(name, value)` monotonic counters.
    pub counters: Vec<(&'static str, u64)>,
    /// `(name, snapshot)` per-stage latency histograms.
    pub stages: Vec<(&'static str, HistogramSnapshot)>,
}

impl ObsReport {
    /// Looks up a counter by name.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(n, _)| *n == name)
            .map(|&(_, v)| v)
    }

    /// Looks up a stage histogram by name.
    pub fn stage(&self, name: &str) -> Option<HistogramSnapshot> {
        self.stages
            .iter()
            .find(|(n, _)| *n == name)
            .map(|&(_, s)| s)
    }

    /// Serializes as `{"counters":{…},"stages":{…}}`.
    pub fn to_json(&self) -> String {
        let counters = self
            .counters
            .iter()
            .map(|(n, v)| format!("\"{n}\":{v}"))
            .collect::<Vec<_>>()
            .join(",");
        let stages = self
            .stages
            .iter()
            .map(|(n, s)| format!("\"{n}\":{}", s.to_json()))
            .collect::<Vec<_>>()
            .join(",");
        format!("{{\"counters\":{{{counters}}},\"stages\":{{{stages}}}}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_accumulates() {
        let c = Counter::new();
        c.inc();
        c.add(41);
        assert_eq!(c.get(), 42);
    }

    #[test]
    fn empty_histogram_is_all_zero() {
        let h = Histogram::new();
        let s = h.snapshot();
        assert_eq!(s, HistogramSnapshot::default());
    }

    #[test]
    fn quantiles_are_ordered_and_bracket_the_samples() {
        let h = Histogram::new();
        // 100 samples: 1 µs .. 100 µs.
        for i in 1..=100u64 {
            h.record_ns(i * 1_000);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 100);
        assert!((s.mean_us - 50.5).abs() < 1e-9, "mean is exact");
        assert!((s.max_us - 100.0).abs() < 1e-9, "max is exact");
        assert!(s.p50_us <= s.p95_us && s.p95_us <= s.p99_us && s.p99_us <= s.max_us);
        // Log buckets: each quantile within 2x of the true one.
        assert!(s.p50_us >= 25.0 && s.p50_us <= 100.0, "p50 {}", s.p50_us);
        assert!(s.p99_us >= 49.5 && s.p99_us <= 100.0, "p99 {}", s.p99_us);
    }

    #[test]
    fn single_sample_quantiles_equal_the_sample_max() {
        let h = Histogram::new();
        h.record(Duration::from_micros(7));
        let s = h.snapshot();
        assert_eq!(s.count, 1);
        // All quantiles clamp to the exact max.
        assert!((s.max_us - 7.0).abs() < 1e-3);
        assert!(s.p50_us <= s.max_us && s.p99_us <= s.max_us);
    }

    #[test]
    fn zero_samples_hit_bucket_zero() {
        let h = Histogram::new();
        h.record_ns(0);
        h.record_ns(0);
        assert_eq!(h.count(), 2);
        assert_eq!(h.quantile_ns(0.5), 0.0);
    }

    #[test]
    fn timer_records_once_and_disabled_timer_records_nothing() {
        let h = Histogram::new();
        {
            let _t = h.timer(true);
            std::hint::black_box(());
        }
        assert_eq!(h.count(), 1);
        {
            let _t = h.timer(false);
        }
        assert_eq!(h.count(), 1, "disabled timer must not record");
    }

    #[test]
    fn histogram_is_safe_to_record_concurrently() {
        let h = Histogram::new();
        std::thread::scope(|s| {
            for t in 0..4 {
                let h = &h;
                s.spawn(move || {
                    for i in 0..1000u64 {
                        h.record_ns(t * 1000 + i);
                    }
                });
            }
        });
        assert_eq!(h.count(), 4000);
    }

    #[test]
    fn report_lookup_and_json() {
        let report = ObsReport {
            counters: vec![("queries", 3), ("cells", 17)],
            stages: vec![("classify", HistogramSnapshot::default())],
        };
        assert_eq!(report.counter("cells"), Some(17));
        assert_eq!(report.counter("absent"), None);
        assert!(report.stage("classify").is_some());
        let json = report.to_json();
        assert!(json.contains("\"queries\":3"));
        assert!(json.contains("\"classify\":{\"count\":0"));
        assert!(!json.contains("inf") && !json.contains("NaN"));
    }

    #[test]
    fn json_f64_never_emits_invalid_tokens() {
        assert_eq!(json_f64(f64::INFINITY), "null");
        assert_eq!(json_f64(f64::NAN), "null");
        assert_eq!(json_f64(1.5), "1.500");
    }
}
