//! PDR query parameters.

use pdr_mobject::Timestamp;

/// A snapshot PDR query `(ρ, l, q_t)` (Definition 4 of the paper):
/// report all regions that are ρ-dense with respect to `l`-square
/// neighborhoods at timestamp `q_t`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PdrQuery {
    /// Density threshold `ρ` (objects per unit area).
    pub rho: f64,
    /// Neighborhood edge length `l`.
    pub l: f64,
    /// Queried timestamp `q_t` (within `[t_now, t_now + H]`).
    pub q_t: Timestamp,
}

impl PdrQuery {
    /// Creates a query.
    ///
    /// # Panics
    ///
    /// Panics when `ρ < 0` or `l ≤ 0`.
    pub fn new(rho: f64, l: f64, q_t: Timestamp) -> Self {
        assert!(
            rho >= 0.0 && rho.is_finite(),
            "density threshold must be >= 0"
        );
        assert!(l > 0.0 && l.is_finite(), "edge length must be positive");
        PdrQuery { rho, l, q_t }
    }

    /// The object-count threshold `ρ·l²`: a point is dense iff its
    /// `l`-square neighborhood holds at least this many objects.
    #[inline]
    pub fn count_threshold(&self) -> f64 {
        self.rho * self.l * self.l
    }

    /// Builds a query from the paper's *relative* density threshold ϱ:
    /// with `n` objects in a region of area `extent²`, the absolute
    /// threshold is `ρ = n·ϱ / extent²` (Section 7: ϱ ∈ 1..=5 gives
    /// ρ ∈ 0.5..=2.5 for CH500K on the 1000-mile plane).
    pub fn from_relative(
        varrho: f64,
        n_objects: usize,
        extent: f64,
        l: f64,
        q_t: Timestamp,
    ) -> Self {
        let rho = n_objects as f64 * varrho / (extent * extent);
        PdrQuery::new(rho, l, q_t)
    }
}

/// Helper for the float-robust "count ≥ ρl²" test shared by every
/// engine: `count + ε ≥ threshold`, with ε far below one object.
#[derive(Clone, Copy, Debug)]
pub struct DenseThreshold {
    threshold: f64,
}

impl DenseThreshold {
    /// Threshold for the given query.
    pub fn of(query: &PdrQuery) -> Self {
        DenseThreshold {
            threshold: query.count_threshold(),
        }
    }

    /// Threshold from a raw count.
    pub fn from_count(threshold: f64) -> Self {
        DenseThreshold { threshold }
    }

    /// `true` when an integer object count meets the threshold.
    #[inline]
    pub fn met_by(&self, count: usize) -> bool {
        count as f64 + 1e-9 >= self.threshold
    }

    /// `true` when a real-valued density times `l²` meets the threshold.
    #[inline]
    pub fn met_by_f64(&self, value: f64) -> bool {
        value + 1e-9 >= self.threshold
    }

    /// The raw count threshold.
    #[inline]
    pub fn value(&self) -> f64 {
        self.threshold
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn count_threshold() {
        let q = PdrQuery::new(0.5, 4.0, 10);
        assert_eq!(q.count_threshold(), 8.0);
    }

    #[test]
    fn relative_threshold_matches_paper_example() {
        // CH500K: 500 000 objects, 1000-mile plane, varrho 1..=5
        // => rho in 0.5..=2.5 (Section 7).
        let q1 = PdrQuery::from_relative(1.0, 500_000, 1000.0, 30.0, 0);
        let q5 = PdrQuery::from_relative(5.0, 500_000, 1000.0, 30.0, 0);
        assert!((q1.rho - 0.5).abs() < 1e-12);
        assert!((q5.rho - 2.5).abs() < 1e-12);
    }

    #[test]
    fn dense_threshold_edges() {
        let t = DenseThreshold::from_count(4.0);
        assert!(t.met_by(4));
        assert!(t.met_by(5));
        assert!(!t.met_by(3));
        // Fractional thresholds round up in effect.
        let t = DenseThreshold::from_count(3.2);
        assert!(!t.met_by(3));
        assert!(t.met_by(4));
    }

    #[test]
    #[should_panic(expected = "edge length must be positive")]
    fn rejects_bad_l() {
        let _ = PdrQuery::new(1.0, 0.0, 0);
    }
}
