//! The filter step (Section 5.2, Algorithm 1).
//!
//! Using one timestamp's density-histogram plane, every grid cell is
//! classified by two neighborhood counts:
//!
//! * **conservative neighborhood** `C_{i,j}` (Definition 6) — the cells
//!   strictly within `η_l = ⌊l / 2l_c⌋` of `(i, j)`. Every point of the
//!   cell has its whole `l`-square *containing* `C_{i,j}`, so
//!   `|C| ≥ ρl²` proves the cell dense (**accept**).
//! * **expansive neighborhood** `E_{i,j}` (Definition 7) — the cells
//!   within `η_h = ⌈l / 2l_c⌉` of `(i, j)`. Every point's `l`-square is
//!   *contained in* `E_{i,j}`, so `|E| < ρl²` proves the cell nowhere
//!   dense (**reject**).
//!
//! Everything in between is a **candidate** for the refinement sweep.

use crate::{DenseThreshold, PdrQuery};
use pdr_geometry::{CellId, GridSpec};
use pdr_histogram::PrefixSum2d;

/// Per-cell verdict of the filter step.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CellClass {
    /// Provably dense in full: `|C_{i,j}| ≥ ρl²`.
    Accept,
    /// Provably nowhere dense: `|E_{i,j}| < ρl²`.
    Reject,
    /// Needs refinement.
    Candidate,
}

/// Result of classifying all `m²` cells for one query.
#[derive(Clone, Debug)]
pub struct Classification {
    grid: GridSpec,
    classes: Vec<CellClass>,
    accepts: usize,
    rejects: usize,
    candidates: usize,
}

impl Classification {
    /// The grid the classification refers to.
    pub fn grid(&self) -> GridSpec {
        self.grid
    }

    /// Verdict for one cell.
    pub fn class_of(&self, cell: CellId) -> CellClass {
        self.classes[self.grid.linear_index(cell)]
    }

    /// Number of accepted cells.
    pub fn accept_count(&self) -> usize {
        self.accepts
    }

    /// Number of rejected cells.
    pub fn reject_count(&self) -> usize {
        self.rejects
    }

    /// Number of candidate cells (each costs a range query + sweep).
    pub fn candidate_count(&self) -> usize {
        self.candidates
    }

    /// Iterates cells of a given class, row-major.
    pub fn cells_of(&self, class: CellClass) -> impl Iterator<Item = CellId> + '_ {
        self.grid
            .all_cells()
            .filter(move |&c| self.classes[self.grid.linear_index(c)] == class)
    }
}

/// Runs the filter step of Algorithm 1 on one histogram plane.
///
/// # Panics
///
/// Panics unless `l_c ≤ l/2` (the algorithm's stated requirement: with
/// coarser cells the conservative neighborhood is empty and the filter
/// can never accept, defeating its purpose).
pub fn classify_cells(grid: GridSpec, sums: &PrefixSum2d, query: &PdrQuery) -> Classification {
    let l_c = grid.cell_edge();
    assert!(
        l_c <= query.l / 2.0 + 1e-12,
        "filter requires cell edge l_c ({l_c}) <= l/2 ({})",
        query.l / 2.0
    );
    assert_eq!(
        sums.m(),
        grid.cells_per_side() as usize,
        "grid/sums mismatch"
    );
    let beta = query.l / (2.0 * l_c);
    let eta_l = beta.floor() as i64;
    let eta_h = beta.ceil() as i64;
    let threshold = DenseThreshold::of(query);

    let mut classes = Vec::with_capacity(grid.cell_count());
    let (mut accepts, mut rejects, mut candidates) = (0, 0, 0);
    for cell in grid.all_cells() {
        let conservative = if eta_l >= 1 {
            sums.square_sum(cell, eta_l - 1)
        } else {
            0
        };
        let class = if threshold.met_by(conservative.max(0) as usize) {
            accepts += 1;
            CellClass::Accept
        } else {
            let expansive = sums.square_sum(cell, eta_h);
            if !threshold.met_by(expansive.max(0) as usize) {
                rejects += 1;
                CellClass::Reject
            } else {
                candidates += 1;
                CellClass::Candidate
            }
        };
        classes.push(class);
    }
    Classification {
        grid,
        classes,
        accepts,
        rejects,
        candidates,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdr_geometry::Point;
    use pdr_histogram::DensityHistogram;
    use pdr_mobject::{MotionState, ObjectId, TimeHorizon, Update};

    /// 10x10 grid over [0, 100]; l = 20 so eta_l = 1, eta_h = 1.
    fn setup(objects: &[(f64, f64)]) -> (GridSpec, PrefixSum2d) {
        let mut h = DensityHistogram::new(100.0, 10, TimeHorizon::new(1, 1), 0);
        for (i, &(x, y)) in objects.iter().enumerate() {
            h.apply(&Update::insert(
                ObjectId(i as u64),
                0,
                MotionState::stationary(Point::new(x, y), 0),
            ));
        }
        (h.grid(), h.prefix_sums_at(0))
    }

    #[test]
    fn accept_reject_candidate() {
        // Pile 50 objects into cell (5,5): with l = 20, rho such that
        // threshold = 40, the cell itself is accepted (its conservative
        // neighborhood is just itself at eta_l = 1).
        let objects: Vec<(f64, f64)> = (0..50).map(|_| (55.0, 55.0)).collect();
        let (grid, sums) = setup(&objects);
        let q = PdrQuery::new(0.1, 20.0, 0); // threshold = 40
        let cls = classify_cells(grid, &sums, &q);
        assert_eq!(cls.class_of(CellId::new(5, 5)), CellClass::Accept);
        // Direct neighbors see the mass in their expansive neighborhood
        // but not conservatively: candidates.
        assert_eq!(cls.class_of(CellId::new(6, 5)), CellClass::Candidate);
        // Far cells are rejected.
        assert_eq!(cls.class_of(CellId::new(0, 0)), CellClass::Reject);
        assert_eq!(
            cls.accept_count() + cls.reject_count() + cls.candidate_count(),
            100
        );
    }

    #[test]
    fn filter_never_lies() {
        // Soundness of the filter vs the exact answer: accepted cells
        // must be fully dense; rejected cells must contain no dense
        // point. Verified against the brute-force oracle.
        use crate::{ExactOracle, PdrQuery};
        let mut pts = Vec::new();
        let mut seed = 31u64;
        let mut rng = move || {
            seed = seed
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (seed >> 33) as f64 / (1u64 << 31) as f64
        };
        for _ in 0..120 {
            if pts.len() % 3 == 0 {
                pts.push((40.0 + rng() * 20.0, 40.0 + rng() * 20.0));
            } else {
                pts.push((rng() * 100.0, rng() * 100.0));
            }
        }
        let (grid, sums) = setup(&pts);
        let q = PdrQuery::new(0.03, 20.0, 0); // threshold = 12 objects
        let cls = classify_cells(grid, &sums, &q);
        let oracle = ExactOracle::new(
            grid.bounds(),
            pts.iter().map(|&(x, y)| Point::new(x, y)).collect(),
        );
        for cell in grid.all_cells() {
            let r = grid.cell_rect(cell);
            match cls.class_of(cell) {
                CellClass::Accept => {
                    // Sample points: all must be dense.
                    for (fx, fy) in [(0.1, 0.1), (0.5, 0.5), (0.9, 0.9)] {
                        let p = Point::new(r.x_lo + fx * r.width(), r.y_lo + fy * r.height());
                        assert!(
                            oracle.is_dense(p, &q),
                            "accepted cell has sparse point {p:?}"
                        );
                    }
                }
                CellClass::Reject => {
                    for (fx, fy) in [(0.1, 0.1), (0.5, 0.5), (0.9, 0.9)] {
                        let p = Point::new(r.x_lo + fx * r.width(), r.y_lo + fy * r.height());
                        assert!(
                            !oracle.is_dense(p, &q),
                            "rejected cell has dense point {p:?}"
                        );
                    }
                }
                CellClass::Candidate => {}
            }
        }
    }

    #[test]
    fn eta_values_match_definitions() {
        // l = 30, l_c = 10 => beta = 1.5 => eta_l = 1, eta_h = 2: the
        // conservative neighborhood is the cell itself (radius 0), the
        // expansive one has radius 2. We verify observable behavior:
        // a cell whose own count clears the threshold is accepted.
        let objects: Vec<(f64, f64)> = (0..20).map(|_| (5.0, 5.0)).collect();
        let mut h = DensityHistogram::new(100.0, 10, TimeHorizon::new(1, 1), 0);
        for (i, &(x, y)) in objects.iter().enumerate() {
            h.apply(&Update::insert(
                ObjectId(i as u64),
                0,
                MotionState::stationary(Point::new(x, y), 0),
            ));
        }
        let q = PdrQuery::new(20.0 / 900.0, 30.0, 0); // threshold = 20
        let cls = classify_cells(h.grid(), &h.prefix_sums_at(0), &q);
        assert_eq!(cls.class_of(CellId::new(0, 0)), CellClass::Accept);
        // A cell 3 away can still be influenced? eta_h = 2, so cell
        // (3, 0) has the mass outside its expansive neighborhood:
        assert_eq!(cls.class_of(CellId::new(3, 0)), CellClass::Reject);
        // Cell (2, 0) sees it expansively: candidate.
        assert_eq!(cls.class_of(CellId::new(2, 0)), CellClass::Candidate);
    }

    #[test]
    #[should_panic(expected = "filter requires cell edge")]
    fn rejects_coarse_grid() {
        let (grid, sums) = setup(&[]);
        // l = 10 < 2 * l_c = 20.
        let _ = classify_cells(grid, &sums, &PdrQuery::new(1.0, 10.0, 0));
    }
}
