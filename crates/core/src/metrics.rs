//! The paper's accuracy metrics (Section 7.2).

use pdr_geometry::RegionSet;

/// False-positive / false-negative area ratios of a reported answer
/// `D'` against the true dense region `D`:
///
/// ```text
/// r_fp = area(D' \ D) / area(D)
/// r_fn = area(D \ D') / area(D)
/// ```
///
/// `r_fp` may exceed 1 (a method can report far more area than is
/// actually dense); `r_fn` never does.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Accuracy {
    /// False-positive ratio.
    pub r_fp: f64,
    /// False-negative ratio.
    pub r_fn: f64,
}

impl Accuracy {
    /// Perfect agreement.
    pub const EXACT: Accuracy = Accuracy {
        r_fp: 0.0,
        r_fn: 0.0,
    };
}

/// Computes the accuracy of `reported` against `truth`.
///
/// Degenerate cases: when `truth` is empty, `r_fn = 0` by convention
/// and `r_fp` is `0` for an empty report and `+∞` otherwise (any
/// reported area is infinitely wrong relative to zero true area —
/// consistent with the paper's observation that ratios blow up as the
/// threshold grows and `D` shrinks).
pub fn accuracy(truth: &RegionSet, reported: &RegionSet) -> Accuracy {
    let denom = truth.area();
    if denom <= 0.0 {
        let fp_area = reported.area();
        return Accuracy {
            r_fp: if fp_area > 0.0 { f64::INFINITY } else { 0.0 },
            r_fn: 0.0,
        };
    }
    Accuracy {
        r_fp: reported.difference_area(truth) / denom,
        r_fn: truth.difference_area(reported) / denom,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdr_geometry::Rect;

    fn rs(rects: &[(f64, f64, f64, f64)]) -> RegionSet {
        RegionSet::from_rects(rects.iter().map(|&(a, b, c, d)| Rect::new(a, b, c, d)))
    }

    #[test]
    fn exact_answer_scores_zero() {
        let d = rs(&[(0.0, 0.0, 2.0, 2.0)]);
        assert_eq!(accuracy(&d, &d), Accuracy::EXACT);
    }

    #[test]
    fn over_reporting_inflates_fp_only() {
        let truth = rs(&[(0.0, 0.0, 1.0, 1.0)]);
        let reported = rs(&[(0.0, 0.0, 3.0, 1.0)]);
        let a = accuracy(&truth, &reported);
        assert!((a.r_fp - 2.0).abs() < 1e-12);
        assert_eq!(a.r_fn, 0.0);
    }

    #[test]
    fn under_reporting_inflates_fn_only() {
        let truth = rs(&[(0.0, 0.0, 2.0, 1.0)]);
        let reported = rs(&[(0.0, 0.0, 1.0, 1.0)]);
        let a = accuracy(&truth, &reported);
        assert_eq!(a.r_fp, 0.0);
        assert!((a.r_fn - 0.5).abs() < 1e-12);
        assert!(a.r_fn <= 1.0);
    }

    #[test]
    fn disjoint_report() {
        let truth = rs(&[(0.0, 0.0, 1.0, 1.0)]);
        let reported = rs(&[(5.0, 5.0, 6.0, 6.0)]);
        let a = accuracy(&truth, &reported);
        assert!((a.r_fp - 1.0).abs() < 1e-12);
        assert!((a.r_fn - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_truth_conventions() {
        let empty = RegionSet::new();
        let some = rs(&[(0.0, 0.0, 1.0, 1.0)]);
        let a = accuracy(&empty, &some);
        assert!(a.r_fp.is_infinite());
        assert_eq!(a.r_fn, 0.0);
        let b = accuracy(&empty, &empty);
        assert_eq!(b, Accuracy::EXACT);
    }

    #[test]
    fn fn_never_exceeds_one() {
        let truth = rs(&[(0.0, 0.0, 4.0, 4.0)]);
        let a = accuracy(&truth, &RegionSet::new());
        assert!((a.r_fn - 1.0).abs() < 1e-12);
    }
}
