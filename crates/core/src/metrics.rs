//! The paper's accuracy metrics (Section 7.2) and the shared
//! per-query-batch rollup ([`Scoreboard`]) behind every scoring loop.

use pdr_geometry::RegionSet;
use pdr_storage::IoStats;

/// False-positive / false-negative area ratios of a reported answer
/// `D'` against the true dense region `D`:
///
/// ```text
/// r_fp = area(D' \ D) / area(D)
/// r_fn = area(D \ D') / area(D)
/// ```
///
/// `r_fp` may exceed 1 (a method can report far more area than is
/// actually dense); `r_fn` never does.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Accuracy {
    /// False-positive ratio.
    pub r_fp: f64,
    /// False-negative ratio.
    pub r_fn: f64,
}

impl Accuracy {
    /// Perfect agreement.
    pub const EXACT: Accuracy = Accuracy {
        r_fp: 0.0,
        r_fn: 0.0,
    };
}

/// Computes the accuracy of `reported` against `truth`.
///
/// Degenerate cases: when `truth` is empty, `r_fn = 0` by convention
/// and `r_fp` is `0` for an empty report and `+∞` otherwise (any
/// reported area is infinitely wrong relative to zero true area —
/// consistent with the paper's observation that ratios blow up as the
/// threshold grows and `D` shrinks).
pub fn accuracy(truth: &RegionSet, reported: &RegionSet) -> Accuracy {
    let denom = truth.area();
    if denom <= 0.0 {
        let fp_area = reported.area();
        return Accuracy {
            r_fp: if fp_area > 0.0 { f64::INFINITY } else { 0.0 },
            r_fn: 0.0,
        };
    }
    Accuracy {
        r_fp: reported.difference_area(truth) / denom,
        r_fn: truth.difference_area(reported) / denom,
    }
}

/// Accumulated per-query cost and accuracy over a batch of queries.
///
/// One rollup type shared by every scoring loop in the system — the
/// bench scorecards (`pdr-bench`) and the serve driver's per-engine
/// load (`pdr-workload`) — so the bounded/unbounded `r_fp` bookkeeping
/// lives in exactly one place.
///
/// Cost and accuracy are recorded independently: every executed query
/// calls [`record_cost`](Scoreboard::record_cost); only queries with
/// ground truth also call [`record_accuracy`](Scoreboard::record_accuracy).
///
/// An empty truth with a nonempty report makes `r_fp` +∞
/// ([`accuracy`]). One such query must not poison the running sum, so
/// unbounded ratios are counted in
/// [`unbounded_r_fp`](Scoreboard::unbounded_r_fp) and excluded from
/// [`r_fp_sum`](Scoreboard::r_fp_sum); the means report `None` when no
/// query qualifies, letting callers pick their own sentinel (the bench
/// tables print NaN, the serve report prints 0).
#[derive(Clone, Copy, Debug, Default)]
pub struct Scoreboard {
    /// Queries whose cost was recorded.
    pub queries: u64,
    /// Summed query CPU milliseconds.
    pub cpu_ms: f64,
    /// Summed total (CPU + modeled I/O charge) milliseconds.
    pub total_ms: f64,
    /// Summed buffer-pool I/O across queries.
    pub io: IoStats,
    /// Queries that were scored against ground truth.
    pub scored: u64,
    /// Summed `r_fp` over the scored queries whose ratio was *bounded*.
    pub r_fp_sum: f64,
    /// Summed `r_fn` over scored queries (always bounded: `r_fn ≤ 1`).
    pub r_fn_sum: f64,
    /// Scored queries whose `r_fp` was unbounded (empty ground truth,
    /// nonempty report).
    pub unbounded_r_fp: u64,
}

impl Scoreboard {
    /// Records the cost of one executed query.
    pub fn record_cost(&mut self, cpu_ms: f64, total_ms: f64, io: IoStats) {
        self.queries += 1;
        self.cpu_ms += cpu_ms;
        self.total_ms += total_ms;
        self.io += io;
    }

    /// Records one query's accuracy against ground truth.
    pub fn record_accuracy(&mut self, a: Accuracy) {
        self.scored += 1;
        if a.r_fp.is_finite() {
            self.r_fp_sum += a.r_fp;
        } else {
            self.unbounded_r_fp += 1;
        }
        self.r_fn_sum += a.r_fn;
    }

    /// Mean `r_fp` over the scored queries with a bounded ratio —
    /// always finite. `None` when no scored query had a bounded ratio;
    /// report [`unbounded_r_fp`](Scoreboard::unbounded_r_fp) alongside
    /// the mean when it is nonzero.
    pub fn mean_r_fp(&self) -> Option<f64> {
        let bounded = self.scored - self.unbounded_r_fp;
        (bounded > 0).then(|| self.r_fp_sum / bounded as f64)
    }

    /// Mean `r_fn` over scored queries; `None` when nothing was scored.
    pub fn mean_r_fn(&self) -> Option<f64> {
        (self.scored > 0).then(|| self.r_fn_sum / self.scored as f64)
    }

    /// Mean per-query CPU milliseconds (0 when no query ran).
    pub fn mean_cpu_ms(&self) -> f64 {
        self.cpu_ms / self.queries.max(1) as f64
    }

    /// Mean per-query total cost in milliseconds (0 when no query ran).
    pub fn mean_total_ms(&self) -> f64 {
        self.total_ms / self.queries.max(1) as f64
    }

    /// Mean per-query physical I/Os (misses + writebacks).
    pub fn mean_physical_ios(&self) -> f64 {
        self.io.physical_ios() as f64 / self.queries.max(1) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdr_geometry::Rect;

    fn rs(rects: &[(f64, f64, f64, f64)]) -> RegionSet {
        RegionSet::from_rects(rects.iter().map(|&(a, b, c, d)| Rect::new(a, b, c, d)))
    }

    #[test]
    fn exact_answer_scores_zero() {
        let d = rs(&[(0.0, 0.0, 2.0, 2.0)]);
        assert_eq!(accuracy(&d, &d), Accuracy::EXACT);
    }

    #[test]
    fn over_reporting_inflates_fp_only() {
        let truth = rs(&[(0.0, 0.0, 1.0, 1.0)]);
        let reported = rs(&[(0.0, 0.0, 3.0, 1.0)]);
        let a = accuracy(&truth, &reported);
        assert!((a.r_fp - 2.0).abs() < 1e-12);
        assert_eq!(a.r_fn, 0.0);
    }

    #[test]
    fn under_reporting_inflates_fn_only() {
        let truth = rs(&[(0.0, 0.0, 2.0, 1.0)]);
        let reported = rs(&[(0.0, 0.0, 1.0, 1.0)]);
        let a = accuracy(&truth, &reported);
        assert_eq!(a.r_fp, 0.0);
        assert!((a.r_fn - 0.5).abs() < 1e-12);
        assert!(a.r_fn <= 1.0);
    }

    #[test]
    fn disjoint_report() {
        let truth = rs(&[(0.0, 0.0, 1.0, 1.0)]);
        let reported = rs(&[(5.0, 5.0, 6.0, 6.0)]);
        let a = accuracy(&truth, &reported);
        assert!((a.r_fp - 1.0).abs() < 1e-12);
        assert!((a.r_fn - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_truth_conventions() {
        let empty = RegionSet::new();
        let some = rs(&[(0.0, 0.0, 1.0, 1.0)]);
        let a = accuracy(&empty, &some);
        assert!(a.r_fp.is_infinite());
        assert_eq!(a.r_fn, 0.0);
        let b = accuracy(&empty, &empty);
        assert_eq!(b, Accuracy::EXACT);
    }

    #[test]
    fn fn_never_exceeds_one() {
        let truth = rs(&[(0.0, 0.0, 4.0, 4.0)]);
        let a = accuracy(&truth, &RegionSet::new());
        assert!((a.r_fn - 1.0).abs() < 1e-12);
    }

    #[test]
    fn scoreboard_excludes_unbounded_ratios_from_the_mean() {
        let mut sb = Scoreboard::default();
        assert_eq!(sb.mean_r_fp(), None);
        assert_eq!(sb.mean_r_fn(), None);
        sb.record_accuracy(Accuracy {
            r_fp: 1.0,
            r_fn: 0.5,
        });
        sb.record_accuracy(Accuracy {
            r_fp: f64::INFINITY,
            r_fn: 0.0,
        });
        sb.record_accuracy(Accuracy {
            r_fp: 3.0,
            r_fn: 0.25,
        });
        assert_eq!(sb.scored, 3);
        assert_eq!(sb.unbounded_r_fp, 1);
        assert_eq!(sb.mean_r_fp(), Some(2.0));
        assert_eq!(sb.mean_r_fn(), Some(0.25));
        assert_eq!(sb.r_fp_sum, 4.0, "unbounded ratios must not be summed");
    }

    #[test]
    fn scoreboard_cost_means_are_zero_with_no_queries() {
        let sb = Scoreboard::default();
        assert_eq!(sb.mean_cpu_ms(), 0.0);
        assert_eq!(sb.mean_total_ms(), 0.0);
        assert_eq!(sb.mean_physical_ios(), 0.0);
        let mut sb = sb;
        let io = IoStats {
            logical_reads: 4,
            misses: 3,
            evictions: 0,
            writebacks: 1,
        };
        sb.record_cost(2.0, 6.0, io);
        sb.record_cost(4.0, 10.0, IoStats::default());
        assert_eq!(sb.mean_cpu_ms(), 3.0);
        assert_eq!(sb.mean_total_ms(), 8.0);
        assert_eq!(sb.mean_physical_ios(), 2.0);
    }
}
