//! Standing PDR subscriptions with incremental delta answers.
//!
//! A [`Subscription`] is a PDR query that stays registered: instead of
//! recomputing `query(ρ, l, q_t)` from scratch every tick, the engine
//! maintains the subscription's canonical answer across
//! `apply_batch`/`advance_to` and emits an [`AnswerDelta`] — the exact
//! rectangle-level patch between the previous canonical answer and the
//! new one. Because every engine answer is canonicalized (the maximal
//! slab decomposition is a pure function of the dense point set, see
//! [`RegionSet::canonicalize`]), the patched answer is **bit-identical**
//! to a from-scratch `query` at every tick; the incremental path only
//! changes *how much work* producing it costs, never the bytes.
//!
//! The [`SubscriptionTable`] is the per-engine registry: it owns the
//! subscriptions, their last committed answers, and the diff logic.
//! Engines expose it through
//! [`DensityEngine::subscriptions`](crate::DensityEngine::subscriptions);
//! the default maintenance path recomputes each standing query, while
//! FR and DH engines override it with a dirty-cell-driven incremental
//! evaluation (see `pdr_histogram::DensityHistogram::dirty_cells_since`).

use pdr_geometry::{Rect, RegionSet};
use pdr_mobject::Timestamp;
use std::collections::BTreeMap;

/// Identifier of a standing subscription, unique within one engine
/// plane (a sharded plane registers the same id on every owning shard).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SubId(pub u64);

/// How a standing query's evaluation timestamp tracks the clock.
///
/// Both policies resolve to a timestamp `≥ now`: incremental
/// maintenance relies on every update dirtying the cells it can affect
/// at *current-or-future* timestamps, so standing queries about the
/// past are clamped to the present (the engines' horizon ring buffer
/// recycles past slots anyway).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum QtPolicy {
    /// Evaluate at a fixed timestamp, clamped up to `now` once the
    /// clock passes it.
    Fixed(Timestamp),
    /// Evaluate `offset` timestamps into the prediction window, sliding
    /// with the clock (`q_t = now + offset`).
    NowPlus(u64),
}

impl QtPolicy {
    /// The evaluation timestamp at clock `now` (always `≥ now`).
    pub fn resolve(&self, now: Timestamp) -> Timestamp {
        match self {
            QtPolicy::Fixed(t) => (*t).max(now),
            QtPolicy::NowPlus(offset) => now + offset,
        }
    }
}

/// A standing PDR query: `(ρ, l, q_t policy)` restricted to a region of
/// interest.
#[derive(Clone, Copy, Debug)]
pub struct Subscription {
    /// Table-assigned identifier.
    pub id: SubId,
    /// Density threshold ρ (objects per unit²).
    pub rho: f64,
    /// Neighborhood edge length `l`.
    pub l: f64,
    /// Region of interest: the maintained answer is the engine's dense
    /// region clipped to this rectangle (then canonicalized).
    pub region: Rect,
    /// How `q_t` tracks the clock.
    pub policy: QtPolicy,
}

/// The incremental patch between two consecutive canonical answers of
/// one subscription.
///
/// Applying the patch to the previous canonical rectangle list — remove
/// every rect of `removed` (exact bit match), append `added`, re-sort —
/// reproduces the new canonical answer rect-for-rect
/// ([`apply_to`](AnswerDelta::apply_to)).
#[derive(Clone, Debug)]
pub struct AnswerDelta {
    /// The subscription this patch belongs to.
    pub id: SubId,
    /// The clock tick the patch was produced at.
    pub now: Timestamp,
    /// The resolved evaluation timestamp.
    pub q_t: Timestamp,
    /// Rectangles present in the new answer but not the old.
    pub added: Vec<Rect>,
    /// Rectangles present in the old answer but not the new.
    pub removed: Vec<Rect>,
    /// `true` while the engine cannot maintain this subscription
    /// exactly (e.g. its owning shard is fault-degraded). A degraded
    /// patch carries no rects — the previous answer stays authoritative
    /// but stale; the first non-degraded patch afterwards catches up.
    pub degraded: bool,
    /// `true` on the first patch emitted after the subscription was
    /// re-routed to a new owner set (a shard split, merge, or plane
    /// restore). The patch itself is still an exact diff — consumers
    /// replay it like any other — the marker only tells them the
    /// serving topology changed underneath the subscription.
    pub resync: bool,
}

/// Canonical rectangle order: the total order
/// [`RegionSet::canonicalize`] sorts by, extended over all four
/// coordinates so it is total on arbitrary rect lists.
pub fn rect_cmp(a: &Rect, b: &Rect) -> std::cmp::Ordering {
    a.x_lo
        .total_cmp(&b.x_lo)
        .then(a.y_lo.total_cmp(&b.y_lo))
        .then(a.x_hi.total_cmp(&b.x_hi))
        .then(a.y_hi.total_cmp(&b.y_hi))
}

/// Exact diff of two canonical (sorted, disjoint) rectangle lists:
/// returns `(added, removed)` such that removing `removed` from `old`
/// and appending `added` (re-sorted) reproduces `new` bit-for-bit.
/// Linear merge walk — no geometry, pure bit comparison.
pub fn diff_canonical(old: &[Rect], new: &[Rect]) -> (Vec<Rect>, Vec<Rect>) {
    let mut added = Vec::new();
    let mut removed = Vec::new();
    let (mut i, mut j) = (0usize, 0usize);
    while i < old.len() && j < new.len() {
        match rect_cmp(&old[i], &new[j]) {
            std::cmp::Ordering::Equal => {
                i += 1;
                j += 1;
            }
            std::cmp::Ordering::Less => {
                removed.push(old[i]);
                i += 1;
            }
            std::cmp::Ordering::Greater => {
                added.push(new[j]);
                j += 1;
            }
        }
    }
    removed.extend_from_slice(&old[i..]);
    added.extend_from_slice(&new[j..]);
    (added, removed)
}

impl AnswerDelta {
    /// `true` when the patch changes nothing (and carries no
    /// degradation transition worth reporting).
    pub fn is_empty(&self) -> bool {
        self.added.is_empty() && self.removed.is_empty()
    }

    /// Applies the patch to a canonical rectangle list in place,
    /// reproducing the next canonical answer bit-for-bit. Degraded
    /// patches carry no rects, so applying them is a no-op.
    pub fn apply_to(&self, rects: &mut Vec<Rect>) {
        if !self.removed.is_empty() {
            // Both lists are sorted in canonical order: subtract with
            // one merge walk.
            let mut k = 0usize;
            rects.retain(|r| {
                while k < self.removed.len()
                    && rect_cmp(&self.removed[k], r) == std::cmp::Ordering::Less
                {
                    k += 1;
                }
                !(k < self.removed.len()
                    && rect_cmp(&self.removed[k], r) == std::cmp::Ordering::Equal)
            });
        }
        rects.extend_from_slice(&self.added);
        rects.sort_by(rect_cmp);
    }

    /// Serializes the patch for the wire protocol. Coordinates use
    /// shortest-roundtrip formatting (not the metrics plane's rounded
    /// [`json_f64`](crate::obs::json_f64)): a patch's `removed` rects
    /// must match the consumer's replayed answer bit-for-bit, so the
    /// wire must preserve every coordinate exactly.
    pub fn to_json(&self) -> String {
        fn coord(x: f64) -> String {
            if x.is_finite() {
                format!("{x}")
            } else {
                "null".to_string()
            }
        }
        fn rects_json(rects: &[Rect]) -> String {
            let items: Vec<String> = rects
                .iter()
                .map(|r| {
                    format!(
                        "[{},{},{},{}]",
                        coord(r.x_lo),
                        coord(r.y_lo),
                        coord(r.x_hi),
                        coord(r.y_hi)
                    )
                })
                .collect();
            format!("[{}]", items.join(","))
        }
        format!(
            "{{\"sub\":{},\"t\":{},\"q_t\":{},\"degraded\":{},\"resync\":{},\"added\":{},\"removed\":{}}}",
            self.id.0,
            self.now,
            self.q_t,
            self.degraded,
            self.resync,
            rects_json(&self.added),
            rects_json(&self.removed)
        )
    }
}

/// Why a subscription could not be registered.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum SubError {
    /// The engine has no subscription support.
    Unsupported,
    /// The requested neighborhood edge exceeds what the engine's shard
    /// halos cover: maintaining it would silently lose density at cut
    /// lines, so registration is refused instead.
    EdgeExceedsHalo {
        /// The requested edge length.
        l: f64,
        /// The largest edge the plane was built for.
        l_max: f64,
    },
    /// A query parameter is non-finite or non-positive.
    InvalidQuery,
}

impl std::fmt::Display for SubError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubError::Unsupported => write!(f, "engine has no subscription support"),
            SubError::EdgeExceedsHalo { l, l_max } => write!(
                f,
                "query edge l = {l} exceeds the sharded plane's l_max = {l_max}: \
                 the halo cannot cover it and density would be lost at cut lines"
            ),
            SubError::InvalidQuery => {
                write!(f, "subscription parameters must be finite and positive")
            }
        }
    }
}

impl std::error::Error for SubError {}

/// One subscription's mutable state inside the table.
#[derive(Clone, Debug)]
struct SubState {
    sub: Subscription,
    /// Last committed canonical answer (clipped to the region).
    answer: Vec<Rect>,
    degraded: bool,
    /// Set when the owner set serving this subscription changed (shard
    /// split/merge/restore); the next emitted patch carries the
    /// `resync` marker and clears the flag.
    resync: bool,
}

/// Per-engine registry of standing subscriptions: owns the
/// subscriptions, their last committed canonical answers, and the diff
/// logic. Deterministic iteration order (by id).
#[derive(Clone, Debug, Default)]
pub struct SubscriptionTable {
    subs: BTreeMap<u64, SubState>,
    next_id: u64,
}

impl SubscriptionTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        SubscriptionTable::default()
    }

    /// Number of registered subscriptions.
    pub fn len(&self) -> usize {
        self.subs.len()
    }

    /// `true` when nothing is registered.
    pub fn is_empty(&self) -> bool {
        self.subs.is_empty()
    }

    /// Registers a standing query and returns its fresh id. The initial
    /// committed answer is empty: the first maintenance pass emits the
    /// full current answer as `added`.
    pub fn register(
        &mut self,
        rho: f64,
        l: f64,
        region: Rect,
        policy: QtPolicy,
    ) -> Result<SubId, SubError> {
        if !(rho.is_finite() && rho > 0.0 && l.is_finite() && l > 0.0) {
            return Err(SubError::InvalidQuery);
        }
        let id = SubId(self.next_id);
        self.next_id += 1;
        self.register_with_id(Subscription {
            id,
            rho,
            l,
            region,
            policy,
        });
        Ok(id)
    }

    /// Registers (or replaces) a subscription under a caller-chosen id —
    /// the sharded plane uses this to give every owning shard the same
    /// id. Keeps `next_id` ahead of the inserted id.
    pub fn register_with_id(&mut self, sub: Subscription) {
        self.next_id = self.next_id.max(sub.id.0 + 1);
        self.subs.insert(
            sub.id.0,
            SubState {
                sub,
                answer: Vec::new(),
                degraded: false,
                resync: false,
            },
        );
    }

    /// Flags `id` for a topology resync: the next patch (even an
    /// otherwise-silent one) is emitted with `resync: true`. The sharded
    /// plane calls this after re-routing a subscription to a new owner
    /// set, so consumers learn the serving topology changed.
    pub fn mark_resync(&mut self, id: SubId) {
        if let Some(state) = self.subs.get_mut(&id.0) {
            state.resync = true;
        }
    }

    /// Removes a subscription; `false` when the id is unknown.
    pub fn unregister(&mut self, id: SubId) -> bool {
        self.subs.remove(&id.0).is_some()
    }

    /// `true` when `id` is registered.
    pub fn contains(&self, id: SubId) -> bool {
        self.subs.contains_key(&id.0)
    }

    /// The registered subscriptions, in id order.
    pub fn subs(&self) -> impl Iterator<Item = &Subscription> + '_ {
        self.subs.values().map(|s| &s.sub)
    }

    /// One subscription's spec.
    pub fn get(&self, id: SubId) -> Option<&Subscription> {
        self.subs.get(&id.0).map(|s| &s.sub)
    }

    /// The last committed canonical answer of `id` (empty before the
    /// first maintenance pass).
    pub fn answer(&self, id: SubId) -> Option<&[Rect]> {
        self.subs.get(&id.0).map(|s| s.answer.as_slice())
    }

    /// Whether `id` is currently marked degraded.
    pub fn is_degraded(&self, id: SubId) -> Option<bool> {
        self.subs.get(&id.0).map(|s| s.degraded)
    }

    /// Clips an engine answer to a subscription region and
    /// re-canonicalizes — the invariant every committed answer obeys:
    /// `answer = canonicalize(clip(query(q).regions, region))`.
    pub fn clip(full: &RegionSet, region: Rect) -> RegionSet {
        RegionSet::union_disjoint_clipped([(full, region)])
    }

    /// Commits a freshly computed canonical answer for `id`, clearing
    /// any degradation, and returns the patch against the previous
    /// committed answer. `None` when nothing changed (no rect moved, no
    /// degradation to clear) or the id is unknown.
    pub fn commit(
        &mut self,
        id: SubId,
        answer: RegionSet,
        now: Timestamp,
        q_t: Timestamp,
    ) -> Option<AnswerDelta> {
        let state = self.subs.get_mut(&id.0)?;
        let new: Vec<Rect> = answer.rects().to_vec();
        let (added, removed) = diff_canonical(&state.answer, &new);
        let was_degraded = state.degraded;
        let resync = state.resync;
        state.answer = new;
        state.degraded = false;
        state.resync = false;
        if added.is_empty() && removed.is_empty() && !was_degraded && !resync {
            return None;
        }
        Some(AnswerDelta {
            id,
            now,
            q_t,
            added,
            removed,
            degraded: false,
            resync,
        })
    }

    /// Marks `id` degraded: the stored answer is left untouched (stale
    /// but correct as of its commit) and a rect-free degraded patch is
    /// returned on the transition into degradation. Repeated marks stay
    /// silent.
    pub fn mark_degraded(
        &mut self,
        id: SubId,
        now: Timestamp,
        q_t: Timestamp,
    ) -> Option<AnswerDelta> {
        let state = self.subs.get_mut(&id.0)?;
        if state.degraded {
            return None;
        }
        state.degraded = true;
        let resync = state.resync;
        state.resync = false;
        Some(AnswerDelta {
            id,
            now,
            q_t,
            added: Vec::new(),
            removed: Vec::new(),
            degraded: true,
            resync,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(x_lo: f64, y_lo: f64, x_hi: f64, y_hi: f64) -> Rect {
        Rect::new(x_lo, y_lo, x_hi, y_hi)
    }

    #[test]
    fn diff_and_apply_round_trip() {
        let old = vec![r(0.0, 0.0, 1.0, 1.0), r(2.0, 0.0, 3.0, 1.0)];
        let new = vec![
            r(0.0, 0.0, 1.0, 1.0),
            r(2.0, 0.0, 3.0, 2.0),
            r(5.0, 5.0, 6.0, 6.0),
        ];
        let (added, removed) = diff_canonical(&old, &new);
        assert_eq!(removed, vec![r(2.0, 0.0, 3.0, 1.0)]);
        assert_eq!(added, vec![r(2.0, 0.0, 3.0, 2.0), r(5.0, 5.0, 6.0, 6.0)]);
        let delta = AnswerDelta {
            id: SubId(0),
            now: 1,
            q_t: 1,
            added,
            removed,
            degraded: false,
            resync: false,
        };
        let mut replay = old.clone();
        delta.apply_to(&mut replay);
        assert_eq!(replay, new, "patched answer must equal the new answer");
    }

    #[test]
    fn commit_emits_patches_and_degradation_transitions() {
        let mut t = SubscriptionTable::new();
        let id = t
            .register(0.1, 10.0, r(0.0, 0.0, 100.0, 100.0), QtPolicy::NowPlus(2))
            .unwrap();
        assert_eq!(t.answer(id), Some(&[][..]));
        // First commit: the whole answer arrives as `added`.
        let ans = RegionSet::from_rects([r(1.0, 1.0, 2.0, 2.0)]);
        let d = t.commit(id, ans.clone(), 0, 2).expect("first commit emits");
        assert_eq!(d.added.len(), 1);
        assert!(d.removed.is_empty());
        // Identical commit: silent.
        assert!(t.commit(id, ans.clone(), 1, 3).is_none());
        // Degradation: one transition patch, then silence.
        let d = t.mark_degraded(id, 2, 4).expect("transition emits");
        assert!(d.degraded && d.is_empty());
        assert!(t.mark_degraded(id, 3, 5).is_none());
        assert_eq!(t.is_degraded(id), Some(true));
        // Recovery with an unchanged answer still emits (clears the flag).
        let d = t.commit(id, ans, 4, 6).expect("recovery emits");
        assert!(!d.degraded && d.is_empty());
        assert_eq!(t.is_degraded(id), Some(false));
        assert!(t.unregister(id));
        assert!(!t.unregister(id));
    }

    #[test]
    fn resync_marker_rides_the_next_patch_once() {
        let mut t = SubscriptionTable::new();
        let id = t
            .register(0.1, 10.0, r(0.0, 0.0, 100.0, 100.0), QtPolicy::NowPlus(1))
            .unwrap();
        let ans = RegionSet::from_rects([r(1.0, 1.0, 2.0, 2.0)]);
        let d = t.commit(id, ans.clone(), 0, 1).expect("first commit emits");
        assert!(!d.resync);
        // An unchanged commit is silent — until a resync is pending, in
        // which case the marker forces an (otherwise empty) patch out.
        assert!(t.commit(id, ans.clone(), 1, 2).is_none());
        t.mark_resync(id);
        let d = t
            .commit(id, ans.clone(), 2, 3)
            .expect("resync forces a patch");
        assert!(d.resync && d.is_empty() && !d.degraded);
        // The flag is one-shot.
        assert!(t.commit(id, ans, 3, 4).is_none());
    }

    #[test]
    fn register_rejects_garbage_and_policies_resolve_forward() {
        let mut t = SubscriptionTable::new();
        let region = r(0.0, 0.0, 10.0, 10.0);
        assert_eq!(
            t.register(f64::NAN, 10.0, region, QtPolicy::NowPlus(0)),
            Err(SubError::InvalidQuery)
        );
        assert_eq!(
            t.register(0.1, -1.0, region, QtPolicy::NowPlus(0)),
            Err(SubError::InvalidQuery)
        );
        assert_eq!(QtPolicy::Fixed(5).resolve(3), 5);
        assert_eq!(QtPolicy::Fixed(5).resolve(9), 9, "past q_t clamps to now");
        assert_eq!(QtPolicy::NowPlus(2).resolve(7), 9);
    }
}
