//! The approximate polynomial-approximation engine (Section 6).

use crate::obs::{Counter, Histogram, ObsReport};
use pdr_chebyshev::{BnbConfig, PolyGrid};
use pdr_geometry::{Point, Rect, RegionSet};
use pdr_mobject::{TimeHorizon, Timestamp, Update};
use std::time::{Duration, Instant};

/// PA-side instrumentation: where branch-and-bound spends its nodes and
/// where wall-clock goes. Counters record through `&self` (queries are
/// shared); recording never changes any answer.
#[derive(Debug, Default)]
struct PaObs {
    enabled: bool,
    queries: Counter,
    bnb_expanded: Counter,
    bnb_accepted: Counter,
    bnb_pruned: Counter,
    bnb_leaf_evals: Counter,
    query_time: Histogram,
    apply_time: Histogram,
}

impl PaObs {
    fn on() -> Self {
        PaObs {
            enabled: true,
            ..PaObs::default()
        }
    }

    fn report(&self) -> ObsReport {
        ObsReport {
            counters: vec![
                ("queries", self.queries.get()),
                ("bnb_expanded", self.bnb_expanded.get()),
                ("bnb_accepted", self.bnb_accepted.get()),
                ("bnb_pruned", self.bnb_pruned.get()),
                ("bnb_leaf_evals", self.bnb_leaf_evals.get()),
            ],
            stages: vec![
                ("query", self.query_time.snapshot()),
                ("apply", self.apply_time.snapshot()),
            ],
        }
    }
}

/// Configuration of a [`PaEngine`].
///
/// Unlike FR, the approximate method fixes the neighborhood edge `l` at
/// construction time: the maintained surface *is* the density for that
/// `l` (the paper justifies this with PA's much lower query cost).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PaConfig {
    /// Side length `L` of the monitored square region.
    pub extent: f64,
    /// Polynomial tiles per side (`g`; paper default g² = 400).
    pub g: u32,
    /// Polynomial degree (`k`; paper default 5).
    pub degree: usize,
    /// The fixed neighborhood edge length `l`.
    pub l: f64,
    /// Time horizon `U / W / H`.
    pub horizon: TimeHorizon,
    /// Resolution of the final subdivision: equivalent to an
    /// `m_d × m_d` evaluation grid over the whole plane.
    pub m_d: u32,
}

impl PaConfig {
    /// The paper's default setup: g = 20 (400 polynomials), degree 5,
    /// l = 30, on the 1000-mile plane.
    pub fn paper_default() -> Self {
        PaConfig {
            extent: 1000.0,
            g: 20,
            degree: 5,
            l: 30.0,
            horizon: TimeHorizon::PAPER_DEFAULT,
            m_d: 1024,
        }
    }
}

/// Answer and cost breakdown of one PA query.
#[derive(Clone, Debug)]
pub struct PaAnswer {
    /// The approximate dense region.
    pub regions: RegionSet,
    /// Polynomial bound evaluations performed by branch-and-bound —
    /// the threshold-sensitive CPU driver of Figure 9(a).
    pub bound_evals: u64,
    /// Wall-clock CPU time of the query. PA performs no I/O at all:
    /// all coefficients are memory resident (Section 7.3).
    pub cpu: Duration,
}

/// The approximate PDR engine: one `g × g` grid of degree-`k` Chebyshev
/// polynomials per horizon timestamp, ring-buffered like the density
/// histogram.
///
/// ```
/// use pdr_core::{PaConfig, PaEngine};
/// use pdr_mobject::{MotionState, ObjectId, TimeHorizon, Update};
/// use pdr_geometry::Point;
///
/// let mut pa = PaEngine::new(
///     PaConfig {
///         extent: 100.0,
///         g: 4,
///         degree: 6,
///         l: 10.0,
///         horizon: TimeHorizon::new(3, 3),
///         m_d: 200,
///     },
///     0,
/// );
/// // A tight cluster of 8 stationary objects.
/// for i in 0..8 {
///     pa.apply(&Update::insert(
///         ObjectId(i),
///         0,
///         MotionState::stationary(Point::new(50.0, 50.0), 0),
///     ));
/// }
/// // All points with >= 5 objects per 10x10 neighborhood at t = 2.
/// let answer = pa.query(5.0 / 100.0, 2);
/// assert!(answer.regions.contains(Point::new(50.0, 50.0)));
/// // The surface also answers aggregates and hot-spot questions.
/// assert!(pa.estimate_count(&pdr_geometry::Rect::new(30.0, 30.0, 70.0, 70.0), 2) > 4.0);
/// let peaks = pa.top_k_dense(1, 2, 10.0);
/// assert!(peaks[0].0.center().linf_distance(Point::new(50.0, 50.0)) < 10.0);
/// ```
#[derive(Debug)]
pub struct PaEngine {
    cfg: PaConfig,
    t_base: Timestamp,
    grids: Vec<PolyGrid>,
    updates_applied: u64,
    rejected_updates: u64,
    live: i64,
    obs: PaObs,
    /// Standing subscriptions (engine-plane state: never serialized,
    /// carried across checkpoint restores by the trait impl).
    pub(crate) subs: crate::sub::SubscriptionTable,
}

impl PaEngine {
    /// Creates an empty engine whose horizon starts at `t_start`.
    pub fn new(cfg: PaConfig, t_start: Timestamp) -> Self {
        assert!(cfg.l > 0.0, "neighborhood edge must be positive");
        let grids = (0..cfg.horizon.slot_count())
            .map(|_| PolyGrid::new(cfg.extent, cfg.g, cfg.degree))
            .collect();
        PaEngine {
            cfg,
            t_base: t_start,
            grids,
            updates_applied: 0,
            rejected_updates: 0,
            live: 0,
            obs: PaObs::on(),
            subs: crate::sub::SubscriptionTable::new(),
        }
    }

    /// Snapshot of the engine's instrumentation (bnb node accounting,
    /// query/apply latency). The `queries` counter always runs; every
    /// other value stays zero while observability is disabled.
    pub fn obs_report(&self) -> ObsReport {
        self.obs.report()
    }

    /// Snapshot queries answered over the engine's lifetime (not
    /// counting the [`query_grid_scan`](Self::query_grid_scan) ablation
    /// path).
    pub fn queries_served(&self) -> u64 {
        self.obs.queries.get()
    }

    /// Turns instrumentation on or off (on by default). Disabling skips
    /// even the clock reads; answers are identical either way.
    pub fn set_obs_enabled(&mut self, on: bool) {
        self.obs.enabled = on;
    }

    /// The engine configuration.
    pub fn config(&self) -> &PaConfig {
        &self.cfg
    }

    /// Current base timestamp.
    pub fn t_base(&self) -> Timestamp {
        self.t_base
    }

    /// `true` when timestamp `t` has a slot.
    pub fn covers(&self, t: Timestamp) -> bool {
        self.cfg.horizon.covers(self.t_base, t)
    }

    /// Coefficient memory in bytes:
    /// `(H+1) · g² · (k+1)(k+2)/2` coefficients of 8 bytes (Section 6.4).
    pub fn memory_bytes(&self) -> usize {
        self.grids
            .iter()
            .map(|g| g.coefficient_count() * std::mem::size_of::<f64>())
            .sum()
    }

    #[inline]
    fn slot_of(&self, t: Timestamp) -> usize {
        (t % self.cfg.horizon.slot_count() as u64) as usize
    }

    /// Applies one protocol update (Algorithms 4–5): for each affected
    /// timestamp, deposit `±1/l²` over the object's `l`-square onto that
    /// timestamp's polynomial grid.
    pub fn apply(&mut self, update: &Update) {
        let _t = self.obs.apply_time.timer(self.obs.enabled);
        self.updates_applied += 1;
        self.live += update.sign();
        let h = self.cfg.horizon.h();
        let Some((from, to)) = update.affected_range(h) else {
            return;
        };
        let from = from.max(self.t_base);
        let to = to.min(self.t_base + h);
        if from > to {
            return;
        }
        let motion = update.motion();
        let weight = update.sign() as f64 / (self.cfg.l * self.cfg.l);
        for t in from..=to {
            let pos = motion.position_at(t);
            let bx = Rect::centered_square(pos, self.cfg.l);
            let slot = self.slot_of(t);
            self.grids[slot].add_box(&bx, weight);
        }
    }

    /// Advances the horizon base, clearing recycled slots (same
    /// correctness argument as the density histogram ring buffer).
    pub fn advance_to(&mut self, t_new: Timestamp) {
        assert!(t_new >= self.t_base, "time cannot move backwards");
        let slots = self.cfg.horizon.slot_count() as u64;
        if t_new - self.t_base >= slots {
            for g in &mut self.grids {
                g.clear();
            }
        } else {
            for t in self.t_base..t_new {
                let slot = self.slot_of(t);
                self.grids[slot].clear();
            }
        }
        self.t_base = t_new;
    }

    /// The approximated point density at `p` for timestamp `t`.
    pub fn density_at(&self, p: Point, t: Timestamp) -> f64 {
        assert!(self.covers(t), "timestamp {t} outside horizon");
        self.grids[self.slot_of(t)].eval(p)
    }

    /// Evaluates a snapshot PDR query approximately: branch-and-bound
    /// super-level-set extraction at threshold `ρ` (Section 6.3).
    ///
    /// # Panics
    ///
    /// Panics when `q_t` is outside the horizon window. The query's
    /// `l` is fixed by the engine configuration.
    pub fn query(&self, rho: f64, q_t: Timestamp) -> PaAnswer {
        assert!(self.covers(q_t), "timestamp {q_t} outside horizon");
        let _t = self.obs.query_time.timer(self.obs.enabled);
        let start = Instant::now();
        let cfg = BnbConfig::for_grid(self.cfg.extent, self.cfg.m_d);
        let (regions, bnb) = self.grids[self.slot_of(q_t)].superlevel_set(rho, &cfg);
        self.obs.queries.inc();
        if self.obs.enabled {
            self.obs.bnb_expanded.add(bnb.expanded);
            self.obs.bnb_accepted.add(bnb.accepted);
            self.obs.bnb_pruned.add(bnb.pruned);
            self.obs.bnb_leaf_evals.add(bnb.leaf_evals);
        }
        PaAnswer {
            regions,
            bound_evals: bnb.expanded,
            cpu: start.elapsed(),
        }
    }

    /// The trivial evaluation strategy the paper rejects (Section 6.3):
    /// classify every cell of an `m_d × m_d` grid by its center value.
    /// Kept as the ablation baseline for the branch-and-bound method.
    pub fn query_grid_scan(&self, rho: f64, q_t: Timestamp) -> PaAnswer {
        assert!(self.covers(q_t), "timestamp {q_t} outside horizon");
        let start = Instant::now();
        let grid = &self.grids[self.slot_of(q_t)];
        let m_d = self.cfg.m_d;
        let step = self.cfg.extent / m_d as f64;
        let mut regions = RegionSet::new();
        let mut evals = 0u64;
        for row in 0..m_d {
            for col in 0..m_d {
                let x = (col as f64 + 0.5) * step;
                let y = (row as f64 + 0.5) * step;
                evals += 1;
                if grid.eval(Point::new(x, y)) >= rho {
                    regions.push(Rect::new(
                        col as f64 * step,
                        row as f64 * step,
                        (col + 1) as f64 * step,
                        (row + 1) as f64 * step,
                    ));
                }
            }
        }
        regions.coalesce();
        PaAnswer {
            regions,
            bound_evals: evals,
            cpu: start.elapsed(),
        }
    }

    /// Serializes the engine (configuration, horizon base, every
    /// timestamp slot's coefficients) into a versioned checkpoint, so a
    /// restarting server resumes approximate querying immediately
    /// instead of waiting up to `U + W` timestamps for re-reports.
    pub fn serialize(&self) -> Vec<u8> {
        let mut w = pdr_storage::ByteWriter::with_capacity(64 + 9 * self.memory_bytes() / 8);
        w.put_bytes(b"PDRP");
        w.put_u16(1);
        w.put_f64(self.cfg.extent);
        w.put_u32(self.cfg.g);
        w.put_u32(self.cfg.degree as u32);
        w.put_f64(self.cfg.l);
        w.put_u64(self.cfg.horizon.max_update_time());
        w.put_u64(self.cfg.horizon.prediction_window());
        w.put_u32(self.cfg.m_d);
        w.put_u64(self.t_base);
        w.put_u64(self.grids.len() as u64);
        for g in &self.grids {
            let bytes = g.serialize();
            w.put_u64(bytes.len() as u64);
            w.put_bytes(&bytes);
        }
        w.into_bytes()
    }

    /// Restores an engine from [`serialize`](Self::serialize) output.
    pub fn deserialize(bytes: &[u8]) -> Result<Self, pdr_storage::CodecError> {
        use pdr_storage::CodecError;
        let mut r = pdr_storage::ByteReader::new(bytes);
        r.expect_magic(b"PDRP")?;
        let version = r.get_u16()?;
        if version != 1 {
            return Err(CodecError::BadVersion(version));
        }
        let extent = r.get_f64()?;
        let g = r.get_u32()?;
        let degree = r.get_u32()? as usize;
        let l = r.get_f64()?;
        if !(l.is_finite() && l > 0.0) {
            return Err(CodecError::Corrupt("edge length"));
        }
        let u = r.get_u64()?;
        let wnd = r.get_u64()?;
        if u + wnd == 0 {
            return Err(CodecError::Corrupt("horizon"));
        }
        let m_d = r.get_u32()?;
        let cfg = PaConfig {
            extent,
            g,
            degree,
            l,
            horizon: TimeHorizon::new(u, wnd),
            m_d,
        };
        let t_base = r.get_u64()?;
        let n_grids = r.get_u64()? as usize;
        if n_grids != cfg.horizon.slot_count() {
            return Err(CodecError::Corrupt("slot count"));
        }
        let mut grids = Vec::with_capacity(n_grids);
        for _ in 0..n_grids {
            let len = r.get_u64()? as usize;
            let mut chunk = Vec::with_capacity(len);
            for _ in 0..len {
                chunk.push(r.get_u8()?);
            }
            let grid = PolyGrid::deserialize(&chunk)?;
            if grid.g() != cfg.g || grid.degree() != cfg.degree {
                return Err(CodecError::Corrupt("grid shape"));
            }
            grids.push(grid);
        }
        Ok(PaEngine {
            cfg,
            t_base,
            grids,
            updates_applied: 0,
            rejected_updates: 0,
            live: 0,
            obs: PaObs::on(),
            subs: crate::sub::SubscriptionTable::new(),
        })
    }

    /// Protocol updates applied since construction (or restore —
    /// counters, like the histogram epoch, are not checkpointed).
    pub fn updates_applied(&self) -> u64 {
        self.updates_applied
    }

    /// Reports rejected by input screening (see
    /// [`pdr_mobject::screen_batch`]), counted by the batch ingest path.
    pub fn rejected_updates(&self) -> u64 {
        self.rejected_updates
    }

    /// Adds `n` to the rejected-reports counter.
    pub fn note_rejected(&mut self, n: u64) {
        self.rejected_updates += n;
    }

    /// Net live objects implied by the update stream (inserts minus
    /// deletes); the surface itself stores no per-object state.
    pub fn live_objects(&self) -> i64 {
        self.live
    }

    /// The `k` highest-density spots at timestamp `t`, at least
    /// `min_separation` apart — "where are the worst hot-spots?"
    /// answered directly from the surface by best-first branch-and-
    /// bound, without choosing a threshold first. Returns
    /// `(spot, density)` pairs in decreasing density order.
    ///
    /// # Panics
    ///
    /// Panics when `t` is outside the horizon window.
    pub fn top_k_dense(&self, k: usize, t: Timestamp, min_separation: f64) -> Vec<(Rect, f64)> {
        assert!(self.covers(t), "timestamp {t} outside horizon");
        let cfg = BnbConfig::for_grid(self.cfg.extent, self.cfg.m_d);
        self.grids[self.slot_of(t)].top_k_peaks(k, &cfg, min_separation)
    }

    /// Estimates the number of objects inside `rect` at timestamp `t`
    /// by integrating the density surface in closed form:
    /// `∫_R d_t(p) dA = Σ_o area(S_o ∩ R)/l² ≈ |{o ∈ R}|` (each object
    /// contributes its `l`-square's overlap with `R`, so the estimate
    /// blurs by ±l/2 at the boundary). This turns the PA structure into
    /// the spatio-temporal *aggregate/selectivity* estimator the
    /// paper's related-work section connects dense-region queries to —
    /// with zero I/O and cost independent of the object count.
    ///
    /// # Panics
    ///
    /// Panics when `t` is outside the horizon window.
    pub fn estimate_count(&self, rect: &Rect, t: Timestamp) -> f64 {
        assert!(self.covers(t), "timestamp {t} outside horizon");
        self.grids[self.slot_of(t)].integral(rect)
    }

    /// Iso-density contour lines of the approximated surface at
    /// timestamp `q_t` (Section 6's "contour lines … in explicit
    /// form"): marching squares over an `n × n` sampling of the
    /// polynomial surface. Useful for visualizing how object density is
    /// distributed, beyond the binary dense/sparse answer.
    ///
    /// # Panics
    ///
    /// Panics when `q_t` is outside the horizon window or `n < 2`.
    pub fn contours(&self, level: f64, q_t: Timestamp, n: usize) -> Vec<pdr_chebyshev::Contour> {
        assert!(self.covers(q_t), "timestamp {q_t} outside horizon");
        let grid = &self.grids[self.slot_of(q_t)];
        let domain = grid.domain();
        pdr_chebyshev::contour_lines(|x, y| grid.eval(Point::new(x, y)), domain, level, n)
    }

    /// Interval PDR query: union of snapshot answers.
    pub fn interval_query(&self, rho: f64, from: Timestamp, to: Timestamp) -> RegionSet {
        assert!(from <= to, "empty interval");
        let mut out = RegionSet::new();
        for t in from..=to {
            out.extend_from(&self.query(rho, t).regions);
        }
        out.coalesce();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{accuracy, ExactOracle, PdrQuery};
    use pdr_mobject::{MotionState, ObjectId};

    fn cfg() -> PaConfig {
        PaConfig {
            extent: 200.0,
            g: 4,
            degree: 6,
            l: 20.0,
            horizon: TimeHorizon::new(3, 3),
            m_d: 256,
        }
    }

    struct Lcg(u64);
    impl Lcg {
        fn next(&mut self) -> f64 {
            self.0 = self
                .0
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (self.0 >> 33) as f64 / (1u64 << 31) as f64
        }
    }

    fn population(n: usize, seed: u64) -> Vec<(ObjectId, MotionState)> {
        let mut rng = Lcg(seed);
        (0..n)
            .map(|i| {
                let p = if i % 2 == 0 {
                    Point::new(60.0 + rng.next() * 40.0, 60.0 + rng.next() * 40.0)
                } else {
                    Point::new(rng.next() * 200.0, rng.next() * 200.0)
                };
                let v = Point::new(rng.next() * 2.0 - 1.0, rng.next() * 2.0 - 1.0);
                (ObjectId(i as u64), MotionState::new(p, v, 0))
            })
            .collect()
    }

    fn loaded_engine(pop: &[(ObjectId, MotionState)]) -> PaEngine {
        let mut pa = PaEngine::new(cfg(), 0);
        for (id, m) in pop {
            pa.apply(&Update::insert(*id, 0, *m));
        }
        pa
    }

    #[test]
    fn density_surface_tracks_point_density() {
        let pop = population(400, 3);
        let pa = loaded_engine(&pop);
        let oracle = ExactOracle::new(
            Rect::new(0.0, 0.0, 200.0, 200.0),
            pop.iter().map(|(_, m)| m.position_at(2)).collect(),
        );
        // Compare approximate vs exact density at interior probes.
        let mut total_err = 0.0;
        let mut probes = 0;
        for ix in 1..10 {
            for iy in 1..10 {
                let p = Point::new(ix as f64 * 20.0, iy as f64 * 20.0);
                let exact = oracle.density_at(p, 20.0);
                let approx = pa.density_at(p, 2);
                total_err += (exact - approx).abs();
                probes += 1;
            }
        }
        let mean_err = total_err / probes as f64;
        // Peak densities here are ~0.15 objects/unit^2; mean absolute
        // error should be a small fraction of that.
        assert!(mean_err < 0.02, "mean density error {mean_err}");
    }

    #[test]
    fn query_approximates_truth() {
        let pop = population(500, 7);
        let pa = loaded_engine(&pop);
        let q = PdrQuery::new(0.05, 20.0, 1);
        let oracle = ExactOracle::new(
            Rect::new(0.0, 0.0, 200.0, 200.0),
            pop.iter().map(|(_, m)| m.position_at(1)).collect(),
        );
        let truth = oracle.dense_regions(&q);
        let ans = pa.query(q.rho, 1);
        let acc = accuracy(&truth, &ans.regions);
        assert!(
            acc.r_fp < 0.5 && acc.r_fn < 0.5,
            "PA too inaccurate: {acc:?} (truth area {})",
            truth.area()
        );
    }

    #[test]
    fn bnb_agrees_with_grid_scan() {
        let pop = population(400, 13);
        let pa = loaded_engine(&pop);
        let bnb = pa.query(0.05, 0);
        let scan = pa.query_grid_scan(0.05, 0);
        // Same surface, same threshold: answers must nearly coincide
        // (they differ only in sub-cell boundary placement).
        let sym = bnb.regions.symmetric_difference_area(&scan.regions);
        let union = bnb.regions.union_area(&scan.regions);
        assert!(
            sym <= 0.1 * union.max(1.0),
            "bnb vs scan symmetric difference {sym} of union {union}"
        );
        // And branch-and-bound must touch far fewer evaluation points.
        assert!(bnb.bound_evals < scan.bound_evals / 2);
    }

    #[test]
    fn deletion_reverts_surface() {
        let pop = population(100, 5);
        let mut pa = PaEngine::new(cfg(), 0);
        for (id, m) in &pop {
            pa.apply(&Update::insert(*id, 0, *m));
        }
        for (id, m) in &pop {
            pa.apply(&Update::delete(*id, 0, *m));
        }
        for ix in 0..10 {
            for iy in 0..10 {
                let p = Point::new(ix as f64 * 20.0 + 5.0, iy as f64 * 20.0 + 5.0);
                assert!(
                    pa.density_at(p, 2).abs() < 1e-9,
                    "residual density at {p:?}"
                );
            }
        }
    }

    #[test]
    fn higher_threshold_prunes_more() {
        let pop = population(500, 17);
        let pa = loaded_engine(&pop);
        let low = pa.query(0.02, 0);
        let high = pa.query(0.2, 0);
        assert!(high.bound_evals <= low.bound_evals);
    }

    #[test]
    fn advance_clears_recycled_slots() {
        let pop = population(200, 19);
        let mut pa = loaded_engine(&pop);
        assert!(pa.covers(6));
        pa.advance_to(2);
        // Slots 7, 8 are recycled from old 0, 1 and must be empty.
        assert!(pa.covers(8));
        assert_eq!(pa.density_at(Point::new(80.0, 80.0), 8), 0.0);
        // Live slots keep their surface.
        assert!(pa.density_at(Point::new(80.0, 80.0), 4) > 0.0);
    }

    #[test]
    fn checkpoint_round_trip_preserves_answers() {
        let pop = population(300, 61);
        let mut pa = loaded_engine(&pop);
        pa.advance_to(1);
        let bytes = pa.serialize();
        let restored = PaEngine::deserialize(&bytes).unwrap();
        assert_eq!(restored.t_base(), 1);
        for t in 1..=7u64 {
            let a = pa.query(0.05, t).regions;
            let b = restored.query(0.05, t).regions;
            assert!(
                a.symmetric_difference_area(&b) < 1e-9,
                "restored engine answers differ at t={t}"
            );
        }
        // The restored engine keeps accepting updates.
        let mut restored = restored;
        restored.apply(&Update::insert(
            pdr_mobject::ObjectId(9999),
            1,
            MotionState::stationary(Point::new(10.0, 10.0), 1),
        ));
        assert!(restored.density_at(Point::new(10.0, 10.0), 3) > 0.0);
    }

    /// Satellite of the engine-plane refactor: the checkpoint must be
    /// faithful not just for a freshly bulk-loaded engine, but after a
    /// realistic served life — movement reports (delete+insert pairs)
    /// across several ticks, each preceded by a horizon advance.
    #[test]
    fn checkpoint_round_trip_after_update_stream_and_advance() {
        use pdr_mobject::ObjectTable;
        let pop = population(250, 71);
        let mut table = ObjectTable::new();
        let mut pa = PaEngine::new(cfg(), 0);
        for (id, m) in &pop {
            for u in table.report(*id, 0, *m) {
                pa.apply(&u);
            }
        }
        // Three ticks: advance the horizon, then half the objects
        // re-report with perturbed motions (a delete+insert pair each).
        let mut rng = Lcg(123);
        for t in 1..=3u64 {
            pa.advance_to(t);
            for (id, m) in pop.iter().filter(|(id, _)| id.0 % 2 == 0) {
                let moved = MotionState::new(
                    m.position_at(t),
                    Point::new(rng.next() * 2.0 - 1.0, rng.next() * 2.0 - 1.0),
                    t,
                );
                for u in table.report(*id, t, moved) {
                    pa.apply(&u);
                }
            }
        }
        assert!(pa.updates_applied() > pop.len() as u64);

        let restored = PaEngine::deserialize(&pa.serialize()).unwrap();
        assert_eq!(restored.t_base(), 3);
        // Coefficients are checkpointed bit-exactly, so the restored
        // surface — and every answer derived from it — is identical
        // across the whole covered window.
        for t in 3..=9u64 {
            for &rho in &[0.02, 0.05, 0.1] {
                let a = pa.query(rho, t).regions;
                let b = restored.query(rho, t).regions;
                assert_eq!(a.rects(), b.rects(), "answers differ at t={t}, rho={rho}");
            }
            let probe = Point::new(80.0, 80.0);
            assert_eq!(
                pa.density_at(probe, t).to_bits(),
                restored.density_at(probe, t).to_bits(),
                "surface differs at t={t}"
            );
        }
        // Counters are engine-lifetime accounting, not surface state:
        // a restored engine restarts them (like the histogram epoch).
        assert_eq!(restored.updates_applied(), 0);
    }

    #[test]
    fn checkpoint_rejects_garbage() {
        use pdr_storage::CodecError;
        assert!(matches!(
            PaEngine::deserialize(b"junk").unwrap_err(),
            CodecError::BadMagic
        ));
        let pa = PaEngine::new(cfg(), 0);
        let bytes = pa.serialize();
        assert!(matches!(
            PaEngine::deserialize(&bytes[..bytes.len() / 2]).unwrap_err(),
            CodecError::UnexpectedEof
        ));
    }

    #[test]
    fn top_k_dense_finds_the_cluster() {
        let pop = population(500, 53);
        let pa = loaded_engine(&pop);
        // The generator puts half the objects in [60, 100]^2.
        let peaks = pa.top_k_dense(3, 1, 30.0);
        assert!(!peaks.is_empty());
        let best = peaks[0].0.center();
        assert!(
            (40.0..=120.0).contains(&best.x) && (40.0..=120.0).contains(&best.y),
            "hottest spot {best:?} not in the cluster region"
        );
        // Densities are reported in decreasing order and are positive.
        for w in peaks.windows(2) {
            assert!(w[0].1 >= w[1].1);
        }
        assert!(peaks[0].1 > 0.0);
        // Separation holds.
        for (i, a) in peaks.iter().enumerate() {
            for b in peaks.iter().skip(i + 1) {
                assert!(a.0.center().linf_distance(b.0.center()) >= 30.0);
            }
        }
    }

    #[test]
    fn estimate_count_tracks_true_counts() {
        let pop = population(600, 41);
        let pa = loaded_engine(&pop);
        for rect in [
            Rect::new(40.0, 40.0, 120.0, 120.0),   // hot cluster area
            Rect::new(0.0, 0.0, 200.0, 200.0),     // whole plane
            Rect::new(150.0, 150.0, 200.0, 200.0), // sparse corner
        ] {
            // Blur-corrected truth: count objects in the rect expanded
            // by nothing (the estimator itself blurs by +-l/2, so allow
            // a generous tolerance scaled by the perimeter).
            let t = 2u64;
            let truth = pop
                .iter()
                .filter(|(_, m)| rect.contains(m.position_at(t)))
                .count() as f64;
            let est = pa.estimate_count(&rect, t);
            let slack = 0.15 * truth + (rect.margin() * 2.0 * cfg().l) / (cfg().l * cfg().l) + 5.0;
            assert!(
                (est - truth).abs() <= slack,
                "rect {rect:?}: estimated {est}, true {truth} (slack {slack})"
            );
        }
    }

    #[test]
    fn contours_trace_the_dense_boundary() {
        let pop = population(500, 29);
        let pa = loaded_engine(&pop);
        let rho = 0.05;
        let contours = pa.contours(rho, 1, 128);
        assert!(!contours.is_empty(), "a clustered scene must have contours");
        // Every contour vertex sits (approximately) on the iso-level.
        for c in &contours {
            for p in c.points.iter().step_by(5) {
                let v = pa.density_at(*p, 1);
                assert!(
                    (v - rho).abs() < 0.02,
                    "contour vertex {p:?} has density {v}, level {rho}"
                );
            }
        }
    }

    #[test]
    fn memory_accounting_formula() {
        let pa = PaEngine::new(cfg(), 0);
        // 7 slots x 16 tiles x C(6) coeffs x 8 bytes, C(6) = 28.
        assert_eq!(pa.memory_bytes(), 7 * 16 * 28 * 8);
    }

    #[test]
    fn interval_query_contains_snapshots() {
        let pop = population(300, 23);
        let pa = loaded_engine(&pop);
        let union = pa.interval_query(0.05, 0, 2);
        for t in 0..=2u64 {
            let snap = pa.query(0.05, t).regions;
            assert!(snap.difference_area(&union) < 1e-6);
        }
    }
}
