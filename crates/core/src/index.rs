//! The refinement-index abstraction.
//!
//! Section 4 of the paper: "Several indexing methods have been proposed
//! for linear movement, which we can adopt in our framework." The
//! refinement step only needs predictive range queries with I/O
//! accounting, captured by [`RangeIndex`]; the exact engine is generic
//! over it, with the TPR-tree as the paper's (default) choice and the
//! velocity-bounded grid index as the drop-in alternative.
//!
//! Range queries go through `&self` so a shared index can serve several
//! refinement threads at once (`Sync` is a supertrait); each query
//! reports the I/O it performed into a caller-supplied [`IoStats`]
//! collector, which parallel callers merge at the end.

use pdr_geometry::{Point, Rect};
use pdr_mobject::{MotionState, ObjectId, Timestamp};
use pdr_storage::{FaultPlan, FaultStats, IoStats, StorageError};

/// A disk-backed index over moving objects supporting predictive range
/// queries, as required by the FR refinement step.
///
/// `Send + Sync + 'static` is required so the parallel refinement
/// pipeline can share the index (behind an `Arc`) with the persistent
/// [work-stealing executor](crate::exec::Executor), whose task closures
/// outlive any particular borrow.
pub trait RangeIndex: Send + Sync + 'static {
    /// Inserts a motion reported at `t_now`.
    fn insert(&mut self, id: ObjectId, motion: &MotionState, t_now: Timestamp);

    /// Removes an object; `false` when it was not indexed.
    fn remove(&mut self, id: ObjectId) -> bool;

    /// All objects whose extrapolated position at `t` lies in `rect`
    /// (closed semantics). The I/O charged to this query is added to
    /// `io`; implementations also accumulate it in their global
    /// [`io_stats`](RangeIndex::io_stats).
    fn range_at_collect(
        &self,
        rect: &Rect,
        t: Timestamp,
        io: &mut IoStats,
    ) -> Vec<(ObjectId, Point)>;

    /// Fallible [`range_at_collect`](RangeIndex::range_at_collect):
    /// surfaces storage faults as a typed [`StorageError`] instead of
    /// panicking. The default wraps the infallible path, which is
    /// correct for backends that cannot fail.
    fn try_range_at_collect(
        &self,
        rect: &Rect,
        t: Timestamp,
        io: &mut IoStats,
    ) -> Result<Vec<(ObjectId, Point)>, StorageError> {
        Ok(self.range_at_collect(rect, t, io))
    }

    /// [`try_range_at_collect`](RangeIndex::try_range_at_collect) into a
    /// caller-owned buffer, replacing its contents. The FR refinement
    /// loop issues one range query per candidate cell and reuses a
    /// single buffer across all of them, so the per-cell result
    /// allocation disappears (the buffer only grows when a cell yields
    /// more hits than any earlier one). The default clears and refills
    /// from the allocating path — correct for any backend; both bundled
    /// indexes override it with genuinely buffer-filling walks.
    fn try_range_at_into(
        &self,
        rect: &Rect,
        t: Timestamp,
        io: &mut IoStats,
        out: &mut Vec<(ObjectId, Point)>,
    ) -> Result<(), StorageError> {
        out.clear();
        out.extend(self.try_range_at_collect(rect, t, io)?);
        Ok(())
    }

    /// [`range_at_collect`](RangeIndex::range_at_collect) without a
    /// collector, for callers that only need the global counters.
    fn range_at(&self, rect: &Rect, t: Timestamp) -> Vec<(ObjectId, Point)> {
        let mut io = IoStats::default();
        self.range_at_collect(rect, t, &mut io)
    }

    /// Discards all contents and backing storage, re-anchoring the
    /// empty index at `t_ref` — crash recovery resets the index onto a
    /// fresh simulated device before re-loading the checkpointed
    /// population. Any installed fault plan is discarded too.
    fn reset(&mut self, t_ref: Timestamp);

    /// Installs a fault-injection plan beneath the index's storage.
    /// The default is a no-op for backends without a storage plane.
    fn set_fault_plan(&self, plan: FaultPlan) {
        let _ = plan;
    }

    /// Counters of injected faults and detected checksum failures on
    /// the index's storage. The default reports all zeros.
    fn fault_stats(&self) -> FaultStats {
        FaultStats::default()
    }

    /// Loads an initial population into an empty index. The default
    /// implementation inserts one by one; packed loaders override it.
    fn load(&mut self, objects: &[(ObjectId, MotionState)], t_now: Timestamp) {
        for (id, m) in objects {
            self.insert(*id, m, t_now);
        }
    }

    /// Number of indexed objects.
    fn len(&self) -> usize;

    /// `true` when nothing is indexed.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Buffer-pool I/O counters.
    fn io_stats(&self) -> IoStats;

    /// Zeroes the I/O counters (called before each measured query).
    fn reset_io_stats(&self);
}

impl RangeIndex for pdr_tprtree::TprTree {
    fn insert(&mut self, id: ObjectId, motion: &MotionState, t_now: Timestamp) {
        pdr_tprtree::TprTree::insert(self, id, motion, t_now);
    }

    fn remove(&mut self, id: ObjectId) -> bool {
        pdr_tprtree::TprTree::remove(self, id)
    }

    fn range_at_collect(
        &self,
        rect: &Rect,
        t: Timestamp,
        io: &mut IoStats,
    ) -> Vec<(ObjectId, Point)> {
        pdr_tprtree::TprTree::range_at_collect(self, rect, t, io)
    }

    fn try_range_at_collect(
        &self,
        rect: &Rect,
        t: Timestamp,
        io: &mut IoStats,
    ) -> Result<Vec<(ObjectId, Point)>, StorageError> {
        pdr_tprtree::TprTree::try_range_at_collect(self, rect, t, io)
    }

    fn try_range_at_into(
        &self,
        rect: &Rect,
        t: Timestamp,
        io: &mut IoStats,
        out: &mut Vec<(ObjectId, Point)>,
    ) -> Result<(), StorageError> {
        pdr_tprtree::TprTree::try_range_at_into(self, rect, t, io, out)
    }

    fn load(&mut self, objects: &[(ObjectId, MotionState)], _t_now: Timestamp) {
        // STR bulk loading packs ~70 % full, leaving update headroom.
        self.bulk_load(objects, 0.7);
    }

    fn len(&self) -> usize {
        pdr_tprtree::TprTree::len(self)
    }

    fn io_stats(&self) -> IoStats {
        pdr_tprtree::TprTree::io_stats(self)
    }

    fn reset_io_stats(&self) {
        pdr_tprtree::TprTree::reset_io_stats(self);
    }

    fn reset(&mut self, t_ref: Timestamp) {
        pdr_tprtree::TprTree::reset(self, t_ref);
    }

    fn set_fault_plan(&self, plan: FaultPlan) {
        pdr_tprtree::TprTree::set_fault_plan(self, plan);
    }

    fn fault_stats(&self) -> FaultStats {
        pdr_tprtree::TprTree::fault_stats(self)
    }
}

impl RangeIndex for pdr_gridindex::GridIndex {
    fn insert(&mut self, id: ObjectId, motion: &MotionState, _t_now: Timestamp) {
        pdr_gridindex::GridIndex::insert(self, id, motion);
    }

    fn remove(&mut self, id: ObjectId) -> bool {
        pdr_gridindex::GridIndex::remove(self, id)
    }

    fn range_at_collect(
        &self,
        rect: &Rect,
        t: Timestamp,
        io: &mut IoStats,
    ) -> Vec<(ObjectId, Point)> {
        pdr_gridindex::GridIndex::range_at_collect(self, rect, t, io)
    }

    fn try_range_at_collect(
        &self,
        rect: &Rect,
        t: Timestamp,
        io: &mut IoStats,
    ) -> Result<Vec<(ObjectId, Point)>, StorageError> {
        pdr_gridindex::GridIndex::try_range_at_collect(self, rect, t, io)
    }

    fn try_range_at_into(
        &self,
        rect: &Rect,
        t: Timestamp,
        io: &mut IoStats,
        out: &mut Vec<(ObjectId, Point)>,
    ) -> Result<(), StorageError> {
        pdr_gridindex::GridIndex::try_range_at_into(self, rect, t, io, out)
    }

    fn len(&self) -> usize {
        pdr_gridindex::GridIndex::len(self)
    }

    fn io_stats(&self) -> IoStats {
        pdr_gridindex::GridIndex::io_stats(self)
    }

    fn reset_io_stats(&self) {
        pdr_gridindex::GridIndex::reset_io_stats(self);
    }

    fn reset(&mut self, t_ref: Timestamp) {
        pdr_gridindex::GridIndex::reset(self, t_ref);
    }

    fn set_fault_plan(&self, plan: FaultPlan) {
        pdr_gridindex::GridIndex::set_fault_plan(self, plan);
    }

    fn fault_stats(&self) -> FaultStats {
        pdr_gridindex::GridIndex::fault_stats(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdr_gridindex::{GridIndex, GridIndexConfig};
    use pdr_tprtree::{TprConfig, TprTree};

    fn motions(n: usize) -> Vec<(ObjectId, MotionState)> {
        let mut seed = 99u64;
        let mut rng = move || {
            seed = seed
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (seed >> 33) as f64 / (1u64 << 31) as f64
        };
        (0..n)
            .map(|i| {
                (
                    ObjectId(i as u64),
                    MotionState::new(
                        Point::new(rng() * 1000.0, rng() * 1000.0),
                        Point::new(rng() * 2.0 - 1.0, rng() * 2.0 - 1.0),
                        0,
                    ),
                )
            })
            .collect()
    }

    /// Both index implementations must return identical result sets
    /// through the trait — that is what makes them interchangeable
    /// inside the FR engine.
    #[test]
    fn implementations_agree_through_the_trait() {
        let pop = motions(1500);
        let mut tpr: Box<dyn RangeIndex> =
            Box::new(TprTree::new(TprConfig::default_with_horizon(20.0), 0));
        let mut grid: Box<dyn RangeIndex> = Box::new(GridIndex::new(
            GridIndexConfig {
                extent: 1000.0,
                buckets_per_side: 16,
                buffer_pages: 64,
            },
            0,
        ));
        tpr.load(&pop, 0);
        grid.load(&pop, 0);
        assert_eq!(tpr.len(), grid.len());
        for (id, _) in pop.iter().take(100) {
            assert!(tpr.remove(*id));
            assert!(grid.remove(*id));
        }
        for t in [0u64, 10] {
            let rect = Rect::new(300.0, 300.0, 600.0, 500.0);
            let mut a: Vec<u64> = tpr
                .range_at(&rect, t)
                .into_iter()
                .map(|(i, _)| i.0)
                .collect();
            let mut b: Vec<u64> = grid
                .range_at(&rect, t)
                .into_iter()
                .map(|(i, _)| i.0)
                .collect();
            a.sort_unstable();
            b.sort_unstable();
            assert_eq!(a, b, "t = {t}");
        }
    }

    /// The collector sees the same I/O the global counters record for a
    /// single query on an otherwise idle index.
    #[test]
    fn collectors_match_global_stats() {
        let pop = motions(1500);
        let mut tpr = TprTree::new(TprConfig::default_with_horizon(20.0), 0);
        RangeIndex::load(&mut tpr, &pop, 0);
        tpr.reset_io_stats();
        let mut io = IoStats::default();
        let hits =
            RangeIndex::range_at_collect(&tpr, &Rect::new(0.0, 0.0, 500.0, 500.0), 5, &mut io);
        assert!(!hits.is_empty());
        assert!(io.logical_reads > 0);
        assert_eq!(io, RangeIndex::io_stats(&tpr));
    }
}
