//! The persistent work-stealing executor every parallel code path in
//! the engine plane runs on.
//!
//! Before this module, FR candidate-cell refinement and the sharded
//! plane's fan-out each spawned fresh `std::thread::scope` workers *per
//! query* — at service rates the spawn/join cost dominates, and nested
//! parallelism (sharded plane outside, FR refinement inside) had to pin
//! the inner engines to one thread to avoid oversubscription. This
//! module replaces both with one long-lived pool:
//!
//! * **Fixed worker threads** created once (default: cores − 1, the
//!   caller thread participates too), idling via `park`/`unpark` —
//!   an idle pool burns no CPU.
//! * **Per-worker deques + a global injector.** A submitted task group
//!   is advertised to the workers' deques and the injector; a worker
//!   pops its own deque from the back, then the injector, then *steals*
//!   from a sibling's front.
//! * **Scoped task groups with deterministic merge.** [`Executor::scope`]
//!   runs `f(0..n)` and returns the results **in index order**, so the
//!   callers' merge step (refinement chunks, shard answers) is a pure
//!   function of the task index — answers are bit-identical at every
//!   pool size, including zero workers (the caller runs everything
//!   inline).
//! * **Nested scopes compose.** Tasks are claimed by index from a
//!   shared cursor, and the scope caller always helps drain its own
//!   group before waiting, so completion never depends on a pool
//!   worker being available: a worker running a shard query may open an
//!   inner refinement scope without deadlock, at any pool size.
//! * **Panic transparency.** A panicking task's payload is captured and
//!   re-raised on the scope caller with [`std::panic::resume_unwind`],
//!   preserving the serve driver's fault-caused-panic crash protocol.
//!
//! Jobs are advertised to workers as `Weak` references: the scope
//! caller holds the only strong reference, and reclaims sole ownership
//! (`Arc::try_unwrap`) before returning. Everything a task closure
//! captured — including `Arc`s of engine internals — is therefore
//! dropped by the time `scope` returns, which is what lets engines hand
//! `Arc` clones of their read-side state to `'static` task closures and
//! still mutate that state through `Arc::get_mut` afterwards.
//!
//! Instrumentation (scope/task/steal counters, parked time, queue
//! depth) goes through [`crate::obs`] primitives and is purely
//! observational: disabling it skips even the clock reads, and answers
//! are bit-identical either way.

use crate::obs::{Counter, ObsReport};
use std::any::Any;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock, Weak};
use std::thread::{JoinHandle, Thread};
use std::time::{Duration, Instant};

/// Environment variable overriding the global pool's worker count
/// (benches and CI use it to pin the pool size; `0` forces inline
/// execution).
pub const POOL_WORKERS_ENV: &str = "PDR_POOL_WORKERS";

/// How long an idle worker sleeps between wake-up checks. Parked
/// workers are unparked eagerly on submission; the timeout only bounds
/// the steal latency of the case "every advertised worker is busy while
/// an unadvertised one naps".
const PARK_TIMEOUT: Duration = Duration::from_millis(20);

/// A group of homogeneous tasks `f(0), …, f(n-1)` shared between the
/// scope caller and the pool workers. Tasks are claimed by index from
/// `cursor` (fine-grained stealing: whoever is free takes the next
/// index); results land in their slot, so the merge order is fixed by
/// construction no matter which thread ran what.
struct TaskGroup<R, F> {
    f: F,
    total: usize,
    cursor: AtomicUsize,
    done: AtomicUsize,
    results: Mutex<Vec<Option<R>>>,
    panic: Mutex<Option<Box<dyn Any + Send>>>,
    /// The scope caller, unparked when the last task finishes.
    waiter: Thread,
    finished: AtomicBool,
}

impl<R, F> TaskGroup<R, F>
where
    R: Send,
    F: Fn(usize) -> R + Send + Sync,
{
    fn run_one(&self, i: usize) {
        // AssertUnwindSafe: a panicking task's partial state is only
        // its result slot, which stays `None` and is never observed —
        // the scope re-raises the payload instead of returning results.
        let out = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| (self.f)(i)));
        match out {
            Ok(r) => {
                let mut slots = self.results.lock().unwrap_or_else(|p| p.into_inner());
                slots[i] = Some(r);
            }
            Err(payload) => {
                let mut first = self.panic.lock().unwrap_or_else(|p| p.into_inner());
                first.get_or_insert(payload);
            }
        }
        if self.done.fetch_add(1, Ordering::AcqRel) + 1 == self.total {
            self.finished.store(true, Ordering::Release);
            self.waiter.unpark();
        }
    }
}

/// Type-erased view of a [`TaskGroup`] a worker can drain.
trait GroupRun: Send + Sync {
    /// Claims and runs task indices until the group is exhausted.
    fn run_to_exhaustion(&self);
}

impl<R, F> GroupRun for TaskGroup<R, F>
where
    R: Send,
    F: Fn(usize) -> R + Send + Sync,
{
    fn run_to_exhaustion(&self) {
        loop {
            let i = self.cursor.fetch_add(1, Ordering::Relaxed);
            if i >= self.total {
                return;
            }
            self.run_one(i);
        }
    }
}

/// A job advertisement: weak so that a drained group — whose caller has
/// already left its scope — costs a failed upgrade, not a leaked
/// closure. The scope caller holding the only strong reference is the
/// invariant that makes `Arc::try_unwrap` at scope exit succeed.
type Job = Weak<dyn GroupRun>;

/// One worker's slot: its deque, its parked flag, and its thread handle
/// for unparking (filled in by the worker itself on startup).
struct WorkerSlot {
    deque: Mutex<VecDeque<Job>>,
    parked: AtomicBool,
    thread: OnceLock<Thread>,
}

/// Executor instrumentation: pure observation, never scheduling input.
#[derive(Default)]
struct ExecObs {
    enabled: AtomicBool,
    scopes: Counter,
    tasks: Counter,
    inline_tasks: Counter,
    steals: Counter,
    unparks: Counter,
    parked_us: Counter,
}

struct Inner {
    slots: Vec<WorkerSlot>,
    injector: Mutex<VecDeque<Job>>,
    shutdown: AtomicBool,
    /// Round-robin start for job advertisement.
    next: AtomicUsize,
    obs: ExecObs,
}

impl Inner {
    /// Next job for worker `idx`: own deque from the back (LIFO — a
    /// nested scope's job is hottest), then the injector, then steal
    /// from a sibling's front (FIFO — the oldest, least contended end).
    fn find_job(&self, idx: usize) -> Option<Job> {
        if let Some(j) = self.slots[idx]
            .deque
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .pop_back()
        {
            return Some(j);
        }
        if let Some(j) = self
            .injector
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .pop_front()
        {
            return Some(j);
        }
        let n = self.slots.len();
        for k in 1..n {
            let victim = (idx + k) % n;
            if let Some(j) = self.slots[victim]
                .deque
                .lock()
                .unwrap_or_else(|p| p.into_inner())
                .pop_front()
            {
                self.obs.steals.inc();
                return Some(j);
            }
        }
        None
    }

    fn has_work(&self) -> bool {
        if !self
            .injector
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .is_empty()
        {
            return true;
        }
        self.slots
            .iter()
            .any(|s| !s.deque.lock().unwrap_or_else(|p| p.into_inner()).is_empty())
    }

    /// Advertises `job` to `copies` workers (round-robin) and once to
    /// the injector, unparking every targeted worker that was asleep.
    /// A job is a claim loop over a shared cursor, so advertising it
    /// several times costs duplicate no-op visits, never duplicate
    /// task runs.
    fn advertise(&self, job: &Job, copies: usize) {
        let n = self.slots.len();
        if n == 0 {
            return;
        }
        self.injector
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .push_back(job.clone());
        let start = self.next.fetch_add(1, Ordering::Relaxed);
        for k in 0..copies.min(n) {
            let idx = (start + k) % n;
            let slot = &self.slots[idx];
            slot.deque
                .lock()
                .unwrap_or_else(|p| p.into_inner())
                .push_back(job.clone());
            if slot.parked.swap(false, Ordering::AcqRel) {
                if let Some(t) = slot.thread.get() {
                    t.unpark();
                    self.obs.unparks.inc();
                }
            }
        }
    }

    fn worker_loop(self: Arc<Self>, idx: usize) {
        let _ = self.slots[idx].thread.set(std::thread::current());
        loop {
            if self.shutdown.load(Ordering::Acquire) {
                return;
            }
            if let Some(job) = self.find_job(idx) {
                if let Some(group) = job.upgrade() {
                    group.run_to_exhaustion();
                }
                continue;
            }
            // Idle: publish the parked flag, then double-check — work
            // submitted between the check and `park` leaves an unpark
            // token, so the park returns immediately (no lost wakeup).
            let slot = &self.slots[idx];
            slot.parked.store(true, Ordering::Release);
            if self.has_work() || self.shutdown.load(Ordering::Acquire) {
                slot.parked.store(false, Ordering::Release);
                continue;
            }
            let t0 = self.obs.enabled.load(Ordering::Relaxed).then(Instant::now);
            std::thread::park_timeout(PARK_TIMEOUT);
            if let Some(t0) = t0 {
                self.obs.parked_us.add(t0.elapsed().as_micros() as u64);
            }
            slot.parked.store(false, Ordering::Release);
        }
    }
}

/// The work-stealing pool. One global instance ([`Executor::global`])
/// serves every engine; tests and the TCP front-end may own private
/// instances ([`Executor::new`]) to pin the worker count or to verify
/// clean joins at shutdown.
pub struct Executor {
    inner: Arc<Inner>,
    handles: Mutex<Vec<JoinHandle<()>>>,
}

impl Executor {
    /// Creates a pool with exactly `workers` threads. `0` is valid and
    /// means every scope runs inline on its caller.
    pub fn new(workers: usize) -> Self {
        let inner = Arc::new(Inner {
            slots: (0..workers)
                .map(|_| WorkerSlot {
                    deque: Mutex::new(VecDeque::new()),
                    parked: AtomicBool::new(false),
                    thread: OnceLock::new(),
                })
                .collect(),
            injector: Mutex::new(VecDeque::new()),
            shutdown: AtomicBool::new(false),
            next: AtomicUsize::new(0),
            obs: ExecObs {
                enabled: AtomicBool::new(true),
                ..ExecObs::default()
            },
        });
        let handles = (0..workers)
            .map(|i| {
                let inner = Arc::clone(&inner);
                std::thread::Builder::new()
                    .name(format!("pdr-exec-{i}"))
                    .spawn(move || inner.worker_loop(i))
                    .expect("spawning executor worker")
            })
            .collect();
        Executor {
            inner,
            handles: Mutex::new(handles),
        }
    }

    /// The process-wide pool every engine routes through. Sized from
    /// [`POOL_WORKERS_ENV`] when set, otherwise `cores − 1` (the scope
    /// caller is the remaining runnable thread). Created on first use;
    /// lives for the process unless [`shutdown`](Executor::shutdown) is
    /// called (after which scopes run inline).
    pub fn global() -> &'static Executor {
        static GLOBAL: OnceLock<Executor> = OnceLock::new();
        GLOBAL.get_or_init(|| {
            let workers = std::env::var(POOL_WORKERS_ENV)
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or_else(|| {
                    std::thread::available_parallelism().map_or(0, |n| n.get().saturating_sub(1))
                });
            Executor::new(workers)
        })
    }

    /// Number of pool worker threads (spawned; some may be parked).
    pub fn workers(&self) -> usize {
        self.inner.slots.len()
    }

    /// Runs `f(0), …, f(n-1)` across the pool (the caller participates)
    /// and returns the results in index order. With no workers — pool
    /// size 0, or after shutdown — everything runs inline on the
    /// caller, same results, same order.
    ///
    /// # Panics
    ///
    /// Re-raises the first panicking task's payload on the caller.
    pub fn scope<R, F>(&self, n: usize, f: F) -> Vec<R>
    where
        R: Send + 'static,
        F: Fn(usize) -> R + Send + Sync + 'static,
    {
        self.inner.obs.scopes.inc();
        if n == 0 {
            return Vec::new();
        }
        if n == 1 || self.workers() == 0 || self.inner.shutdown.load(Ordering::Acquire) {
            self.inner.obs.inline_tasks.add(n as u64);
            return (0..n).map(f).collect();
        }
        self.inner.obs.tasks.add(n as u64);
        let group = Arc::new(TaskGroup {
            f,
            total: n,
            cursor: AtomicUsize::new(0),
            done: AtomicUsize::new(0),
            results: Mutex::new((0..n).map(|_| None).collect()),
            panic: Mutex::new(None),
            waiter: std::thread::current(),
            finished: AtomicBool::new(false),
        });
        let job: Job = Arc::downgrade(&group) as Job;
        // The caller takes one task's worth of the work itself, so at
        // most n − 1 helpers are useful.
        self.inner.advertise(&job, n - 1);
        group.run_to_exhaustion();
        while !group.finished.load(Ordering::Acquire) {
            // Tasks claimed by workers are still running; the last one
            // unparks us. `finished` is set before the unpark, so a
            // wakeup between the check and the park is never lost.
            std::thread::park();
        }
        // Reclaim sole ownership. A worker may still hold a transient
        // strong reference (upgraded the job, found the cursor
        // exhausted, about to drop) — wait it out; both sides are
        // lock-free and the window is a few instructions.
        let mut group = group;
        let group = loop {
            match Arc::try_unwrap(group) {
                Ok(g) => break g,
                Err(g) => {
                    group = g;
                    std::thread::yield_now();
                }
            }
        };
        if let Some(payload) = group.panic.into_inner().unwrap_or_else(|p| p.into_inner()) {
            std::panic::resume_unwind(payload);
        }
        group
            .results
            .into_inner()
            .unwrap_or_else(|p| p.into_inner())
            .into_iter()
            .map(|slot| slot.expect("every finished task filled its result slot"))
            .collect()
    }

    /// Current number of advertised jobs across the injector and every
    /// worker deque (a sampled gauge; stale advertisements of drained
    /// groups count until a worker visits them).
    pub fn queue_depth(&self) -> usize {
        let inner = &self.inner;
        let mut depth = inner
            .injector
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .len();
        for s in &inner.slots {
            depth += s.deque.lock().unwrap_or_else(|p| p.into_inner()).len();
        }
        depth
    }

    /// Enables or disables executor instrumentation (on by default).
    /// Purely observational — scheduling and answers are identical
    /// either way; disabling skips the park-time clock reads.
    pub fn set_obs_enabled(&self, on: bool) {
        self.inner.obs.enabled.store(on, Ordering::Relaxed);
    }

    /// Instrumentation snapshot: worker/queue gauges plus scope, task,
    /// steal, unpark and parked-time counters.
    pub fn obs_report(&self) -> ObsReport {
        let obs = &self.inner.obs;
        ObsReport {
            counters: vec![
                ("pool_workers", self.workers() as u64),
                ("queue_depth", self.queue_depth() as u64),
                ("scopes", obs.scopes.get()),
                ("tasks", obs.tasks.get()),
                ("inline_tasks", obs.inline_tasks.get()),
                ("steals", obs.steals.get()),
                ("unparks", obs.unparks.get()),
                ("parked_us", obs.parked_us.get()),
            ],
            stages: Vec::new(),
        }
    }

    /// Stops and joins every worker thread, returning how many joined.
    /// Scopes submitted afterwards run inline on their callers. The TCP
    /// front-end calls this on graceful shutdown and asserts
    /// `joined == workers()` — a worker that fails to join would be a
    /// leak.
    pub fn shutdown(&self) -> usize {
        self.inner.shutdown.store(true, Ordering::Release);
        for slot in &self.inner.slots {
            if let Some(t) = slot.thread.get() {
                t.unpark();
            }
        }
        let handles: Vec<JoinHandle<()>> =
            std::mem::take(&mut *self.handles.lock().unwrap_or_else(|p| p.into_inner()));
        let mut joined = 0usize;
        for h in handles {
            if h.join().is_ok() {
                joined += 1;
            }
        }
        joined
    }
}

impl Drop for Executor {
    fn drop(&mut self) {
        // Private pools (tests, benches) must not leak their workers.
        self.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn scope_returns_results_in_index_order() {
        let pool = Executor::new(3);
        for n in [0usize, 1, 2, 7, 64] {
            let out = pool.scope(n, |i| i * i);
            assert_eq!(out, (0..n).map(|i| i * i).collect::<Vec<_>>());
        }
    }

    #[test]
    fn zero_worker_pool_runs_inline_with_identical_results() {
        let inline = Executor::new(0);
        let pooled = Executor::new(4);
        let f = |i: usize| (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        assert_eq!(inline.scope(100, f), pooled.scope(100, f));
        assert_eq!(inline.workers(), 0);
    }

    #[test]
    fn every_task_runs_exactly_once() {
        let pool = Executor::new(4);
        let hits: Arc<Vec<AtomicU64>> = Arc::new((0..500).map(|_| AtomicU64::new(0)).collect());
        let h = Arc::clone(&hits);
        pool.scope(500, move |i| {
            h[i].fetch_add(1, Ordering::Relaxed);
        });
        for (i, c) in hits.iter().enumerate() {
            assert_eq!(c.load(Ordering::Relaxed), 1, "task {i}");
        }
    }

    #[test]
    fn nested_scopes_compose_without_deadlock() {
        let pool = Arc::new(Executor::new(2));
        let p = Arc::clone(&pool);
        let out = pool.scope(4, move |i| {
            let inner = p.scope(3, move |j| i * 10 + j);
            inner.iter().sum::<usize>()
        });
        assert_eq!(out, vec![3, 33, 63, 93]);
    }

    #[test]
    fn captured_arcs_are_released_by_scope_exit() {
        let pool = Executor::new(4);
        let mut shared = Arc::new(vec![1u64; 1024]);
        for _ in 0..50 {
            let s = Arc::clone(&shared);
            pool.scope(8, move |i| s[i] + s.len() as u64);
            // The scope dropped the closure (and its Arc clone): the
            // engine-mutation pattern `Arc::get_mut` must succeed.
            assert!(
                Arc::get_mut(&mut shared).is_some(),
                "scope leaked a strong reference to captured state"
            );
        }
    }

    #[test]
    fn panicking_task_payload_is_reraised_on_the_caller() {
        let pool = Executor::new(2);
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            pool.scope(8, |i| {
                if i == 5 {
                    panic!("task five failed");
                }
                i
            })
        }));
        let payload = caught.expect_err("panic must propagate");
        let msg = payload.downcast_ref::<&str>().copied().unwrap_or_default();
        assert_eq!(msg, "task five failed");
        // The pool survives a panicking group.
        assert_eq!(pool.scope(3, |i| i), vec![0, 1, 2]);
    }

    #[test]
    fn shutdown_joins_every_worker_and_scopes_fall_back_inline() {
        let pool = Executor::new(3);
        assert_eq!(pool.scope(6, |i| i).len(), 6);
        assert_eq!(pool.shutdown(), 3, "every worker must join");
        assert_eq!(pool.shutdown(), 0, "idempotent");
        assert_eq!(pool.scope(6, |i| i), (0..6).collect::<Vec<_>>());
    }

    #[test]
    fn obs_reports_counters_and_stays_observational() {
        let pool = Executor::new(2);
        pool.scope(4, |i| i);
        let with_obs = pool.scope(16, |i| i * 3);
        pool.set_obs_enabled(false);
        let without_obs = pool.scope(16, |i| i * 3);
        assert_eq!(with_obs, without_obs, "obs must never change results");
        let report = pool.obs_report();
        assert_eq!(report.counter("pool_workers"), Some(2));
        assert!(report.counter("scopes").unwrap() >= 3);
        assert!(report.counter("tasks").unwrap() >= 36);
        for key in ["queue_depth", "steals", "unparks", "parked_us"] {
            assert!(report.counter(key).is_some(), "missing counter {key}");
        }
    }
}
